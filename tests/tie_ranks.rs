//! Tie handling through the shuffle-decrypt chain, plus serial/parallel
//! equivalence of the sorting engine.
//!
//! The paper allows equal masked gains to share a rank ("If `p_i = p_j`,
//! it does not matter if `P_i` ranks higher or lower than `P_j`", Sec. V):
//! every party counts the τ-zeros in her returned set, and equal β values
//! produce the same zero count no matter how the chain shuffles and
//! re-randomizes the sets. These tests pin that behaviour down — a
//! regression here would mean a hop mangled τ = 0 plaintexts.

use ppgr::bigint::BigUint;
use ppgr::core::sorting::{plain_ranks, run_sort, SortOptions};
use ppgr::core::PartyTimer;
use ppgr::group::GroupKind;
use ppgr::net::TrafficLog;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sort_with(values: &[u64], l: usize, seed: u64, options: SortOptions) -> Vec<usize> {
    let group = GroupKind::Ecc160.group();
    let values: Vec<BigUint> = values.iter().map(|&v| BigUint::from(v)).collect();
    let log = TrafficLog::new();
    let mut timer = PartyTimer::new(values.len() + 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let (out, _trace) =
        run_sort(&group, &values, l, options, &mut rng, &log, &mut timer, 0).unwrap();
    out.ranks
}

#[test]
fn duplicate_betas_share_a_rank_across_the_chain() {
    // Two-way and three-way ties at the top, middle and bottom; the next
    // distinct value's rank skips the tied block (standard competition
    // ranking), and every seed's shuffle chain preserves it.
    let cases: &[(&[u64], &[usize])] = &[
        (&[50, 50, 7], &[1, 1, 3]),
        (&[7, 50, 50], &[3, 1, 1]),
        (&[50, 7, 50], &[1, 3, 1]),
        (&[9, 9, 9, 2], &[1, 1, 1, 4]),
        (&[2, 9, 9, 9], &[4, 1, 1, 1]),
        (&[30, 12, 30, 12, 5], &[1, 3, 1, 3, 5]),
        (&[0, 0, 63, 63], &[3, 3, 1, 1]),
    ];
    for (seed, (values, expect)) in cases.iter().enumerate() {
        let ranks = sort_with(values, 6, seed as u64 + 1, SortOptions::default());
        assert_eq!(&ranks, expect, "values {values:?} seed {seed}");
        let as_big: Vec<BigUint> = values.iter().map(|&v| BigUint::from(v)).collect();
        assert_eq!(
            ranks,
            plain_ranks(&as_big),
            "reference disagrees for {values:?}"
        );
    }
}

#[test]
fn duplicate_partial_gains_tie_through_the_full_framework() {
    // Identical info vectors ⇒ identical partial gains. The gain phase
    // masks each β_j with a distinct ρ_j < ρ, which may break the tie into
    // an arbitrary strict order (the paper explicitly permits either
    // outcome) but must never *reorder* distinct gains; equal-gain parties
    // must land in adjacent ranks.
    use ppgr::core::{FrameworkParams, GroupRanking, Questionnaire};
    use ppgr::hash::HashDrbg;

    let params = FrameworkParams::builder(Questionnaire::synthetic(1, 2))
        .participants(4)
        .top_k(1)
        .attr_bits(5)
        .weight_bits(3)
        .mask_bits(6)
        .seed(33)
        .build()
        .unwrap();
    let mut rng = HashDrbg::seed_from_u64(params.seed());
    let (profile, mut infos) = params.random_population(&mut rng);
    // Force a duplicate partial gain: parties 2 and 3 share an info vector.
    infos[2] = infos[1].clone();
    let outcome = GroupRanking::new(params)
        .with_population(profile, infos)
        .unwrap()
        .run()
        .unwrap();
    let ranks = outcome.ranks();
    let (a, b) = (ranks[1], ranks[2]);
    assert!(
        a.abs_diff(b) <= 1,
        "equal gains must rank adjacently (or tie), got {ranks:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Serial (`threads = 1`) and fanned-out (`threads = 4`) executions of
    /// the sorting engine are indistinguishable for the same RNG seed —
    /// randomness is pre-drawn serially, so the parallel schedule cannot
    /// leak into ranks or transcripts. Duplicates are likely at this value
    /// range, so tie handling is exercised under parallelism too.
    #[test]
    fn parallel_and_serial_sorting_agree(
        values in prop::collection::vec(0u64..8, 2..5),
        seed in 0u64..1_000,
    ) {
        let serial = sort_with(
            &values,
            3,
            seed,
            SortOptions { threads: 1, ..SortOptions::default() },
        );
        let parallel = sort_with(
            &values,
            3,
            seed,
            SortOptions { threads: 4, ..SortOptions::default() },
        );
        prop_assert_eq!(&serial, &parallel);
        let as_big: Vec<BigUint> = values.iter().map(|&v| BigUint::from(v)).collect();
        prop_assert_eq!(serial, plain_ranks(&as_big));
    }

    /// N sessions interleaved on the throughput runtime are bit-identical
    /// to the same sessions run solo and serially: same ranks, same wire
    /// transcript (byte counts, rounds, labels). Each session owns its
    /// seeded DRBG and its steps stay strictly sequential, so no worker
    /// count or steal schedule can perturb a transcript.
    #[test]
    fn runtime_sessions_match_solo_serial_runs(
        base_seed in 0u64..1_000,
        workers in 1usize..5,
        sessions in 2usize..5,
    ) {
        use ppgr::core::{FrameworkParams, GroupRanking, Questionnaire};
        use ppgr::runtime::Runtime;

        let params_for = |seed: u64| {
            FrameworkParams::builder(Questionnaire::synthetic(1, 1))
                .participants(3)
                .top_k(1)
                .attr_bits(4)
                .weight_bits(2)
                .mask_bits(4)
                .group(GroupKind::Ecc160)
                .seed(seed)
                .build()
                .unwrap()
        };
        let runtime = Runtime::with_workers(workers);
        let handles: Vec<_> = (0..sessions)
            .map(|i| runtime.submit(params_for(base_seed + i as u64)))
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let pooled = handle.join().unwrap();
            let solo = GroupRanking::new(params_for(base_seed + i as u64))
                .with_random_population()
                .run()
                .unwrap();
            prop_assert_eq!(pooled.ranks(), solo.ranks());
            prop_assert_eq!(pooled.traffic(), solo.traffic());
        }
    }
}
