//! Offline/online split properties: a session served from a precomputed
//! offline stock must be bit-identical — ranks *and* wire transcript — to
//! the same session generating its stock inline, for any worker count,
//! whether the stock is attached by hand or drawn from the runtime's
//! background precompute pool.

use ppgr::core::{
    FrameworkParams, GroupRanking, OfflineStock, Outcome, Questionnaire, SortOptions,
};
use ppgr::group::GroupKind;
use ppgr::runtime::{PrecomputeConfig, Runtime, RuntimeConfig};
use proptest::prelude::*;

fn params_for(n: usize, seed: u64) -> FrameworkParams {
    FrameworkParams::builder(Questionnaire::synthetic(1, 2))
        .participants(n)
        .top_k(1)
        .attr_bits(5)
        .weight_bits(2)
        .mask_bits(5)
        .group(GroupKind::Ecc160)
        .seed(seed)
        .build()
        .expect("valid params")
}

/// Cold reference: the Offline phase generates the stock inline.
fn cold_run(n: usize, seed: u64, workers: usize) -> Outcome {
    let options = SortOptions {
        threads: workers,
        ..SortOptions::default()
    };
    let mut machine = GroupRanking::new(params_for(n, seed))
        .with_random_population()
        .into_machine_with(options)
        .expect("machine");
    while !machine.is_done() {
        machine.step().expect("cold step");
    }
    machine.into_outcome().expect("cold outcome")
}

/// Warm run: the stock is generated up front (the pool's refill path) and
/// attached before the first step.
fn warm_run(n: usize, seed: u64, workers: usize) -> Outcome {
    let options = SortOptions {
        threads: workers,
        ..SortOptions::default()
    };
    let mut machine = GroupRanking::new(params_for(n, seed))
        .with_random_population()
        .into_machine_with(options)
        .expect("machine");
    let stock = OfflineStock::generate(machine.offline_fingerprint());
    assert!(
        machine.attach_offline_stock(stock),
        "stock minted from the machine's own fingerprint must attach"
    );
    while !machine.is_done() {
        machine.step().expect("warm step");
    }
    machine.into_outcome().expect("warm outcome")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Warm == cold for arbitrary group size, seed, and per-party worker
    /// count: same ranks, same wire transcript (the traffic summary counts
    /// every message and byte, so any divergence in what crosses the wire
    /// shows up here).
    #[test]
    fn warm_stock_matches_cold_inline_generation(
        n in 2usize..=4,
        seed in 0u64..1_000_000,
        workers in 1usize..=3,
    ) {
        let cold = cold_run(n, seed, 1);
        let warm = warm_run(n, seed, workers);
        prop_assert_eq!(cold.ranks(), warm.ranks());
        prop_assert_eq!(cold.traffic(), warm.traffic());
    }

    /// A pool-served session equals the solo cold run of the same derived
    /// seed, for any runtime worker count — whether the lane was already
    /// stocked (warm hit) or the machine fell back to inline generation
    /// (cold miss) must be unobservable in the outcome.
    #[test]
    fn pool_served_sessions_match_solo_runs(
        n in 2usize..=3,
        base in 0u64..1_000_000,
        workers in 1usize..=3,
    ) {
        let runtime = Runtime::new(RuntimeConfig {
            workers,
            session_budget: None,
            verify_batch: 0,
            precompute: PrecomputeConfig { depth: 2, refill_workers: 1 },
        });
        let gid = runtime.register_group(params_for(n, base));
        let handles: Vec<_> = (0..2).map(|_| runtime.submit_group(gid)).collect();
        for (k, handle) in handles.into_iter().enumerate() {
            let pooled = handle.join().expect("pooled run");
            let solo = cold_run(n, base.wrapping_add(k as u64), 1);
            prop_assert_eq!(pooled.ranks(), solo.ranks(), "session {}", k);
            prop_assert_eq!(pooled.traffic(), solo.traffic(), "session {}", k);
        }
    }
}

/// Dropping the runtime while refill lanes are mid-generation must cancel
/// the in-progress stocks and return promptly instead of finishing them —
/// the test fails by hanging if cancellation regresses.
#[test]
fn runtime_drop_cancels_in_progress_refills() {
    let runtime = Runtime::new(RuntimeConfig {
        workers: 1,
        session_budget: None,
        verify_batch: 0,
        precompute: PrecomputeConfig {
            depth: 4,
            refill_workers: 2,
        },
    });
    // Deep lanes of a large group: the refill workers are guaranteed to be
    // inside `generate_cancellable` when the drop lands.
    for i in 0..4u64 {
        let _ = runtime.register_group(params_for(8, 10_000 * (i + 1)));
    }
    drop(runtime);
}
