//! Service-level amortization invariant: a stream of ranking sessions
//! submitted through the sharded front door must yield — for every
//! *admitted* session — ranks and wire transcripts bit-identical to solo
//! serial runs of the same parameters, for any shard count, worker count
//! and verify-batch window. Cross-session batching may reorder work,
//! never bytes. Shed sessions fail typed at the door and leave the
//! admitted subset's transcripts untouched.

use ppgr::core::{FrameworkParams, GroupRanking, Outcome, Questionnaire, SortOptions};
use ppgr::group::GroupKind;
use ppgr::service::{AdmitError, Service, ServiceConfig};
use proptest::prelude::*;

fn params_for(n: usize, seed: u64) -> FrameworkParams {
    FrameworkParams::builder(Questionnaire::synthetic(1, 2))
        .participants(n)
        .top_k(1)
        .attr_bits(5)
        .weight_bits(2)
        .mask_bits(5)
        .group(GroupKind::Ecc160)
        .seed(seed)
        .build()
        .expect("valid params")
}

/// Solo reference: one machine, one thread, inline verification.
fn solo_run(n: usize, seed: u64) -> Outcome {
    let mut machine = GroupRanking::new(params_for(n, seed))
        .with_random_population()
        .into_machine_with(SortOptions::default())
        .expect("machine");
    while !machine.is_done() {
        machine.step().expect("solo step");
    }
    machine.into_outcome().expect("solo outcome")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole invariant, end to end: arbitrary shard/worker/batch
    /// topology, a burst of concurrent sessions, every admitted outcome
    /// bit-identical (ranks *and* traffic summary) to its solo run.
    #[test]
    fn service_stream_matches_solo_runs(
        n in 2usize..=3,
        base in 0u64..1_000_000,
        shards in 1usize..=3,
        workers in 1usize..=2,
        batch in 0usize..=4,
    ) {
        let service = Service::new(ServiceConfig {
            shards,
            workers_per_shard: workers,
            verify_batch: batch,
            ..ServiceConfig::default()
        });
        let sessions = 5u64;
        let handles: Vec<_> = (0..sessions)
            .map(|i| {
                service
                    .submit(i, params_for(n, base.wrapping_add(i)))
                    .expect("unbounded window admits everything")
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let served = handle.join().expect("admitted session completes");
            let solo = solo_run(n, base.wrapping_add(i as u64));
            prop_assert_eq!(served.ranks(), solo.ranks(), "session {}", i);
            prop_assert_eq!(served.traffic(), solo.traffic(), "session {}", i);
        }
        let m = service.metrics();
        prop_assert_eq!(m.sessions_admitted, sessions);
        prop_assert_eq!(m.sessions_completed, sessions);
        prop_assert_eq!(m.sessions_in_flight, 0);
    }

    /// Admission shedding cannot perturb the admitted subset: with a
    /// one-deep window on one shard, some of the burst is shed with a
    /// typed error, and every session that *was* admitted still matches
    /// its solo run byte for byte.
    #[test]
    fn shed_subset_leaves_admitted_transcripts_identical(
        base in 0u64..1_000_000,
        batch in 0usize..=3,
    ) {
        let service = Service::new(ServiceConfig {
            shards: 1,
            workers_per_shard: 1,
            max_in_flight: 1,
            verify_batch: batch,
            ..ServiceConfig::default()
        });
        let sessions = 4u64;
        let mut admitted = Vec::new();
        let mut shed = 0u64;
        for i in 0..sessions {
            match service.submit(i, params_for(3, base.wrapping_add(i))) {
                Ok(handle) => admitted.push((i, handle)),
                Err(err) => {
                    prop_assert!(
                        matches!(err, AdmitError::Saturated { limit: 1, .. }),
                        "unexpected rejection: {:?}", err
                    );
                    shed += 1;
                }
            }
        }
        // A one-deep window in front of a burst of four must shed at least
        // once (the first session cannot resolve before the second submit).
        prop_assert!(shed >= 1, "window never filled");
        for (i, handle) in admitted {
            let served = handle.join().expect("admitted session completes");
            let solo = solo_run(3, base.wrapping_add(i));
            prop_assert_eq!(served.ranks(), solo.ranks(), "session {}", i);
            prop_assert_eq!(served.traffic(), solo.traffic(), "session {}", i);
        }
        let m = service.metrics();
        prop_assert_eq!(m.sessions_rejected_saturated, shed);
        prop_assert_eq!(m.sessions_admitted + shed, sessions);
    }
}
