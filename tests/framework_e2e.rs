//! End-to-end integration tests spanning every crate: full framework runs
//! validated against the plaintext gain model.

use ppgr::core::{
    compute_gain as gain, AttributeKind, CriterionVector, FrameworkParams, GroupRanking,
    InfoVector, InitiatorProfile, Questionnaire, WeightVector,
};
use ppgr::group::GroupKind;
use ppgr::hash::HashDrbg;
use rand::SeedableRng;

fn small_params(n: usize, k: usize, kind: GroupKind, seed: u64) -> FrameworkParams {
    FrameworkParams::builder(Questionnaire::synthetic(1, 2))
        .participants(n)
        .top_k(k)
        .attr_bits(6)
        .weight_bits(3)
        .mask_bits(6)
        .group(kind)
        .seed(seed)
        .build()
        .unwrap()
}

fn assert_ranks_match_gains(params: &FrameworkParams, ranks: &[usize]) {
    let mut rng = HashDrbg::seed_from_u64(params.seed());
    let (profile, infos) = params.random_population(&mut rng);
    let q = params.questionnaire();
    let gains: Vec<i128> = infos.iter().map(|i| gain(q, &profile, i)).collect();
    for a in 0..gains.len() {
        for b in 0..gains.len() {
            if gains[a] > gains[b] {
                assert!(ranks[a] < ranks[b], "gains {gains:?} vs ranks {ranks:?}");
            }
            // Equal gains may rank either way: the per-participant masks
            // ρ_j break gain ties into an arbitrary strict order (the
            // paper's Sec. V explicitly allows this).
        }
    }
}

#[test]
fn ecc160_run_is_correct() {
    let params = small_params(5, 2, GroupKind::Ecc160, 21);
    let outcome = GroupRanking::new(params.clone())
        .with_random_population()
        .run()
        .unwrap();
    assert_ranks_match_gains(&params, outcome.ranks());
    assert!(!outcome.top_k().is_empty());
}

#[test]
fn dl1024_run_is_correct() {
    let params = small_params(3, 1, GroupKind::Dl1024, 22);
    let outcome = GroupRanking::new(params.clone())
        .with_random_population()
        .run()
        .unwrap();
    assert_ranks_match_gains(&params, outcome.ranks());
}

#[test]
fn ecc224_run_is_correct() {
    let params = small_params(3, 1, GroupKind::Ecc224, 23);
    let outcome = GroupRanking::new(params.clone())
        .with_random_population()
        .run()
        .unwrap();
    assert_ranks_match_gains(&params, outcome.ranks());
}

#[test]
fn several_seeds_all_consistent() {
    for seed in [1u64, 7, 1234] {
        let params = small_params(4, 2, GroupKind::Ecc160, seed);
        let outcome = GroupRanking::new(params.clone())
            .with_random_population()
            .run()
            .unwrap();
        assert_ranks_match_gains(&params, outcome.ranks());
    }
}

#[test]
fn explicit_population_with_known_winner() {
    // One attribute, greater-than, weight 1 → gain = value; clear order.
    let q = Questionnaire::builder()
        .attribute("score", AttributeKind::GreaterThan)
        .build()
        .unwrap();
    let profile = InitiatorProfile {
        criterion: CriterionVector::new(&q, vec![0], 6).unwrap(),
        weights: WeightVector::new(&q, vec![1], 3).unwrap(),
    };
    let infos: Vec<InfoVector> = [10u64, 40, 25]
        .iter()
        .map(|&v| InfoVector::new(&q, vec![v], 6).unwrap())
        .collect();
    let params = FrameworkParams::builder(q)
        .participants(3)
        .top_k(1)
        .attr_bits(6)
        .weight_bits(3)
        .mask_bits(6)
        .group(GroupKind::Ecc160)
        .seed(31)
        .build()
        .unwrap();
    let outcome = GroupRanking::new(params)
        .with_population(profile, infos)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(outcome.ranks(), &[3, 1, 2]);
    assert_eq!(outcome.top_k().len(), 1);
    assert_eq!(outcome.top_k()[0].submission.party, 2);
    assert_eq!(outcome.top_k()[0].gain, 40);
}

#[test]
fn top_k_equals_n_takes_everyone() {
    let params = small_params(3, 3, GroupKind::Ecc160, 8);
    let outcome = GroupRanking::new(params)
        .with_random_population()
        .run()
        .unwrap();
    assert_eq!(outcome.top_k().len(), 3);
}

#[test]
fn traffic_grows_with_group_element_size() {
    let ecc = GroupRanking::new(small_params(3, 1, GroupKind::Ecc160, 4))
        .with_random_population()
        .run()
        .unwrap();
    let dl = GroupRanking::new(small_params(3, 1, GroupKind::Dl1024, 4))
        .with_random_population()
        .run()
        .unwrap();
    assert!(
        dl.traffic().total_bytes > 3 * ecc.traffic().total_bytes,
        "DL ciphertexts are much larger: {} vs {}",
        dl.traffic().total_bytes,
        ecc.traffic().total_bytes
    );
    // Same logical structure though: identical message counts and rounds.
    assert_eq!(dl.traffic().messages, ecc.traffic().messages);
    assert_eq!(dl.traffic().rounds, ecc.traffic().rounds);
}
