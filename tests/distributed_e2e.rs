//! The distributed (thread-per-party, serialized-messages) runner,
//! exercised through the public facade.

use ppgr::core::{
    run_distributed, AttributeKind, CriterionVector, FrameworkParams, GroupRanking, InfoVector,
    InitiatorProfile, Questionnaire, WeightVector,
};
use ppgr::group::GroupKind;

fn scored_population(scores: &[u64]) -> (Questionnaire, InitiatorProfile, Vec<InfoVector>) {
    let q = Questionnaire::builder()
        .attribute("score", AttributeKind::GreaterThan)
        .build()
        .unwrap();
    let profile = InitiatorProfile {
        criterion: CriterionVector::new(&q, vec![0], 6).unwrap(),
        weights: WeightVector::new(&q, vec![1], 3).unwrap(),
    };
    let infos = scores
        .iter()
        .map(|&v| InfoVector::new(&q, vec![v], 6).unwrap())
        .collect();
    (q, profile, infos)
}

fn params(q: Questionnaire, n: usize, k: usize, seed: u64) -> FrameworkParams {
    FrameworkParams::builder(q)
        .participants(n)
        .top_k(k)
        .attr_bits(6)
        .weight_bits(3)
        .mask_bits(6)
        .group(GroupKind::Ecc160)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn distributed_known_scores() {
    let scores = [10u64, 40, 25, 5];
    let (q, profile, infos) = scored_population(&scores);
    let p = params(q, scores.len(), 2, 3);
    let out = run_distributed(&p, profile, infos).unwrap();
    assert_eq!(out.ranks, vec![3, 1, 2, 4]);
    assert!(out.report.is_clean());
    let accepted: Vec<usize> = out
        .report
        .accepted
        .iter()
        .map(|a| a.submission.party)
        .collect();
    assert_eq!(accepted, vec![2, 3], "rank-1 then rank-2 submitters");
}

#[test]
fn distributed_agrees_with_orchestrated_on_distinct_scores() {
    let scores = [7u64, 19, 30];
    let (q, profile, infos) = scored_population(&scores);
    let p = params(q, scores.len(), 1, 9);

    let orchestrated = GroupRanking::new(p.clone())
        .with_population(profile.clone(), infos.clone())
        .unwrap()
        .run()
        .unwrap();
    let distributed = run_distributed(&p, profile, infos).unwrap();
    assert_eq!(orchestrated.ranks(), &distributed.ranks[..]);
    assert_eq!(distributed.ranks, vec![3, 2, 1]);
}

#[test]
fn gain_ties_break_arbitrarily_but_consistently_with_order() {
    // Equal gains receive different masks ρ_j, so the framework breaks
    // gain ties into an arbitrary strict order (explicitly allowed by the
    // paper, Sec. V: "If p_i = p_j, it does not matter if P_i ranks
    // higher or lower"). The two runners may break the tie differently —
    // but both must rank the strict winner first and give the tied pair
    // ranks {2, 3} in some order.
    let scores = [7u64, 7, 30];
    let (q, profile, infos) = scored_population(&scores);
    let p = params(q, scores.len(), 1, 9);

    let orchestrated = GroupRanking::new(p.clone())
        .with_population(profile.clone(), infos.clone())
        .unwrap()
        .run()
        .unwrap();
    let distributed = run_distributed(&p, profile, infos).unwrap();
    for ranks in [orchestrated.ranks(), &distributed.ranks[..]] {
        assert_eq!(ranks[2], 1, "strict winner must be rank 1: {ranks:?}");
        let mut tied: Vec<usize> = vec![ranks[0], ranks[1]];
        tied.sort_unstable();
        assert_eq!(tied, vec![2, 3], "tied pair gets ranks 2 and 3: {ranks:?}");
    }
}
