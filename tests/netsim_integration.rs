//! Feeding real protocol traffic through the network simulator
//! (the Fig. 3(b) pipeline, end to end at small scale).

use ppgr::core::{FrameworkParams, GroupRanking, Questionnaire};
use ppgr::group::GroupKind;
use ppgr::net::sim::{NetworkSim, SimConfig, Topology};

fn run_and_simulate(kind: GroupKind, n: usize, seed: u64) -> f64 {
    let params = FrameworkParams::builder(Questionnaire::synthetic(1, 2))
        .participants(n)
        .top_k(1)
        .attr_bits(6)
        .weight_bits(3)
        .mask_bits(6)
        .group(kind)
        .seed(seed)
        .build()
        .unwrap();
    let runner = GroupRanking::new(params).with_random_population();
    let log = runner.traffic_log();
    runner.run().unwrap();
    let sim = NetworkSim::paper_setup(n + 1, 7);
    sim.simulate_log(&log)
        .expect("recorded log is well formed")
        .completion_s
}

#[test]
fn dl_completion_slower_than_ecc_on_same_network() {
    let ecc = run_and_simulate(GroupKind::Ecc160, 3, 1);
    let dl = run_and_simulate(GroupKind::Dl1024, 3, 1);
    // At n=3 the shared 50 ms round latency dominates both runs; the 6×
    // ciphertext-size gap still has to show up clearly in the serialization
    // component.
    assert!(
        dl > 1.3 * ecc,
        "bigger ciphertexts must cost wall-clock on 2 Mbps links: dl={dl}, ecc={ecc}"
    );
}

#[test]
fn more_parties_cost_more_network_time() {
    let small = run_and_simulate(GroupKind::Ecc160, 3, 2);
    let large = run_and_simulate(GroupKind::Ecc160, 5, 2);
    assert!(large > small);
}

#[test]
fn custom_topology_latency_dominates_small_messages() {
    // A long line topology: latency should dominate the tiny messages.
    let topo = Topology::from_edges(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    let config = SimConfig::default();
    let sim = NetworkSim::new(topo, 4, config, 3);
    let params = FrameworkParams::builder(Questionnaire::synthetic(1, 1))
        .participants(3)
        .top_k(1)
        .attr_bits(5)
        .weight_bits(3)
        .mask_bits(5)
        .group(GroupKind::Ecc160)
        .seed(3)
        .build()
        .unwrap();
    let runner = GroupRanking::new(params).with_random_population();
    let log = runner.traffic_log();
    runner.run().unwrap();
    let report = sim.simulate_log(&log).expect("recorded log is well formed");
    // At least the chain hops × at least one 50 ms link each.
    assert!(report.completion_s > 0.4, "got {}", report.completion_s);
    assert!(report.messages > 20);
}
