//! Cross-implementation agreement: the paper's framework, the SS-baseline
//! sorting protocol, and the plaintext reference must all produce the
//! same ranking for the same inputs.

use ppgr::bigint::BigUint;
use ppgr::core::sorting::plain_ranks;
use ppgr::core::{unlinkable_sort, PartyTimer};
use ppgr::group::GroupKind;
use ppgr::net::TrafficLog;
use ppgr::smc::sort::ss_group_rank;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn elgamal_ranks(values: &[u64], l: usize, seed: u64) -> Vec<usize> {
    let group = GroupKind::Ecc160.group();
    let mut rng = StdRng::seed_from_u64(seed);
    let big: Vec<BigUint> = values.iter().map(|&v| BigUint::from(v)).collect();
    let log = TrafficLog::new();
    let mut timer = PartyTimer::new(values.len() + 1);
    unlinkable_sort(&group, &big, l, &mut rng, &log, &mut timer, 0)
        .unwrap()
        .ranks
}

/// SS positional ranks break ties arbitrarily (a sorting network cannot
/// express equality); check it refines the reference: strict orderings
/// must agree, and the rank multiset must be the permutation 1..n.
fn assert_refines(ss: &[usize], reference: &[usize], values: &[u64]) {
    for a in 0..values.len() {
        for b in 0..values.len() {
            if reference[a] < reference[b] {
                assert!(
                    ss[a] < ss[b],
                    "SS broke a strict ordering on {values:?}: {ss:?}"
                );
            }
        }
    }
    let mut sorted = ss.to_vec();
    sorted.sort_unstable();
    assert_eq!(sorted, (1..=values.len()).collect::<Vec<_>>(), "{values:?}");
}

#[test]
fn all_three_implementations_agree() {
    let cases: &[&[u64]] = &[
        &[5, 9, 1],
        &[200, 13, 78, 200],
        &[0, 0, 0, 1],
        &[255, 0, 128, 64, 32],
    ];
    for (i, values) in cases.iter().enumerate() {
        let l = 8;
        let reference = plain_ranks(&values.iter().map(|&v| BigUint::from(v)).collect::<Vec<_>>());
        let elgamal = elgamal_ranks(values, l, i as u64);
        let ss = ss_group_rank(values, l, i as u64 + 100).unwrap();
        assert_eq!(
            elgamal, reference,
            "ElGamal protocol vs reference on {values:?}"
        );
        assert_refines(&ss, &reference, values);
    }
}

#[test]
fn random_inputs_agree() {
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..3 {
        let n = rng.gen_range(3..6);
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
        let reference = plain_ranks(&values.iter().map(|&v| BigUint::from(v)).collect::<Vec<_>>());
        assert_eq!(elgamal_ranks(&values, 6, trial), reference, "{values:?}");
        let ss = ss_group_rank(&values, 6, trial + 50).unwrap();
        assert_refines(&ss, &reference, &values);
    }
}

#[test]
fn rank_multiset_is_always_valid() {
    // Ranks must be: rank r appears exactly (number of values tied at that
    // level), and r = 1 + number of strictly larger values.
    let values = [7u64, 7, 3, 9, 3, 3];
    let ranks = elgamal_ranks(&values, 5, 5);
    assert_eq!(ranks, vec![2, 2, 4, 1, 4, 4]);
}
