//! Cross-crate property-based tests: protocol outputs must match the
//! plaintext reference on arbitrary inputs.

use ppgr::bigint::BigUint;
use ppgr::core::circuit::{compare_plain, signals_less_than};
use ppgr::core::gain::to_unsigned;
use ppgr::core::sorting::plain_ranks;
use ppgr::core::{unlinkable_sort, PartyTimer};
use ppgr::group::GroupKind;
use ppgr::net::sim::Topology;
use ppgr::net::TrafficLog;
use ppgr::smc::sort::ss_group_rank;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The plaintext comparison circuit is a correct comparator for all
    /// 16-bit pairs.
    #[test]
    fn circuit_matches_comparison(a in 0u64..=0xffff, b in 0u64..=0xffff) {
        let taus = compare_plain(&BigUint::from(a), &BigUint::from(b), 16);
        prop_assert_eq!(signals_less_than(&taus), a < b);
        prop_assert!(taus.iter().filter(|&&t| t == 0).count() <= 1);
    }

    /// Signed→unsigned masking conversion is strictly monotone.
    #[test]
    fn to_unsigned_monotone(a in -1000i128..1000, b in -1000i128..1000) {
        prop_assume!(a < b);
        prop_assert!(to_unsigned(a, 12) < to_unsigned(b, 12));
    }

    /// The SS baseline ranks arbitrary values like the plaintext
    /// reference, up to tie-breaking (a sorting network assigns distinct
    /// positions to equal keys).
    #[test]
    fn ss_ranks_match_reference(values in prop::collection::vec(0u64..256, 2..6), seed in 0u64..1000) {
        let expect = plain_ranks(&values.iter().map(|&v| BigUint::from(v)).collect::<Vec<_>>());
        let got = ss_group_rank(&values, 8, seed).unwrap();
        for a in 0..values.len() {
            for b in 0..values.len() {
                if expect[a] < expect[b] {
                    prop_assert!(got[a] < got[b], "strict order broken: {:?} vs {:?}", got, expect);
                }
            }
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (1..=values.len()).collect::<Vec<_>>());
    }

    /// Random connected topologies route between every pair.
    #[test]
    fn topologies_fully_routable(nodes in 2usize..20, extra in 0usize..10, seed in 0u64..100) {
        let max_edges = nodes * (nodes - 1) / 2;
        let edges = (nodes - 1 + extra).min(max_edges);
        let topo = Topology::random_connected(nodes, edges, seed);
        prop_assert!(topo.is_connected());
        for a in 0..nodes {
            prop_assert!(topo.route(a, (a + 1) % nodes).is_some());
        }
    }
}

proptest! {
    // The ElGamal sorting protocol is expensive; keep the case count low —
    // these are full multi-party cryptographic executions.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn elgamal_sort_matches_reference(values in prop::collection::vec(0u64..32, 2..4), seed in 0u64..50) {
        let group = GroupKind::Ecc160.group();
        let big: Vec<BigUint> = values.iter().map(|&v| BigUint::from(v)).collect();
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(values.len() + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = unlinkable_sort(&group, &big, 5, &mut rng, &log, &mut timer, 0).unwrap();
        prop_assert_eq!(out.ranks, plain_ranks(&big));
    }
}
