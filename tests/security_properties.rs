//! Integration-level security checks: the game harness run through the
//! public facade, plus transcript-level invariants.

use ppgr::bigint::BigUint;
use ppgr::core::games;
use ppgr::core::sorting::{run_sort, SortOptions};
use ppgr::core::PartyTimer;
use ppgr::elgamal::ExpElGamal;
use ppgr::group::GroupKind;
use ppgr::net::TrafficLog;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn shuffle_is_the_unlinkability_mechanism() {
    let group = GroupKind::Ecc160.group();
    let broken = games::unlinkability_attack(&group, 6, 8, false, 10);
    let honest = games::unlinkability_attack(&group, 6, 16, true, 11);
    assert_eq!(broken.accuracy(), 1.0);
    assert!(honest.accuracy() < 0.85, "got {}", honest.accuracy());
}

#[test]
fn randomization_is_the_gain_hiding_mechanism() {
    let group = GroupKind::Ecc160.group();
    assert_eq!(games::value_recovery_rate(&group, 6, false, 12), 1.0);
    assert!(games::value_recovery_rate(&group, 6, true, 13) < 0.15);
}

#[test]
fn returned_sets_contain_no_repeated_ciphertexts() {
    // Randomization guarantees distinct ciphertexts even for equal τ.
    let group = GroupKind::Ecc160.group();
    let values: Vec<BigUint> = [9u64, 9, 9].iter().map(|&v| BigUint::from(v)).collect();
    let log = TrafficLog::new();
    let mut timer = PartyTimer::new(4);
    let mut rng = StdRng::seed_from_u64(14);
    let (_, trace) = run_sort(
        &group,
        &values,
        4,
        SortOptions::default(),
        &mut rng,
        &log,
        &mut timer,
        0,
    )
    .unwrap();
    for set in &trace.returned_sets {
        for i in 0..set.len() {
            for j in i + 1..set.len() {
                assert_ne!(set[i], set[j], "ciphertexts must never repeat");
            }
        }
    }
}

#[test]
fn owner_cannot_learn_which_opponent_beat_her() {
    // Equal-rank scenarios with swapped opponents produce identical
    // zero-counts for the owner; the zero position is uniform under the
    // shuffle so two specific runs almost surely differ in position but
    // agree in count.
    let group = GroupKind::Ecc160.group();
    let scheme = ExpElGamal::new(group.clone());
    let mut positions = Vec::new();
    for seed in 0..6u64 {
        let values: Vec<BigUint> = [10u64, 40, 25].iter().map(|&v| BigUint::from(v)).collect();
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(4);
        let mut rng = StdRng::seed_from_u64(seed);
        let (out, trace) = run_sort(
            &group,
            &values,
            6,
            SortOptions::default(),
            &mut rng,
            &log,
            &mut timer,
            0,
        )
        .unwrap();
        assert_eq!(out.ranks, vec![3, 1, 2]);
        // Party 3 (value 25) has exactly one zero (loses to 40).
        let key = trace.keys[2].secret_key();
        let zeros: Vec<usize> = trace.returned_sets[2]
            .iter()
            .enumerate()
            .filter(|(_, ct)| scheme.decrypts_to_zero(key, ct))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(zeros.len(), 1);
        positions.push(zeros[0]);
    }
    // Across seeds the zero position must vary (shuffled), i.e. not all equal.
    assert!(
        positions.windows(2).any(|w| w[0] != w[1]),
        "zero positions should be randomized across runs: {positions:?}"
    );
}
