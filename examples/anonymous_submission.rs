//! The anonymous data-collection mix-net (the Brickell–Shmatikov idea the
//! paper's shuffle borrows from): group members submit survey answers to
//! a collector who cannot tell who wrote what.
//!
//! ```text
//! cargo run --release --example anonymous_submission
//! ```

use ppgr::anon::mixnet::AnonymousCollection;
use ppgr::group::GroupKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2026);
    let members = ["ana", "ben", "cat", "dia", "eli"];
    let answers: [&[u8]; 5] = [
        b"salary: 71k, satisfied: no",
        b"salary: 95k, satisfied: yes",
        b"salary: 64k, satisfied: no",
        b"salary: 88k, satisfied: yes",
        b"salary: 70k, satisfied: no",
    ];

    let session = AnonymousCollection::setup(GroupKind::Ecc160.group(), members.len(), &mut rng);
    println!(
        "{} members wrap their answers in {}-layer onions…",
        members.len(),
        members.len()
    );

    let onions: Vec<Vec<u8>> = answers
        .iter()
        .map(|a| session.wrap(a, &mut rng))
        .collect::<Result<_, _>>()?;
    println!(
        "onion size: {} bytes for a {}-byte answer",
        onions[0].len(),
        answers[0].len()
    );

    let collected = session.mix_and_collect(onions, &mut rng)?;

    println!("\nthe collector receives (order randomized by every honest mixer):");
    for msg in &collected {
        println!("  {}", String::from_utf8_lossy(msg));
    }
    println!("\n…and has no way to attribute any line to {:?}.", members);
    Ok(())
}
