//! The stand-alone identity-unlinkable multiparty sorting protocol
//! (the paper's independent contribution, Sec. V phase 2).
//!
//! Five employees rank their salaries: each learns only her own position;
//! the shuffle-decrypt chain prevents anyone from linking a salary or a
//! rank to a colleague.
//!
//! ```text
//! cargo run --release --example unlinkable_sorting
//! ```

use ppgr::bigint::BigUint;
use ppgr::core::{unlinkable_sort, PartyTimer};
use ppgr::group::GroupKind;
use ppgr::net::TrafficLog;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let salaries = [83_000u64, 71_500, 97_250, 71_500, 64_000];
    let l = 17; // enough bits for the largest salary
    let group = GroupKind::Ecc160.group();

    println!(
        "{} parties sort privately over {l}-bit values on {}…",
        salaries.len(),
        group.kind()
    );

    let values: Vec<BigUint> = salaries.iter().map(|&s| BigUint::from(s)).collect();
    let log = TrafficLog::new();
    let mut timer = PartyTimer::new(salaries.len() + 1);
    let mut rng = StdRng::seed_from_u64(11);

    let outcome = unlinkable_sort(&group, &values, l, &mut rng, &log, &mut timer, 0)?;

    println!("\neach party's private result (rank 1 = highest salary):");
    for (idx, rank) in outcome.ranks.iter().enumerate() {
        println!(
            "  P{} learned: my rank is {rank}   (compute: {:?})",
            idx + 1,
            timer.spent(idx + 1)
        );
    }
    println!("\nnote the tie: both 71,500 holders got the same rank.");

    let s = log.summary();
    println!(
        "\nwire: {} messages / {} bytes; the chain phase dominates: {} bytes",
        s.messages, s.total_bytes, s.bytes_by_phase["sort/chain"]
    );
    Ok(())
}
