//! Why the paper rejects plain additively-homomorphic encryption
//! (Sec. II): Paillier can add and scale under encryption, but computing
//! `max{a,b} = (a>b)·(a−b)+b` needs a ciphertext *product*, which an
//! additive scheme cannot provide — so a comparison result must surface
//! at some party, breaking identity unlinkability. The framework's
//! exponential ElGamal instead needs only a *zero test* after a joint
//! decryption chain, which is exactly what it supports.
//!
//! ```text
//! cargo run --release --example paillier_comparison
//! ```

use ppgr::bigint::BigUint;
use ppgr::paillier::Keypair;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    println!("generating a demo Paillier key (512-bit modulus)…");
    let kp = Keypair::generate(512, &mut rng);
    let pk = kp.public();

    let (a, b) = (37u64, 54u64);
    let ea = pk.encrypt_u64(a, &mut rng);
    let eb = pk.encrypt_u64(b, &mut rng);

    // What Paillier CAN do — affine arithmetic under encryption:
    let sum = pk.add(&ea, &eb);
    let diff = pk.add(&ea, &pk.neg(&eb));
    let scaled = pk.scale(&ea, &BigUint::from(3u64));
    println!("E(a)+E(b)      → {}", kp.decrypt_u64(&sum).unwrap());
    println!("E(a)−E(b)      → {}", kp.decrypt_i128(&diff).unwrap());
    println!("3·E(a)         → {}", kp.decrypt_u64(&scaled).unwrap());

    // What it CANNOT do: E(a)·E(b) in the plaintext sense. The group
    // operation on ciphertexts *is* homomorphic addition, so "multiplying
    // ciphertexts" just adds plaintexts:
    let product_attempt = pk.add(&ea, &eb);
    println!(
        "\n“E(a)·E(b)”    → {} (that's a+b, not a·b = {})",
        kp.decrypt_u64(&product_attempt).unwrap(),
        a * b
    );

    println!(
        "\nso max{{a,b}} = (a>b)·(a−b)+b is not computable under encryption: \
         the comparison bit (a>b) would have to be DECRYPTED by someone, \
         and whoever sees it can link relative rankings to identities."
    );
    println!(
        "the paper's framework avoids this: exponential ElGamal τ-values are \
         only ever tested for zero after a chain of partial decryptions, with \
         every non-zero plaintext randomized and every position shuffled."
    );
}
