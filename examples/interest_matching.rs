//! Personal interests matching (paper Sec. I): a person ranks a group by
//! closeness to her own (sensitive) preference vector — think political
//! alignment, lifestyle, taste — without anyone revealing raw answers.
//!
//! Here the "initiator" is just another user; every attribute is
//! "equal to" (closer preferences = better match).
//!
//! ```text
//! cargo run --release --example interest_matching
//! ```

use ppgr::core::{
    AttributeKind, CriterionVector, FrameworkParams, GroupRanking, InfoVector, InitiatorProfile,
    Questionnaire, WeightVector,
};
use ppgr::group::GroupKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Preferences on a 0–10 scale.
    let q = Questionnaire::builder()
        .attribute("politics", AttributeKind::EqualTo)
        .attribute("outdoors", AttributeKind::EqualTo)
        .attribute("nightlife", AttributeKind::EqualTo)
        .build()?;

    // The matcher's own (private) preferences, weighting politics highest.
    let me = InitiatorProfile {
        criterion: CriterionVector::new(&q, vec![3, 8, 2], 4)?,
        weights: WeightVector::new(&q, vec![7, 4, 2], 3)?,
    };

    let group_members = [
        ("pat", [4u64, 7, 3]),
        ("quinn", [9, 1, 9]),
        ("ruth", [3, 8, 1]),
        ("sam", [0, 10, 2]),
    ];
    let infos: Vec<InfoVector> = group_members
        .iter()
        .map(|(_, v)| InfoVector::new(&q, v.to_vec(), 4))
        .collect::<Result<_, _>>()?;

    let params = FrameworkParams::builder(q)
        .participants(group_members.len())
        .top_k(1)
        .attr_bits(4)
        .weight_bits(3)
        .mask_bits(6)
        .group(GroupKind::Ecc160)
        .seed(3)
        .build()?;

    let outcome = GroupRanking::new(params)
        .with_population(me, infos)?
        .run()?;

    println!("match ranking (1 = best match), revealed only to each member:");
    for ((name, _), rank) in group_members.iter().zip(outcome.ranks()) {
        println!("  {name:>5} privately learns: rank {rank}");
    }
    let best = &outcome.top_k()[0];
    println!(
        "\nonly the best match ({}) shares her preferences back (gain {}).",
        group_members[best.submission.party - 1].0,
        best.gain
    );
    Ok(())
}
