//! Multi-session throughput: many independent ranking sessions on one
//! persistent work-stealing pool, versus the same sessions back-to-back.
//!
//! Each session's shuffle-decrypt chain stays strictly sequential (the
//! unlinkability invariant), but sessions share nothing — so while one
//! session's hop occupies a worker, the pool runs other sessions' hops.
//! Every pooled outcome is asserted bit-identical to its solo serial run.
//!
//! ```text
//! cargo run --release --example throughput
//! ```

use ppgr::core::{FrameworkParams, GroupRanking, Questionnaire};
use ppgr::group::GroupKind;
use ppgr::runtime::Runtime;
use std::time::Instant;

fn params_for(seed: u64) -> FrameworkParams {
    FrameworkParams::builder(Questionnaire::synthetic(1, 2))
        .participants(4)
        .top_k(2)
        .attr_bits(6)
        .weight_bits(3)
        .mask_bits(6)
        .group(GroupKind::Ecc160)
        .seed(seed)
        .build()
        .expect("valid params")
}

fn main() {
    let sessions = 6;
    let runtime = Runtime::default();
    println!(
        "submitting {sessions} ECC-160 n=4 sessions to a {}-worker pool…",
        runtime.workers()
    );

    // Baseline: the same sessions back-to-back, one at a time.
    let serial_start = Instant::now();
    let solo: Vec<_> = (0..sessions)
        .map(|i| {
            GroupRanking::new(params_for(i))
                .with_random_population()
                .run()
                .expect("solo run")
        })
        .collect();
    let serial = serial_start.elapsed();

    // Pooled: submit everything, then join.
    let pooled_start = Instant::now();
    let handles: Vec<_> = (0..sessions)
        .map(|i| runtime.submit(params_for(i)))
        .collect();
    let pooled: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("pooled run"))
        .collect();
    let elapsed = pooled_start.elapsed();

    for (i, (p, s)) in pooled.iter().zip(&solo).enumerate() {
        assert_eq!(p.ranks(), s.ranks(), "session {i} ranks diverged");
        assert_eq!(p.traffic(), s.traffic(), "session {i} transcript diverged");
        println!("session {i}: ranks {:?} (identical to solo run)", p.ranks());
    }
    let rate = |d: std::time::Duration| sessions as f64 / d.as_secs_f64();
    println!(
        "back-to-back: {serial:.2?} ({:.2} sessions/s) | pooled: {elapsed:.2?} ({:.2} sessions/s)",
        rate(serial),
        rate(elapsed),
    );
    println!("speedup scales with cores; per-session transcripts are scheduling-independent.");
}
