//! The SS-framework baseline in action: Shamir/BGW oblivious sorting
//! (the protocol family the paper compares against), with its cost
//! metrics next to the paper's analytical model.
//!
//! ```text
//! cargo run --release --example ss_baseline
//! ```

use ppgr::smc::sort::{comparator_count, oblivious_sort, SharedRecord};
use ppgr::smc::{cost, SsEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let values = [23u64, 200, 5, 148, 90, 90];
    let n = values.len();
    let l = 8;

    println!(
        "{n} parties sort {l}-bit values with Shamir shares (t = {}):\n",
        (n - 1) / 2
    );
    let mut engine = SsEngine::new(n, (n - 1) / 2, 7)?;
    let field = engine.field().clone();
    let records: Vec<SharedRecord> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| SharedRecord {
            key: engine.input(&field.from_u64(v)),
            payload: engine.input(&field.from_u64(i as u64 + 1)),
        })
        .collect();

    engine.reset_metrics();
    let sorted = oblivious_sort(&mut engine, records, l);

    print!("sorted (opened): ");
    for r in &sorted {
        let v = engine.open(&r.key);
        print!("{v} ");
    }
    println!();

    let m = engine.metrics();
    println!("\nruntime cost of this run:");
    println!("  BGW multiplications : {}", m.multiplications);
    println!("  openings            : {}", m.openings);
    println!("  rounds              : {}", m.rounds);
    println!("  field elements sent : {}", m.field_elements_sent);

    println!("\nthe paper's analytical model at the same shape:");
    println!(
        "  comparator count (Batcher, n={n}): {}",
        comparator_count(n)
    );
    println!(
        "  Nishide–Ohta mult invocations per {l}-bit comparison: {}",
        cost::no07_mults_per_comparison(l)
    );
    println!(
        "  SS framework per-party integer mults at paper scale (n=25, l=52): {}",
        cost::ss_sort_int_mults(25, 52)
    );
    println!(
        "  versus ours (group mults, n=25, l=52, λ=160): {}",
        cost::framework_group_mults(25, 52, 160)
    );
    Ok(())
}
