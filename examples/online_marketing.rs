//! The paper's motivating scenario (Sec. I): a health-and-nutrition
//! company recruits trial-program participants from an online community
//! without seeing the losers' private data.
//!
//! ```text
//! cargo run --release --example online_marketing
//! ```

use ppgr::core::{
    AttributeKind, CriterionVector, FrameworkParams, GroupRanking, InfoVector, InitiatorProfile,
    Questionnaire, WeightVector,
};
use ppgr::group::GroupKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Questionnaire: the company wants people *around* age 45 with blood
    // pressure *around* 120, and values many friends / high income
    // (influence on the target demographic).
    let q = Questionnaire::builder()
        .attribute("age", AttributeKind::EqualTo)
        .attribute("blood_pressure", AttributeKind::EqualTo)
        .attribute("friends", AttributeKind::GreaterThan)
        .attribute("income_k", AttributeKind::GreaterThan)
        .build()?;

    // The company's private criterion and weights. Canonical attribute
    // order is: [age, blood_pressure, friends, income_k].
    let profile = InitiatorProfile {
        criterion: CriterionVector::new(&q, vec![45, 120, 0, 0], 9)?,
        weights: WeightVector::new(&q, vec![5, 3, 2, 4], 3)?,
    };

    // Six community members and their private answers.
    let people = [
        ("alice", [44u64, 118, 210, 95]),
        ("bob", [67, 150, 40, 120]),
        ("carol", [46, 121, 180, 60]),
        ("dave", [30, 115, 350, 45]),
        ("erin", [45, 125, 90, 80]),
        ("frank", [52, 135, 150, 110]),
    ];
    let infos: Vec<InfoVector> = people
        .iter()
        .map(|(_, vals)| InfoVector::new(&q, vals.to_vec(), 9))
        .collect::<Result<_, _>>()?;

    let params = FrameworkParams::builder(q)
        .participants(people.len())
        .top_k(2)
        .attr_bits(9)
        .weight_bits(3)
        .mask_bits(8)
        .group(GroupKind::Ecc160)
        .seed(7)
        .build()?;

    println!(
        "privacy-preserving trial-candidate selection: n={}, k={}, l={} bits\n",
        params.participants(),
        params.top_k(),
        params.beta_bits()
    );

    let outcome = GroupRanking::new(params)
        .with_population(profile, infos)?
        .run()?;

    println!("every member learned only her own rank:");
    for ((name, _), rank) in people.iter().zip(outcome.ranks()) {
        println!("  {name:>6} → rank {rank}");
    }

    println!("\nthe company sees only the winners (verified submissions):");
    for acc in outcome.top_k() {
        let (name, vals) = people[acc.submission.party - 1];
        println!(
            "  {name} (rank {}): age={}, bp={}, friends={}, income={}k — gain {}",
            acc.submission.claimed_rank, vals[0], vals[1], vals[2], vals[3], acc.gain
        );
    }

    println!(
        "\nnobody else's answers ever left their machine in the clear; \
         {} encrypted messages crossed the wire.",
        outcome.traffic().messages
    );
    Ok(())
}
