//! Business-OSN recruiting (paper Sec. I): an employer screens candidates
//! for a physically demanding position with a sensitive health
//! requirement, without collecting health data from rejected candidates.
//!
//! ```text
//! cargo run --release --example recruiting
//! ```

use ppgr::core::{
    AttributeKind, CriterionVector, FrameworkParams, GroupRanking, InfoVector, InitiatorProfile,
    Questionnaire, WeightVector,
};
use ppgr::group::GroupKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let q = Questionnaire::builder()
        .attribute("years_experience", AttributeKind::GreaterThan)
        .attribute("fitness_score", AttributeKind::GreaterThan)
        .attribute("resting_heart_rate", AttributeKind::EqualTo) // around 60 is ideal
        .attribute("commute_km", AttributeKind::EqualTo) // close to the site
        .build()?;

    // Canonical order: equal-to first → [heart_rate, commute, years, fitness].
    let profile = InitiatorProfile {
        criterion: CriterionVector::new(&q, vec![60, 5, 0, 0], 8)?,
        weights: WeightVector::new(&q, vec![6, 2, 5, 7], 3)?,
    };

    let candidates = [
        ("kim", [58u64, 12, 9, 88]),
        ("lee", [71, 3, 15, 70]),
        ("max", [62, 6, 4, 95]),
        ("noa", [60, 40, 11, 82]),
        ("oli", [66, 8, 2, 60]),
    ];
    let infos: Vec<InfoVector> = candidates
        .iter()
        .map(|(_, v)| InfoVector::new(&q, v.to_vec(), 8))
        .collect::<Result<_, _>>()?;

    let params = FrameworkParams::builder(q)
        .participants(candidates.len())
        .top_k(1)
        .attr_bits(8)
        .weight_bits(3)
        .mask_bits(7)
        .group(GroupKind::Ecc160)
        .seed(99)
        .build()?;

    let outcome = GroupRanking::new(params)
        .with_population(profile, infos)?
        .run()?;

    println!("candidates learn only their own standing:");
    for ((name, _), rank) in candidates.iter().zip(outcome.ranks()) {
        println!("  {name}: rank {rank} of {}", candidates.len());
    }

    let winner = &outcome.top_k()[0];
    let (name, _) = candidates[winner.submission.party - 1];
    println!(
        "\nthe employer learns exactly one medical record — the hire's: \
         {name} (verified gain {}).",
        winner.gain
    );
    println!("rejected candidates' heart rates never left their devices.");
    Ok(())
}
