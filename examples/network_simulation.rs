//! Replays a real protocol run's traffic over the paper's NS2-style
//! network (80 nodes, 320 edges, 2 Mbps duplex, 50 ms latency) and
//! contrasts DL vs ECC completion times (the Fig. 3(b) effect).
//!
//! ```text
//! cargo run --release --example network_simulation
//! ```

use ppgr::core::{FrameworkParams, GroupRanking, Questionnaire};
use ppgr::group::GroupKind;
use ppgr::net::sim::NetworkSim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 5;
    println!("running the real protocol (n={n}) in both groups and replaying its traffic…\n");
    for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
        let params = FrameworkParams::builder(Questionnaire::synthetic(1, 2))
            .participants(n)
            .top_k(2)
            .attr_bits(6)
            .weight_bits(3)
            .mask_bits(6)
            .group(kind)
            .seed(5)
            .build()?;
        let runner = GroupRanking::new(params).with_random_population();
        let log = runner.traffic_log();
        let outcome = runner.run()?;

        let sim = NetworkSim::paper_setup(n + 1, 42);
        let report = sim.simulate_log(&log)?;
        println!(
            "{kind}: {} msgs, {:>10} payload bytes → network completion {:.2} s (slowest round {:.2} s)",
            outcome.traffic().messages,
            outcome.traffic().total_bytes,
            report.completion_s,
            report.slowest_round_s,
        );
    }
    println!(
        "\nsame protocol, same rounds — the DL run ships ~6× bigger ciphertexts, \
         so serialization over 2 Mbps links dominates its completion time."
    );
    Ok(())
}
