//! Real concurrency: parties as OS threads exchanging *encoded* messages
//! over the crossbeam mesh — a distributed-key round followed by a
//! joint-decryption chain, byte-faithful end to end.
//!
//! ```text
//! cargo run --release --example threaded_parties
//! ```

use ppgr::elgamal::{Ciphertext, ExpElGamal, JointKey, KeyPair};
use ppgr::group::GroupKind;
use ppgr::net::LocalMesh;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::thread;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    let group = GroupKind::Ecc160.group();
    let handles = LocalMesh::new::<Vec<u8>>(n);
    println!("spawning {n} party threads; P0 encrypts a secret bit under the joint key…");

    let joined: Vec<_> = handles
        .into_iter()
        .map(|h| {
            let group = group.clone();
            thread::spawn(
                move || -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
                    let scheme = ExpElGamal::new(group.clone());
                    let mut rng = StdRng::seed_from_u64(1000 + h.id() as u64);
                    let kp = KeyPair::generate(&group, &mut rng);

                    // Round 1: broadcast our encoded public share, gather theirs.
                    h.broadcast(&group.encode(kp.public_key()))?;
                    let mut shares = vec![kp.public_key().clone()];
                    for (_, bytes) in h.gather()? {
                        shares.push(group.decode(&bytes)?);
                    }
                    let joint = JointKey::combine(&group, &shares);

                    // Round 2: P0 encrypts m = 0 and starts a decryption chain.
                    let me = h.id();
                    if me == 0 {
                        let ct =
                            scheme.encrypt(joint.public_key(), &group.scalar_from_u64(0), &mut rng);
                        let ct = scheme.partial_decrypt(&ct, kp.secret_key());
                        h.send(1, ct.encode(&group))?;
                        Ok(())
                    } else {
                        let bytes = h.recv_from(me - 1)?;
                        let (a, b) = bytes.split_at(group.element_len());
                        let ct = Ciphertext {
                            alpha: group.decode(a)?,
                            beta: group.decode(b)?,
                        };
                        let ct = scheme.partial_decrypt(&ct, kp.secret_key());
                        if me + 1 < h.parties() {
                            h.send(me + 1, ct.encode(&group))?;
                        } else {
                            // Last hop: after all n partial decryptions the
                            // plaintext is exposed as g^m.
                            let is_zero = group.is_identity(&ct.alpha);
                            println!("P{me}: chain finished — decrypted bit is zero? {is_zero}");
                            assert!(is_zero);
                        }
                        Ok(())
                    }
                },
            )
        })
        .collect();

    for j in joined {
        j.join()
            .expect("thread panicked")
            .map_err(|e| e.to_string())?;
    }
    println!(
        "all threads joined cleanly; every byte crossed a channel encoded and was re-decoded."
    );
    Ok(())
}
