//! Quickstart: rank 5 participants privately, pick the top 2.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ppgr::core::{AttributeKind, FrameworkParams, GroupRanking, Questionnaire};
use ppgr::group::GroupKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The initiator publishes a questionnaire: one "equal to" attribute
    // (age — closer is better) and one "greater than" (friends — more is
    // better).
    let questionnaire = Questionnaire::builder()
        .attribute("age", AttributeKind::EqualTo)
        .attribute("friends", AttributeKind::GreaterThan)
        .build()?;

    let params = FrameworkParams::builder(questionnaire)
        .participants(5)
        .top_k(2)
        .group(GroupKind::Ecc160)
        .attr_bits(7) // small demo widths keep the run fast
        .weight_bits(3)
        .mask_bits(7)
        .seed(2026)
        .build()?;

    println!(
        "running the framework: n={}, k={}, group={}, l={} bits",
        params.participants(),
        params.top_k(),
        params.group(),
        params.beta_bits()
    );

    let outcome = GroupRanking::new(params).with_random_population().run()?;

    println!("\neach participant privately learned her own rank:");
    for (idx, rank) in outcome.ranks().iter().enumerate() {
        println!("  P{} → rank {rank}", idx + 1);
    }

    println!("\nthe initiator received (and verified) the top-k submissions:");
    for acc in outcome.top_k() {
        println!(
            "  P{} claimed rank {} — recomputed gain {}",
            acc.submission.party, acc.submission.claimed_rank, acc.gain
        );
    }

    let t = outcome.traffic();
    println!(
        "\ntraffic: {} messages, {} bytes over {} rounds",
        t.messages, t.total_bytes, t.rounds
    );
    println!(
        "mean participant compute: {:?} (gain {:?} + sort {:?})",
        outcome.timings().mean_participant_total(),
        outcome.timings().gain,
        outcome.timings().sort
    );
    Ok(())
}
