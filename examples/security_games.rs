//! Runs the security-game harness and shows each protection doing its
//! job: the attack wins when the mechanism is disabled and collapses to
//! chance when it is enabled.
//!
//! ```text
//! cargo run --release --example security_games
//! ```

use ppgr::core::games;
use ppgr::group::GroupKind;

fn main() {
    let group = GroupKind::Ecc160.group();
    let l = 6;

    println!("identity-linking attack (Definition 7):");
    let broken = games::unlinkability_attack(&group, l, 10, false, 1);
    let honest = games::unlinkability_attack(&group, l, 20, true, 2);
    println!(
        "  shuffle OFF → adversary links identity with accuracy {:.2}",
        broken.accuracy()
    );
    println!(
        "  shuffle ON  → accuracy {:.2} (coin flip)",
        honest.accuracy()
    );

    println!("\nτ-value recovery (gain leakage, Lemma 3's mechanism):");
    let leak = games::value_recovery_rate(&group, l, false, 3);
    let safe = games::value_recovery_rate(&group, l, true, 4);
    println!(
        "  randomization OFF → {:.0}% of τ values brute-forced",
        leak * 100.0
    );
    println!("  randomization ON  → {:.0}% recovered", safe * 100.0);

    println!("\nIND-CPA bit guessing on the bitwise encryption (Lemma 2):");
    let keyless = games::indcpa_statistic_advantage(&group, 200, false, 5);
    let keyed = games::indcpa_statistic_advantage(&group, 40, true, 6);
    println!("  keyless statistic advantage: {keyless:.3} (≈ 0)");
    println!("  keyed positive control:      {keyed:.3} (= 1)");

    println!("\ngain-hiding interval invariance (Definition 5):");
    let inv = games::interval_invariance_holds(&group, l, 7);
    println!("  colluder view identical for same-interval honest gains: {inv}");
}
