//! Secure comparison on shared `l`-bit integers.
//!
//! Constant-rounds masked comparison in the style of Nishide–Ohta /
//! Damgård et al.: to compare `[a] ≥ [b]`, form `[d] = 2^l + [a] − [b]`,
//! mask it with a bitwise-known random `[r]`, open `e = d + r`, and
//! recover bit `l` of `d` from the public `e` and the shared bits of `r`
//! with a linear-round prefix-OR circuit. The opened value is
//! statistically hidden with security `κ =` [`STATISTICAL_SECURITY`].
//!
//! This is the comparison primitive that powers the runnable SS-framework
//! baseline; the *analytical* cost model in [`crate::cost`] charges the
//! paper's published Nishide–Ohta counts instead (see DESIGN.md §3).

use crate::engine::{Shared, SsEngine};
use ppgr_bigint::BigUint;

/// Statistical hiding parameter `κ` for masked openings.
pub const STATISTICAL_SECURITY: usize = 40;

/// Generates `count` shared random bits.
pub fn random_bits(engine: &mut SsEngine, count: usize) -> Vec<Shared> {
    (0..count).map(|_| engine.random_bit()).collect()
}

/// Bitwise less-than `[e < r]` between a *public* value `e` and a shared
/// value given by its bits `[r_i]` (LSB first).
///
/// Uses a sequential prefix-OR over the XOR bits; the XOR with a public
/// bit and the final selection are both linear, so the cost is exactly
/// `len − 1` multiplications.
pub fn bitwise_lt_public(engine: &mut SsEngine, e: &BigUint, r_bits: &[Shared]) -> Shared {
    let field = engine.field().clone();
    let len = r_bits.len();
    // x_i = e_i XOR r_i, linear because e_i is public.
    let xor_bits: Vec<Shared> = (0..len)
        .map(|i| {
            if e.bit(i) {
                // 1 - r_i
                let neg = engine.mul_public(&r_bits[i], &(-field.one()));
                engine.add_public(&neg, &field.one())
            } else {
                r_bits[i].clone()
            }
        })
        .collect();
    // Prefix OR from the MSB: s_i = OR(x_{len-1} … x_i).
    let mut prefix: Vec<Shared> = vec![engine.constant_u64(0); len + 1];
    for i in (0..len).rev() {
        // s_i = s_{i+1} + x_i − s_{i+1}·x_i
        let prod = engine.mul(&prefix[i + 1], &xor_bits[i]);
        let sum = engine.add(&prefix[i + 1], &xor_bits[i]);
        prefix[i] = engine.sub(&sum, &prod);
    }
    // f_i = s_i − s_{i+1} marks the most significant differing bit;
    // e < r exactly when the differing bit of e is 0: Σ_{e_i=0} f_i.
    let mut result = engine.constant_u64(0);
    for i in 0..len {
        if !e.bit(i) {
            let f_i = engine.sub(&prefix[i], &prefix[i + 1]);
            result = engine.add(&result, &f_i);
        }
    }
    result
}

/// Secure comparison `[a ≥ b]` for shared values known to be `< 2^l`.
///
/// Returns a sharing of the indicator bit.
///
/// # Panics
///
/// Panics if the field is too small for the masked opening
/// (`l + κ + 2` bits required).
pub fn cmp_ge(engine: &mut SsEngine, a: &Shared, b: &Shared, l: usize) -> Shared {
    let field = engine.field().clone();
    assert!(
        l + STATISTICAL_SECURITY + 2 < field.bits(),
        "field too small for masked comparison at l = {l}"
    );
    // d = 2^l + a − b ∈ (0, 2^{l+1});   d ≥ 2^l ⇔ a ≥ b.
    let two_l = field.element(BigUint::power_of_two(l));
    let d = engine.add_public(&engine.sub(a, b), &two_l);

    // Bitwise-known random mask r of l + κ + 1 bits.
    let mask_bits = l + STATISTICAL_SECURITY + 1;
    let r_bits = random_bits(engine, mask_bits);
    let mut r = engine.constant_u64(0);
    for (i, bit) in r_bits.iter().enumerate() {
        let scaled = engine.mul_public(bit, &field.element(BigUint::power_of_two(i)));
        r = engine.add(&r, &scaled);
    }

    // Open e = d + r; statistically hides d.
    let e = engine.open(&engine.add(&d, &r));
    let e_int = e.value().clone();

    // u = [e mod 2^l < r mod 2^l]  (borrow bit of the low-l subtraction).
    let e_low = &e_int % &BigUint::power_of_two(l);
    let u = bitwise_lt_public(engine, &e_low, &r_bits[..l]);

    // [d mod 2^l] = e_low − [r mod 2^l] + 2^l·[u]
    let mut r_low = engine.constant_u64(0);
    for (i, bit) in r_bits[..l].iter().enumerate() {
        let scaled = engine.mul_public(bit, &field.element(BigUint::power_of_two(i)));
        r_low = engine.add(&r_low, &scaled);
    }
    let d_low = {
        let t = engine.sub(&engine.constant(&field.element(e_low)), &r_low);
        let shifted_u = engine.mul_public(&u, &two_l);
        engine.add(&t, &shifted_u)
    };

    // [a ≥ b] = ([d] − [d mod 2^l]) / 2^l  ∈ {0, 1}.
    let diff = engine.sub(&d, &d_low);
    // tidy:allow(panic) — 2^l is nonzero in the odd prime field, so it is always invertible
    let inv_2l = two_l.inv().expect("2^l invertible");
    engine.mul_public(&diff, &inv_2l)
}

/// Secure strict comparison `[a < b]` (complement of [`cmp_ge`]).
pub fn cmp_lt(engine: &mut SsEngine, a: &Shared, b: &Shared, l: usize) -> Shared {
    let field = engine.field().clone();
    let ge = cmp_ge(engine, a, b, l);
    let neg = engine.mul_public(&ge, &(-field.one()));
    engine.add_public(&neg, &field.one())
}

/// Secure equality `[a = b]` via two comparisons (`a ≥ b ∧ b ≥ a`).
pub fn cmp_eq(engine: &mut SsEngine, a: &Shared, b: &Shared, l: usize) -> Shared {
    let ge = cmp_ge(engine, a, b, l);
    let le = cmp_ge(engine, b, a, l);
    engine.mul(&ge, &le)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SsEngine {
        SsEngine::new(5, 2, 7).unwrap()
    }

    fn check_ge(e: &mut SsEngine, a: u64, b: u64, l: usize) {
        let f = e.field().clone();
        let sa = e.input(&f.from_u64(a));
        let sb = e.input(&f.from_u64(b));
        let c = cmp_ge(e, &sa, &sb, l);
        let expect = if a >= b { f.one() } else { f.zero() };
        assert_eq!(e.open(&c), expect, "a={a} b={b} l={l}");
    }

    #[test]
    fn comparison_small_exhaustive() {
        let mut e = engine();
        for a in 0..8u64 {
            for b in 0..8u64 {
                check_ge(&mut e, a, b, 3);
            }
        }
    }

    #[test]
    fn comparison_boundary_values() {
        let mut e = engine();
        let l = 16;
        let max = (1u64 << l) - 1;
        for (a, b) in [
            (0, 0),
            (0, max),
            (max, 0),
            (max, max),
            (max / 2, max / 2 + 1),
        ] {
            check_ge(&mut e, a, b, l);
        }
    }

    #[test]
    fn comparison_wide_values() {
        let mut e = engine();
        check_ge(&mut e, 0xdead_beef, 0xcafe_babe, 32);
        check_ge(&mut e, 0xcafe_babe, 0xdead_beef, 32);
        check_ge(&mut e, (1 << 52) - 1, 1 << 51, 53);
    }

    #[test]
    fn lt_and_eq() {
        let mut e = engine();
        let f = e.field().clone();
        let a = e.input(&f.from_u64(9));
        let b = e.input(&f.from_u64(12));
        let lt = cmp_lt(&mut e, &a, &b, 5);
        assert_eq!(e.open(&lt), f.one());
        let eq = cmp_eq(&mut e, &a, &b, 5);
        assert_eq!(e.open(&eq), f.zero());
        let a2 = e.input(&f.from_u64(9));
        let eq2 = cmp_eq(&mut e, &a, &a2, 5);
        assert_eq!(e.open(&eq2), f.one());
    }

    #[test]
    fn bitwise_lt_public_matches_integer_lt() {
        let mut e = engine();
        let f = e.field().clone();
        for r in [0u64, 1, 7, 8, 12, 15] {
            // Share the bits of r.
            let bits: Vec<Shared> = (0..4).map(|i| e.input(&f.from_u64(r >> i & 1))).collect();
            for pubv in [0u64, 3, 7, 11, 12, 15] {
                let lt = bitwise_lt_public(&mut e, &BigUint::from(pubv), &bits);
                let expect = if pubv < r { f.one() } else { f.zero() };
                assert_eq!(e.open(&lt), expect, "pub={pubv} r={r}");
            }
        }
    }

    #[test]
    fn comparison_cost_scales_with_l() {
        let mut e = engine();
        let f = e.field().clone();
        let a = e.input(&f.from_u64(5));
        let b = e.input(&f.from_u64(3));
        e.reset_metrics();
        let _ = cmp_ge(&mut e, &a, &b, 8);
        let m8 = e.metrics().multiplications;
        e.reset_metrics();
        let _ = cmp_ge(&mut e, &a, &b, 32);
        let m32 = e.metrics().multiplications;
        assert!(m32 > m8, "larger l must cost more mults ({m8} vs {m32})");
    }
}
