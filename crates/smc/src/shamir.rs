//! Shamir `(t, n)` secret sharing over a prime field.
//!
//! A secret `s` is hidden as the constant term of a random degree-`t`
//! polynomial; party `i` (1-indexed) receives `f(i)`. Any `t+1` shares
//! reconstruct; `t` or fewer reveal nothing.

use ppgr_bigint::{Fp, FpCtx};
use rand::Rng;
use std::sync::Arc;

/// One party's share: the evaluation point index and the field value.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Share {
    /// 1-based evaluation point (`x = index`).
    pub index: u64,
    /// `f(index)`.
    pub value: Fp,
}

/// Splits `secret` into `n` shares with threshold degree `t`
/// (reconstruction needs `t+1` shares).
///
/// # Panics
///
/// Panics if `t >= n` or `n == 0`.
pub fn share_secret<R: Rng + ?Sized>(
    field: &Arc<FpCtx>,
    secret: &Fp,
    t: usize,
    n: usize,
    rng: &mut R,
) -> Vec<Share> {
    assert!(n > 0 && t < n, "need 0 <= t < n");
    // f(x) = secret + a_1 x + … + a_t x^t
    let coeffs: Vec<Fp> = (0..t).map(|_| field.random(rng)).collect();
    (1..=n as u64)
        .map(|i| {
            let x = field.from_u64(i);
            // Horner from the top coefficient down to the secret.
            let mut acc = field.zero();
            for c in coeffs.iter().rev() {
                acc = &(&acc * &x) + c;
            }
            acc = &(&acc * &x) + secret;
            Share {
                index: i,
                value: acc,
            }
        })
        .collect()
}

/// Lagrange coefficients at `x = 0` for the given evaluation points.
///
/// Returns `None` if points are duplicated or zero (invalid share sets).
pub fn lagrange_at_zero(field: &Arc<FpCtx>, points: &[u64]) -> Option<Vec<Fp>> {
    for (a, &pa) in points.iter().enumerate() {
        if pa == 0 {
            return None;
        }
        if points[a + 1..].contains(&pa) {
            return None;
        }
    }
    points
        .iter()
        .map(|&i| {
            let xi = field.from_u64(i);
            let mut num = field.one();
            let mut den = field.one();
            for &j in points {
                if j == i {
                    continue;
                }
                let xj = field.from_u64(j);
                num = &num * &(-&xj);
                den = &den * &(&xi - &xj);
            }
            den.inv().map(|d| &num * &d)
        })
        .collect()
}

/// Reconstructs the secret from at least `t+1` shares.
///
/// Returns `None` on malformed share sets (duplicates, zero indices).
pub fn reconstruct(field: &Arc<FpCtx>, shares: &[Share]) -> Option<Fp> {
    let points: Vec<u64> = shares.iter().map(|s| s.index).collect();
    let lambdas = lagrange_at_zero(field, &points)?;
    let mut acc = field.zero();
    for (share, lambda) in shares.iter().zip(&lambdas) {
        acc = &acc + &(&share.value * lambda);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgr_bigint::BigUint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn field() -> Arc<FpCtx> {
        FpCtx::new(
            BigUint::power_of_two(127)
                .checked_sub(&BigUint::one())
                .unwrap(),
        )
    }

    #[test]
    fn share_and_reconstruct() {
        let f = field();
        let mut rng = StdRng::seed_from_u64(1);
        let secret = f.from_u64(123_456_789);
        for (t, n) in [(1usize, 3usize), (2, 5), (3, 7), (0, 1)] {
            let shares = share_secret(&f, &secret, t, n, &mut rng);
            assert_eq!(shares.len(), n);
            assert_eq!(
                reconstruct(&f, &shares[..t + 1]).unwrap(),
                secret,
                "t={t} n={n}"
            );
            assert_eq!(reconstruct(&f, &shares).unwrap(), secret);
        }
    }

    #[test]
    fn any_subset_of_t_plus_1_works() {
        let f = field();
        let mut rng = StdRng::seed_from_u64(2);
        let secret = f.from_u64(42);
        let shares = share_secret(&f, &secret, 2, 6, &mut rng);
        for subset in [[0usize, 1, 2], [3, 4, 5], [0, 2, 4], [1, 3, 5]] {
            let picked: Vec<Share> = subset.iter().map(|&i| shares[i].clone()).collect();
            assert_eq!(reconstruct(&f, &picked).unwrap(), secret);
        }
    }

    #[test]
    fn t_shares_do_not_determine_secret() {
        // With t shares, every candidate secret is consistent: interpolating
        // t points plus a guessed secret at 0 always fits a degree-t poly.
        // Spot-check: two different secrets can produce identical first-t
        // share *distributions* — here we just verify reconstruction from
        // too few shares gives the wrong answer almost surely.
        let f = field();
        let mut rng = StdRng::seed_from_u64(3);
        let secret = f.from_u64(999);
        let shares = share_secret(&f, &secret, 3, 7, &mut rng);
        let few = reconstruct(&f, &shares[..3]).unwrap();
        assert_ne!(few, secret, "3 shares must not reconstruct a t=3 sharing");
    }

    #[test]
    fn linearity_of_shares() {
        let f = field();
        let mut rng = StdRng::seed_from_u64(4);
        let a = f.from_u64(100);
        let b = f.from_u64(23);
        let sa = share_secret(&f, &a, 2, 5, &mut rng);
        let sb = share_secret(&f, &b, 2, 5, &mut rng);
        let sum: Vec<Share> = sa
            .iter()
            .zip(&sb)
            .map(|(x, y)| Share {
                index: x.index,
                value: &x.value + &y.value,
            })
            .collect();
        assert_eq!(reconstruct(&f, &sum).unwrap(), f.from_u64(123));
    }

    #[test]
    fn malformed_sets_rejected() {
        let f = field();
        let dup = vec![
            Share {
                index: 1,
                value: f.one(),
            },
            Share {
                index: 1,
                value: f.zero(),
            },
        ];
        assert!(reconstruct(&f, &dup).is_none());
        let zero_idx = vec![Share {
            index: 0,
            value: f.one(),
        }];
        assert!(reconstruct(&f, &zero_idx).is_none());
    }

    #[test]
    #[should_panic(expected = "need 0 <= t < n")]
    fn invalid_threshold_panics() {
        let f = field();
        let mut rng = StdRng::seed_from_u64(5);
        let _ = share_secret(&f, &f.one(), 3, 3, &mut rng);
    }
}
