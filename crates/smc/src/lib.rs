//! The secret-sharing baseline ("SS framework") the paper compares against.
//!
//! The paper's evaluation pits its ElGamal-based framework against a
//! Shamir-secret-sharing stack: Nishide–Ohta-style comparison primitives
//! embedded in Jónsson et al.'s sorting network. This crate provides that
//! baseline twice over:
//!
//! * a **runnable** implementation — [`SsEngine`] simulates `n` parties
//!   holding Shamir shares and executes BGW multiplication with
//!   Gennaro–Rabin–Rabin degree reduction, joint coin flipping, shared
//!   random bits, a constant-rounds masked comparison, and a Batcher
//!   odd-even merge-sort network ([`sort`]) — used for correctness tests
//!   and small-`n` timing;
//! * an **analytical cost model** ([`cost`]) charging the paper's published
//!   counts (`279l+5` multiplication invocations per `l`-bit comparison,
//!   `O(n (log n)²)` comparisons for the sorting network, `O(n·t·log n)`
//!   integer multiplications per BGW multiplication) — used to regenerate
//!   the SS curves of Fig. 2/3 at the paper's scales.
//!
//! # Example
//!
//! ```
//! use ppgr_smc::sort::ss_group_rank;
//!
//! // 5 parties rank their private 8-bit values without revealing them.
//! let values = vec![17u64, 250, 3, 17, 99];
//! let ranks = ss_group_rank(&values, 8, 7).expect("valid parameters");
//! // Non-increasing rank order: 250 first, 3 last.
//! assert_eq!(ranks[1], 1);
//! assert_eq!(ranks[2], 5);
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod compare;
pub mod cost;
mod engine;
mod shamir;
pub mod sort;

pub use engine::{Shared, SsEngine, SsError, SsMetrics};
pub use shamir::{reconstruct, share_secret, Share};
