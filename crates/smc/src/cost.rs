//! Analytical cost models for the SS framework (paper Secs. II & VI-B).
//!
//! The paper quantifies the baseline not by running Nishide–Ohta in full
//! but by its published operation counts. This module encodes those
//! formulas so the benchmark harness can regenerate the SS curves of
//! Fig. 2 and Fig. 3 at the paper's scales, calibrated against a measured
//! per-field-multiplication cost from the runnable engine.

/// Multiplication-protocol invocations for one `l`-bit Nishide–Ohta
/// comparison: `279·l + 5` (paper Sec. II, citing PKC'07).
pub fn no07_mults_per_comparison(l: usize) -> u64 {
    279 * l as u64 + 5
}

/// Comparisons used by the Jónsson et al. sorting network for `n` inputs:
/// `n · ⌈log₂ n⌉²` (paper Sec. II: "O(n (log n)²) invocations").
pub fn jonsson_comparisons(n: usize) -> u64 {
    let log = (usize::BITS - n.max(1).leading_zeros()) as u64; // ⌈log₂ n⌉ + 1-ish
    let log = if n.is_power_of_two() { log - 1 } else { log };
    n as u64 * log * log
}

/// Integer multiplications a single party performs per BGW multiplication
/// with `t` colluders tolerated among `n` parties: `n · t · ⌈log₂ n⌉`
/// (paper Sec. VI-B, citing GRR98 / DFK+06).
pub fn bgw_int_mults_per_mult(n: usize, t: usize) -> u64 {
    let log = (usize::BITS - n.max(2).leading_zeros()) as u64;
    (n as u64) * (t as u64) * log
}

/// Per-party integer multiplications to sort `n` values of `l` bits with
/// the maximal threshold `t = ⌊n/2⌋` (the paper's resilience setting):
/// `O(l·n³·(log n)³)` overall.
pub fn ss_sort_int_mults(n: usize, l: usize) -> u64 {
    let t = n / 2;
    jonsson_comparisons(n) * no07_mults_per_comparison(l) * bgw_int_mults_per_mult(n, t)
        / (n as u64).max(1) // per-party share of the joint work
}

/// Communication rounds of the SS sorting protocol:
/// at least one round per multiplication invocation along the network's
/// critical path — `(279l+5) · n · (log n)²` in the paper's accounting.
pub fn ss_sort_rounds(n: usize, l: usize) -> u64 {
    jonsson_comparisons(n) * no07_mults_per_comparison(l)
}

/// Rounds of the paper's framework: `O(n)` — the shuffle-decrypt chain
/// dominates with exactly `n` sequential hops plus a constant number of
/// broadcast rounds (key setup, proof, publication, collection, return).
pub fn framework_rounds(n: usize) -> u64 {
    n as u64 + 5
}

/// Group multiplications per participant in the paper's framework
/// (Sec. VI-B): `O(l²·n + l·n²·λ)` — `l²n` from the comparison circuit and
/// `l·n²·λ` from the shuffle-decrypt exponentiations (`λ` = group-order
/// bits ≈ exponentiation cost in multiplications).
pub fn framework_group_mults(n: usize, l: usize, lambda: usize) -> u64 {
    let (n, l, lambda) = (n as u64, l as u64, lambda as u64);
    l * l * n + l * n * n * lambda
}

/// Bits a participant transmits in the comparison phase
/// (Sec. VI-B): `O(l·S_c·n²)` where `S_c` is the ciphertext bit-length.
pub fn framework_comm_bits(n: usize, l: usize, ciphertext_bits: usize) -> u64 {
    let (n, l, sc) = (n as u64, l as u64, ciphertext_bits as u64);
    l * sc + l * sc * (n + 1) * n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no07_formula() {
        assert_eq!(no07_mults_per_comparison(1), 284);
        assert_eq!(no07_mults_per_comparison(32), 279 * 32 + 5);
    }

    #[test]
    fn jonsson_grows_n_log2() {
        assert_eq!(jonsson_comparisons(8), 8 * 9);
        assert_eq!(jonsson_comparisons(16), 16 * 16);
        // Monotone in n.
        let mut prev = 0;
        for n in [4usize, 8, 16, 32, 64] {
            let c = jonsson_comparisons(n);
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn ss_cost_dominates_framework_cost_at_scale() {
        // The crossover the paper reports: for moderate n the SS baseline's
        // multiplication count exceeds the framework's.
        let l = 52;
        let lambda = 160;
        for n in [25usize, 45, 70] {
            assert!(
                ss_sort_int_mults(n, l) > framework_group_mults(n, l, lambda),
                "SS should be costlier at n = {n}"
            );
        }
    }

    #[test]
    fn round_counts_linear_vs_superlinear() {
        // Framework rounds are linear; SS rounds grow drastically faster.
        assert_eq!(framework_rounds(25), 30);
        assert!(ss_sort_rounds(25, 52) > 100 * framework_rounds(25));
    }

    #[test]
    fn comm_bits_quadratic_in_n() {
        let a = framework_comm_bits(10, 52, 336);
        let b = framework_comm_bits(20, 52, 336);
        let ratio = b as f64 / a as f64;
        assert!((3.0..5.0).contains(&ratio), "≈4x expected, got {ratio}");
    }
}
