//! A synchronous `n`-party Shamir/BGW execution engine.
//!
//! The engine holds every party's share of every live secret and executes
//! the protocol in lockstep, which is the standard way to test MPC
//! arithmetic without real networking. All communication a real deployment
//! would perform is *accounted* in [`SsMetrics`] (share distributions,
//! openings, multiplication resharings, rounds) so the benchmark harness
//! can charge honest traffic numbers to the SS baseline.

use crate::shamir::{lagrange_at_zero, share_secret};
use ppgr_bigint::{modular, BigUint, Fp, FpCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Error type for engine operations.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum SsError {
    /// `n`, `t` violate `n ≥ 2t + 1` (BGW degree reduction needs it).
    BadThreshold {
        /// Parties.
        n: usize,
        /// Corruption threshold.
        t: usize,
    },
    /// An opened value was expected to be a bit/bounded but was not —
    /// indicates mixing shares from different engines.
    Corrupt(&'static str),
}

impl fmt::Display for SsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsError::BadThreshold { n, t } => {
                write!(f, "invalid threshold: need n >= 2t+1, got n={n}, t={t}")
            }
            SsError::Corrupt(what) => write!(f, "inconsistent share state: {what}"),
        }
    }
}

impl Error for SsError {}

/// A secret shared among the engine's parties (degree ≤ t polynomial).
#[derive(Clone, Debug)]
pub struct Shared {
    /// Share of party `i` at index `i` (evaluation point `i+1`).
    pub(crate) shares: Vec<Fp>,
}

/// Communication/computation accounting for a protocol run.
#[derive(Clone, Debug, Default, Eq, PartialEq)]
pub struct SsMetrics {
    /// BGW multiplications executed.
    pub multiplications: u64,
    /// Secrets opened (each costs one all-to-all round).
    pub openings: u64,
    /// Fresh sharings distributed (input sharing + resharing).
    pub sharings: u64,
    /// Communication rounds (sequential message exchanges).
    pub rounds: u64,
    /// Field elements sent point-to-point, in total across all parties.
    pub field_elements_sent: u64,
}

/// The synchronous engine: `n` parties, corruption threshold `t`,
/// `n ≥ 2t+1`.
#[derive(Debug)]
pub struct SsEngine {
    field: Arc<FpCtx>,
    n: usize,
    t: usize,
    rng: StdRng,
    lagrange_full: Vec<Fp>,
    metrics: SsMetrics,
}

impl SsEngine {
    /// Creates an engine over the default 256-bit field.
    ///
    /// # Errors
    ///
    /// Returns [`SsError::BadThreshold`] unless `n ≥ 2t + 1`.
    pub fn new(n: usize, t: usize, seed: u64) -> Result<Self, SsError> {
        let prime = BigUint::from_hex_str(
            "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff43",
        )
        // tidy:allow(panic) — parses a vetted compile-time prime constant; exercised by every test
        .expect("vetted constant");
        Self::with_field(FpCtx::new(prime), n, t, seed)
    }

    /// Creates an engine over a caller-supplied field.
    ///
    /// # Errors
    ///
    /// Returns [`SsError::BadThreshold`] unless `n ≥ 2t + 1`.
    pub fn with_field(field: Arc<FpCtx>, n: usize, t: usize, seed: u64) -> Result<Self, SsError> {
        if n < 2 * t + 1 {
            return Err(SsError::BadThreshold { n, t });
        }
        let points: Vec<u64> = (1..=n as u64).collect();
        // tidy:allow(panic) — evaluation points 1..=n are distinct and nonzero by construction
        let lagrange_full = lagrange_at_zero(&field, &points).expect("distinct nonzero points");
        Ok(SsEngine {
            field,
            n,
            t,
            rng: StdRng::seed_from_u64(seed),
            lagrange_full,
            metrics: SsMetrics::default(),
        })
    }

    /// The underlying field.
    pub fn field(&self) -> &Arc<FpCtx> {
        &self.field
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.n
    }

    /// Corruption threshold `t`.
    pub fn threshold(&self) -> usize {
        self.t
    }

    /// Accumulated cost metrics.
    pub fn metrics(&self) -> &SsMetrics {
        &self.metrics
    }

    /// Resets the metric counters (e.g. between benchmark phases).
    pub fn reset_metrics(&mut self) {
        self.metrics = SsMetrics::default();
    }

    /// A party contributes `secret` as a fresh sharing (one round: the
    /// dealer sends one share to each other party).
    pub fn input(&mut self, secret: &Fp) -> Shared {
        let shares = share_secret(&self.field, secret, self.t, self.n, &mut self.rng);
        self.metrics.sharings += 1;
        self.metrics.rounds += 1;
        self.metrics.field_elements_sent += self.n as u64 - 1;
        Shared {
            shares: shares.into_iter().map(|s| s.value).collect(),
        }
    }

    /// Shares a public constant (no communication: the constant polynomial).
    pub fn constant(&self, value: &Fp) -> Shared {
        Shared {
            shares: vec![value.clone(); self.n],
        }
    }

    /// Embeds a public `u64` constant.
    pub fn constant_u64(&self, value: u64) -> Shared {
        self.constant(&self.field.from_u64(value))
    }

    /// `[a] + [b]` — local, free.
    pub fn add(&self, a: &Shared, b: &Shared) -> Shared {
        Shared {
            shares: a.shares.iter().zip(&b.shares).map(|(x, y)| x + y).collect(),
        }
    }

    /// `[a] − [b]` — local, free.
    pub fn sub(&self, a: &Shared, b: &Shared) -> Shared {
        Shared {
            shares: a.shares.iter().zip(&b.shares).map(|(x, y)| x - y).collect(),
        }
    }

    /// `[a] + c` for public `c` — local, free.
    pub fn add_public(&self, a: &Shared, c: &Fp) -> Shared {
        Shared {
            shares: a.shares.iter().map(|x| x + c).collect(),
        }
    }

    /// `c·[a]` for public `c` — local, free.
    pub fn mul_public(&self, a: &Shared, c: &Fp) -> Shared {
        Shared {
            shares: a.shares.iter().map(|x| x * c).collect(),
        }
    }

    /// BGW multiplication `[a]·[b]` with Gennaro–Rabin–Rabin degree
    /// reduction: each party multiplies locally (degree `2t`), reshares the
    /// product share with degree `t`, and everyone recombines with the
    /// public Lagrange coefficients.
    pub fn mul(&mut self, a: &Shared, b: &Shared) -> Shared {
        // Local products, degree-2t sharing of a·b.
        let products: Vec<Fp> = a.shares.iter().zip(&b.shares).map(|(x, y)| x * y).collect();
        // Each party reshares its product share (degree t).
        let resharings: Vec<Vec<Fp>> = products
            .iter()
            .map(|p| {
                share_secret(&self.field, p, self.t, self.n, &mut self.rng)
                    .into_iter()
                    .map(|s| s.value)
                    .collect()
            })
            .collect();
        // Party j's new share: Σ_i λ_i · subshare_{i→j}.
        let shares: Vec<Fp> = (0..self.n)
            .map(|j| {
                let mut acc = self.field.zero();
                for (i, lambda) in self.lagrange_full.iter().enumerate() {
                    acc = &acc + &(&resharings[i][j] * lambda);
                }
                acc
            })
            .collect();
        self.metrics.multiplications += 1;
        self.metrics.sharings += self.n as u64;
        self.metrics.rounds += 1;
        self.metrics.field_elements_sent += (self.n * (self.n - 1)) as u64;
        Shared { shares }
    }

    /// Opens `[a]` to all parties (all-to-all share broadcast).
    pub fn open(&mut self, a: &Shared) -> Fp {
        self.metrics.openings += 1;
        self.metrics.rounds += 1;
        self.metrics.field_elements_sent += (self.n * (self.n - 1)) as u64;
        let mut acc = self.field.zero();
        for (share, lambda) in a.shares.iter().zip(&self.lagrange_full) {
            acc = &acc + &(share * lambda);
        }
        acc
    }

    /// Joint random shared value: every party contributes a sharing of a
    /// random element; the sum is uniform and unknown to any coalition of
    /// `≤ t` parties.
    pub fn random(&mut self) -> Shared {
        // All n dealer rounds happen in parallel → one round.
        let mut acc = self.constant(&self.field.zero());
        for _ in 0..self.n {
            let r = self.field.random(&mut self.rng);
            let sh = share_secret(&self.field, &r, self.t, self.n, &mut self.rng);
            let shared = Shared {
                shares: sh.into_iter().map(|s| s.value).collect(),
            };
            acc = self.add(&acc, &shared);
        }
        self.metrics.sharings += self.n as u64;
        self.metrics.rounds += 1;
        self.metrics.field_elements_sent += (self.n * (self.n - 1)) as u64;
        acc
    }

    /// Joint random shared *bit* via the `r²` trick: sample `[r]`, open
    /// `c = r²`, retry on zero, and output `(r/√c + 1)/2 ∈ {0, 1}`.
    pub fn random_bit(&mut self) -> Shared {
        loop {
            let r = self.random();
            let r2 = self.mul(&r, &r);
            let c = self.open(&r2);
            if c.is_zero() {
                continue;
            }
            let root = modular::sqrt_mod_prime(c.value(), self.field.modulus())
                // tidy:allow(panic) — c was opened as r² and is nonzero here, so a square root exists
                .expect("square always has a root");
            // Canonical root choice: the even representative, so all parties
            // agree deterministically.
            let root = if root.is_even() {
                root
            } else {
                // tidy:allow(panic) — root is reduced mod p, so p − root cannot underflow
                self.field.modulus().checked_sub(&root).expect("root < p")
            };
            // tidy:allow(panic) — root of a nonzero square is nonzero, hence invertible
            let root_inv = self.field.element(root).inv().expect("nonzero root");
            // b = (r·root⁻¹ + 1) / 2
            let half = self
                .field
                .from_u64(2)
                .inv()
                // tidy:allow(panic) — 2 is invertible in any odd prime field
                .expect("2 invertible in odd field");
            let signed = self.mul_public(&r, &root_inv);
            let shifted = self.add_public(&signed, &self.field.one());
            return self.mul_public(&shifted, &half);
        }
    }

    /// Direct RNG access for protocol-level sampling.
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SsEngine {
        SsEngine::new(7, 3, 42).unwrap()
    }

    #[test]
    fn threshold_validation() {
        assert!(SsEngine::new(7, 3, 1).is_ok());
        assert_eq!(
            SsEngine::new(6, 3, 1).unwrap_err(),
            SsError::BadThreshold { n: 6, t: 3 }
        );
    }

    #[test]
    fn input_open_round_trip() {
        let mut e = engine();
        let secret = e.field().from_u64(777);
        let sh = e.input(&secret);
        assert_eq!(e.open(&sh), secret);
    }

    #[test]
    fn linear_ops() {
        let mut e = engine();
        let f = e.field().clone();
        let a = e.input(&f.from_u64(100));
        let b = e.input(&f.from_u64(30));
        assert_eq!(e.open(&e.add(&a, &b)), f.from_u64(130));
        assert_eq!(e.open(&e.sub(&a, &b)), f.from_u64(70));
        assert_eq!(e.open(&e.add_public(&a, &f.from_u64(5))), f.from_u64(105));
        assert_eq!(e.open(&e.mul_public(&a, &f.from_u64(3))), f.from_u64(300));
        let c = e.constant_u64(9);
        assert_eq!(e.open(&c), f.from_u64(9));
    }

    #[test]
    fn bgw_multiplication() {
        let mut e = engine();
        let f = e.field().clone();
        let a = e.input(&f.from_i128(-12));
        let b = e.input(&f.from_u64(12));
        let ab = e.mul(&a, &b);
        assert_eq!(e.open(&ab).to_i128_centered(), Some(-144));
        assert_eq!(e.metrics().multiplications, 1);
    }

    #[test]
    fn multiplication_chain_keeps_degree_bounded() {
        // Repeated mults would blow up the degree without reduction; ten in
        // a row must still reconstruct from t+1 shares.
        let mut e = engine();
        let f = e.field().clone();
        let two = e.input(&f.from_u64(2));
        let mut acc = e.constant(&f.one());
        for _ in 0..10 {
            acc = e.mul(&acc, &two);
        }
        assert_eq!(e.open(&acc), f.from_u64(1024));
        // Degree check: reconstruct from only t+1 = 4 shares.
        let f4: Vec<u64> = (1..=4).collect();
        let lambdas = crate::shamir::lagrange_at_zero(&f, &f4).unwrap();
        let mut v = f.zero();
        for (i, l) in lambdas.iter().enumerate() {
            v = &v + &(&acc.shares[i] * l);
        }
        assert_eq!(v, f.from_u64(1024));
    }

    #[test]
    fn random_bit_is_binary_and_varies() {
        let mut e = engine();
        let f = e.field().clone();
        let mut seen = [false; 2];
        for _ in 0..20 {
            let b = e.random_bit();
            let v = e.open(&b);
            assert!(v == f.zero() || v == f.one(), "non-binary bit {v:?}");
            seen[if v.is_zero() { 0 } else { 1 }] = true;
        }
        assert!(
            seen[0] && seen[1],
            "both bit values should occur in 20 draws"
        );
    }

    #[test]
    fn random_values_are_uniformish() {
        let mut e = engine();
        let a = e.random();
        let b = e.random();
        assert_ne!(e.open(&a), e.open(&b));
    }

    #[test]
    fn metrics_accumulate() {
        let mut e = engine();
        let f = e.field().clone();
        let a = e.input(&f.one());
        let b = e.input(&f.one());
        let _ = e.mul(&a, &b);
        let _ = e.open(&a);
        let m = e.metrics().clone();
        assert_eq!(m.multiplications, 1);
        assert_eq!(m.openings, 1);
        assert!(m.rounds >= 4);
        assert!(m.field_elements_sent > 0);
        e.reset_metrics();
        assert_eq!(e.metrics(), &SsMetrics::default());
    }
}
