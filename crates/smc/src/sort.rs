//! Oblivious sorting on shared values: a Batcher odd-even merge-sort
//! network with secure compare-exchange, standing in for the Jónsson et
//! al. sorting protocol the paper uses as the SS-framework baseline
//! (same `O(n (log n)²)` comparator asymptotics).

use crate::compare::cmp_lt;
use crate::engine::{Shared, SsEngine, SsError};
use ppgr_bigint::BigUint;

/// A shared record: a sort key plus an opaque payload that travels with it
/// (the framework uses the party identity as payload).
#[derive(Clone, Debug)]
pub struct SharedRecord {
    /// The sort key (an `l`-bit value).
    pub key: Shared,
    /// The payload moved together with the key.
    pub payload: Shared,
}

/// Generates the comparator network of Batcher's odd-even merge sort for
/// `n = 2^k` wires. Each pair `(i, j)` with `i < j` orders wire `i` before
/// wire `j`.
pub fn batcher_network(n: usize) -> Vec<(usize, usize)> {
    assert!(n.is_power_of_two(), "Batcher network needs a power of two");
    let mut comparators = Vec::new();
    let mut p = 1;
    while p < n {
        let mut k = p;
        while k >= 1 {
            for j in (k % p..n - k).step_by(2 * k) {
                for i in 0..k.min(n - j - k) {
                    if (i + j) / (2 * p) == (i + j + k) / (2 * p) {
                        comparators.push((i + j, i + j + k));
                    }
                }
            }
            k /= 2;
        }
        p *= 2;
    }
    comparators
}

/// Number of comparators in the network for `n` wires (after padding to a
/// power of two) — the baseline's comparison count.
pub fn comparator_count(n: usize) -> usize {
    batcher_network(n.next_power_of_two()).len()
}

/// Obliviously sorts shared records by key, ascending.
///
/// Records are padded to a power of two with the public sentinel key
/// `2^l` — strictly above every real (`< 2^l`) key, so no real record can
/// be displaced past the truncation boundary by a tie with the padding.
/// Comparisons therefore run at `l+1` bits. One comparison and three
/// multiplications per comparator.
pub fn oblivious_sort(
    engine: &mut SsEngine,
    mut records: Vec<SharedRecord>,
    l: usize,
) -> Vec<SharedRecord> {
    let n = records.len();
    if n <= 1 {
        return records;
    }
    let field = engine.field().clone();
    let padded = n.next_power_of_two();
    let sentinel = field.element(BigUint::power_of_two(l));
    while records.len() < padded {
        records.push(SharedRecord {
            key: engine.constant(&sentinel),
            payload: engine.constant(&field.zero()),
        });
    }
    for (i, j) in batcher_network(padded) {
        let (lo, hi) = compare_exchange(engine, &records[i], &records[j], l + 1);
        records[i] = lo;
        records[j] = hi;
    }
    records.truncate(n);
    records
}

/// Secure compare-exchange: returns `(min-record, max-record)` by key.
///
/// `c = [a.key < b.key]`; then `min = b + c·(a−b)` and `max = a + b − min`,
/// with the payload multiplexed by the same bit.
fn compare_exchange(
    engine: &mut SsEngine,
    a: &SharedRecord,
    b: &SharedRecord,
    l: usize,
) -> (SharedRecord, SharedRecord) {
    let c = cmp_lt(engine, &a.key, &b.key, l);

    let key_diff = engine.sub(&a.key, &b.key);
    let key_sel = engine.mul(&c, &key_diff);
    let min_key = engine.add(&b.key, &key_sel);
    let max_key = engine.sub(&engine.add(&a.key, &b.key), &min_key);

    let pay_diff = engine.sub(&a.payload, &b.payload);
    let pay_sel = engine.mul(&c, &pay_diff);
    let min_pay = engine.add(&b.payload, &pay_sel);
    let max_pay = engine.sub(&engine.add(&a.payload, &b.payload), &min_pay);

    (
        SharedRecord {
            key: min_key,
            payload: min_pay,
        },
        SharedRecord {
            key: max_key,
            payload: max_pay,
        },
    )
}

/// The SS-framework group-ranking service: party `j` contributes
/// `values[j]` (an `l`-bit integer); returns each party's rank with rank 1
/// for the *largest* value (the paper ranks by non-increasing gain).
///
/// This is what the paper's "SS framework" computes after the gain phase:
/// the masked gains are fed into the sorting protocol and the sorted
/// identity permutation is opened.
///
/// # Errors
///
/// Propagates [`SsError`] from engine construction (`n ≥ 2t+1` is chosen
/// internally as `t = ⌊(n−1)/2⌋`).
pub fn ss_group_rank(values: &[u64], l: usize, seed: u64) -> Result<Vec<usize>, SsError> {
    let n = values.len();
    // The engine needs at least 3 parties for t ≥ 1; tiny groups still work
    // with t = 0 (no privacy, but degenerate cases should not error).
    let t = if n >= 3 { (n - 1) / 2 } else { 0 };
    let mut engine = SsEngine::with_metrics_seed(n.max(1), t, seed)?;
    let field = engine.field().clone();

    let records: Vec<SharedRecord> = values
        .iter()
        .enumerate()
        .map(|(j, &v)| SharedRecord {
            key: engine.input(&field.from_u64(v)),
            payload: engine.input(&field.from_u64(j as u64 + 1)),
        })
        .collect();

    let sorted = oblivious_sort(&mut engine, records, l);

    // Open the identity permutation (ascending by key) and convert to
    // non-increasing ranks: the largest value gets rank 1.
    let mut ranks = vec![0usize; n];
    for (pos, record) in sorted.iter().enumerate() {
        let id = engine.open(&record.payload);
        // tidy:allow(panic) — payloads are engine-generated party indices 1..=n, far below 2^64
        let id = id.value().to_u64().expect("payload is a small index") as usize;
        assert!((1..=n).contains(&id), "corrupt payload");
        ranks[id - 1] = n - pos;
    }
    Ok(ranks)
}

impl SsEngine {
    /// Constructor used by [`ss_group_rank`]; thin alias of
    /// [`SsEngine::new`] kept separate so the sorting service can evolve
    /// its seeding independently.
    pub fn with_metrics_seed(n: usize, t: usize, seed: u64) -> Result<Self, SsError> {
        SsEngine::new(n, t, seed)
    }
}

/// Top-k selection on the SS baseline: sorts obliviously but opens only
/// the identities of the `k` largest values, leaving every other
/// position's identity and value shared (unopened).
///
/// This is what the paper's comparison target actually needs for group
/// ranking (cf. the Burkhart–Dimitropoulos top-k discussion in Sec. II —
/// their probabilistic construction is faster but "cannot be guaranteed
/// to terminate with a correct result"; this one is exact).
///
/// Returns the 1-based party ids of the winners, best first.
///
/// # Errors
///
/// Propagates [`SsError`] from engine construction.
pub fn ss_top_k(values: &[u64], l: usize, k: usize, seed: u64) -> Result<Vec<usize>, SsError> {
    let n = values.len();
    let k = k.min(n);
    let t = if n >= 3 { (n - 1) / 2 } else { 0 };
    let mut engine = SsEngine::new(n.max(1), t, seed)?;
    let field = engine.field().clone();
    let records: Vec<SharedRecord> = values
        .iter()
        .enumerate()
        .map(|(j, &v)| SharedRecord {
            key: engine.input(&field.from_u64(v)),
            payload: engine.input(&field.from_u64(j as u64 + 1)),
        })
        .collect();
    let sorted = oblivious_sort(&mut engine, records, l);
    // Open only the identities at the top-k positions (largest last in
    // ascending order).
    let mut winners = Vec::with_capacity(k);
    for record in sorted.iter().rev().take(k) {
        let id = engine.open(&record.payload);
        // tidy:allow(panic) — payloads are engine-generated party indices 1..=n, far below 2^64
        winners.push(id.value().to_u64().expect("small index") as usize);
    }
    Ok(winners)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_sorts_all_permutations_of_4() {
        // A comparator network sorts all inputs iff it sorts all 0/1
        // sequences (0-1 principle) — test exhaustively for n = 4 and 8.
        for n in [4usize, 8] {
            let net = batcher_network(n);
            for mask in 0u32..1 << n {
                let mut v: Vec<u32> = (0..n).map(|i| mask >> i & 1).collect();
                for &(i, j) in &net {
                    if v[i] > v[j] {
                        v.swap(i, j);
                    }
                }
                assert!(v.windows(2).all(|w| w[0] <= w[1]), "n={n} mask={mask:b}");
            }
        }
    }

    #[test]
    fn comparator_count_matches_asymptotics() {
        // Batcher: n/4 (log²n + log n) exactly for powers of two… just
        // check known small values.
        assert_eq!(comparator_count(2), 1);
        assert_eq!(comparator_count(4), 5);
        assert_eq!(comparator_count(8), 19);
        assert_eq!(comparator_count(16), 63);
    }

    #[test]
    fn oblivious_sort_orders_keys() {
        let mut e = SsEngine::new(5, 2, 3).unwrap();
        let f = e.field().clone();
        let vals = [9u64, 1, 250, 4, 4, 77, 0];
        let recs: Vec<SharedRecord> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| SharedRecord {
                key: e.input(&f.from_u64(v)),
                payload: e.input(&f.from_u64(i as u64)),
            })
            .collect();
        let sorted = oblivious_sort(&mut e, recs, 8);
        let opened: Vec<u64> = sorted
            .iter()
            .map(|r| e.open(&r.key).value().to_u64().unwrap())
            .collect();
        let mut expect = vals.to_vec();
        expect.sort_unstable();
        assert_eq!(opened, expect);
    }

    #[test]
    fn group_rank_simple() {
        let ranks = ss_group_rank(&[10, 40, 20, 30], 6, 9).unwrap();
        assert_eq!(ranks, vec![4, 1, 3, 2]);
    }

    #[test]
    fn group_rank_with_ties_is_a_permutation() {
        let ranks = ss_group_rank(&[5, 5, 5], 4, 1).unwrap();
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn group_rank_singleton_and_pair() {
        assert_eq!(ss_group_rank(&[7], 4, 1).unwrap(), vec![1]);
        assert_eq!(ss_group_rank(&[1, 2], 4, 1).unwrap(), vec![2, 1]);
    }

    #[test]
    fn top_k_returns_best_first() {
        let winners = ss_top_k(&[10, 40, 20, 30], 6, 2, 5).unwrap();
        assert_eq!(winners, vec![2, 4]);
        // k clamped to n.
        let all = ss_top_k(&[1, 2], 4, 10, 5).unwrap();
        assert_eq!(all, vec![2, 1]);
    }

    #[test]
    fn top_k_opens_fewer_values_than_full_rank() {
        // The privacy win: top-k opens k payloads instead of n.
        let mut e_full = SsEngine::new(4, 1, 1).unwrap();
        let mut e_topk = SsEngine::new(4, 1, 1).unwrap();
        let f = e_full.field().clone();
        let mk = |e: &mut SsEngine| -> Vec<SharedRecord> {
            (0..4u64)
                .map(|i| SharedRecord {
                    key: e.input(&f.from_u64(i * 3)),
                    payload: e.input(&f.from_u64(i + 1)),
                })
                .collect()
        };
        let r_full = mk(&mut e_full);
        let r_topk = mk(&mut e_topk);
        let s_full = oblivious_sort(&mut e_full, r_full, 4);
        let s_topk = oblivious_sort(&mut e_topk, r_topk, 4);
        e_full.reset_metrics();
        e_topk.reset_metrics();
        for r in &s_full {
            let _ = e_full.open(&r.payload);
        }
        for r in s_topk.iter().rev().take(1) {
            let _ = e_topk.open(&r.payload);
        }
        assert!(e_topk.metrics().openings < e_full.metrics().openings);
    }

    #[test]
    fn metrics_scale_with_n() {
        // More parties → more comparators → more multiplications; just
        // check the engine counts something plausible for n = 4.
        let mut e = SsEngine::new(5, 2, 3).unwrap();
        let f = e.field().clone();
        let recs: Vec<SharedRecord> = (0..4)
            .map(|i| SharedRecord {
                key: e.input(&f.from_u64(i)),
                payload: e.input(&f.from_u64(i)),
            })
            .collect();
        e.reset_metrics();
        let _ = oblivious_sort(&mut e, recs, 4);
        assert!(e.metrics().multiplications > 5 * 3);
    }
}
