//! Property-based tests for the secret-sharing baseline.

use ppgr_smc::compare::{cmp_ge, cmp_lt};
use ppgr_smc::cost;
use ppgr_smc::SsEngine;
use proptest::prelude::*;

proptest! {
    // Each case runs a real multi-party comparison — keep counts small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn comparison_matches_integers(a in 0u64..1 << 16, b in 0u64..1 << 16, seed in 0u64..100) {
        let mut e = SsEngine::new(3, 1, seed).unwrap();
        let f = e.field().clone();
        let sa = e.input(&f.from_u64(a));
        let sb = e.input(&f.from_u64(b));
        let ge = cmp_ge(&mut e, &sa, &sb, 16);
        let expect = if a >= b { f.one() } else { f.zero() };
        prop_assert_eq!(e.open(&ge), expect);
    }

    #[test]
    fn lt_is_complement_of_ge(a in 0u64..256, b in 0u64..256, seed in 0u64..100) {
        let mut e = SsEngine::new(3, 1, seed).unwrap();
        let f = e.field().clone();
        let sa = e.input(&f.from_u64(a));
        let sb = e.input(&f.from_u64(b));
        let ge = cmp_ge(&mut e, &sa, &sb, 8);
        let lt = cmp_lt(&mut e, &sa, &sb, 8);
        let sum = e.add(&ge, &lt);
        prop_assert_eq!(e.open(&sum), f.one(), "ge + lt must be exactly 1");
    }

    #[test]
    fn linear_algebra_on_shares(a in any::<u32>(), b in any::<u32>(), c in 1u32..1000, seed in 0u64..100) {
        let mut e = SsEngine::new(5, 2, seed).unwrap();
        let f = e.field().clone();
        let sa = e.input(&f.from_u64(a as u64));
        let sb = e.input(&f.from_u64(b as u64));
        let combo = {
            let scaled = e.mul_public(&sa, &f.from_u64(c as u64));
            e.add(&scaled, &sb)
        };
        prop_assert_eq!(
            e.open(&combo),
            f.from_u64(c as u64 * a as u64 + b as u64)
        );
        // BGW multiplication agrees with integer multiplication.
        let prod = e.mul(&sa, &sb);
        prop_assert_eq!(e.open(&prod), f.from_u64(a as u64 * b as u64));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cost-model sanity: every published formula is monotone in its
    /// arguments (a wrong exponent or swapped parameter breaks this).
    #[test]
    fn cost_models_monotone(n in 4usize..100, l in 8usize..100) {
        prop_assert!(cost::no07_mults_per_comparison(l + 1) > cost::no07_mults_per_comparison(l));
        prop_assert!(cost::jonsson_comparisons(2 * n) > cost::jonsson_comparisons(n));
        prop_assert!(cost::ss_sort_int_mults(n + 4, l) > cost::ss_sort_int_mults(n, l));
        prop_assert!(cost::ss_sort_int_mults(n, l + 8) > cost::ss_sort_int_mults(n, l));
        prop_assert!(cost::framework_group_mults(n + 4, l, 160) > cost::framework_group_mults(n, l, 160));
        prop_assert!(cost::framework_rounds(n) < cost::ss_sort_rounds(n, l));
    }
}
