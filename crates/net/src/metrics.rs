//! Traffic accounting shared by all protocol executions.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Party identifier: `0` is the initiator, `1..=n` are participants.
pub type PartyId = usize;

/// One recorded wire message.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct TrafficRecord {
    /// Logical round (messages in the same round may be concurrent;
    /// consecutive rounds are barrier-ordered).
    pub round: u32,
    /// Sender.
    pub from: PartyId,
    /// Receiver.
    pub to: PartyId,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Protocol phase label (for reporting).
    pub phase: &'static str,
}

/// A thread-safe log of protocol traffic.
///
/// Cloning shares the log (`Arc` internally), so one log can be handed to
/// every party of a threaded execution.
#[derive(Clone, Debug, Default)]
pub struct TrafficLog {
    inner: Arc<Mutex<Vec<TrafficRecord>>>,
}

impl TrafficLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message.
    pub fn record(
        &self,
        round: u32,
        from: PartyId,
        to: PartyId,
        bytes: usize,
        phase: &'static str,
    ) {
        self.inner.lock().push(TrafficRecord {
            round,
            from,
            to,
            bytes,
            phase,
        });
    }

    /// Snapshot of all records, in insertion order.
    pub fn records(&self) -> Vec<TrafficRecord> {
        self.inner.lock().clone()
    }

    /// Clears the log.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Aggregated view.
    pub fn summary(&self) -> TrafficSummary {
        let records = self.inner.lock();
        let mut by_party: BTreeMap<PartyId, u64> = BTreeMap::new();
        let mut by_phase: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut max_round = 0;
        let mut total = 0u64;
        for r in records.iter() {
            total += r.bytes as u64;
            *by_party.entry(r.from).or_default() += r.bytes as u64;
            *by_phase.entry(r.phase).or_default() += r.bytes as u64;
            max_round = max_round.max(r.round);
        }
        TrafficSummary {
            messages: records.len() as u64,
            total_bytes: total,
            rounds: if records.is_empty() { 0 } else { max_round + 1 },
            bytes_sent_by_party: by_party,
            bytes_by_phase: by_phase,
        }
    }
}

/// Aggregate statistics over a [`TrafficLog`].
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct TrafficSummary {
    /// Total number of messages.
    pub messages: u64,
    /// Total payload bytes.
    pub total_bytes: u64,
    /// Number of logical rounds observed.
    pub rounds: u32,
    /// Bytes sent, keyed by sending party.
    pub bytes_sent_by_party: BTreeMap<PartyId, u64>,
    /// Bytes per protocol phase.
    pub bytes_by_phase: BTreeMap<&'static str, u64>,
}

/// Counters for one named cache surfaced in a [`MetricsSnapshot`].
///
/// Kept dependency-free on purpose: the concrete caches live in higher
/// crates (e.g. the group crate's comb-table LRU); whoever assembles the
/// snapshot converts its native stats into this wire shape.
#[derive(Clone, Debug, Default, Eq, PartialEq)]
pub struct CacheCounters {
    /// Stable cache identifier, e.g. `"ecc160/comb"`.
    pub label: String,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that built the value.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: u64,
}

/// A point-in-time, scrape-ready export of a ranking service's counters.
///
/// Field names are part of the wire contract — [`MetricsSnapshot::FIELDS`]
/// pins them (and their order in [`MetricsSnapshot::to_json`]), and a unit
/// test below fails if the struct and the pinned list ever drift. Renaming
/// a field is a breaking change to every scraper; add fields at the end
/// instead.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Sessions accepted by admission control.
    pub sessions_admitted: u64,
    /// Sessions shed because a shard's in-flight window was full.
    pub sessions_rejected_saturated: u64,
    /// Sessions shed because their projected completion exceeded the
    /// admission horizon.
    pub sessions_rejected_deadline: u64,
    /// Admitted sessions that completed with a ranking.
    pub sessions_completed: u64,
    /// Admitted sessions that resolved with an error.
    pub sessions_failed: u64,
    /// Sessions admitted but not yet resolved.
    pub sessions_in_flight: u64,
    /// Worker-group shards serving the session stream.
    pub shards: u64,
    /// Worker threads across all shards.
    pub workers: u64,
    /// Cross-session verify-batch flushes (one aggregate MSM each).
    pub verify_flushes: u64,
    /// Sessions whose proofs went through a batched flush.
    pub verify_batched_sessions: u64,
    /// Individual proofs folded into batched flushes.
    pub verify_batched_proofs: u64,
    /// Sessions that started with a pooled hop-scratch buffer.
    pub scratch_reused: u64,
    /// Wire messages across all completed sessions.
    pub wire_messages: u64,
    /// Wire payload bytes across all completed sessions.
    pub wire_bytes: u64,
    /// Per-cache counters (comb/wNAF table caches etc.).
    pub caches: Vec<CacheCounters>,
}

impl MetricsSnapshot {
    /// The scrape contract: every field of the snapshot, in the order
    /// [`MetricsSnapshot::to_json`] emits them.
    pub const FIELDS: [&'static str; 15] = [
        "sessions_admitted",
        "sessions_rejected_saturated",
        "sessions_rejected_deadline",
        "sessions_completed",
        "sessions_failed",
        "sessions_in_flight",
        "shards",
        "workers",
        "verify_flushes",
        "verify_batched_sessions",
        "verify_batched_proofs",
        "scratch_reused",
        "wire_messages",
        "wire_bytes",
        "caches",
    ];

    /// The per-cache object fields, in emission order.
    pub const CACHE_FIELDS: [&'static str; 5] = ["label", "hits", "misses", "evictions", "entries"];

    /// Folds one session's [`TrafficSummary`] into the wire totals.
    pub fn absorb_traffic(&mut self, summary: &TrafficSummary) {
        self.wire_messages = self.wire_messages.saturating_add(summary.messages);
        self.wire_bytes = self.wire_bytes.saturating_add(summary.total_bytes);
    }

    /// Serializes the snapshot as one stable-field-order JSON object
    /// (hand-rolled — the workspace carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        let scalars: [(&str, u64); 14] = [
            ("sessions_admitted", self.sessions_admitted),
            (
                "sessions_rejected_saturated",
                self.sessions_rejected_saturated,
            ),
            (
                "sessions_rejected_deadline",
                self.sessions_rejected_deadline,
            ),
            ("sessions_completed", self.sessions_completed),
            ("sessions_failed", self.sessions_failed),
            ("sessions_in_flight", self.sessions_in_flight),
            ("shards", self.shards),
            ("workers", self.workers),
            ("verify_flushes", self.verify_flushes),
            ("verify_batched_sessions", self.verify_batched_sessions),
            ("verify_batched_proofs", self.verify_batched_proofs),
            ("scratch_reused", self.scratch_reused),
            ("wire_messages", self.wire_messages),
            ("wire_bytes", self.wire_bytes),
        ];
        for (name, value) in scalars {
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            out.push_str(&value.to_string());
            out.push(',');
        }
        out.push_str("\"caches\":[");
        for (i, cache) in self.caches.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"label\":\"");
            for ch in cache.label.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push_str(&format!(
                "\",\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{}}}",
                cache.hits, cache.misses, cache.evictions, cache.entries
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let log = TrafficLog::new();
        log.record(0, 1, 2, 100, "setup");
        log.record(0, 2, 1, 50, "setup");
        log.record(1, 1, 0, 25, "submit");
        let s = log.summary();
        assert_eq!(s.messages, 3);
        assert_eq!(s.total_bytes, 175);
        assert_eq!(s.rounds, 2);
        assert_eq!(s.bytes_sent_by_party[&1], 125);
        assert_eq!(s.bytes_by_phase["setup"], 150);
    }

    #[test]
    fn clones_share_state() {
        let log = TrafficLog::new();
        let log2 = log.clone();
        log2.record(0, 0, 1, 10, "x");
        assert_eq!(log.summary().messages, 1);
        log.clear();
        assert_eq!(log2.summary().messages, 0);
    }

    #[test]
    fn empty_summary() {
        let s = TrafficLog::new().summary();
        assert_eq!(s.messages, 0);
        assert_eq!(s.rounds, 0);
        assert!(s.bytes_sent_by_party.is_empty());
    }

    fn sample_snapshot() -> MetricsSnapshot {
        // A full struct literal: if a field is added, removed or renamed,
        // this stops compiling — forcing FIELDS (the scrape contract)
        // to be revisited in the same change.
        MetricsSnapshot {
            sessions_admitted: 10,
            sessions_rejected_saturated: 2,
            sessions_rejected_deadline: 1,
            sessions_completed: 8,
            sessions_failed: 1,
            sessions_in_flight: 1,
            shards: 2,
            workers: 4,
            verify_flushes: 3,
            verify_batched_sessions: 7,
            verify_batched_proofs: 21,
            scratch_reused: 6,
            wire_messages: 1234,
            wire_bytes: 98765,
            caches: vec![CacheCounters {
                label: "ecc160/comb".into(),
                hits: 40,
                misses: 5,
                evictions: 1,
                entries: 4,
            }],
        }
    }

    #[test]
    fn snapshot_field_names_are_pinned_in_order() {
        let json = sample_snapshot().to_json();
        // Every pinned field appears as a JSON key, in contract order.
        let mut cursor = 0;
        for field in MetricsSnapshot::FIELDS {
            let key = format!("\"{field}\":");
            let at = json[cursor..]
                .find(&key)
                .unwrap_or_else(|| panic!("field {field} missing or out of order"));
            cursor += at + key.len();
        }
        let mut cursor = json.find("\"caches\"").expect("caches key");
        for field in MetricsSnapshot::CACHE_FIELDS {
            let key = format!("\"{field}\":");
            let at = json[cursor..]
                .find(&key)
                .unwrap_or_else(|| panic!("cache field {field} missing or out of order"));
            cursor += at + key.len();
        }
    }

    #[test]
    fn snapshot_json_carries_the_values() {
        let json = sample_snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"sessions_admitted\":10"));
        assert!(json.contains("\"verify_batched_proofs\":21"));
        assert!(json.contains("\"label\":\"ecc160/comb\""));
        assert!(json.contains("\"entries\":4"));
        // No trailing comma before the closing brackets.
        assert!(!json.contains(",]") && !json.contains(",}"));
    }

    #[test]
    fn snapshot_escapes_cache_labels() {
        let mut snap = MetricsSnapshot::default();
        snap.caches.push(CacheCounters {
            label: "we\"ird\\label".into(),
            ..CacheCounters::default()
        });
        let json = snap.to_json();
        assert!(json.contains(r#""label":"we\"ird\\label""#));
    }

    #[test]
    fn snapshot_absorbs_traffic_summaries() {
        let log = TrafficLog::new();
        log.record(0, 1, 2, 100, "setup");
        log.record(1, 2, 1, 50, "submit");
        let mut snap = MetricsSnapshot::default();
        snap.absorb_traffic(&log.summary());
        snap.absorb_traffic(&log.summary());
        assert_eq!(snap.wire_messages, 4);
        assert_eq!(snap.wire_bytes, 300);
    }
}
