//! Traffic accounting shared by all protocol executions.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Party identifier: `0` is the initiator, `1..=n` are participants.
pub type PartyId = usize;

/// One recorded wire message.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct TrafficRecord {
    /// Logical round (messages in the same round may be concurrent;
    /// consecutive rounds are barrier-ordered).
    pub round: u32,
    /// Sender.
    pub from: PartyId,
    /// Receiver.
    pub to: PartyId,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Protocol phase label (for reporting).
    pub phase: &'static str,
}

/// A thread-safe log of protocol traffic.
///
/// Cloning shares the log (`Arc` internally), so one log can be handed to
/// every party of a threaded execution.
#[derive(Clone, Debug, Default)]
pub struct TrafficLog {
    inner: Arc<Mutex<Vec<TrafficRecord>>>,
}

impl TrafficLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message.
    pub fn record(
        &self,
        round: u32,
        from: PartyId,
        to: PartyId,
        bytes: usize,
        phase: &'static str,
    ) {
        self.inner.lock().push(TrafficRecord {
            round,
            from,
            to,
            bytes,
            phase,
        });
    }

    /// Snapshot of all records, in insertion order.
    pub fn records(&self) -> Vec<TrafficRecord> {
        self.inner.lock().clone()
    }

    /// Clears the log.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Aggregated view.
    pub fn summary(&self) -> TrafficSummary {
        let records = self.inner.lock();
        let mut by_party: BTreeMap<PartyId, u64> = BTreeMap::new();
        let mut by_phase: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut max_round = 0;
        let mut total = 0u64;
        for r in records.iter() {
            total += r.bytes as u64;
            *by_party.entry(r.from).or_default() += r.bytes as u64;
            *by_phase.entry(r.phase).or_default() += r.bytes as u64;
            max_round = max_round.max(r.round);
        }
        TrafficSummary {
            messages: records.len() as u64,
            total_bytes: total,
            rounds: if records.is_empty() { 0 } else { max_round + 1 },
            bytes_sent_by_party: by_party,
            bytes_by_phase: by_phase,
        }
    }
}

/// Aggregate statistics over a [`TrafficLog`].
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct TrafficSummary {
    /// Total number of messages.
    pub messages: u64,
    /// Total payload bytes.
    pub total_bytes: u64,
    /// Number of logical rounds observed.
    pub rounds: u32,
    /// Bytes sent, keyed by sending party.
    pub bytes_sent_by_party: BTreeMap<PartyId, u64>,
    /// Bytes per protocol phase.
    pub bytes_by_phase: BTreeMap<&'static str, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let log = TrafficLog::new();
        log.record(0, 1, 2, 100, "setup");
        log.record(0, 2, 1, 50, "setup");
        log.record(1, 1, 0, 25, "submit");
        let s = log.summary();
        assert_eq!(s.messages, 3);
        assert_eq!(s.total_bytes, 175);
        assert_eq!(s.rounds, 2);
        assert_eq!(s.bytes_sent_by_party[&1], 125);
        assert_eq!(s.bytes_by_phase["setup"], 150);
    }

    #[test]
    fn clones_share_state() {
        let log = TrafficLog::new();
        let log2 = log.clone();
        log2.record(0, 0, 1, 10, "x");
        assert_eq!(log.summary().messages, 1);
        log.clear();
        assert_eq!(log2.summary().messages, 0);
    }

    #[test]
    fn empty_summary() {
        let s = TrafficLog::new().summary();
        assert_eq!(s.messages, 0);
        assert_eq!(s.rounds, 0);
        assert!(s.bytes_sent_by_party.is_empty());
    }
}
