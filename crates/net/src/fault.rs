//! Deterministic fault injection over a [`PartyHandle`].
//!
//! [`FaultyMesh`] implements the same send/receive surface as
//! [`PartyHandle`] but consults a [`FaultPlan`] before every operation, so
//! tests can reproduce — bit-for-bit, on every run — a party crashing at a
//! chosen phase, a message being delayed, or a message being lost.
//!
//! Two crash models, mirroring real deployments:
//!
//! * **crash-stop** — the party dies and its connections tear down: peers
//!   observe [`MeshError::Disconnected`] immediately.
//! * **silent-stall** — the party stops participating but its connections
//!   stay open (a wedged process, a malicious mute): peers observe only
//!   [`MeshError::Timeout`] once their deadline lapses. The stalled
//!   party's channels are parked in a [`CrashStash`] that the test driver
//!   keeps alive until every surviving thread has exited.
//!
//! Beyond liveness faults, the plan scripts **misbehavior** — an *active*
//! adversary, in the style of tofn's gg20 malicious-behaviour harness.
//! The misbehaving party's own thread keeps running honest protocol code;
//! the mesh rewrites its *outgoing bytes* ([`Tamper`], applied per lane
//! inside [`FaultyMesh::send`]) or injects forged frames at phase entry
//! ([`FaultPlan::forge`]). Scoping a tamper to a single destination lane
//! ([`FaultPlan::equivocate`]) makes a broadcast equivocate: one receiver
//! sees rewritten bytes while the rest see the original.

use crate::deadline::{Deadline, Phase};
use crate::mesh::{MeshError, PartyHandle};
use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Duration;

/// How an injected crash manifests to the other parties.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum FaultKind {
    /// Connections tear down: peers see `Disconnected` at once.
    CrashStop,
    /// Connections stay open but fall silent: peers see `Timeout`.
    SilentStall,
}

/// One injected message delay.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
struct DelayFault {
    from: usize,
    to: usize,
    /// 0-based index on the `(from, to)` lane.
    nth: u64,
    delay: Duration,
}

/// One injected message loss.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
struct DropFault {
    from: usize,
    to: usize,
    nth: u64,
}

/// A scripted byte-level rewrite of one outgoing message.
///
/// Tampers are pure data (no closures), so a [`FaultPlan`] stays `Clone`,
/// `Eq` and printable — a failing scenario reproduces from its `Debug`
/// output alone. Out-of-range offsets are clamped to no-ops rather than
/// panicking: a tamper that misses its target simply leaves the message
/// honest, and the scenario's assertions catch the mis-aim.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum Tamper {
    /// XOR `mask` into the byte at `offset` (a flipped ciphertext bit, a
    /// nudged scalar).
    FlipByte {
        /// 0-based byte offset into the encoded message.
        offset: usize,
        /// XOR mask; `0` is a no-op.
        mask: u8,
    },
    /// Replace the entire message with the given bytes (a swapped proof, a
    /// replayed frame).
    Replace(Vec<u8>),
    /// Copy `len` bytes from `src` over `dst` within the message (e.g.
    /// duplicate one ciphertext over another — a shuffle that repeats an
    /// element instead of permuting honestly).
    CopyWithin {
        /// Source offset of the copied region.
        src: usize,
        /// Destination offset overwritten by the copy.
        dst: usize,
        /// Region length in bytes.
        len: usize,
    },
    /// Truncate the message to `len` bytes.
    Truncate(usize),
    /// Append raw bytes after the honest encoding (trailing garbage).
    Append(Vec<u8>),
}

/// One scripted misbehavior: rewrite the `nth` message of `phase` on the
/// `from → to` lane (`to: None` rewrites every lane identically).
#[derive(Clone, Debug, Eq, PartialEq)]
struct TamperFault {
    from: usize,
    /// `None`: all lanes (consistent misbehavior). `Some(w)`: only the
    /// lane to `w` — a broadcast then *equivocates*.
    to: Option<usize>,
    phase: Phase,
    /// 0-based index on the lane, counted per phase (reset at
    /// [`FaultyMesh::enter_phase`]), unlike drop/delay indices which span
    /// the whole session.
    nth: u64,
    tamper: Tamper,
}

/// One scripted frame injection: `from` broadcasts `payload` verbatim to
/// every peer upon entering `phase`, before any honest message of that
/// phase.
#[derive(Clone, Debug, Eq, PartialEq)]
struct ForgeFault {
    from: usize,
    phase: Phase,
    payload: Vec<u8>,
}

/// Messages a [`FaultyMesh`] can tamper with at the byte level.
///
/// The mesh is generic over its message type; scripted misbehavior needs
/// to reach the encoded bytes. Production meshes carry [`bytes::Bytes`]
/// or `Vec<u8>`; the `u8` impl keeps unit tests terse.
pub trait TamperBytes: Sized {
    /// Returns the message with `tamper` applied to its encoding.
    #[must_use]
    fn tampered(self, tamper: &Tamper) -> Self;

    /// Builds a message carrying exactly `bytes` (forged injections).
    fn from_wire(bytes: &[u8]) -> Self;
}

/// Applies a tamper to a byte vector; every offset is bounds-checked so a
/// mis-aimed script degrades to a no-op instead of panicking.
fn tamper_vec(mut v: Vec<u8>, tamper: &Tamper) -> Vec<u8> {
    match tamper {
        Tamper::FlipByte { offset, mask } => {
            if let Some(b) = v.get_mut(*offset) {
                *b ^= mask;
            }
            v
        }
        Tamper::Replace(bytes) => bytes.clone(),
        Tamper::CopyWithin { src, dst, len } => {
            let end_src = src.checked_add(*len);
            let end_dst = dst.checked_add(*len);
            if let (Some(es), Some(ed)) = (end_src, end_dst) {
                if es <= v.len() && ed <= v.len() {
                    v.copy_within(*src..es, *dst);
                }
            }
            v
        }
        Tamper::Truncate(len) => {
            v.truncate(*len);
            v
        }
        Tamper::Append(bytes) => {
            v.extend_from_slice(bytes);
            v
        }
    }
}

impl TamperBytes for Vec<u8> {
    fn tampered(self, tamper: &Tamper) -> Self {
        tamper_vec(self, tamper)
    }

    fn from_wire(bytes: &[u8]) -> Self {
        bytes.to_vec()
    }
}

impl TamperBytes for bytes::Bytes {
    fn tampered(self, tamper: &Tamper) -> Self {
        bytes::Bytes::from(tamper_vec(self.to_vec(), tamper))
    }

    fn from_wire(bytes: &[u8]) -> Self {
        bytes::Bytes::from(bytes.to_vec())
    }
}

/// Single-byte messages (unit tests): `FlipByte`/`Replace` act on the one
/// byte, structural tampers are no-ops.
impl TamperBytes for u8 {
    fn tampered(self, tamper: &Tamper) -> Self {
        match tamper {
            Tamper::FlipByte { offset: 0, mask } => self ^ mask,
            Tamper::Replace(bytes) => bytes.first().copied().unwrap_or(self),
            _ => self,
        }
    }

    fn from_wire(bytes: &[u8]) -> Self {
        bytes.first().copied().unwrap_or(0)
    }
}

/// A deterministic script of failures for one session.
///
/// Build explicitly via the combinators, or derive a single-crash plan
/// from a seed with [`FaultPlan::seeded`]. Plans contain no ambient
/// randomness, so a failing seed reproduces exactly.
#[derive(Clone, Debug, Default, Eq, PartialEq)]
pub struct FaultPlan {
    crashes: Vec<(usize, Phase, FaultKind)>,
    delays: Vec<DelayFault>,
    drops: Vec<DropFault>,
    tampers: Vec<TamperFault>,
    forgeries: Vec<ForgeFault>,
}

impl FaultPlan {
    /// An empty plan (no injected faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Crash `party` (connections torn down) when it enters `phase`.
    #[must_use]
    pub fn crash_stop(mut self, party: usize, phase: Phase) -> Self {
        self.crashes.push((party, phase, FaultKind::CrashStop));
        self
    }

    /// Stall `party` (connections kept open, silence) at `phase` entry.
    #[must_use]
    pub fn silent_stall(mut self, party: usize, phase: Phase) -> Self {
        self.crashes.push((party, phase, FaultKind::SilentStall));
        self
    }

    /// Delay the `nth` (0-based) message on the `from → to` lane by
    /// `delay` before it is handed to the channel.
    #[must_use]
    pub fn delay(mut self, from: usize, to: usize, nth: u64, delay: Duration) -> Self {
        self.delays.push(DelayFault {
            from,
            to,
            nth,
            delay,
        });
        self
    }

    /// Silently lose the `nth` (0-based) message on the `from → to` lane.
    #[must_use]
    pub fn drop_nth(mut self, from: usize, to: usize, nth: u64) -> Self {
        self.drops.push(DropFault { from, to, nth });
        self
    }

    /// Rewrite the bytes of `from`'s `nth` message of `phase` on *every*
    /// lane (consistent misbehavior: all receivers see the same rewritten
    /// bytes). `nth` counts per lane within the phase.
    #[must_use]
    pub fn tamper(mut self, from: usize, phase: Phase, nth: u64, tamper: Tamper) -> Self {
        self.tampers.push(TamperFault {
            from,
            to: None,
            phase,
            nth,
            tamper,
        });
        self
    }

    /// Rewrite the bytes of `from`'s `nth` message of `phase` on the lane
    /// to `to` *only*: a broadcast through this fault equivocates —
    /// `to` receives the rewritten bytes while every other receiver gets
    /// the honest original.
    #[must_use]
    pub fn equivocate(
        mut self,
        from: usize,
        to: usize,
        phase: Phase,
        nth: u64,
        tamper: Tamper,
    ) -> Self {
        self.tampers.push(TamperFault {
            from,
            to: Some(to),
            phase,
            nth,
            tamper,
        });
        self
    }

    /// Inject `payload` verbatim from `from` to every peer when `from`
    /// enters `phase`, ahead of any honest message of that phase (forged
    /// or replayed frames — e.g. a fabricated abort). Multiple forgeries
    /// for the same `(from, phase)` are sent in insertion order.
    #[must_use]
    pub fn forge(mut self, from: usize, phase: Phase, payload: Vec<u8>) -> Self {
        self.forgeries.push(ForgeFault {
            from,
            phase,
            payload,
        });
        self
    }

    /// Whether the plan scripts any active misbehavior (tamper, forge) as
    /// opposed to pure liveness faults.
    pub fn has_misbehavior(&self) -> bool {
        !self.tampers.is_empty() || !self.forgeries.is_empty()
    }

    /// Derives a single-crash plan from `seed`: one participant (id in
    /// `1..=participants`) crashing at a seed-chosen phase, alternating
    /// crash-stop / silent-stall. The derivation is a fixed xorshift — no
    /// ambient entropy — so a seed names one reproducible failure.
    ///
    /// With zero participants there is nobody to crash, so the plan is
    /// empty (rather than naming the out-of-range victim id `1`).
    pub fn seeded(seed: u64, participants: usize) -> Self {
        if participants == 0 {
            return FaultPlan::new();
        }
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let victim = 1 + (next() as usize) % participants;
        let phase = Phase::ALL[(next() as usize) % Phase::ALL.len()];
        let plan = FaultPlan::new();
        if next() & 1 == 0 {
            plan.crash_stop(victim, phase)
        } else {
            plan.silent_stall(victim, phase)
        }
    }

    /// The injected crash for `party` at `phase`, if any.
    pub fn crash_at(&self, party: usize, phase: Phase) -> Option<FaultKind> {
        self.crashes
            .iter()
            .find(|(p, ph, _)| *p == party && *ph == phase)
            .map(|(_, _, k)| *k)
    }

    /// The scripted crash (party, phase, kind) entries, in insertion order.
    pub fn crashes(&self) -> impl Iterator<Item = (usize, Phase, FaultKind)> + '_ {
        self.crashes.iter().copied()
    }

    fn delay_for(&self, from: usize, to: usize, nth: u64) -> Option<Duration> {
        self.delays
            .iter()
            .find(|d| d.from == from && d.to == to && d.nth == nth)
            .map(|d| d.delay)
    }

    fn drops_message(&self, from: usize, to: usize, nth: u64) -> bool {
        self.drops
            .iter()
            .any(|d| d.from == from && d.to == to && d.nth == nth)
    }

    fn tamper_for(&self, from: usize, to: usize, phase: Phase, nth: u64) -> Option<&Tamper> {
        self.tampers
            .iter()
            .find(|t| {
                t.from == from && t.phase == phase && t.nth == nth && t.to.is_none_or(|w| w == to)
            })
            .map(|t| &t.tamper)
    }

    fn forgeries_at(&self, from: usize, phase: Phase) -> impl Iterator<Item = &[u8]> {
        self.forgeries
            .iter()
            .filter(move |f| f.from == from && f.phase == phase)
            .map(|f| f.payload.as_slice())
    }
}

/// Keeps the channels of silently-stalled parties alive.
///
/// A stalled party's thread exits, but its [`PartyHandle`] must not drop —
/// that would close its channels and convert the stall into a visible
/// disconnect. The driver holds the stash until all survivors have
/// finished.
pub struct CrashStash<T> {
    parked: Arc<Mutex<Vec<PartyHandle<T>>>>,
}

impl<T> CrashStash<T> {
    /// An empty stash.
    pub fn new() -> Self {
        CrashStash {
            parked: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Number of parked handles.
    pub fn parked(&self) -> usize {
        self.parked.lock().len()
    }

    fn park(&self, handle: PartyHandle<T>) {
        self.parked.lock().push(handle);
    }
}

impl<T> Default for CrashStash<T> {
    fn default() -> Self {
        CrashStash::new()
    }
}

impl<T> Clone for CrashStash<T> {
    fn clone(&self) -> Self {
        CrashStash {
            parked: Arc::clone(&self.parked),
        }
    }
}

impl<T> std::fmt::Debug for CrashStash<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrashStash")
            .field("parked", &self.parked())
            .finish()
    }
}

/// A [`PartyHandle`] with a [`FaultPlan`] wired into every operation.
///
/// With an empty plan this is a transparent pass-through, so protocol
/// code can be written against `FaultyMesh` unconditionally. The wrapper
/// is single-owner like the handle it wraps (interior mutability, `Send`
/// but not `Sync`).
#[derive(Debug)]
pub struct FaultyMesh<T> {
    id: usize,
    n: usize,
    /// `None` once this party crashed.
    inner: RefCell<Option<PartyHandle<T>>>,
    plan: Arc<FaultPlan>,
    stash: CrashStash<T>,
    phase: Cell<Phase>,
    /// Per-destination sent-message counters (dense, self slot unused).
    sent: RefCell<Vec<u64>>,
    /// Like `sent`, but reset at every [`enter_phase`](Self::enter_phase)
    /// — tampers address the nth message *of a phase* so scripts don't
    /// have to count the whole session's traffic.
    phase_sent: RefCell<Vec<u64>>,
}

impl<T> FaultyMesh<T> {
    /// Wraps `handle` with no faults (transparent pass-through).
    pub fn passthrough(handle: PartyHandle<T>) -> Self {
        FaultyMesh::with_plan(handle, Arc::new(FaultPlan::new()), CrashStash::new())
    }

    /// Wraps `handle` under `plan`; stalled handles park in `stash`.
    pub fn with_plan(handle: PartyHandle<T>, plan: Arc<FaultPlan>, stash: CrashStash<T>) -> Self {
        let (id, n) = (handle.id(), handle.parties());
        FaultyMesh {
            id,
            n,
            inner: RefCell::new(Some(handle)),
            plan,
            stash,
            phase: Cell::new(Phase::Gain),
            sent: RefCell::new(vec![0; n]),
            phase_sent: RefCell::new(vec![0; n]),
        }
    }

    /// This party's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of parties in the mesh.
    pub fn parties(&self) -> usize {
        self.n
    }

    /// The phase most recently entered.
    pub fn phase(&self) -> Phase {
        self.phase.get()
    }

    /// Declares entry into `phase`; the scripted crash for
    /// `(self.id, phase)` fires here, *before* any message of the phase,
    /// and scripted forgeries for `(self.id, phase)` are injected to every
    /// peer, ahead of the phase's honest messages (and ahead of the crash,
    /// so a plan can forge a frame and then vanish).
    ///
    /// # Errors
    ///
    /// [`MeshError::Crashed`] if this party's crash fired (now or
    /// earlier); the caller must unwind its protocol thread.
    pub fn enter_phase(&self, phase: Phase) -> Result<(), MeshError>
    where
        T: TamperBytes,
    {
        if self.inner.borrow().is_none() {
            return Err(MeshError::Crashed);
        }
        self.phase.set(phase);
        self.phase_sent.borrow_mut().fill(0);
        for payload in self.plan.forgeries_at(self.id, phase) {
            let inner = self.inner.borrow();
            if let Some(handle) = inner.as_ref() {
                for to in 0..self.n {
                    if to != self.id {
                        // Best-effort: a dead lane cannot receive a forgery.
                        let _ = handle.send(to, T::from_wire(payload));
                    }
                }
            }
        }
        match self.plan.crash_at(self.id, phase) {
            None => Ok(()),
            Some(kind) => {
                let handle = self.inner.borrow_mut().take();
                if kind == FaultKind::SilentStall {
                    if let Some(h) = handle {
                        self.stash.park(h);
                    }
                } // CrashStop: dropping the handle closes every lane.
                Err(MeshError::Crashed)
            }
        }
    }

    /// Sends `message` to party `to`, applying scripted drops, delays and
    /// byte tampers (tampers address the per-phase lane index; see
    /// [`FaultPlan::tamper`]).
    ///
    /// # Errors
    ///
    /// [`MeshError::Crashed`] if this party crashed, otherwise as
    /// [`PartyHandle::send`].
    pub fn send(&self, to: usize, message: T) -> Result<(), MeshError>
    where
        T: TamperBytes,
    {
        let inner = self.inner.borrow();
        let Some(handle) = inner.as_ref() else {
            return Err(MeshError::Crashed);
        };
        let nth = {
            let mut sent = self.sent.borrow_mut();
            let Some(counter) = sent.get_mut(to) else {
                return Err(MeshError::UnknownParty(to));
            };
            let nth = *counter;
            *counter += 1;
            nth
        };
        let phase_nth = {
            let mut sent = self.phase_sent.borrow_mut();
            let Some(counter) = sent.get_mut(to) else {
                return Err(MeshError::UnknownParty(to));
            };
            let nth = *counter;
            *counter += 1;
            nth
        };
        if self.plan.drops_message(self.id, to, nth) {
            return Ok(()); // lost on the wire; the receiver's deadline decides
        }
        if let Some(delay) = self.plan.delay_for(self.id, to, nth) {
            std::thread::sleep(delay);
        }
        let message = match self
            .plan
            .tamper_for(self.id, to, self.phase.get(), phase_nth)
        {
            None => message,
            Some(t) => message.tampered(t),
        };
        handle.send(to, message)
    }

    /// Blocks until a message from party `from` arrives.
    ///
    /// # Errors
    ///
    /// [`MeshError::Crashed`] if this party crashed, otherwise as
    /// [`PartyHandle::recv_from`].
    pub fn recv_from(&self, from: usize) -> Result<T, MeshError> {
        match self.inner.borrow().as_ref() {
            None => Err(MeshError::Crashed),
            Some(handle) => handle.recv_from(from),
        }
    }

    /// Waits at most `timeout` for a message from party `from`.
    ///
    /// # Errors
    ///
    /// [`MeshError::Crashed`] if this party crashed, otherwise as
    /// [`PartyHandle::recv_from_timeout`].
    pub fn recv_from_timeout(&self, from: usize, timeout: Duration) -> Result<T, MeshError> {
        match self.inner.borrow().as_ref() {
            None => Err(MeshError::Crashed),
            Some(handle) => handle.recv_from_timeout(from, timeout),
        }
    }

    /// Waits until `deadline` for a message from party `from`.
    ///
    /// # Errors
    ///
    /// As [`recv_from_timeout`](Self::recv_from_timeout).
    pub fn recv_from_deadline(&self, from: usize, deadline: &Deadline) -> Result<T, MeshError> {
        self.recv_from_timeout(from, deadline.remaining())
    }

    /// Broadcasts to every other party, attempting all peers; scripted
    /// drops and delays apply per lane.
    ///
    /// # Errors
    ///
    /// [`MeshError::Crashed`] if this party crashed, or
    /// [`MeshError::Broadcast`] listing every unreachable peer.
    pub fn broadcast(&self, message: &T) -> Result<(), MeshError>
    where
        T: Clone + TamperBytes,
    {
        if self.inner.borrow().is_none() {
            return Err(MeshError::Crashed);
        }
        let mut disconnected = Vec::new();
        for to in 0..self.n {
            if to == self.id {
                continue;
            }
            match self.send(to, message.clone()) {
                Ok(()) => {}
                Err(MeshError::Crashed) => return Err(MeshError::Crashed),
                Err(_) => disconnected.push(to),
            }
        }
        if disconnected.is_empty() {
            Ok(())
        } else {
            Err(MeshError::Broadcast { disconnected })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::LocalMesh;

    fn pair(plan: FaultPlan) -> (FaultyMesh<u8>, FaultyMesh<u8>, CrashStash<u8>) {
        let plan = Arc::new(plan);
        let stash = CrashStash::new();
        let mut handles = LocalMesh::new::<u8>(2);
        let h1 = handles.pop().unwrap();
        let h0 = handles.pop().unwrap();
        (
            FaultyMesh::with_plan(h0, Arc::clone(&plan), stash.clone()),
            FaultyMesh::with_plan(h1, plan, stash.clone()),
            stash,
        )
    }

    #[test]
    fn passthrough_is_transparent() {
        let mut handles = LocalMesh::new::<u8>(2);
        let h1 = FaultyMesh::passthrough(handles.pop().unwrap());
        let h0 = FaultyMesh::passthrough(handles.pop().unwrap());
        h0.enter_phase(Phase::KeyGen).unwrap();
        h0.send(1, 3).unwrap();
        assert_eq!(h1.recv_from(0).unwrap(), 3);
        assert_eq!(h0.phase(), Phase::KeyGen);
    }

    #[test]
    fn crash_stop_disconnects_peers_immediately() {
        let (h0, h1, stash) = pair(FaultPlan::new().crash_stop(0, Phase::Encrypt));
        h0.enter_phase(Phase::KeyGen).unwrap();
        h0.send(1, 1).unwrap();
        assert_eq!(h0.enter_phase(Phase::Encrypt), Err(MeshError::Crashed));
        assert_eq!(h0.send(1, 2), Err(MeshError::Crashed));
        // The queued message survives; after that the lane is dead.
        assert_eq!(h1.recv_from(0).unwrap(), 1);
        assert_eq!(
            h1.recv_from_timeout(0, Duration::from_secs(1)),
            Err(MeshError::Disconnected { peer: 0 })
        );
        assert_eq!(stash.parked(), 0);
    }

    #[test]
    fn silent_stall_times_out_peers_and_parks_the_handle() {
        let (h0, h1, stash) = pair(FaultPlan::new().silent_stall(0, Phase::Hop));
        assert_eq!(h0.enter_phase(Phase::Hop), Err(MeshError::Crashed));
        assert_eq!(stash.parked(), 1);
        // Channels stay open: the peer sees silence, not a disconnect.
        assert_eq!(
            h1.recv_from_timeout(0, Duration::from_millis(20)),
            Err(MeshError::Timeout { peer: 0 })
        );
    }

    #[test]
    fn dropped_message_is_silently_lost() {
        let (h0, h1, _stash) = pair(FaultPlan::new().drop_nth(0, 1, 1));
        h0.send(1, 10).unwrap();
        h0.send(1, 11).unwrap(); // dropped
        h0.send(1, 12).unwrap();
        assert_eq!(h1.recv_from(0).unwrap(), 10);
        assert_eq!(h1.recv_from(0).unwrap(), 12);
    }

    #[test]
    fn delayed_message_still_arrives() {
        let (h0, h1, _stash) = pair(FaultPlan::new().delay(0, 1, 0, Duration::from_millis(30)));
        h0.send(1, 7).unwrap();
        assert_eq!(h1.recv_from_timeout(0, Duration::from_secs(2)), Ok(7));
    }

    fn byte_pair(plan: FaultPlan) -> (FaultyMesh<Vec<u8>>, FaultyMesh<Vec<u8>>) {
        let plan = Arc::new(plan);
        let stash = CrashStash::new();
        let mut handles = LocalMesh::new::<Vec<u8>>(2);
        let h1 = handles.pop().unwrap();
        let h0 = handles.pop().unwrap();
        (
            FaultyMesh::with_plan(h0, Arc::clone(&plan), stash.clone()),
            FaultyMesh::with_plan(h1, plan, stash),
        )
    }

    #[test]
    fn tamper_rewrites_the_scripted_message_only() {
        let (h0, h1) = byte_pair(FaultPlan::new().tamper(
            0,
            Phase::Encrypt,
            1,
            Tamper::FlipByte {
                offset: 1,
                mask: 0xff,
            },
        ));
        h0.enter_phase(Phase::Encrypt).unwrap();
        h0.send(1, vec![1, 2, 3]).unwrap();
        h0.send(1, vec![1, 2, 3]).unwrap(); // the scripted nth = 1
        h0.send(1, vec![1, 2, 3]).unwrap();
        assert_eq!(h1.recv_from(0).unwrap(), vec![1, 2, 3]);
        assert_eq!(h1.recv_from(0).unwrap(), vec![1, 0xfd, 3]);
        assert_eq!(h1.recv_from(0).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn tamper_counts_per_phase_not_per_session() {
        // nth 0 of Hop: the Gain-phase message must pass untouched even
        // though it is the lane's absolute first message.
        let (h0, h1) = byte_pair(FaultPlan::new().tamper(0, Phase::Hop, 0, Tamper::Truncate(1)));
        h0.enter_phase(Phase::Gain).unwrap();
        h0.send(1, vec![9, 9]).unwrap();
        h0.enter_phase(Phase::Hop).unwrap();
        h0.send(1, vec![7, 7]).unwrap();
        assert_eq!(h1.recv_from(0).unwrap(), vec![9, 9]);
        assert_eq!(h1.recv_from(0).unwrap(), vec![7]);
    }

    #[test]
    fn equivocate_rewrites_one_lane_and_spares_the_rest() {
        let plan = Arc::new(FaultPlan::new().equivocate(
            0,
            2,
            Phase::KeyGen,
            0,
            Tamper::Replace(vec![0xbb]),
        ));
        let stash = CrashStash::new();
        let handles = LocalMesh::new::<Vec<u8>>(3);
        let meshes: Vec<FaultyMesh<Vec<u8>>> = handles
            .into_iter()
            .map(|h| FaultyMesh::with_plan(h, Arc::clone(&plan), stash.clone()))
            .collect();
        meshes[0].enter_phase(Phase::KeyGen).unwrap();
        meshes[0].broadcast(&vec![0xaa]).unwrap();
        assert_eq!(meshes[1].recv_from(0).unwrap(), vec![0xaa]);
        assert_eq!(meshes[2].recv_from(0).unwrap(), vec![0xbb]);
    }

    #[test]
    fn forged_frames_arrive_before_the_phases_honest_traffic() {
        let (h0, h1) = byte_pair(
            FaultPlan::new()
                .forge(0, Phase::Submit, vec![0xde, 0xad])
                .forge(0, Phase::Submit, vec![0xbe, 0xef]),
        );
        h0.enter_phase(Phase::Submit).unwrap();
        h0.send(1, vec![1]).unwrap();
        assert_eq!(h1.recv_from(0).unwrap(), vec![0xde, 0xad]);
        assert_eq!(h1.recv_from(0).unwrap(), vec![0xbe, 0xef]);
        assert_eq!(h1.recv_from(0).unwrap(), vec![1]);
    }

    #[test]
    fn forge_then_crash_injects_and_dies() {
        let (h0, h1) = byte_pair(
            FaultPlan::new()
                .forge(1, Phase::Hop, vec![0x66])
                .crash_stop(1, Phase::Hop),
        );
        assert_eq!(h1.enter_phase(Phase::Hop), Err(MeshError::Crashed));
        assert_eq!(h0.recv_from(1).unwrap(), vec![0x66]);
        assert_eq!(
            h0.recv_from_timeout(1, Duration::from_secs(1)),
            Err(MeshError::Disconnected { peer: 1 })
        );
    }

    #[test]
    fn out_of_range_tampers_degrade_to_no_ops() {
        let v = vec![1u8, 2, 3];
        assert_eq!(
            v.clone().tampered(&Tamper::FlipByte {
                offset: 99,
                mask: 1
            }),
            v
        );
        assert_eq!(
            v.clone().tampered(&Tamper::CopyWithin {
                src: 2,
                dst: 0,
                len: 9
            }),
            v
        );
        assert_eq!(v.clone().tampered(&Tamper::Truncate(10)), v);
        assert_eq!(
            v.clone().tampered(&Tamper::CopyWithin {
                src: 0,
                dst: 1,
                len: 2
            }),
            vec![1, 1, 2]
        );
        assert_eq!(v.tampered(&Tamper::Append(vec![9])), vec![1, 2, 3, 9]);
    }

    #[test]
    fn misbehavior_plans_are_cloneable_and_comparable() {
        let mk = || {
            FaultPlan::new()
                .tamper(
                    1,
                    Phase::Encrypt,
                    0,
                    Tamper::FlipByte { offset: 4, mask: 2 },
                )
                .equivocate(2, 1, Phase::KeyGen, 3, Tamper::Truncate(0))
                .forge(1, Phase::Hop, vec![2, 2])
        };
        assert_eq!(mk(), mk());
        assert!(mk().has_misbehavior());
        assert!(!FaultPlan::new()
            .crash_stop(1, Phase::Gain)
            .has_misbehavior());
        let printed = format!("{:?}", mk());
        assert!(printed.contains("FlipByte"), "{printed}");
    }

    #[test]
    fn seeded_with_zero_participants_is_empty() {
        // Regression: this used to fabricate victim id 1 out of thin air
        // (`1 + x % max(0, 1)`), a party that cannot exist.
        for seed in 0..16u64 {
            let plan = FaultPlan::seeded(seed, 0);
            assert_eq!(plan.crashes().count(), 0, "seed {seed} invented a victim");
            assert_eq!(plan, FaultPlan::new());
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_target_participants() {
        for seed in 0..32u64 {
            let a = FaultPlan::seeded(seed, 4);
            let b = FaultPlan::seeded(seed, 4);
            let ca: Vec<_> = a.crashes().collect();
            let cb: Vec<_> = b.crashes().collect();
            assert_eq!(ca, cb);
            assert_eq!(ca.len(), 1);
            let (victim, _, _) = ca[0];
            assert!((1..=4).contains(&victim), "victim {victim} out of range");
        }
        // Different seeds explore different faults.
        let plans: std::collections::HashSet<String> = (0..32)
            .map(|s| {
                format!(
                    "{:?}",
                    FaultPlan::seeded(s, 4).crashes().collect::<Vec<_>>()
                )
            })
            .collect();
        assert!(plans.len() > 4, "seeds barely vary: {plans:?}");
    }
}
