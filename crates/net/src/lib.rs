//! Message-passing substrate and the NS2-substitute network simulator.
//!
//! Four layers, bottom-up:
//!
//! * [`LocalMesh`] — a crossbeam-channel mesh for running protocol parties
//!   as real threads exchanging owned messages (used by examples and
//!   integration tests that want genuine concurrency). Receives can be
//!   bounded by a [`Deadline`] so a crashed peer cannot hang the session;
//!   [`PhaseBudget`] assigns each lockstep [`Phase`] its allowance.
//! * [`FaultyMesh`] — a deterministic fault-injection wrapper around a
//!   party's mesh handle, driven by a [`FaultPlan`]: liveness faults
//!   (crash-stop, silent stall, message delay, message drop) plus scripted
//!   *misbehavior* — byte [`Tamper`]s, per-lane equivocation and forged
//!   frame injection — for malicious-security testing.
//! * [`TrafficLog`] — a shared recorder of `(round, from, to, bytes)`
//!   tuples; the framework logs every wire message here so the harness can
//!   account bandwidth exactly.
//! * [`sim`] — a discrete-event network simulator standing in for the
//!   paper's NS2 setup (Sec. VII): a seeded random connected graph
//!   (80 nodes / 320 edges in the paper), 2 Mbps duplex links with 50 ms
//!   latency, Dijkstra shortest-path routing, FIFO store-and-forward
//!   queueing, and round-barrier scheduling. Feeding it a [`TrafficLog`]
//!   trace reproduces the Fig. 3(b) experiment.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

mod deadline;
mod fault;
mod mesh;
mod metrics;
pub mod sim;

pub use deadline::{Deadline, Phase, PhaseBudget};
pub use fault::{CrashStash, FaultKind, FaultPlan, FaultyMesh, Tamper, TamperBytes};
pub use mesh::{LocalMesh, MeshError, PartyHandle};
pub use metrics::{CacheCounters, MetricsSnapshot, PartyId, TrafficLog, TrafficSummary};
