//! A crossbeam-channel full mesh for thread-per-party executions.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::error::Error;
use std::fmt;

/// Error from mesh operations.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum MeshError {
    /// Target party id out of range.
    UnknownParty(usize),
    /// The peer hung up (its handle was dropped).
    Disconnected {
        /// The peer that is gone.
        peer: usize,
    },
    /// A party tried to message itself.
    SelfMessage,
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::UnknownParty(p) => write!(f, "unknown party {p}"),
            MeshError::Disconnected { peer } => write!(f, "party {peer} disconnected"),
            MeshError::SelfMessage => write!(f, "a party cannot message itself"),
        }
    }
}

impl Error for MeshError {}

/// One party's endpoint in the mesh.
///
/// Channels model the paper's pairwise secure channels: each ordered pair
/// of parties gets its own FIFO lane, so `recv_from` is deterministic per
/// sender.
#[derive(Debug)]
pub struct PartyHandle<T> {
    id: usize,
    n: usize,
    /// `senders[j]` sends to party `j` (`None` at our own index).
    senders: Vec<Option<Sender<T>>>,
    /// `receivers[j]` receives from party `j`.
    receivers: Vec<Option<Receiver<T>>>,
}

impl<T> PartyHandle<T> {
    /// This party's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of parties in the mesh.
    pub fn parties(&self) -> usize {
        self.n
    }

    /// Sends `message` to party `to`.
    ///
    /// # Errors
    ///
    /// [`MeshError::SelfMessage`], [`MeshError::UnknownParty`], or
    /// [`MeshError::Disconnected`] if the peer's handle was dropped.
    pub fn send(&self, to: usize, message: T) -> Result<(), MeshError> {
        if to == self.id {
            return Err(MeshError::SelfMessage);
        }
        let sender = self
            .senders
            .get(to)
            .ok_or(MeshError::UnknownParty(to))?
            .as_ref()
            .expect("non-self entries are populated");
        sender
            .send(message)
            .map_err(|_| MeshError::Disconnected { peer: to })
    }

    /// Blocks until a message from party `from` arrives.
    ///
    /// # Errors
    ///
    /// [`MeshError::SelfMessage`], [`MeshError::UnknownParty`], or
    /// [`MeshError::Disconnected`] if the peer hung up with no queued
    /// messages.
    pub fn recv_from(&self, from: usize) -> Result<T, MeshError> {
        if from == self.id {
            return Err(MeshError::SelfMessage);
        }
        let receiver = self
            .receivers
            .get(from)
            .ok_or(MeshError::UnknownParty(from))?
            .as_ref()
            .expect("non-self entries are populated");
        receiver
            .recv()
            .map_err(|_| MeshError::Disconnected { peer: from })
    }

    /// Broadcasts clones of `message` to every other party.
    ///
    /// # Errors
    ///
    /// Propagates the first send failure.
    pub fn broadcast(&self, message: &T) -> Result<(), MeshError>
    where
        T: Clone,
    {
        for to in 0..self.n {
            if to != self.id {
                self.send(to, message.clone())?;
            }
        }
        Ok(())
    }

    /// Receives one message from every other party, in party order.
    ///
    /// # Errors
    ///
    /// Propagates the first receive failure.
    pub fn gather(&self) -> Result<Vec<(usize, T)>, MeshError> {
        let mut out = Vec::with_capacity(self.n - 1);
        for from in 0..self.n {
            if from != self.id {
                out.push((from, self.recv_from(from)?));
            }
        }
        Ok(out)
    }
}

/// Constructs a full mesh of `n` parties.
#[derive(Debug)]
pub struct LocalMesh;

impl LocalMesh {
    /// Builds handles for `n` parties; hand one to each thread.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[allow(clippy::new_ret_no_self)] // one handle per party, not a LocalMesh
    pub fn new<T>(n: usize) -> Vec<PartyHandle<T>> {
        assert!(n > 0, "mesh needs at least one party");
        // channel[i][j] carries i → j.
        let mut txs: Vec<Vec<Option<Sender<T>>>> = (0..n).map(|_| Vec::new()).collect();
        let mut rxs: Vec<Vec<Option<Receiver<T>>>> = (0..n).map(|_| Vec::new()).collect();
        for (i, tx_row) in txs.iter_mut().enumerate() {
            for (j, rx_row) in rxs.iter_mut().enumerate() {
                if i == j {
                    tx_row.push(None);
                    rx_row.push(None);
                } else {
                    let (tx, rx) = unbounded();
                    tx_row.push(Some(tx));
                    rx_row.push(Some(rx));
                }
            }
        }
        // rxs[j][i] currently holds the receiver for i → j at position i —
        // but we pushed in i-major order, so rxs[j] was filled at index i
        // only when the outer loop visited i. Reorder: rxs[j] is indexed by
        // sender already because we push exactly once per (i, j) pair in
        // ascending i. Sanity: each rxs[j] has n entries after the loops.
        txs.into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(id, (senders, receivers))| PartyHandle {
                id,
                n,
                senders,
                receivers,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_send_recv() {
        let mut handles = LocalMesh::new::<u32>(3);
        let h2 = handles.pop().unwrap();
        let h1 = handles.pop().unwrap();
        let h0 = handles.pop().unwrap();
        h0.send(1, 42).unwrap();
        h2.send(1, 7).unwrap();
        assert_eq!(h1.recv_from(0).unwrap(), 42);
        assert_eq!(h1.recv_from(2).unwrap(), 7);
    }

    #[test]
    fn per_sender_fifo_ordering() {
        let handles = LocalMesh::new::<u32>(2);
        let (h0, h1) = {
            let mut it = handles.into_iter();
            (it.next().unwrap(), it.next().unwrap())
        };
        for v in 0..10 {
            h0.send(1, v).unwrap();
        }
        for v in 0..10 {
            assert_eq!(h1.recv_from(0).unwrap(), v);
        }
    }

    #[test]
    fn broadcast_and_gather_across_threads() {
        let n = 4;
        let handles = LocalMesh::new::<String>(n);
        let joined: Vec<_> = handles
            .into_iter()
            .map(|h| {
                thread::spawn(move || {
                    h.broadcast(&format!("hello from {}", h.id())).unwrap();
                    let got = h.gather().unwrap();
                    assert_eq!(got.len(), n - 1);
                    for (from, msg) in got {
                        assert_eq!(msg, format!("hello from {from}"));
                    }
                })
            })
            .collect();
        for j in joined {
            j.join().unwrap();
        }
    }

    #[test]
    fn error_cases() {
        let mut handles = LocalMesh::new::<u8>(2);
        let h1 = handles.pop().unwrap();
        let h0 = handles.pop().unwrap();
        assert_eq!(h0.send(0, 1), Err(MeshError::SelfMessage));
        assert_eq!(h0.send(9, 1), Err(MeshError::UnknownParty(9)));
        drop(h1);
        assert_eq!(h0.send(1, 1), Err(MeshError::Disconnected { peer: 1 }));
        assert_eq!(h0.recv_from(1), Err(MeshError::Disconnected { peer: 1 }));
    }
}
