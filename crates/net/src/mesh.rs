//! A crossbeam-channel full mesh for thread-per-party executions.

use crate::deadline::Deadline;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Error from mesh operations.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum MeshError {
    /// Target party id out of range.
    UnknownParty(usize),
    /// The peer hung up (its handle was dropped).
    Disconnected {
        /// The peer that is gone.
        peer: usize,
    },
    /// No message arrived from the peer before the deadline.
    Timeout {
        /// The peer that stayed silent.
        peer: usize,
    },
    /// A party tried to message itself.
    SelfMessage,
    /// A broadcast could not deliver to every peer; lists every failed
    /// target (each failure is a disconnect — the only way a send to a
    /// valid peer can fail).
    Broadcast {
        /// Peers the message could not be delivered to, ascending.
        disconnected: Vec<usize>,
    },
    /// This party was stopped by an injected fault
    /// ([`FaultyMesh`](crate::FaultyMesh)); it must exit its protocol
    /// thread without further sends.
    Crashed,
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::UnknownParty(p) => write!(f, "unknown party {p}"),
            MeshError::Disconnected { peer } => write!(f, "party {peer} disconnected"),
            MeshError::Timeout { peer } => {
                write!(f, "party {peer} sent nothing before the deadline")
            }
            MeshError::SelfMessage => write!(f, "a party cannot message itself"),
            MeshError::Broadcast { disconnected } => {
                write!(f, "broadcast failed to reach parties {disconnected:?}")
            }
            MeshError::Crashed => write!(f, "this party was crashed by fault injection"),
        }
    }
}

impl Error for MeshError {}

/// One party's endpoint in the mesh.
///
/// Channels model the paper's pairwise secure channels: each ordered pair
/// of parties gets its own FIFO lane, so `recv_from` is deterministic per
/// sender.
///
/// The self-slot is structurally absent: lanes are stored in a dense
/// `n − 1` vector indexed by [`lane`](Self::lane), so "message to self"
/// is unrepresentable rather than a runtime invariant.
#[derive(Debug)]
pub struct PartyHandle<T> {
    id: usize,
    n: usize,
    /// `senders[lane(j)]` sends to party `j` (no self lane).
    senders: Vec<Sender<T>>,
    /// `receivers[lane(j)]` receives from party `j` (no self lane).
    receivers: Vec<Receiver<T>>,
}

impl<T> PartyHandle<T> {
    /// This party's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of parties in the mesh.
    pub fn parties(&self) -> usize {
        self.n
    }

    /// Dense lane index for peer `j` (the self-slot does not exist).
    ///
    /// # Errors
    ///
    /// [`MeshError::SelfMessage`] for `j == id`, [`MeshError::UnknownParty`]
    /// for out-of-range ids.
    fn lane(&self, j: usize) -> Result<usize, MeshError> {
        if j == self.id {
            return Err(MeshError::SelfMessage);
        }
        if j >= self.n {
            return Err(MeshError::UnknownParty(j));
        }
        Ok(if j < self.id { j } else { j - 1 })
    }

    /// Sends `message` to party `to`.
    ///
    /// # Errors
    ///
    /// [`MeshError::SelfMessage`], [`MeshError::UnknownParty`], or
    /// [`MeshError::Disconnected`] if the peer's handle was dropped.
    pub fn send(&self, to: usize, message: T) -> Result<(), MeshError> {
        self.senders[self.lane(to)?]
            .send(message)
            .map_err(|_| MeshError::Disconnected { peer: to })
    }

    /// Blocks until a message from party `from` arrives.
    ///
    /// # Errors
    ///
    /// [`MeshError::SelfMessage`], [`MeshError::UnknownParty`], or
    /// [`MeshError::Disconnected`] if the peer hung up with no queued
    /// messages.
    pub fn recv_from(&self, from: usize) -> Result<T, MeshError> {
        self.receivers[self.lane(from)?]
            .recv()
            .map_err(|_| MeshError::Disconnected { peer: from })
    }

    /// Waits at most `timeout` for a message from party `from`.
    ///
    /// # Errors
    ///
    /// [`MeshError::Timeout`] if nothing arrived in time, otherwise as
    /// [`recv_from`](Self::recv_from).
    pub fn recv_from_timeout(&self, from: usize, timeout: Duration) -> Result<T, MeshError> {
        match self.receivers[self.lane(from)?].recv_timeout(timeout) {
            Ok(v) => Ok(v),
            Err(RecvTimeoutError::Timeout) => Err(MeshError::Timeout { peer: from }),
            Err(RecvTimeoutError::Disconnected) => Err(MeshError::Disconnected { peer: from }),
        }
    }

    /// Waits until `deadline` for a message from party `from`.
    ///
    /// # Errors
    ///
    /// As [`recv_from_timeout`](Self::recv_from_timeout).
    pub fn recv_from_deadline(&self, from: usize, deadline: &Deadline) -> Result<T, MeshError> {
        self.recv_from_timeout(from, deadline.remaining())
    }

    /// Broadcasts clones of `message` to every other party, attempting
    /// delivery to **all** peers even when some fail.
    ///
    /// # Errors
    ///
    /// [`MeshError::Broadcast`] listing every peer the message could not
    /// reach (a partial broadcast would silently deadlock the skipped
    /// peers inside [`gather`](Self::gather)).
    pub fn broadcast(&self, message: &T) -> Result<(), MeshError>
    where
        T: Clone,
    {
        let mut disconnected = Vec::new();
        for to in 0..self.n {
            if to != self.id && self.send(to, message.clone()).is_err() {
                disconnected.push(to);
            }
        }
        if disconnected.is_empty() {
            Ok(())
        } else {
            Err(MeshError::Broadcast { disconnected })
        }
    }

    /// Receives one message from every other party, in party order.
    ///
    /// # Errors
    ///
    /// Propagates the first receive failure.
    pub fn gather(&self) -> Result<Vec<(usize, T)>, MeshError> {
        let mut out = Vec::with_capacity(self.n - 1);
        for from in 0..self.n {
            if from != self.id {
                out.push((from, self.recv_from(from)?));
            }
        }
        Ok(out)
    }
}

/// Constructs a full mesh of `n` parties.
#[derive(Debug)]
pub struct LocalMesh;

impl LocalMesh {
    /// Builds handles for `n` parties; hand one to each thread.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[allow(clippy::new_ret_no_self)] // one handle per party, not a LocalMesh
    pub fn new<T>(n: usize) -> Vec<PartyHandle<T>> {
        assert!(n > 0, "mesh needs at least one party");
        // channel (i, j) carries i → j; build all n·(n−1) lanes, then deal
        // them out with the self-slot structurally absent.
        let mut txs: Vec<Vec<Sender<T>>> = (0..n).map(|_| Vec::with_capacity(n - 1)).collect();
        let mut rxs: Vec<Vec<Receiver<T>>> = (0..n).map(|_| Vec::with_capacity(n - 1)).collect();
        for (i, tx_row) in txs.iter_mut().enumerate() {
            for (j, rx_row) in rxs.iter_mut().enumerate() {
                if i != j {
                    let (tx, rx) = unbounded();
                    tx_row.push(tx); // tx_row index: lane(j) for sender i
                    rx_row.push(rx); // rx_row index: lane(i) for receiver j
                }
            }
        }
        txs.into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(id, (senders, receivers))| PartyHandle {
                id,
                n,
                senders,
                receivers,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_send_recv() {
        let mut handles = LocalMesh::new::<u32>(3);
        let h2 = handles.pop().unwrap();
        let h1 = handles.pop().unwrap();
        let h0 = handles.pop().unwrap();
        h0.send(1, 42).unwrap();
        h2.send(1, 7).unwrap();
        assert_eq!(h1.recv_from(0).unwrap(), 42);
        assert_eq!(h1.recv_from(2).unwrap(), 7);
    }

    #[test]
    fn per_sender_fifo_ordering() {
        let handles = LocalMesh::new::<u32>(2);
        let (h0, h1) = {
            let mut it = handles.into_iter();
            (it.next().unwrap(), it.next().unwrap())
        };
        for v in 0..10 {
            h0.send(1, v).unwrap();
        }
        for v in 0..10 {
            assert_eq!(h1.recv_from(0).unwrap(), v);
        }
    }

    #[test]
    fn broadcast_and_gather_across_threads() {
        let n = 4;
        let handles = LocalMesh::new::<String>(n);
        let joined: Vec<_> = handles
            .into_iter()
            .map(|h| {
                thread::spawn(move || {
                    h.broadcast(&format!("hello from {}", h.id())).unwrap();
                    let got = h.gather().unwrap();
                    assert_eq!(got.len(), n - 1);
                    for (from, msg) in got {
                        assert_eq!(msg, format!("hello from {from}"));
                    }
                })
            })
            .collect();
        for j in joined {
            j.join().unwrap();
        }
    }

    #[test]
    fn error_cases() {
        let mut handles = LocalMesh::new::<u8>(2);
        let h1 = handles.pop().unwrap();
        let h0 = handles.pop().unwrap();
        assert_eq!(h0.send(0, 1), Err(MeshError::SelfMessage));
        assert_eq!(h0.send(9, 1), Err(MeshError::UnknownParty(9)));
        drop(h1);
        assert_eq!(h0.send(1, 1), Err(MeshError::Disconnected { peer: 1 }));
        assert_eq!(h0.recv_from(1), Err(MeshError::Disconnected { peer: 1 }));
    }

    #[test]
    fn recv_timeout_fires_on_silence_but_not_on_queued_data() {
        let mut handles = LocalMesh::new::<u8>(2);
        let h1 = handles.pop().unwrap();
        let h0 = handles.pop().unwrap();
        assert_eq!(
            h1.recv_from_timeout(0, Duration::from_millis(10)),
            Err(MeshError::Timeout { peer: 0 })
        );
        h0.send(1, 9).unwrap();
        assert_eq!(h1.recv_from_timeout(0, Duration::from_millis(10)), Ok(9));
        // Queued messages survive a sender drop; only then Disconnected.
        h0.send(1, 8).unwrap();
        drop(h0);
        assert_eq!(h1.recv_from_timeout(0, Duration::from_secs(1)), Ok(8));
        assert_eq!(
            h1.recv_from_timeout(0, Duration::from_secs(1)),
            Err(MeshError::Disconnected { peer: 0 })
        );
    }

    #[test]
    fn recv_deadline_is_a_fixed_point_in_time() {
        let mut handles = LocalMesh::new::<u8>(2);
        let _h1 = handles.pop().unwrap();
        let h0 = handles.pop().unwrap();
        let d = Deadline::after(Duration::from_millis(5));
        assert_eq!(
            h0.recv_from_deadline(1, &d),
            Err(MeshError::Timeout { peer: 1 })
        );
        assert!(d.expired());
    }

    #[test]
    fn broadcast_reports_every_failed_target_and_reaches_the_rest() {
        let mut handles = LocalMesh::new::<u8>(4);
        let h3 = handles.pop().unwrap();
        let h2 = handles.pop().unwrap();
        let h1 = handles.pop().unwrap();
        let h0 = handles.pop().unwrap();
        drop(h1);
        drop(h3);
        // Parties 1 and 3 are gone; 2 must still get the message.
        assert_eq!(
            h0.broadcast(&5),
            Err(MeshError::Broadcast {
                disconnected: vec![1, 3]
            })
        );
        assert_eq!(h2.recv_from(0).unwrap(), 5);
    }
}
