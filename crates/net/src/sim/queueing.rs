//! FIFO store-and-forward queueing over a [`Topology`].

use super::graph::Topology;
use crate::metrics::{PartyId, TrafficLog};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::error::Error;
use std::fmt;

/// Typed failure from a simulation run.
///
/// A trace is external input (it may come from a recorded log of another
/// system), so malformed traces must surface as errors, not panics.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum SimError {
    /// A message references a party id with no placement.
    UnknownParty {
        /// The out-of-range party id.
        party: PartyId,
        /// Number of placed parties.
        parties: usize,
    },
    /// The topology has no path between two hosting nodes (disconnected
    /// components in a [`Topology::from_edges`] graph).
    Unreachable {
        /// Node hosting the sender.
        src_node: usize,
        /// Node hosting the receiver.
        dst_node: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownParty { party, parties } => {
                write!(f, "trace references party {party}, only {parties} placed")
            }
            SimError::Unreachable { src_node, dst_node } => {
                write!(f, "no route between nodes {src_node} and {dst_node}")
            }
        }
    }
}

impl Error for SimError {}

/// Link and transport parameters (paper defaults: 2 Mbps, 50 ms, TCP).
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Link bandwidth in bits per second (each direction — duplex).
    pub bandwidth_bps: f64,
    /// One-way per-link propagation delay in seconds.
    pub latency_s: f64,
    /// Per-segment protocol overhead in bytes (TCP/IP headers).
    pub header_bytes: usize,
    /// Maximum segment payload in bytes (Ethernet MSS).
    pub mss_bytes: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            bandwidth_bps: 2_000_000.0,
            latency_s: 0.050,
            header_bytes: 40,
            mss_bytes: 1460,
        }
    }
}

/// One message of a trace round.
#[derive(Clone, Debug)]
pub struct TraceMessage {
    /// Sending party.
    pub from: PartyId,
    /// Receiving party.
    pub to: PartyId,
    /// Payload bytes.
    pub bytes: usize,
}

/// Result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Wall-clock completion time in seconds.
    pub completion_s: f64,
    /// Messages delivered.
    pub messages: u64,
    /// Total bytes on the wire including protocol headers, summed over
    /// every traversed link (counts congestion-relevant load).
    pub link_bytes: u64,
    /// Largest per-round delivery time observed (the slowest barrier).
    pub slowest_round_s: f64,
}

/// The simulator: a topology plus a placement of protocol parties onto
/// nodes.
#[derive(Clone, Debug)]
pub struct NetworkSim {
    topology: Topology,
    config: SimConfig,
    /// `placement[party]` = topology node hosting that party.
    placement: Vec<usize>,
}

impl NetworkSim {
    /// Places `parties` parties on distinct random nodes of `topology`.
    ///
    /// # Panics
    ///
    /// Panics if there are more parties than nodes.
    pub fn new(topology: Topology, parties: usize, config: SimConfig, seed: u64) -> Self {
        assert!(parties <= topology.nodes(), "more parties than nodes");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nodes: Vec<usize> = (0..topology.nodes()).collect();
        nodes.shuffle(&mut rng);
        nodes.truncate(parties);
        NetworkSim {
            topology,
            config,
            placement: nodes,
        }
    }

    /// The paper's Fig. 3(b) setup: 80 nodes, 320 edges, 2 Mbps / 50 ms.
    pub fn paper_setup(parties: usize, seed: u64) -> Self {
        let topo = Topology::random_connected(80, 320, seed);
        NetworkSim::new(topo, parties, SimConfig::default(), seed.wrapping_add(1))
    }

    /// Node hosting `party`, or `None` for an unplaced id.
    pub fn node_of(&self, party: PartyId) -> Option<usize> {
        self.placement.get(party).copied()
    }

    /// Both endpoints' hosting nodes, checked.
    fn endpoints(&self, msg: &TraceMessage) -> Result<(usize, usize), SimError> {
        let parties = self.placement.len();
        let src = self.node_of(msg.from).ok_or(SimError::UnknownParty {
            party: msg.from,
            parties,
        })?;
        let dst = self.node_of(msg.to).ok_or(SimError::UnknownParty {
            party: msg.to,
            parties,
        })?;
        Ok((src, dst))
    }

    /// Bytes on the wire for a payload, including per-segment headers.
    fn wire_bytes(&self, payload: usize) -> usize {
        let segments = payload.div_ceil(self.config.mss_bytes).max(1);
        payload + segments * self.config.header_bytes
    }

    /// Plays a round-barrier trace: all messages of round `k+1` start only
    /// after every message of round `k` has been delivered (this models
    /// the lockstep structure of both frameworks; the shuffle-decrypt
    /// chain appears as `n` single-message rounds).
    ///
    /// Within a round, messages contend for links in FIFO order of
    /// arrival; each hop costs serialization (`bytes·8 / bandwidth`) plus
    /// propagation latency, per direction of the duplex link.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownParty`] for a message naming an unplaced party,
    /// [`SimError::Unreachable`] if the topology has no path between the
    /// hosting nodes.
    pub fn simulate(&self, rounds: &[Vec<TraceMessage>]) -> Result<SimReport, SimError> {
        // next_free[edge][direction]: earliest time the link half is idle.
        let mut next_free = vec![[0.0f64; 2]; self.topology.edge_count()];
        let mut clock = 0.0f64;
        let mut messages = 0u64;
        let mut link_bytes = 0u64;
        let mut slowest_round = 0.0f64;

        for round in rounds {
            let round_start = clock;
            let mut round_end = round_start;
            for msg in round {
                if msg.from == msg.to {
                    continue;
                }
                let (src, dst) = self.endpoints(msg)?;
                let path = self.topology.route(src, dst).ok_or(SimError::Unreachable {
                    src_node: src,
                    dst_node: dst,
                })?;
                let bytes = self.wire_bytes(msg.bytes);
                let tx_time = bytes as f64 * 8.0 / self.config.bandwidth_bps;
                let mut t = round_start;
                let mut prev_node = src;
                for &edge in &path {
                    let (a, b) = self.topology.edge(edge);
                    let next_node = if prev_node == a { b } else { a };
                    let dir = usize::from(prev_node != a);
                    // Wait for the link half, serialize, propagate.
                    let start = t.max(next_free[edge][dir]);
                    let done_tx = start + tx_time;
                    next_free[edge][dir] = done_tx;
                    t = done_tx + self.config.latency_s;
                    link_bytes += bytes as u64;
                    prev_node = next_node;
                }
                debug_assert_eq!(prev_node, dst);
                round_end = round_end.max(t);
                messages += 1;
            }
            slowest_round = slowest_round.max(round_end - round_start);
            clock = round_end;
        }
        Ok(SimReport {
            completion_s: clock,
            messages,
            link_bytes,
            slowest_round_s: slowest_round,
        })
    }

    /// Converts a [`TrafficLog`] into a round-barrier trace and simulates
    /// it.
    ///
    /// # Errors
    ///
    /// As [`simulate`](Self::simulate).
    pub fn simulate_log(&self, log: &TrafficLog) -> Result<SimReport, SimError> {
        let records = log.records();
        let max_round = records.iter().map(|r| r.round).max().map_or(0, |r| r + 1);
        let mut rounds: Vec<Vec<TraceMessage>> = vec![Vec::new(); max_round as usize];
        for r in records {
            rounds[r.round as usize].push(TraceMessage {
                from: r.from,
                to: r.to,
                bytes: r.bytes,
            });
        }
        self.simulate(&rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_sim() -> NetworkSim {
        // Two nodes, one link; parties 0 and 1 on the two nodes.
        let topo = Topology::from_edges(2, vec![(0, 1)]);
        NetworkSim::new(topo, 2, SimConfig::default(), 1)
    }

    #[test]
    fn single_message_time_is_tx_plus_latency() {
        let sim = line_sim();
        let report = sim
            .simulate(&[vec![TraceMessage {
                from: 0,
                to: 1,
                bytes: 1000,
            }]])
            .unwrap();
        // 1000 payload + 1 header(40) = 1040 B → 8320 bits / 2 Mbps = 4.16 ms; + 50 ms.
        let expect = 8320.0 / 2_000_000.0 + 0.050;
        assert!(
            (report.completion_s - expect).abs() < 1e-9,
            "{}",
            report.completion_s
        );
        assert_eq!(report.messages, 1);
    }

    #[test]
    fn same_direction_messages_queue() {
        let sim = line_sim();
        let msg = TraceMessage {
            from: 0,
            to: 1,
            bytes: 1000,
        };
        let one = sim.simulate(&[vec![msg.clone()]]).unwrap().completion_s;
        let two = sim
            .simulate(&[vec![msg.clone(), msg.clone()]])
            .unwrap()
            .completion_s;
        // Second message waits for serialization of the first, but latency overlaps.
        let tx = 8320.0 / 2_000_000.0;
        assert!((two - (one + tx)).abs() < 1e-9);
    }

    #[test]
    fn duplex_directions_do_not_contend() {
        let sim = line_sim();
        let a = TraceMessage {
            from: 0,
            to: 1,
            bytes: 1000,
        };
        let b = TraceMessage {
            from: 1,
            to: 0,
            bytes: 1000,
        };
        let both = sim.simulate(&[vec![a.clone(), b]]).unwrap().completion_s;
        let alone = sim.simulate(&[vec![a]]).unwrap().completion_s;
        assert!(
            (both - alone).abs() < 1e-12,
            "duplex halves are independent"
        );
    }

    #[test]
    fn rounds_are_barriers() {
        let sim = line_sim();
        let msg = TraceMessage {
            from: 0,
            to: 1,
            bytes: 1000,
        };
        let one_round = sim
            .simulate(&[vec![msg.clone(), msg.clone()]])
            .unwrap()
            .completion_s;
        let two_rounds = sim
            .simulate(&[vec![msg.clone()], vec![msg.clone()]])
            .unwrap()
            .completion_s;
        // Across a barrier, latency cannot be overlapped → strictly slower.
        assert!(two_rounds > one_round);
    }

    #[test]
    fn multi_hop_accumulates_latency() {
        let topo = Topology::from_edges(3, vec![(0, 1), (1, 2)]);
        let mut sim = NetworkSim::new(topo, 3, SimConfig::default(), 1);
        // Force placement party i → node i for determinism.
        sim.placement = vec![0, 1, 2];
        let r = sim
            .simulate(&[vec![TraceMessage {
                from: 0,
                to: 2,
                bytes: 100,
            }]])
            .unwrap();
        let tx = (100.0 + 40.0) * 8.0 / 2_000_000.0;
        let expect = 2.0 * (tx + 0.050);
        assert!((r.completion_s - expect).abs() < 1e-9);
        assert_eq!(r.link_bytes, 2 * 140);
    }

    #[test]
    fn paper_setup_runs() {
        let sim = NetworkSim::paper_setup(25, 7);
        let trace = vec![vec![TraceMessage {
            from: 0,
            to: 24,
            bytes: 4096,
        }]];
        let r = sim.simulate(&trace).unwrap();
        assert!(r.completion_s > 0.05, "at least one hop of latency");
        assert!(r.completion_s < 5.0, "sane upper bound");
    }

    #[test]
    fn simulate_log_round_grouping() {
        let sim = line_sim();
        let log = TrafficLog::new();
        log.record(0, 0, 1, 500, "a");
        log.record(1, 1, 0, 500, "b");
        let r = sim.simulate_log(&log).unwrap();
        assert_eq!(r.messages, 2);
        assert!(r.slowest_round_s > 0.0);
    }

    #[test]
    fn segmentation_overhead_counted() {
        let sim = line_sim();
        // 3000 B payload → 3 segments → 120 B headers.
        let r = sim
            .simulate(&[vec![TraceMessage {
                from: 0,
                to: 1,
                bytes: 3000,
            }]])
            .unwrap();
        assert_eq!(r.link_bytes, 3120);
    }

    #[test]
    fn unknown_party_is_a_typed_error() {
        let sim = line_sim();
        let err = sim
            .simulate(&[vec![TraceMessage {
                from: 0,
                to: 7,
                bytes: 10,
            }]])
            .unwrap_err();
        assert_eq!(
            err,
            SimError::UnknownParty {
                party: 7,
                parties: 2
            }
        );
    }

    #[test]
    fn disconnected_topology_is_a_typed_error() {
        // Two components: {0,1} and {2,3}; parties placed across the cut.
        let topo = Topology::from_edges(4, vec![(0, 1), (2, 3)]);
        let mut sim = NetworkSim::new(topo, 4, SimConfig::default(), 1);
        sim.placement = vec![0, 1, 2, 3];
        let err = sim
            .simulate(&[vec![TraceMessage {
                from: 0,
                to: 2,
                bytes: 10,
            }]])
            .unwrap_err();
        assert_eq!(
            err,
            SimError::Unreachable {
                src_node: 0,
                dst_node: 2
            }
        );
        // Messages within a component still work on the same sim.
        let ok = sim
            .simulate(&[vec![TraceMessage {
                from: 2,
                to: 3,
                bytes: 10,
            }]])
            .unwrap();
        assert_eq!(ok.messages, 1);
    }
}
