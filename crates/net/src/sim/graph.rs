//! Random connected topologies and shortest-path routing.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An undirected multigraph-free topology with uniform links.
#[derive(Clone, Debug)]
pub struct Topology {
    nodes: usize,
    /// Edge list, each `(a, b)` with `a < b`.
    edges: Vec<(usize, usize)>,
    /// Adjacency: `adj[v]` = list of `(neighbour, edge_index)`.
    adj: Vec<Vec<(usize, usize)>>,
}

impl Topology {
    /// Builds a topology from an explicit edge list.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, duplicate edges, or out-of-range endpoints.
    pub fn from_edges(nodes: usize, edges: Vec<(usize, usize)>) -> Self {
        let mut seen = std::collections::HashSet::new();
        let mut adj = vec![Vec::new(); nodes];
        let mut normalized = Vec::with_capacity(edges.len());
        for (idx, &(a, b)) in edges.iter().enumerate() {
            assert!(a != b, "self-loop at node {a}");
            assert!(a < nodes && b < nodes, "edge endpoint out of range");
            let key = (a.min(b), a.max(b));
            assert!(seen.insert(key), "duplicate edge {key:?}");
            normalized.push(key);
            adj[a].push((b, idx));
            adj[b].push((a, idx));
        }
        Topology {
            nodes,
            edges: normalized,
            adj,
        }
    }

    /// The paper's construction: a connected random graph with `nodes`
    /// vertices and exactly `edges` edges (a random spanning tree plus
    /// random extra edges — equivalent to deleting edges from the complete
    /// graph while preserving connectivity).
    ///
    /// # Panics
    ///
    /// Panics if `edges < nodes − 1` (cannot be connected) or more edges
    /// than the complete graph are requested.
    pub fn random_connected(nodes: usize, edges: usize, seed: u64) -> Self {
        assert!(nodes >= 2, "need at least two nodes");
        assert!(edges >= nodes - 1, "too few edges for connectivity");
        assert!(
            edges <= nodes * (nodes - 1) / 2,
            "more edges than complete graph"
        );
        let mut rng = StdRng::seed_from_u64(seed);

        // Random spanning tree over a shuffled node order.
        let mut order: Vec<usize> = (0..nodes).collect();
        order.shuffle(&mut rng);
        let mut edge_set = std::collections::HashSet::new();
        let mut edge_list = Vec::with_capacity(edges);
        for i in 1..nodes {
            let parent = order[rng.gen_range(0..i)];
            let child = order[i];
            let key = (parent.min(child), parent.max(child));
            edge_set.insert(key);
            edge_list.push(key);
        }
        // Random extra edges.
        while edge_list.len() < edges {
            let a = rng.gen_range(0..nodes);
            let b = rng.gen_range(0..nodes);
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if edge_set.insert(key) {
                edge_list.push(key);
            }
        }
        Topology::from_edges(nodes, edge_list)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Endpoints of edge `idx`.
    pub fn edge(&self, idx: usize) -> (usize, usize) {
        self.edges[idx]
    }

    /// Returns `true` if every node can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.nodes == 0 {
            return true;
        }
        let mut seen = vec![false; self.nodes];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(w, _) in &self.adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.nodes
    }

    /// Minimum-hop route from `src` to `dst` as a list of edge indices
    /// (Dijkstra over unit weights — links are uniform in the paper's
    /// setup). Returns `None` if unreachable.
    pub fn route(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        if src == dst {
            return Some(Vec::new());
        }
        let mut dist = vec![usize::MAX; self.nodes];
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; self.nodes]; // (node, edge)
        let mut heap = BinaryHeap::new();
        dist[src] = 0;
        heap.push(Reverse((0usize, src)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > dist[v] {
                continue;
            }
            if v == dst {
                break;
            }
            for &(w, e) in &self.adj[v] {
                if d + 1 < dist[w] {
                    dist[w] = d + 1;
                    prev[w] = Some((v, e));
                    heap.push(Reverse((d + 1, w)));
                }
            }
        }
        if dist[dst] == usize::MAX {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = dst;
        while cur != src {
            // Reachable dst ⇒ the predecessor chain is complete; a gap
            // would only mean a graph bug, reported as unreachable.
            let (p, e) = prev[cur]?;
            path.push(e);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_is_connected_with_exact_edges() {
        let t = Topology::random_connected(80, 320, 7);
        assert_eq!(t.nodes(), 80);
        assert_eq!(t.edge_count(), 320);
        assert!(t.is_connected());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Topology::random_connected(20, 40, 1);
        let b = Topology::random_connected(20, 40, 1);
        let c = Topology::random_connected(20, 40, 2);
        assert_eq!(a.edges, b.edges);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn spanning_tree_minimum() {
        let t = Topology::random_connected(10, 9, 3);
        assert!(t.is_connected());
        assert_eq!(t.edge_count(), 9);
    }

    #[test]
    fn route_on_line_graph() {
        // 0 - 1 - 2 - 3
        let t = Topology::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let r = t.route(0, 3).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(t.route(2, 2).unwrap().len(), 0);
    }

    #[test]
    fn route_prefers_shortcut() {
        // Ring with a chord.
        let t = Topology::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        assert_eq!(t.route(0, 2).unwrap().len(), 1);
        assert_eq!(t.route(1, 4).unwrap().len(), 2);
    }

    #[test]
    fn disconnected_route_is_none() {
        let t = Topology::from_edges(4, vec![(0, 1), (2, 3)]);
        assert!(!t.is_connected());
        assert!(t.route(0, 3).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edges_rejected() {
        let _ = Topology::from_edges(3, vec![(0, 1), (1, 0)]);
    }
}
