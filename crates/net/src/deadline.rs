//! Per-phase deadlines for the lockstep protocol.
//!
//! The paper's protocol is strictly lockstep (keygen → encrypt → compare
//! → n-hop shuffle chain → submit), so a single crashed or silent party
//! would block every other party forever if receives were unbounded.
//! [`PhaseBudget`] assigns each protocol phase a wall-clock allowance and
//! [`Deadline`] is the arithmetic on one concrete expiry instant.
//!
//! Deadlines are a pure *liveness* mechanism: they never feed protocol
//! state or randomness, so the wall-clock reads here do not endanger the
//! bit-identical-transcript guarantee (this module is sanctioned in the
//! `ppgr-tidy` determinism registry — see `docs/ANALYSIS.md`).

use std::fmt;
use std::time::{Duration, Instant};

/// The lockstep phases of a ranking session, in protocol order.
///
/// Used for deadline selection ([`PhaseBudget::of`]) and for blame
/// attribution in timeout errors and abort frames.
#[derive(Clone, Copy, Debug, Eq, Hash, Ord, PartialEq, PartialOrd)]
pub enum Phase {
    /// Phase 1: the masked-gain secure dot product.
    Gain,
    /// Phase 2, step 5: key shares and proofs of key knowledge.
    KeyGen,
    /// Phase 2, step 6: bitwise encryption broadcast.
    Encrypt,
    /// Phase 2, step 7: local comparison-set construction.
    Compare,
    /// Phase 2, step 8: the shuffle-decrypt chain.
    Hop,
    /// Phase 3: rank submission and verification.
    Submit,
}

impl Phase {
    /// All phases in protocol order.
    pub const ALL: [Phase; 6] = [
        Phase::Gain,
        Phase::KeyGen,
        Phase::Encrypt,
        Phase::Compare,
        Phase::Hop,
        Phase::Submit,
    ];
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Phase::Gain => "gain",
            Phase::KeyGen => "keygen",
            Phase::Encrypt => "encrypt",
            Phase::Compare => "compare",
            Phase::Hop => "hop",
            Phase::Submit => "submit",
        };
        f.write_str(name)
    }
}

/// A wall-clock expiry instant.
///
/// Thin wrapper over [`Instant`] so higher layers can wait against a fixed
/// point in time without re-deriving remaining budgets themselves.
///
/// A budget too large to represent as an `Instant` (e.g.
/// `Duration::MAX`) saturates to "never expires" instead of panicking:
/// such a deadline is unreachable within the process lifetime anyway.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct Deadline {
    /// `None` = unreachable (the budget overflowed the clock's range).
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Instant::now().checked_add(budget),
        }
    }

    /// Time left until expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        match self.at {
            Some(at) => at.saturating_duration_since(Instant::now()),
            None => Duration::MAX,
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.remaining() == Duration::ZERO
    }
}

/// Wall-clock allowance per protocol phase.
///
/// Each allowance bounds a *single blocking wait* inside that phase, not
/// the phase's total duration: a receive that sees no traffic for the
/// phase's budget declares the awaited party faulty. Waits that
/// legitimately span several parties' work (the shuffle chain, the
/// initiator's submission gather) scale the relevant allowance by the
/// number of upstream steps — see `session_total`.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct PhaseBudget {
    /// Allowance for one gain-phase exchange.
    pub gain: Duration,
    /// Allowance for one keygen-round message.
    pub keygen: Duration,
    /// Allowance for one encryption broadcast.
    pub encrypt: Duration,
    /// Allowance for the comparison step (local compute; bounds skew).
    pub compare: Duration,
    /// Allowance for **one party's chain hop** (decrypt-randomize-shuffle
    /// of all `n` sets plus its forward). Waits across `k` upstream hops
    /// use `k` times this value.
    pub hop: Duration,
    /// Allowance for one submission message.
    pub submit: Duration,
}

impl PhaseBudget {
    /// A uniform budget: every phase gets `per_phase`.
    pub fn uniform(per_phase: Duration) -> Self {
        PhaseBudget {
            gain: per_phase,
            keygen: per_phase,
            encrypt: per_phase,
            compare: per_phase,
            hop: per_phase,
            submit: per_phase,
        }
    }

    /// The allowance for `phase`.
    pub fn of(&self, phase: Phase) -> Duration {
        match phase {
            Phase::Gain => self.gain,
            Phase::KeyGen => self.keygen,
            Phase::Encrypt => self.encrypt,
            Phase::Compare => self.compare,
            Phase::Hop => self.hop,
            Phase::Submit => self.submit,
        }
    }

    /// A deadline for one wait in `phase`, starting now.
    pub fn deadline(&self, phase: Phase) -> Deadline {
        Deadline::after(self.of(phase))
    }

    /// Upper bound on a fault-free session with `n` participants: the sum
    /// of all phase allowances with the hop allowance scaled by the chain
    /// length. The initiator's submission gather waits against this (its
    /// first receive legitimately spans the participants' whole phase 2).
    ///
    /// Saturates at [`Duration::MAX`] for extreme budgets (e.g.
    /// `PhaseBudget::uniform(Duration::MAX)`): an effectively unbounded
    /// wait, never an arithmetic panic.
    pub fn session_total(&self, n: usize) -> Duration {
        let hops = self.hop.saturating_mul(
            u32::try_from(n.max(1))
                .unwrap_or(u32::MAX)
                .saturating_add(1),
        );
        self.gain
            .saturating_add(self.keygen)
            .saturating_add(self.encrypt)
            .saturating_add(self.compare)
            .saturating_add(hops)
            .saturating_add(self.submit)
    }
}

impl Default for PhaseBudget {
    /// Generous defaults (30 s per wait): far above any legitimate wait on
    /// development hardware, so fault-free runs never trip them, while
    /// still guaranteeing that no party blocks forever.
    fn default() -> Self {
        PhaseBudget::uniform(Duration::from_secs(30))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_expires() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(far.remaining() > Duration::from_secs(3500));
    }

    #[test]
    fn extreme_budgets_saturate_instead_of_panicking() {
        // Regression: `Instant::now() + Duration::MAX` and the unchecked
        // sums in `session_total` both used to panic.
        let never = Deadline::after(Duration::MAX);
        assert!(!never.expired());
        assert_eq!(never.remaining(), Duration::MAX);

        let b = PhaseBudget::uniform(Duration::MAX);
        assert_eq!(b.session_total(0), Duration::MAX);
        assert_eq!(b.session_total(8), Duration::MAX);
        assert_eq!(b.session_total(usize::MAX), Duration::MAX);
        assert!(!b.deadline(Phase::Hop).expired());

        // Near-max but representable budgets stay exact.
        let almost = PhaseBudget::uniform(Duration::from_secs(u64::MAX / 16));
        assert_eq!(almost.session_total(usize::MAX), Duration::MAX);
    }

    #[test]
    fn budget_lookup_matches_fields() {
        let b = PhaseBudget {
            gain: Duration::from_millis(1),
            keygen: Duration::from_millis(2),
            encrypt: Duration::from_millis(3),
            compare: Duration::from_millis(4),
            hop: Duration::from_millis(5),
            submit: Duration::from_millis(6),
        };
        for (phase, ms) in Phase::ALL.iter().zip([1u64, 2, 3, 4, 5, 6]) {
            assert_eq!(b.of(*phase), Duration::from_millis(ms));
        }
    }

    #[test]
    fn session_total_scales_with_parties() {
        let b = PhaseBudget::uniform(Duration::from_secs(1));
        assert!(b.session_total(8) > b.session_total(2));
        // 5 fixed phases + (n+1) hops.
        assert_eq!(b.session_total(3), Duration::from_secs(9));
    }

    #[test]
    fn phase_order_and_display() {
        assert!(Phase::Gain < Phase::Submit);
        assert_eq!(Phase::Hop.to_string(), "hop");
    }
}
