//! Physical-plausibility properties of the network simulator: completion
//! times must respond to bandwidth, latency, payload size, and hop count
//! in the directions physics dictates.

use ppgr_net::sim::{NetworkSim, SimConfig, Topology, TraceMessage};
use ppgr_net::TrafficLog;
use proptest::prelude::*;

fn line(nodes: usize) -> Topology {
    Topology::from_edges(nodes, (0..nodes - 1).map(|i| (i, i + 1)).collect())
}

fn sim_with(topo: Topology, parties: usize, config: SimConfig) -> NetworkSim {
    NetworkSim::new(topo, parties, config, 1)
}

fn one_msg(bytes: usize) -> Vec<Vec<TraceMessage>> {
    vec![vec![TraceMessage {
        from: 0,
        to: 1,
        bytes,
    }]]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn more_bandwidth_never_slower(bytes in 100usize..1_000_000) {
        let slow = sim_with(line(2), 2, SimConfig { bandwidth_bps: 1e6, ..Default::default() });
        let fast = sim_with(line(2), 2, SimConfig { bandwidth_bps: 1e7, ..Default::default() });
        let t_slow = slow.simulate(&one_msg(bytes)).unwrap().completion_s;
        let t_fast = fast.simulate(&one_msg(bytes)).unwrap().completion_s;
        prop_assert!(t_fast < t_slow);
    }

    #[test]
    fn more_latency_is_slower(extra_ms in 1u64..500) {
        let base = sim_with(line(2), 2, SimConfig::default());
        let config = SimConfig { latency_s: 0.050 + extra_ms as f64 / 1000.0, ..Default::default() };
        let laggy = sim_with(line(2), 2, config);
        prop_assert!(
            laggy.simulate(&one_msg(1000)).unwrap().completion_s
                > base.simulate(&one_msg(1000)).unwrap().completion_s
        );
    }

    #[test]
    fn bigger_payload_is_slower(a in 100usize..10_000, b in 10_001usize..1_000_000) {
        let sim = sim_with(line(2), 2, SimConfig::default());
        prop_assert!(sim.simulate(&one_msg(b)).unwrap().completion_s > sim.simulate(&one_msg(a)).unwrap().completion_s);
    }

    #[test]
    fn more_hops_are_slower(short in 2usize..5, extra in 1usize..5) {
        let long = short + extra;
        // Pin parties to the line endpoints via the topology size = party
        // count trick: party 0 and party n−1 are at distance n−1 when
        // every node hosts a party… placement is random, so compare the
        // best case instead: a longer line can never beat a direct link's
        // completion for the worst pair. Use full-mesh round instead:
        let mk = |n: usize| {
            let sim = sim_with(line(n), n, SimConfig::default());
            let round: Vec<TraceMessage> = (0..n)
                .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| TraceMessage {
                    from: i,
                    to: j,
                    bytes: 500,
                }))
                .collect();
            sim.simulate(&[round]).unwrap().completion_s
        };
        prop_assert!(mk(long) > mk(short));
    }

    #[test]
    fn completion_and_bytes_scale_together(msgs in 1usize..40) {
        let sim = sim_with(line(2), 2, SimConfig::default());
        let round: Vec<TraceMessage> =
            (0..msgs).map(|_| TraceMessage { from: 0, to: 1, bytes: 5000 }).collect();
        let one = sim.simulate(std::slice::from_ref(&round)).unwrap();
        let double = sim.simulate(&[round.clone(), round]).unwrap();
        prop_assert!(double.completion_s > one.completion_s);
        prop_assert_eq!(double.link_bytes, 2 * one.link_bytes);
        prop_assert_eq!(double.messages, 2 * one.messages);
    }

    #[test]
    fn simulate_log_never_panics(seeds in prop::collection::vec(any::<u64>(), 0..40)) {
        // Arbitrary log contents — self-messages, out-of-range party ids,
        // zero-byte payloads, sparse rounds — must come back as `Ok` or a
        // typed `SimError`, never a panic. One sim has a connected line,
        // the other a split topology, so both error variants are live.
        let log = TrafficLog::new();
        for s in &seeds {
            let round = (s % 10) as u32;
            let from = (s >> 8) as usize % 8;
            let to = (s >> 16) as usize % 8;
            let bytes = (s >> 24) as usize % 50_000;
            log.record(round, from, to, bytes, "fuzz");
        }
        let connected = sim_with(line(4), 3, SimConfig::default());
        let split = NetworkSim::new(
            Topology::from_edges(4, vec![(0, 1), (2, 3)]),
            4,
            SimConfig::default(),
            1,
        );
        // The Result is the property: reaching these lines means no panic.
        let _ = connected.simulate_log(&log);
        let _ = split.simulate_log(&log);
    }
}

/// Regression pin for multi-hop congestion: a full-mesh round over a
/// 3-node line forces the endpoint pair through the middle node, so both
/// links carry forwarded traffic on top of their own.
///
/// Wire math: 2000 payload bytes span two 1460-byte segments, so each
/// message puts 2000 + 2·40 = 2080 bytes on every link it crosses. Per
/// direction the three node pairs cost 1 + 1 + 2 hops, and a full mesh
/// uses both directions: 8 link crossings, placement-independent.
#[test]
fn three_node_line_congestion_is_pinned() {
    let sim = sim_with(line(3), 3, SimConfig::default());
    let round: Vec<TraceMessage> = (0..3)
        .flat_map(|i| {
            (0..3).filter(move |&j| j != i).map(move |j| TraceMessage {
                from: i,
                to: j,
                bytes: 2000,
            })
        })
        .collect();
    let report = sim.simulate(&[round]).unwrap();
    assert_eq!(report.messages, 6);
    assert_eq!(report.link_bytes, 8 * 2080);
    // Exact f64 pin (seed 1 placement, FIFO by trace order): the slowest
    // delivery accumulates 4 serialization slots (2080·8/2e6 s each —
    // queueing behind same-direction traffic included) plus the 2×50 ms
    // propagation of its two hops.
    assert_eq!(report.slowest_round_s, 0.13328);
    assert_eq!(report.completion_s, report.slowest_round_s);
}
