//! Physical-plausibility properties of the network simulator: completion
//! times must respond to bandwidth, latency, payload size, and hop count
//! in the directions physics dictates.

use ppgr_net::sim::{NetworkSim, SimConfig, Topology, TraceMessage};
use proptest::prelude::*;

fn line(nodes: usize) -> Topology {
    Topology::from_edges(nodes, (0..nodes - 1).map(|i| (i, i + 1)).collect())
}

fn sim_with(topo: Topology, parties: usize, config: SimConfig) -> NetworkSim {
    NetworkSim::new(topo, parties, config, 1)
}

fn one_msg(bytes: usize) -> Vec<Vec<TraceMessage>> {
    vec![vec![TraceMessage {
        from: 0,
        to: 1,
        bytes,
    }]]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn more_bandwidth_never_slower(bytes in 100usize..1_000_000) {
        let slow = sim_with(line(2), 2, SimConfig { bandwidth_bps: 1e6, ..Default::default() });
        let fast = sim_with(line(2), 2, SimConfig { bandwidth_bps: 1e7, ..Default::default() });
        let t_slow = slow.simulate(&one_msg(bytes)).completion_s;
        let t_fast = fast.simulate(&one_msg(bytes)).completion_s;
        prop_assert!(t_fast < t_slow);
    }

    #[test]
    fn more_latency_is_slower(extra_ms in 1u64..500) {
        let base = sim_with(line(2), 2, SimConfig::default());
        let config = SimConfig { latency_s: 0.050 + extra_ms as f64 / 1000.0, ..Default::default() };
        let laggy = sim_with(line(2), 2, config);
        prop_assert!(
            laggy.simulate(&one_msg(1000)).completion_s
                > base.simulate(&one_msg(1000)).completion_s
        );
    }

    #[test]
    fn bigger_payload_is_slower(a in 100usize..10_000, b in 10_001usize..1_000_000) {
        let sim = sim_with(line(2), 2, SimConfig::default());
        prop_assert!(sim.simulate(&one_msg(b)).completion_s > sim.simulate(&one_msg(a)).completion_s);
    }

    #[test]
    fn more_hops_are_slower(short in 2usize..5, extra in 1usize..5) {
        let long = short + extra;
        // Pin parties to the line endpoints via the topology size = party
        // count trick: party 0 and party n−1 are at distance n−1 when
        // every node hosts a party… placement is random, so compare the
        // best case instead: a longer line can never beat a direct link's
        // completion for the worst pair. Use full-mesh round instead:
        let mk = |n: usize| {
            let sim = sim_with(line(n), n, SimConfig::default());
            let round: Vec<TraceMessage> = (0..n)
                .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| TraceMessage {
                    from: i,
                    to: j,
                    bytes: 500,
                }))
                .collect();
            sim.simulate(&[round]).completion_s
        };
        prop_assert!(mk(long) > mk(short));
    }

    #[test]
    fn completion_and_bytes_scale_together(msgs in 1usize..40) {
        let sim = sim_with(line(2), 2, SimConfig::default());
        let round: Vec<TraceMessage> =
            (0..msgs).map(|_| TraceMessage { from: 0, to: 1, bytes: 5000 }).collect();
        let one = sim.simulate(std::slice::from_ref(&round)).to_owned();
        let double = sim.simulate(&[round.clone(), round]).to_owned();
        prop_assert!(double.completion_s > one.completion_s);
        prop_assert_eq!(double.link_bytes, 2 * one.link_bytes);
        prop_assert_eq!(double.messages, 2 * one.messages);
    }
}
