//! The Ioannidis–Grama–Atallah secure two-party dot product (paper
//! Sec. IV-A), implemented over a prime field `Z_p`.
//!
//! Two parties hold private vectors and jointly compute their dot product:
//!
//! * the **sender** (Bob in the paper; the *participant* in the framework)
//!   holds `w` and learns `β = w·v + α`;
//! * the **receiver** (Alice; the *initiator*) holds `v` and the mask `α`
//!   and learns nothing.
//!
//! In the original protocol the parties finish by exchanging `α` and `β`
//! so both learn `w·v`; the group-ranking framework deliberately *skips*
//! that exchange — the initiator chooses `v = ρ·(weights)` and `α = ρ_j`,
//! so the participant ends up with the masked partial gain `ρ·p_j + ρ_j`
//! and neither side learns the true gain (paper Fig. 1, steps 1–4).
//!
//! ## Field substitution
//!
//! The published protocol is written over the reals. We run it in `Z_p`
//! (a fixed 256-bit prime), where every division is an exact field
//! inversion; since the masked results are `≪ p`, they are recovered
//! exactly. The security argument — the adversary faces an underdetermined
//! linear system — is unchanged (see DESIGN.md §3).
//!
//! # Example
//!
//! ```
//! use ppgr_bigint::FpCtx;
//! use ppgr_dotprod::{default_field, DotProduct};
//! use rand::SeedableRng;
//!
//! let field = default_field();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let w: Vec<_> = [1i128, 2, 3].iter().map(|&x| field.from_i128(x)).collect();
//! let v: Vec<_> = [4i128, 5, 6].iter().map(|&x| field.from_i128(x)).collect();
//! let alpha = field.from_i128(100);
//!
//! let proto = DotProduct::new(field.clone());
//! let (state, msg1) = proto.sender_round1(&w, &mut rng);
//! let msg2 = proto.receiver_round2(&v, &alpha, &msg1, &mut rng);
//! let beta = state.finish(&msg2);
//! // β = w·v + α = 32 + 100
//! assert_eq!(beta.to_i128_centered(), Some(132));
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

use ppgr_bigint::{BigUint, Fp, FpCtx, Secret};
use rand::Rng;
use std::sync::Arc;

/// A 256-bit prime for the protocol field: `2^256 − 189` (the largest
/// 256-bit prime of the form `2^256 − c`).
const FIELD_PRIME_HEX: &str = "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff43";

/// The default protocol field `Z_{2^256 − 189}`.
pub fn default_field() -> Arc<FpCtx> {
    // tidy:allow(panic) — parses a vetted compile-time prime constant; exercised by every test
    FpCtx::new(BigUint::from_hex_str(FIELD_PRIME_HEX).expect("vetted constant"))
}

/// First-round message: `(QX, c′, g)` from the sender to the receiver.
#[derive(Clone, Debug)]
pub struct Round1Message {
    /// The product matrix `QX` (`s × d`), rows outer.
    pub qx: Vec<Vec<Fp>>,
    /// Blinded row-combination vector `c′ = c + R₁R₂·f`.
    pub c_prime: Vec<Fp>,
    /// Blinding helper `g = R₁R₃·f`.
    pub g: Vec<Fp>,
}

impl Round1Message {
    /// Total field elements on the wire (traffic accounting).
    pub fn element_count(&self) -> usize {
        self.qx.iter().map(Vec::len).sum::<usize>() + self.c_prime.len() + self.g.len()
    }
}

/// Second-round message: `(a, h)` from the receiver back to the sender.
#[derive(Clone, Debug)]
pub struct Round2Message {
    /// `a = z − c′·v′`.
    pub a: Fp,
    /// `h = g·v′`.
    pub h: Fp,
}

/// Sender-side secret state between rounds.
///
/// The blinding factors are the sender's only protection for `w`; they are
/// held in [`Secret`] wrappers so `{:?}` redacts them and the limbs are
/// wiped (best-effort) when the state is dropped.
pub struct SenderState {
    /// `b = Σ_i Q_{ir}` (column-`r` sum of `Q`).
    b: Secret<Fp>,
    /// Blinding factors.
    r2: Secret<Fp>,
    r3: Secret<Fp>,
}

impl std::fmt::Debug for SenderState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SenderState")
            .field("b", &self.b)
            .field("r2", &self.r2)
            .field("r3", &self.r3)
            .finish()
    }
}

impl SenderState {
    /// Completes the protocol: `β = (a + h·R₂/R₃) / b = w·v + α`.
    pub fn finish(self, msg: &Round2Message) -> Fp {
        let r2 = self.r2.expose();
        let r3 = self.r3.expose();
        // tidy:allow(panic) — R₃ is drawn with random_nonzero, so inversion cannot fail
        let ratio = r2 * &r3.inv().expect("R₃ is sampled nonzero");
        let numerator = &msg.a + &(&msg.h * &ratio);
        // tidy:allow(panic) — Q is resampled in round 1 until b ≠ 0, so inversion cannot fail
        numerator * self.b.expose().inv().expect("b is sampled nonzero")
    }
}

/// The protocol object; holds the field and the matrix size parameter `s`.
#[derive(Clone, Debug)]
pub struct DotProduct {
    field: Arc<FpCtx>,
    s: usize,
}

impl DotProduct {
    /// Default matrix size (`s`); the reference implementation notes `s`
    /// "is not necessary to be a big number" and independent of `n`.
    pub const DEFAULT_S: usize = 8;

    /// Creates the protocol over `field` with the default `s`.
    pub fn new(field: Arc<FpCtx>) -> Self {
        DotProduct {
            field,
            s: Self::DEFAULT_S,
        }
    }

    /// Overrides the hidden-matrix size `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s < 2` (the row-hiding argument needs at least one decoy
    /// row).
    pub fn with_s(field: Arc<FpCtx>, s: usize) -> Self {
        assert!(s >= 2, "s must be at least 2");
        DotProduct { field, s }
    }

    /// The protocol field.
    pub fn field(&self) -> &Arc<FpCtx> {
        &self.field
    }

    /// Sender (participant) round 1: hides `w` inside `QX` and blinds the
    /// correction vector.
    ///
    /// `w` has `d−1` entries; the hidden row is `[wᵀ, 1]`.
    pub fn sender_round1<R: Rng + ?Sized>(
        &self,
        w: &[Fp],
        rng: &mut R,
    ) -> (SenderState, Round1Message) {
        let f = &self.field;
        let d = w.len() + 1;
        let s = self.s;
        let r = rng.gen_range(0..s);

        // X: s×d random, row r = [w, 1].
        let mut x: Vec<Vec<Fp>> = (0..s)
            .map(|i| {
                if i == r {
                    let mut row: Vec<Fp> = w.to_vec();
                    row.push(f.one());
                    row
                } else {
                    (0..d).map(|_| f.random(rng)).collect()
                }
            })
            .collect();

        // Q: s×s random, resampled until b = Σ_i Q_{ir} ≠ 0.
        let (q, b) = loop {
            let q: Vec<Vec<Fp>> = (0..s)
                .map(|_| (0..s).map(|_| f.random(rng)).collect())
                .collect();
            let mut b = f.zero();
            for row in &q {
                b = &b + &row[r];
            }
            if !b.is_zero() {
                break (q, b);
            }
        };

        // QX (s×d).
        let qx: Vec<Vec<Fp>> = (0..s)
            .map(|i| {
                (0..d)
                    .map(|k| {
                        let mut acc = f.zero();
                        for j in 0..s {
                            acc = &acc + &(&q[i][j] * &x[j][k]);
                        }
                        acc
                    })
                    .collect()
            })
            .collect();

        // c = Σ_{j≠r} (Σ_i Q_{ij}) · x_j   (d-vector).
        let col_sums: Vec<Fp> = (0..s)
            .map(|j| {
                let mut acc = f.zero();
                for row in &q {
                    acc = &acc + &row[j];
                }
                acc
            })
            .collect();
        let mut c = vec![f.zero(); d];
        for (j, row) in x.iter().enumerate() {
            if j == r {
                continue;
            }
            for (k, cell) in row.iter().enumerate() {
                c[k] = &c[k] + &(&col_sums[j] * cell);
            }
        }
        // Wipe X rows we no longer need (w itself stays with the caller).
        x.clear();

        let r1 = f.random_nonzero(rng);
        let r2 = f.random_nonzero(rng);
        let r3 = f.random_nonzero(rng);
        let fvec: Vec<Fp> = (0..d).map(|_| f.random(rng)).collect();
        let r1r2 = &r1 * &r2;
        let r1r3 = &r1 * &r3;
        let c_prime: Vec<Fp> = c
            .iter()
            .zip(&fvec)
            .map(|(ci, fi)| ci + &(&r1r2 * fi))
            .collect();
        let g: Vec<Fp> = fvec.iter().map(|fi| &r1r3 * fi).collect();

        (
            SenderState {
                b: Secret::new(b),
                r2: Secret::new(r2),
                r3: Secret::new(r3),
            },
            Round1Message { qx, c_prime, g },
        )
    }

    /// Receiver (initiator) round 2: forms `v′ = [v, α]` and answers with
    /// `(a, h)`.
    ///
    /// `rng` is unused by the algebra but kept in the signature so callers
    /// treat both rounds uniformly (and for forward-compatible blinding).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() + 1` does not match the sender's dimension.
    pub fn receiver_round2<R: Rng + ?Sized>(
        &self,
        v: &[Fp],
        alpha: &Fp,
        msg: &Round1Message,
        _rng: &mut R,
    ) -> Round2Message {
        let f = &self.field;
        let d = v.len() + 1;
        assert!(
            msg.qx.iter().all(|row| row.len() == d) && msg.c_prime.len() == d && msg.g.len() == d,
            "dimension mismatch between sender and receiver vectors"
        );
        let mut v_prime: Vec<Fp> = v.to_vec();
        v_prime.push(alpha.clone());

        // y = QX·v′ ; z = Σ y_i
        let mut z = f.zero();
        for row in &msg.qx {
            let mut yi = f.zero();
            for (cell, vk) in row.iter().zip(&v_prime) {
                yi = &yi + &(cell * vk);
            }
            z = &z + &yi;
        }
        let dot = |a: &[Fp], b: &[Fp]| {
            let mut acc = f.zero();
            for (x, y) in a.iter().zip(b) {
                acc = &acc + &(x * y);
            }
            acc
        };
        let a = &z - &dot(&msg.c_prime, &v_prime);
        let h = dot(&msg.g, &v_prime);
        Round2Message { a, h }
    }

    /// Runs the *full* original protocol in which both parties learn `w·v`
    /// (the final `α`/`β` exchange included). The framework never calls
    /// this; it exists to test against the published functionality.
    pub fn mutual<R: Rng + ?Sized>(&self, w: &[Fp], v: &[Fp], rng: &mut R) -> Fp {
        let alpha = self.field.random(rng);
        let (state, m1) = self.sender_round1(w, rng);
        let m2 = self.receiver_round2(v, &alpha, &m1, rng);
        let beta = state.finish(&m2);
        // Exchange: both compute β − α = w·v.
        beta - alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plain_dot(f: &Arc<FpCtx>, w: &[i128], v: &[i128]) -> i128 {
        let _ = f;
        w.iter().zip(v).map(|(a, b)| a * b).sum()
    }

    fn to_fp(f: &Arc<FpCtx>, xs: &[i128]) -> Vec<Fp> {
        xs.iter().map(|&x| f.from_i128(x)).collect()
    }

    #[test]
    fn masked_output_is_dot_plus_alpha() {
        let f = default_field();
        let proto = DotProduct::new(f.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let w = [3i128, -7, 11, 0, 5];
        let v = [2i128, 9, -4, 8, 1];
        let (state, m1) = proto.sender_round1(&to_fp(&f, &w), &mut rng);
        let alpha = f.from_i128(1_000_000);
        let m2 = proto.receiver_round2(&to_fp(&f, &v), &alpha, &m1, &mut rng);
        let beta = state.finish(&m2);
        assert_eq!(
            beta.to_i128_centered(),
            Some(plain_dot(&f, &w, &v) + 1_000_000)
        );
    }

    #[test]
    fn mutual_protocol_matches_plain_dot() {
        let f = default_field();
        let proto = DotProduct::new(f.clone());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let w: Vec<i128> = (0..7).map(|_| rng.gen_range(-1000..1000)).collect();
            let v: Vec<i128> = (0..7).map(|_| rng.gen_range(-1000..1000)).collect();
            let out = proto.mutual(&to_fp(&f, &w), &to_fp(&f, &v), &mut rng);
            assert_eq!(out.to_i128_centered(), Some(plain_dot(&f, &w, &v)));
        }
    }

    #[test]
    fn works_for_dimension_one_and_zero_vectors() {
        let f = default_field();
        let proto = DotProduct::new(f.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let out = proto.mutual(&to_fp(&f, &[42]), &to_fp(&f, &[10]), &mut rng);
        assert_eq!(out.to_i128_centered(), Some(420));
        let out = proto.mutual(&to_fp(&f, &[0, 0]), &to_fp(&f, &[5, 9]), &mut rng);
        assert_eq!(out.to_i128_centered(), Some(0));
    }

    #[test]
    fn different_s_parameters_agree() {
        let f = default_field();
        let mut rng = StdRng::seed_from_u64(4);
        let w = to_fp(&f, &[1, 2, 3, 4]);
        let v = to_fp(&f, &[5, 6, 7, 8]);
        for s in [2usize, 3, 8, 16] {
            let proto = DotProduct::with_s(f.clone(), s);
            let out = proto.mutual(&w, &v, &mut rng);
            assert_eq!(out.to_i128_centered(), Some(70), "s = {s}");
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dimensions_panic() {
        let f = default_field();
        let proto = DotProduct::new(f.clone());
        let mut rng = StdRng::seed_from_u64(5);
        let (_state, m1) = proto.sender_round1(&to_fp(&f, &[1, 2, 3]), &mut rng);
        let _ = proto.receiver_round2(&to_fp(&f, &[1, 2]), &f.zero(), &m1, &mut rng);
    }

    #[test]
    fn round1_reveals_no_direct_copy_of_w() {
        // The hidden row of X never appears verbatim in QX (probabilistic
        // sanity check, not a security proof).
        let f = default_field();
        let proto = DotProduct::new(f.clone());
        let mut rng = StdRng::seed_from_u64(6);
        let w = to_fp(&f, &[123, 456, 789]);
        let (_s, m1) = proto.sender_round1(&w, &mut rng);
        for row in &m1.qx {
            assert_ne!(&row[..3], &w[..], "w leaked as a plain row of QX");
        }
    }

    #[test]
    fn element_count_matches_shape() {
        let f = default_field();
        let proto = DotProduct::with_s(f.clone(), 4);
        let mut rng = StdRng::seed_from_u64(7);
        let (_s, m1) = proto.sender_round1(&to_fp(&f, &[1, 2]), &mut rng);
        // s*d + d + d = 4*3 + 3 + 3
        assert_eq!(m1.element_count(), 18);
    }
}
