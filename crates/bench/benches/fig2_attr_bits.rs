//! Fig. 2(c) — the attribute-width sweep.
//!
//! `d₁` feeds the masked-gain bit length `l = h + ⌈log m⌉ + d₁ + 2d₂ + 2`
//! linearly, and the comparison workload is linear in `l`. This bench
//! measures the two `l`-proportional kernels a participant runs per
//! opponent: bitwise encryption and the comparison circuit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppgr_bigint::BigUint;
use ppgr_core::bit_length;
use ppgr_core::circuit::compare_encrypted;
use ppgr_elgamal::{encrypt_bits, ExpElGamal, KeyPair};
use ppgr_group::GroupKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_compare_vs_d1(c: &mut Criterion) {
    let group = GroupKind::Ecc160.group();
    let mut rng = StdRng::seed_from_u64(1);
    let kp = KeyPair::generate(&group, &mut rng);
    let scheme = ExpElGamal::new(group);
    let mut g = c.benchmark_group("fig2c_compare_circuit");
    g.sample_size(10);
    for d1 in [10u32, 20, 30] {
        let l = bit_length(10, d1, 8, 15);
        let own = BigUint::from(0x1234u64);
        let other = encrypt_bits(
            &scheme,
            kp.public_key(),
            &BigUint::from(0xBEEFu64),
            l,
            &mut rng,
        );
        g.bench_with_input(BenchmarkId::new("one_opponent", d1), &d1, |b, _| {
            b.iter(|| compare_encrypted(&scheme, &own, &other, l));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compare_vs_d1);
criterion_main!(benches);
