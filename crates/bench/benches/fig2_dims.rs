//! Fig. 2(b) — the attribute-dimension sweep.
//!
//! `m` affects the gain phase directly (vector dimension) and the
//! comparison phase only through `⌈log₂ m⌉` inside `l`. This bench
//! measures the gain phase (one secure dot product per participant) as
//! `m` grows; the comparison-side effect is covered by `fig2_attr_bits`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppgr_dotprod::{default_field, DotProduct};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gain_vs_m(c: &mut Criterion) {
    let field = default_field();
    let proto = DotProduct::new(field.clone());
    let mut g = c.benchmark_group("fig2b_gain_phase");
    for m in [5usize, 10, 20, 40] {
        let t = m / 3;
        let d = m + t; // participant vector dimension
        let w: Vec<_> = (0..d as u64).map(|i| field.from_u64(i + 1)).collect();
        let v: Vec<_> = (0..d as u64).map(|i| field.from_u64(2 * i + 1)).collect();
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let alpha = field.from_u64(5);
                let (state, m1) = proto.sender_round1(&w, &mut rng);
                let m2 = proto.receiver_round2(&v, &alpha, &m1, &mut rng);
                state.finish(&m2)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gain_vs_m);
criterion_main!(benches);
