//! Fig. 2(a) — end-to-end framework runs as the group grows.
//!
//! Criterion measures full three-phase executions (real cryptography) at
//! reduced scale; the `reproduce` binary extrapolates the full figure via
//! the calibrated model. The benchmarked quantity is one complete run;
//! divide by `n` for the per-participant cost the paper plots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppgr_core::{FrameworkParams, GroupRanking, Questionnaire};
use ppgr_group::GroupKind;

fn run_once(n: usize, kind: GroupKind, seed: u64) {
    let params = FrameworkParams::builder(Questionnaire::synthetic(1, 2))
        .participants(n)
        .top_k(1)
        .attr_bits(6)
        .weight_bits(3)
        .mask_bits(6)
        .group(kind)
        .seed(seed)
        .build()
        .expect("valid parameters");
    let outcome = GroupRanking::new(params)
        .with_random_population()
        .run()
        .expect("honest run succeeds");
    std::hint::black_box(outcome.ranks().len());
}

fn bench_fig2a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2a_full_framework");
    g.sample_size(10);
    for n in [2usize, 3, 4] {
        g.bench_with_input(BenchmarkId::new("ecc160", n), &n, |b, &n| {
            b.iter(|| run_once(n, GroupKind::Ecc160, 1));
        });
    }
    g.bench_with_input(BenchmarkId::new("dl1024", 3usize), &3, |b, &n| {
        b.iter(|| run_once(n, GroupKind::Dl1024, 1));
    });
    g.finish();
}

criterion_group!(benches, bench_fig2a);
criterion_main!(benches);
