//! Fig. 3(a) — DL vs ECC at equivalent security levels.
//!
//! The per-participant cost scales with the per-exponentiation cost of
//! the chosen group, so the figure's driver is exactly this bench: one
//! exponentiation in each of the six groups (80/112/128-bit levels).

use criterion::{criterion_group, criterion_main, Criterion};
use ppgr_group::SecurityLevel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_levels(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3a_exp_by_level");
    g.sample_size(10);
    for level in SecurityLevel::all() {
        for kind in [level.dl(), level.ecc()] {
            let group = kind.group();
            let mut rng = StdRng::seed_from_u64(1);
            let x = group.random_scalar(&mut rng);
            let base = group.exp_gen(&x);
            g.bench_function(format!("{level}/{kind}"), |b| {
                b.iter(|| group.exp(&base, &x));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_levels);
criterion_main!(benches);
