//! Microbenchmarks of every cryptographic primitive the framework uses.

use criterion::{criterion_group, criterion_main, Criterion};
use ppgr_bigint::BigUint;
use ppgr_dotprod::{default_field, DotProduct};
use ppgr_elgamal::{encrypt_bits, ExpElGamal, KeyPair};
use ppgr_group::GroupKind;
use ppgr_smc::SsEngine;
use ppgr_zkp::MultiVerifierProof;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_group_exp(c: &mut Criterion) {
    let mut g = c.benchmark_group("group_exp");
    g.sample_size(10);
    for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
        let group = kind.group();
        let mut rng = StdRng::seed_from_u64(1);
        let x = group.random_scalar(&mut rng);
        let base = group.exp_gen(&x);
        g.bench_function(kind.to_string(), |b| {
            b.iter(|| group.exp(&base, &x));
        });
    }
    g.finish();
}

fn bench_elgamal(c: &mut Criterion) {
    let group = GroupKind::Ecc160.group();
    let mut rng = StdRng::seed_from_u64(2);
    let kp = KeyPair::generate(&group, &mut rng);
    let scheme = ExpElGamal::new(group.clone());
    let m = group.scalar_from_u64(1);
    let ct = scheme.encrypt(kp.public_key(), &m, &mut rng);
    let r = group.random_nonzero_scalar(&mut rng);

    let mut g = c.benchmark_group("elgamal_ecc160");
    g.sample_size(20);
    g.bench_function("encrypt", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| scheme.encrypt(kp.public_key(), &m, &mut rng));
    });
    g.bench_function("partial_decrypt", |b| {
        b.iter(|| scheme.partial_decrypt(&ct, kp.secret_key()));
    });
    g.bench_function("randomize_plaintext", |b| {
        b.iter(|| scheme.randomize_plaintext(&ct, &r));
    });
    g.bench_function("homomorphic_add", |b| {
        b.iter(|| scheme.add(&ct, &ct));
    });
    g.finish();
}

fn bench_zkp(c: &mut Criterion) {
    let group = GroupKind::Ecc160.group();
    let mut rng = StdRng::seed_from_u64(4);
    let x = group.random_scalar(&mut rng);
    let y = group.exp_gen(&x);
    let t = MultiVerifierProof::run(&group, &x, 24, &mut rng);
    let mut g = c.benchmark_group("zkp");
    g.sample_size(20);
    g.bench_function("prove_24_verifiers", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| MultiVerifierProof::run(&group, &x, 24, &mut rng));
    });
    g.bench_function("verify", |b| b.iter(|| t.verify(&group, &y)));
    g.finish();
}

fn bench_dotprod(c: &mut Criterion) {
    let field = default_field();
    let proto = DotProduct::new(field.clone());
    let w: Vec<_> = (0..13u64).map(|i| field.from_u64(i)).collect();
    let v: Vec<_> = (0..13u64).map(|i| field.from_u64(i * 7)).collect();
    let mut g = c.benchmark_group("dotprod_m10_t3");
    g.bench_function("full_exchange", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| proto.mutual(&w, &v, &mut rng));
    });
    g.finish();
}

fn bench_bit_encryption(c: &mut Criterion) {
    let group = GroupKind::Ecc160.group();
    let mut rng = StdRng::seed_from_u64(7);
    let kp = KeyPair::generate(&group, &mut rng);
    let scheme = ExpElGamal::new(group);
    let value = BigUint::from(0xDEAD_BEEFu64);
    let mut g = c.benchmark_group("bitwise");
    g.sample_size(10);
    g.bench_function("encrypt_52_bits", |b| {
        let mut rng = StdRng::seed_from_u64(8);
        b.iter(|| encrypt_bits(&scheme, kp.public_key(), &value, 52, &mut rng));
    });
    g.finish();
}

fn bench_shamir(c: &mut Criterion) {
    let mut g = c.benchmark_group("shamir_n7_t3");
    g.sample_size(20);
    g.bench_function("bgw_mul", |b| {
        let mut e = SsEngine::new(7, 3, 9).unwrap();
        let f = e.field().clone();
        let x = e.input(&f.from_u64(123));
        let y = e.input(&f.from_u64(456));
        b.iter(|| e.mul(&x, &y));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_group_exp,
    bench_elgamal,
    bench_zkp,
    bench_dotprod,
    bench_bit_encryption,
    bench_shamir
);
criterion_main!(benches);
