//! Fig. 2(d) — the mask-width (`h`) sweep.
//!
//! `h` enters the cost the same way `d₁` does: through `l`. The dominant
//! `l`-proportional work is the shuffle-decrypt chain, so this bench
//! measures one chain hop over a whole comparison set as `h` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppgr_core::bit_length;
use ppgr_elgamal::{ExpElGamal, KeyPair};
use ppgr_group::GroupKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_chain_hop_vs_h(c: &mut Criterion) {
    let group = GroupKind::Ecc160.group();
    let mut rng = StdRng::seed_from_u64(1);
    let kp = KeyPair::generate(&group, &mut rng);
    let scheme = ExpElGamal::new(group.clone());
    let n = 5usize; // opponents per set
    let mut g = c.benchmark_group("fig2d_chain_hop");
    g.sample_size(10);
    for h in [10u32, 20, 30] {
        let l = bit_length(10, 15, 8, h);
        let set: Vec<_> = (0..(n - 1) * l)
            .map(|i| {
                scheme.encrypt(
                    kp.public_key(),
                    &group.scalar_from_u64(i as u64 % 7),
                    &mut rng,
                )
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("process_set", h), &h, |b, _| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                set.iter()
                    .map(|ct| {
                        let c = scheme.partial_decrypt(ct, kp.secret_key());
                        let r = group.random_nonzero_scalar(&mut rng);
                        scheme.randomize_plaintext(&c, &r)
                    })
                    .count()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_chain_hop_vs_h);
criterion_main!(benches);
