//! Ablations of the framework's design choices:
//!
//! * the cost of the privacy mechanisms (plaintext randomization and
//!   shuffling in the chain) versus plain partial decryption;
//! * the comparison circuit's shared suffix sums (`O(l)` ciphertext adds)
//!   versus naive per-position recomputation (`O(l²)`);
//! * the oblivious compare-exchange versus an opened (insecure)
//!   comparison in the SS baseline;
//! * a mix-net layer versus a bare ElGamal encryption.

use criterion::{criterion_group, criterion_main, Criterion};
use ppgr_bigint::BigUint;
use ppgr_core::circuit::compare_encrypted;
use ppgr_elgamal::{encrypt_bits, Ciphertext, ExpElGamal, KeyPair};
use ppgr_group::GroupKind;
use ppgr_smc::compare::cmp_lt;
use ppgr_smc::SsEngine;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const L: usize = 32;

fn bench_chain_mechanisms(c: &mut Criterion) {
    let group = GroupKind::Ecc160.group();
    let mut rng = StdRng::seed_from_u64(1);
    let kp = KeyPair::generate(&group, &mut rng);
    let scheme = ExpElGamal::new(group.clone());
    let set: Vec<Ciphertext> = (0..L)
        .map(|i| {
            scheme.encrypt(
                kp.public_key(),
                &group.scalar_from_u64(i as u64 % 3),
                &mut rng,
            )
        })
        .collect();

    let mut g = c.benchmark_group("ablation_chain_hop");
    g.sample_size(10);
    g.bench_function("decrypt_only", |b| {
        b.iter(|| {
            set.iter()
                .map(|ct| scheme.partial_decrypt(ct, kp.secret_key()))
                .collect::<Vec<_>>()
        });
    });
    g.bench_function("decrypt_randomize", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            set.iter()
                .map(|ct| {
                    let c = scheme.partial_decrypt(ct, kp.secret_key());
                    let r = group.random_nonzero_scalar(&mut rng);
                    scheme.randomize_plaintext(&c, &r)
                })
                .count()
        });
    });
    g.bench_function("decrypt_randomize_shuffle", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let mut out: Vec<Ciphertext> = set
                .iter()
                .map(|ct| {
                    let c = scheme.partial_decrypt(ct, kp.secret_key());
                    let r = group.random_nonzero_scalar(&mut rng);
                    scheme.randomize_plaintext(&c, &r)
                })
                .collect();
            out.shuffle(&mut rng);
            out.len()
        });
    });
    g.finish();
}

fn bench_circuit_suffix_sums(c: &mut Criterion) {
    let group = GroupKind::Ecc160.group();
    let mut rng = StdRng::seed_from_u64(4);
    let kp = KeyPair::generate(&group, &mut rng);
    let scheme = ExpElGamal::new(group.clone());
    let own = BigUint::from(0x1234_5678u64);
    let other = encrypt_bits(
        &scheme,
        kp.public_key(),
        &BigUint::from(0x8765_4321u64),
        L,
        &mut rng,
    );

    let mut g = c.benchmark_group("ablation_comparison_circuit");
    g.sample_size(10);
    g.bench_function("shared_suffix_sums", |b| {
        b.iter(|| compare_encrypted(&scheme, &own, &other, L));
    });
    g.bench_function("naive_quadratic", |b| {
        b.iter(|| {
            // Same circuit but recomputing Σ_{v>t} γ_v from scratch per
            // position — the O(l²) formulation the paper's step-7 formula
            // literally reads as.
            let one = group.scalar_from_u64(1);
            let gammas: Vec<Ciphertext> = (0..L)
                .map(|idx| {
                    if own.bit(idx) {
                        scheme.add_plaintext(&scheme.neg(&other[idx]), &one)
                    } else {
                        other[idx].clone()
                    }
                })
                .collect();
            (0..L)
                .map(|idx| {
                    let weight = (L - idx) as u64;
                    let mut suffix = Ciphertext {
                        alpha: group.identity(),
                        beta: group.identity(),
                    };
                    for g_v in &gammas[idx + 1..] {
                        suffix = scheme.add(&suffix, g_v);
                    }
                    let neg = scheme.scalar_mul(
                        &gammas[idx],
                        &group.scalar_neg(&group.scalar_from_u64(weight)),
                    );
                    let tau = scheme.add_plaintext(&neg, &group.scalar_from_u64(weight));
                    scheme.add(&tau, &suffix)
                })
                .count()
        });
    });
    g.finish();
}

fn bench_oblivious_vs_open_compare(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ss_compare");
    g.sample_size(10);
    g.bench_function("oblivious_cmp_lt", |b| {
        let mut e = SsEngine::new(5, 2, 5).unwrap();
        let f = e.field().clone();
        let x = e.input(&f.from_u64(123));
        let y = e.input(&f.from_u64(456));
        b.iter(|| cmp_lt(&mut e, &x, &y, 16));
    });
    g.bench_function("open_and_compare_insecure", |b| {
        let mut e = SsEngine::new(5, 2, 6).unwrap();
        let f = e.field().clone();
        let x = e.input(&f.from_u64(123));
        let y = e.input(&f.from_u64(456));
        b.iter(|| {
            let xv = e.open(&x);
            let yv = e.open(&y);
            xv.value() < yv.value()
        });
    });
    g.finish();
}

fn bench_mixnet_layer(c: &mut Criterion) {
    let group = GroupKind::Ecc160.group();
    let mut rng = StdRng::seed_from_u64(7);
    let kp = KeyPair::generate(&group, &mut rng);
    let msg = vec![0xAB; 256];
    let mut g = c.benchmark_group("ablation_mixnet");
    g.sample_size(10);
    g.bench_function("hybrid_layer_encrypt", |b| {
        let mut rng = StdRng::seed_from_u64(8);
        b.iter(|| ppgr_anon::hybrid::encrypt(&group, kp.public_key(), &msg, &mut rng));
    });
    g.bench_function("bare_exp_elgamal_encrypt", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        let scheme = ExpElGamal::new(group.clone());
        let m = group.scalar_from_u64(1);
        b.iter(|| scheme.encrypt(kp.public_key(), &m, &mut rng));
    });
    g.finish();
}

fn bench_fixed_base(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fixed_base");
    g.sample_size(20);
    for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
        let group = kind.group();
        let mut rng = StdRng::seed_from_u64(10);
        let s = group.random_scalar(&mut rng);
        // Warm the comb table outside the measurement.
        let _ = group.exp_gen(&s);
        g.bench_function(format!("{kind}/comb_exp_gen"), |b| {
            b.iter(|| group.exp_gen(&s));
        });
        g.bench_function(format!("{kind}/generic_exp"), |b| {
            b.iter(|| group.exp(group.generator(), &s));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_chain_mechanisms,
    bench_circuit_suffix_sums,
    bench_oblivious_vs_open_compare,
    bench_mixnet_layer,
    bench_fixed_base
);
criterion_main!(benches);
