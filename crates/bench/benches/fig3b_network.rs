//! Fig. 3(b) — network-simulation throughput.
//!
//! Benches the discrete-event simulator itself over the synthetic traces
//! of all three frameworks (the figure's series are printed by the
//! `reproduce` binary; this bench tracks the simulator's cost and keeps
//! the trace generators honest).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppgr_bench::traces;
use ppgr_group::GroupKind;
use ppgr_net::sim::NetworkSim;

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3b_simulate");
    g.sample_size(10);
    for n in [10usize, 25] {
        let sim = NetworkSim::paper_setup(n + 1, 7);
        let ecc = traces::framework_trace(GroupKind::Ecc160, n, 52, 10, 3, 3);
        let dl = traces::framework_trace(GroupKind::Dl1024, n, 52, 10, 3, 3);
        let ss = traces::ss_trace(n, 52, 10, 3);
        g.bench_with_input(BenchmarkId::new("ecc160", n), &n, |b, _| {
            b.iter(|| {
                sim.simulate(&ecc)
                    .expect("trace is well formed")
                    .completion_s
            })
        });
        g.bench_with_input(BenchmarkId::new("dl1024", n), &n, |b, _| {
            b.iter(|| {
                sim.simulate(&dl)
                    .expect("trace is well formed")
                    .completion_s
            })
        });
        g.bench_with_input(BenchmarkId::new("ss", n), &n, |b, _| {
            b.iter(|| {
                sim.simulate(&ss)
                    .expect("trace is well formed")
                    .completion_s
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
