//! Per-operation cost measurement on the current machine.

use ppgr_bigint::FpCtx;
use ppgr_dotprod::default_field;
use ppgr_elgamal::{ExpElGamal, KeyPair};
use ppgr_group::GroupKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Measures the cost of one group exponentiation (random base, full-width
/// random exponent) for `kind`, averaged over `samples`.
pub fn exp_time(kind: GroupKind, samples: u32) -> Duration {
    let g = kind.group();
    let mut rng = StdRng::seed_from_u64(0xCA11B7A7E);
    let x = g.random_scalar(&mut rng);
    let mut acc = g.exp_gen(&x);
    let start = Instant::now();
    for _ in 0..samples {
        let s = g.random_scalar(&mut rng);
        acc = g.exp(&acc, &s);
    }
    let elapsed = start.elapsed();
    std::hint::black_box(acc);
    elapsed / samples
}

/// Measures the table-amortized fixed-base exponentiation cost: one comb
/// table is built for a fresh base and `samples` exponentiations run
/// through it, so the (one-off) precomputation is spread across the batch
/// exactly as the protocol spreads the joint-key table across all of a
/// party's encryptions.
pub fn fixed_base_exp_time(kind: GroupKind, samples: u32) -> Duration {
    let g = kind.group();
    let mut rng = StdRng::seed_from_u64(0xF18ED);
    let base = g.exp_gen(&g.random_scalar(&mut rng));
    let scalars: Vec<_> = (0..samples).map(|_| g.random_scalar(&mut rng)).collect();
    let start = Instant::now();
    let table = g.prepare_base(&base);
    let mut acc = g.identity();
    for s in &scalars {
        acc = g.op(&acc, &g.exp_prepared(&table, s));
    }
    let elapsed = start.elapsed();
    std::hint::black_box(acc);
    elapsed / samples
}

/// Measures one fused shuffle-chain hop (partial decryption + plaintext
/// randomization of a single ciphertext) — the unit the protocol's
/// dominant step-8 term is made of. The op-count analysis books this as
/// 3 exponentiations; the dual-exponentiation engine does it in ≈1.7.
pub fn chain_hop_time(kind: GroupKind, samples: u32) -> Duration {
    let g = kind.group();
    let mut rng = StdRng::seed_from_u64(0xC4A17);
    let kp = KeyPair::generate(&g, &mut rng);
    let scheme = ExpElGamal::new(g.clone());
    let mut ct = scheme.encrypt(kp.public_key(), &g.scalar_from_u64(0), &mut rng);
    let rs: Vec<_> = (0..samples)
        .map(|_| g.random_nonzero_scalar(&mut rng))
        .collect();
    let start = Instant::now();
    for r in &rs {
        ct = scheme.partial_decrypt_randomize(&ct, kp.secret_key(), r);
    }
    let elapsed = start.elapsed();
    std::hint::black_box(ct);
    elapsed / samples
}

/// Measures the amortized per-term cost of a multi-exponentiation at a
/// representative batch width (32 terms, full-width scalars) — the rate
/// batch Schnorr verification pays per MSM term, in place of a full
/// variable-base exponentiation per proof.
pub fn msm_term_time(kind: GroupKind, samples: u32) -> Duration {
    const TERMS: usize = 32;
    let g = kind.group();
    let mut rng = StdRng::seed_from_u64(0x4D534D);
    let bases: Vec<_> = (0..TERMS)
        .map(|_| g.exp_gen(&g.random_scalar(&mut rng)))
        .collect();
    let scalar_sets: Vec<Vec<_>> = (0..samples)
        .map(|_| (0..TERMS).map(|_| g.random_scalar(&mut rng)).collect())
        .collect();
    let mut acc = g.identity();
    let start = Instant::now();
    for scalars in &scalar_sets {
        let pairs: Vec<_> = bases.iter().zip(scalars).collect();
        acc = g.op(&acc, &g.multi_exp(&pairs));
    }
    let elapsed = start.elapsed();
    std::hint::black_box(acc);
    elapsed / (samples * TERMS as u32)
}

/// Measures one 256-bit field multiplication (the SS baseline's integer
/// multiplication unit), averaged over `samples`.
pub fn field_mul_time(samples: u32) -> Duration {
    let field: Arc<FpCtx> = default_field();
    let mut rng = StdRng::seed_from_u64(0xF1E1D);
    let mut acc = field.random(&mut rng);
    let b = field.random_nonzero(&mut rng);
    let start = Instant::now();
    for _ in 0..samples {
        acc = &acc * &b;
    }
    let elapsed = start.elapsed();
    std::hint::black_box(acc);
    elapsed / samples
}

/// A calibration bundle for all six groups plus the field unit.
#[derive(Clone, Debug)]
pub struct Calibration {
    /// Variable-base per-exponentiation time, indexed by
    /// [`GroupKind::all`] order.
    pub exp: [(GroupKind, Duration); 6],
    /// Table-amortized fixed-base per-exponentiation time (the rate paid
    /// for generator and joint-key exponentiations), same order.
    pub fixed_exp: [(GroupKind, Duration); 6],
    /// Fused per-ciphertext shuffle-chain hop time (books as 3
    /// exponentiations in the op counts), same order.
    pub chain_hop: [(GroupKind, Duration); 6],
    /// Amortized per-term multi-exponentiation time (the batch
    /// Schnorr-verification rate), same order.
    pub msm_term: [(GroupKind, Duration); 6],
    /// Per-field-multiplication time (SS baseline unit).
    pub field_mul: Duration,
}

impl Calibration {
    /// Runs the full calibration (`quick` uses fewer samples).
    pub fn measure(quick: bool) -> Self {
        let samples = if quick { 20 } else { 100 };
        let kinds = GroupKind::all();
        // The slow DL groups get fewer samples to bound wall time.
        let budget = |k: GroupKind| if k.is_dl() { samples.min(25) } else { samples };
        let exp = kinds.map(|k| (k, exp_time(k, budget(k))));
        let fixed_exp = kinds.map(|k| (k, fixed_base_exp_time(k, budget(k))));
        let chain_hop = kinds.map(|k| (k, chain_hop_time(k, budget(k))));
        // Each msm_term sample is a full 32-term MSM, so a handful of
        // samples already averages over a thousand terms.
        let msm_term = kinds.map(|k| (k, msm_term_time(k, budget(k).min(5))));
        Calibration {
            exp,
            fixed_exp,
            chain_hop,
            msm_term,
            field_mul: field_mul_time(20_000),
        }
    }

    /// Variable-base per-exponentiation time for `kind`.
    pub fn exp_for(&self, kind: GroupKind) -> Duration {
        Self::lookup(&self.exp, kind)
    }

    /// Table-amortized fixed-base per-exponentiation time for `kind`.
    pub fn fixed_exp_for(&self, kind: GroupKind) -> Duration {
        Self::lookup(&self.fixed_exp, kind)
    }

    /// Fused per-ciphertext chain-hop time for `kind`.
    pub fn chain_hop_for(&self, kind: GroupKind) -> Duration {
        Self::lookup(&self.chain_hop, kind)
    }

    /// Amortized per-MSM-term time for `kind`.
    pub fn msm_term_for(&self, kind: GroupKind) -> Duration {
        Self::lookup(&self.msm_term, kind)
    }

    fn lookup(table: &[(GroupKind, Duration); 6], kind: GroupKind) -> Duration {
        table
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, d)| *d)
            .expect("all kinds calibrated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_time_positive_and_ordered() {
        let ecc = exp_time(GroupKind::Ecc160, 5);
        let dl = exp_time(GroupKind::Dl1024, 5);
        assert!(ecc > Duration::ZERO);
        assert!(dl > ecc, "DL-1024 must cost more than ECC-160");
    }

    #[test]
    fn field_mul_is_microseconds() {
        let t = field_mul_time(1000);
        assert!(t > Duration::ZERO);
        assert!(
            t < Duration::from_millis(1),
            "field mul should be ≪ 1 ms, got {t:?}"
        );
    }

    #[test]
    fn fixed_base_amortizes_below_variable_base() {
        // With enough exponentiations per table, the fixed-base rate must
        // beat the variable-base rate — that is the point of the tables.
        let fixed = fixed_base_exp_time(GroupKind::Ecc160, 50);
        let var = exp_time(GroupKind::Ecc160, 50);
        assert!(fixed > Duration::ZERO);
        assert!(
            fixed < var,
            "fixed-base {fixed:?} should beat variable-base {var:?}"
        );
    }

    #[test]
    fn msm_term_beats_variable_base_exp() {
        // The whole point of the engine: one 32-term MSM must be far
        // cheaper than 32 independent exponentiations.
        let term = msm_term_time(GroupKind::Ecc160, 5);
        let var = exp_time(GroupKind::Ecc160, 30);
        assert!(term > Duration::ZERO);
        assert!(
            term < var,
            "per-term MSM {term:?} should beat a full exp ({var:?})"
        );
    }

    #[test]
    fn fused_chain_hop_beats_three_exps() {
        let hop = chain_hop_time(GroupKind::Ecc160, 30);
        let var = exp_time(GroupKind::Ecc160, 30);
        assert!(hop > Duration::ZERO);
        assert!(
            hop < var * 3,
            "fused hop {hop:?} should undercut 3 exps ({var:?} each)"
        );
    }
}
