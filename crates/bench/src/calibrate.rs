//! Per-operation cost measurement on the current machine.

use ppgr_bigint::FpCtx;
use ppgr_dotprod::default_field;
use ppgr_group::GroupKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Measures the cost of one group exponentiation (random base, full-width
/// random exponent) for `kind`, averaged over `samples`.
pub fn exp_time(kind: GroupKind, samples: u32) -> Duration {
    let g = kind.group();
    let mut rng = StdRng::seed_from_u64(0xCA11B7A7E);
    let x = g.random_scalar(&mut rng);
    let mut acc = g.exp_gen(&x);
    let start = Instant::now();
    for _ in 0..samples {
        let s = g.random_scalar(&mut rng);
        acc = g.exp(&acc, &s);
    }
    let elapsed = start.elapsed();
    std::hint::black_box(acc);
    elapsed / samples
}

/// Measures one 256-bit field multiplication (the SS baseline's integer
/// multiplication unit), averaged over `samples`.
pub fn field_mul_time(samples: u32) -> Duration {
    let field: Arc<FpCtx> = default_field();
    let mut rng = StdRng::seed_from_u64(0xF1E1D);
    let mut acc = field.random(&mut rng);
    let b = field.random_nonzero(&mut rng);
    let start = Instant::now();
    for _ in 0..samples {
        acc = &acc * &b;
    }
    let elapsed = start.elapsed();
    std::hint::black_box(acc);
    elapsed / samples
}

/// A calibration bundle for all six groups plus the field unit.
#[derive(Clone, Debug)]
pub struct Calibration {
    /// Per-exponentiation time, indexed by [`GroupKind::all`] order.
    pub exp: [(GroupKind, Duration); 6],
    /// Per-field-multiplication time (SS baseline unit).
    pub field_mul: Duration,
}

impl Calibration {
    /// Runs the full calibration (`quick` uses fewer samples).
    pub fn measure(quick: bool) -> Self {
        let samples = if quick { 20 } else { 100 };
        let kinds = GroupKind::all();
        let exp = kinds.map(|k| {
            // The slow DL groups get fewer samples to bound wall time.
            let s = if k.is_dl() { samples.min(25) } else { samples };
            (k, exp_time(k, s))
        });
        Calibration { exp, field_mul: field_mul_time(20_000) }
    }

    /// Per-exponentiation time for `kind`.
    pub fn exp_for(&self, kind: GroupKind) -> Duration {
        self.exp
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, d)| *d)
            .expect("all kinds calibrated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_time_positive_and_ordered() {
        let ecc = exp_time(GroupKind::Ecc160, 5);
        let dl = exp_time(GroupKind::Dl1024, 5);
        assert!(ecc > Duration::ZERO);
        assert!(dl > ecc, "DL-1024 must cost more than ECC-160");
    }

    #[test]
    fn field_mul_is_microseconds() {
        let t = field_mul_time(1000);
        assert!(t > Duration::ZERO);
        assert!(t < Duration::from_millis(1), "field mul should be ≪ 1 ms, got {t:?}");
    }
}
