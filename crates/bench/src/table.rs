//! Plain-text table formatting for the `reproduce` binary.

use std::fmt::Write as _;
use std::time::Duration;

/// A simple aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a footnote line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} µs", s * 1e6)
    }
}

/// Formats a byte count in adaptive units.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["n", "time"]);
        t.row(vec!["5".into(), "1.0 s".into()]);
        t.row(vec!["25".into(), "10.0 s".into()]);
        t.note("model");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("note: model"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_secs(200)), "200 s");
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1.50 s");
        assert_eq!(fmt_duration(Duration::from_micros(250)), "250.00 µs");
    }

    #[test]
    fn byte_units() {
        assert_eq!(fmt_bytes(100), "100 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MiB");
    }
}
