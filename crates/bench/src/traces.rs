//! Synthetic wire traces for the Fig. 3(b) network simulation.
//!
//! Message sizes and round structure of both frameworks are deterministic
//! functions of `(n, l, group)` — no cryptography needs to run to know
//! what crosses the wire. These generators mirror the `TrafficLog` calls
//! of the real implementation (`ppgr-core::gain` / `ppgr-core::sorting`)
//! and an NS2-style model of the SS baseline.

use ppgr_group::GroupKind;
use ppgr_net::sim::TraceMessage;
use ppgr_smc::cost;

/// Field element wire size used by the gain phase (256-bit field).
const FIELD_BYTES: usize = 32;
/// Dot-product hidden-matrix rows (`s` in the protocol).
const DOTPROD_S: usize = 8;

/// Trace of the paper's framework: phase 1 + phase 2 + submission.
///
/// Parties: `0` = initiator, `1..=n` participants. Each inner vector is a
/// barrier round.
pub fn framework_trace(
    kind: GroupKind,
    n: usize,
    l: usize,
    m: usize,
    t: usize,
    k: usize,
) -> Vec<Vec<TraceMessage>> {
    let group = kind.group();
    let elem = group.element_len();
    let ct = 2 * elem;
    let scalar = group.order().bits().div_ceil(8);
    let d = m + t + 1; // dot-product dimension
    let mut rounds: Vec<Vec<TraceMessage>> = Vec::new();

    // Phase 1: each participant ↔ initiator (two rounds, all in parallel).
    let round1_elems = DOTPROD_S * d + 2 * d;
    rounds.push(
        (1..=n)
            .map(|p| TraceMessage {
                from: p,
                to: 0,
                bytes: round1_elems * FIELD_BYTES,
            })
            .collect(),
    );
    rounds.push(
        (1..=n)
            .map(|p| TraceMessage {
                from: 0,
                to: p,
                bytes: 2 * FIELD_BYTES,
            })
            .collect(),
    );

    // Phase 2, step 5: key shares + ZKP (commitment, challenges, response).
    let all_to_all = |bytes: usize| -> Vec<TraceMessage> {
        let mut msgs = Vec::new();
        for from in 1..=n {
            for to in 1..=n {
                if from != to {
                    msgs.push(TraceMessage { from, to, bytes });
                }
            }
        }
        msgs
    };
    rounds.push(all_to_all(elem)); // y_j
    rounds.push(all_to_all(elem)); // proof commitments
    rounds.push(all_to_all(scalar)); // challenge shares
    rounds.push(all_to_all(scalar)); // responses

    // Step 6: bitwise encryptions broadcast.
    rounds.push(all_to_all(l * ct));

    // Step 7: sets to P₁.
    rounds.push(
        (2..=n)
            .map(|p| TraceMessage {
                from: p,
                to: 1,
                bytes: (n - 1) * l * ct,
            })
            .collect(),
    );

    // Step 8: the chain — n−1 sequential hops of the full vector V.
    let v_bytes = n * (n - 1) * l * ct;
    for hop in 1..n {
        rounds.push(vec![TraceMessage {
            from: hop,
            to: hop + 1,
            bytes: v_bytes,
        }]);
    }
    // Return each set to its owner.
    rounds.push(
        (1..n)
            .map(|p| TraceMessage {
                from: n,
                to: p,
                bytes: (n - 1) * l * ct,
            })
            .collect(),
    );

    // Phase 3: top-k submissions.
    rounds.push(
        (1..=k.min(n))
            .map(|p| TraceMessage {
                from: p,
                to: 0,
                bytes: m * 8 + 8,
            })
            .collect(),
    );
    rounds
}

/// Rounds per Nishide–Ohta comparison when its multiplications are
/// batched layer-parallel (the constant-round structure of the protocol).
pub const NO07_ROUNDS: usize = 15;

/// Trace of the SS framework: gain phase as above, then the sorting
/// network evaluated layer by layer. Comparisons within a layer run in
/// parallel; each comparison spends [`NO07_ROUNDS`] rounds (the
/// constant-round structure of the masked-comparison protocol, with the
/// `279l+5` multiplication sub-messages pipelined and batched into one
/// share-vector message per ordered pair per round — the most favourable
/// defensible model for the baseline; see EXPERIMENTS.md for why the
/// un-batched alternative would bury the SS curve entirely).
pub fn ss_trace(n: usize, l: usize, m: usize, t: usize) -> Vec<Vec<TraceMessage>> {
    let d = m + t + 1;
    let mut rounds: Vec<Vec<TraceMessage>> = Vec::new();
    // Gain phase (same as the framework: the paper feeds β into Jónsson).
    let round1_elems = DOTPROD_S * d + 2 * d;
    rounds.push(
        (1..=n)
            .map(|p| TraceMessage {
                from: p,
                to: 0,
                bytes: round1_elems * FIELD_BYTES,
            })
            .collect(),
    );
    rounds.push(
        (1..=n)
            .map(|p| TraceMessage {
                from: 0,
                to: p,
                bytes: 2 * FIELD_BYTES,
            })
            .collect(),
    );

    // Sorting network: depth ≈ log₂n·(log₂n+1)/2 layers of ≤ n/2
    // comparators each.
    let log = (usize::BITS - n.next_power_of_two().leading_zeros() - 1) as usize;
    let depth = log * (log + 1) / 2;
    let comparators_per_layer = (n / 2).max(1);
    // One batched share-vector per comparator per pair per round.
    let bytes_per_pair_per_round = comparators_per_layer * FIELD_BYTES;
    let _ = cost::no07_mults_per_comparison(l); // cost model used for computation, not wire bytes
    for _layer in 0..depth {
        for _r in 0..NO07_ROUNDS {
            let mut msgs = Vec::with_capacity(n * (n - 1));
            for from in 1..=n {
                for to in 1..=n {
                    if from != to {
                        msgs.push(TraceMessage {
                            from,
                            to,
                            bytes: bytes_per_pair_per_round,
                        });
                    }
                }
            }
            rounds.push(msgs);
        }
    }
    rounds
}

/// The *unbatched* SS trace: every one of the `279l+5` multiplication
/// invocations per comparison ships its own share to every other party
/// (the literal reading of the paper's round formula). This model makes
/// the SS baseline slower than everything at every `n` — together with
/// [`ss_trace`] it brackets the paper's Fig. 3(b) SS curve (see
/// EXPERIMENTS.md).
pub fn ss_trace_unbatched(n: usize, l: usize, m: usize, t: usize) -> Vec<Vec<TraceMessage>> {
    let mut rounds = ss_trace(n, l, m, t);
    let mults_per_round = (cost::no07_mults_per_comparison(l) as usize).div_ceil(NO07_ROUNDS);
    // Scale every sorting-phase message by the per-round multiplication
    // batch it would otherwise have to carry (gain phase = first 2 rounds).
    for round in rounds.iter_mut().skip(2) {
        for msg in round.iter_mut() {
            msg.bytes *= mults_per_round;
        }
    }
    rounds
}

/// Total payload bytes of a trace (sanity metric).
pub fn trace_bytes(trace: &[Vec<TraceMessage>]) -> u64 {
    trace
        .iter()
        .flat_map(|r| r.iter())
        .map(|m| m.bytes as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framework_trace_shape() {
        let trace = framework_trace(GroupKind::Ecc160, 5, 52, 10, 3, 2);
        // 2 gain + 4 setup + 1 bits + 1 collect + 4 chain hops + 1 return + 1 submit.
        assert_eq!(trace.len(), 2 + 4 + 1 + 1 + 4 + 1 + 1);
        // Chain hops are single messages.
        assert_eq!(trace[9].len(), 1);
        assert!(trace_bytes(&trace) > 0);
    }

    #[test]
    fn dl_trace_is_heavier_than_ecc() {
        let ecc = trace_bytes(&framework_trace(GroupKind::Ecc160, 10, 52, 10, 3, 2));
        let dl = trace_bytes(&framework_trace(GroupKind::Dl1024, 10, 52, 10, 3, 2));
        assert!(dl > 4 * ecc, "DL ciphertexts are ≈6× larger: {dl} vs {ecc}");
    }

    #[test]
    fn ss_trace_has_many_more_rounds() {
        let fw = framework_trace(GroupKind::Ecc160, 16, 52, 10, 3, 2).len();
        let ss = ss_trace(16, 52, 10, 3).len();
        assert!(ss > 5 * fw, "SS rounds {ss} vs framework {fw}");
    }

    #[test]
    fn ss_round_count_scales_with_depth() {
        let small = ss_trace(8, 52, 10, 3).len();
        let large = ss_trace(64, 52, 10, 3).len();
        assert!(large > small);
    }
}
