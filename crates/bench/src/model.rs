//! Calibrated cost models and small-scale end-to-end validation runs.

use crate::calibrate::Calibration;
use ppgr_core::analysis::participant_ops;
use ppgr_core::{bit_length, FrameworkParams, GroupRanking, Questionnaire};
use ppgr_group::GroupKind;
use ppgr_smc::cost;
use ppgr_smc::sort::ss_group_rank;
use std::time::{Duration, Instant};

/// The paper's default parameters (Sec. VII): `n=25, m=10, d1=15, h=15`,
/// plus `d2=8` (unspecified in the paper).
#[derive(Clone, Copy, Debug)]
pub struct PaperDefaults {
    /// Participants.
    pub n: usize,
    /// Attribute dimension.
    pub m: usize,
    /// Equal-to attributes of the synthetic questionnaire.
    pub t: usize,
    /// Attribute bits `d₁`.
    pub d1: u32,
    /// Weight bits `d₂`.
    pub d2: u32,
    /// Mask bits `h`.
    pub h: u32,
}

impl Default for PaperDefaults {
    fn default() -> Self {
        PaperDefaults {
            n: 25,
            m: 10,
            t: 3,
            d1: 15,
            d2: 8,
            h: 15,
        }
    }
}

impl PaperDefaults {
    /// The masked-gain bit length for these parameters.
    pub fn l(&self) -> usize {
        bit_length(self.m, self.d1, self.d2, self.h)
    }
}

/// Model: one participant's computation time in the paper's framework.
///
/// Phases are priced at the rate the engine actually pays them:
/// bitwise encryption is fixed-base exponentiations through precomputed
/// generator/joint-key tables; setup is the batch-verified key
/// generation — three fixed-base exponentiations (own key share, own
/// proof commitment, the aggregate verification's left side) plus two
/// MSM terms per foreign proof, where [`participant_ops`] books two
/// full exponentiations per proof; the shuffle chain runs the fused
/// decrypt-and-randomize hop (booked as 3 exponentiations per
/// ciphertext, executed as ≈1.7); comparison and final decryption
/// remain variable-base.
pub fn framework_participant_time(
    cal: &Calibration,
    kind: GroupKind,
    n: usize,
    l: usize,
) -> Duration {
    let ops = participant_ops(n, l);
    // setup_exps = 2 own + 2(n−1) foreign-verification exps; the batch
    // verifier replaces the latter with 2(n−1) MSM terms and one extra
    // fixed-base exponentiation for the aggregate equation's left side.
    let setup = cal.fixed_exp_for(kind).mul_f64(3.0)
        + cal
            .msm_term_for(kind)
            .mul_f64(ops.setup_exps.saturating_sub(2) as f64);
    let fixed = cal.fixed_exp_for(kind).mul_f64(ops.encrypt_exps as f64);
    let chain_cts = ops.chain_exps / 3; // ops books 3 exps per ciphertext hop
    let chain = cal.chain_hop_for(kind).mul_f64(chain_cts as f64);
    let variable = cal
        .exp_for(kind)
        .mul_f64((ops.compare_exps + ops.final_exps) as f64);
    setup + fixed + chain + variable
}

/// Model: one party's computation time in the SS framework (per-party
/// share of the paper's published multiplication counts).
pub fn ss_participant_time(cal: &Calibration, n: usize, l: usize) -> Duration {
    let mults = cost::ss_sort_int_mults(n, l);
    cal.field_mul.mul_f64(mults as f64)
}

/// A measured end-to-end framework run at reduced scale.
#[derive(Clone, Debug)]
pub struct MeasuredRun {
    /// Mean participant computation time (Fig. 2's metric).
    pub participant: Duration,
    /// Number of participants.
    pub n: usize,
    /// Bit length used.
    pub l: usize,
}

/// Runs the full protocol (all three phases, real cryptography) and
/// reports the mean participant computation time.
///
/// # Panics
///
/// Panics if the parameters are invalid (the harness constructs them).
#[allow(clippy::too_many_arguments)] // bench entry point mirroring the paper's knobs
pub fn measure_framework(
    kind: GroupKind,
    n: usize,
    m: usize,
    t: usize,
    d1: u32,
    d2: u32,
    h: u32,
    seed: u64,
) -> MeasuredRun {
    let q = Questionnaire::synthetic(t, m - t);
    let params = FrameworkParams::builder(q)
        .participants(n)
        .top_k(1.max(n / 5))
        .attr_bits(d1)
        .weight_bits(d2)
        .mask_bits(h)
        .group(kind)
        .seed(seed)
        .build()
        .expect("harness parameters are valid");
    let l = params.beta_bits();
    let outcome = GroupRanking::new(params)
        .with_random_population()
        .run()
        .expect("honest run succeeds");
    MeasuredRun {
        participant: outcome.timings().mean_participant_total(),
        n,
        l,
    }
}

/// Runs the real SS sorting baseline and reports per-party time
/// (total engine time divided by `n` — the engine executes all parties).
pub fn measure_ss(n: usize, l: usize, seed: u64) -> Duration {
    let values: Vec<u64> = (0..n as u64)
        .map(|i| (i * 37 + 11) % (1 << l.min(30)))
        .collect();
    let start = Instant::now();
    let ranks = ss_group_rank(&values, l, seed).expect("valid parameters");
    let total = start.elapsed();
    std::hint::black_box(ranks);
    total / n as u32
}

/// Validation verdict: model vs measurement at a small scale.
#[derive(Clone, Debug)]
pub struct Validation {
    /// Measured mean participant time.
    pub measured: Duration,
    /// Model prediction for the same `(n, l)`.
    pub predicted: Duration,
}

impl Validation {
    /// measured / predicted.
    pub fn ratio(&self) -> f64 {
        self.measured.as_secs_f64() / self.predicted.as_secs_f64().max(1e-12)
    }

    /// The model is considered sound if it lands within a factor of 3
    /// (the model ignores non-exponentiation work).
    pub fn acceptable(&self) -> bool {
        let r = self.ratio();
        (1.0 / 3.0..=3.0).contains(&r)
    }
}

/// Runs one small full-protocol run and compares against the model.
pub fn validate(cal: &Calibration, kind: GroupKind, n: usize) -> Validation {
    let d = PaperDefaults::default();
    let run = measure_framework(kind, n, d.m, d.t, d.d1, d.d2, d.h, 42);
    let predicted = framework_participant_time(cal, kind, run.n, run.l);
    Validation {
        measured: run.participant,
        predicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_l_is_59() {
        // The paper's own formula would give 52 with d2=8; our corrected
        // bound (see ppgr-core::bit_length) gives 59.
        assert_eq!(PaperDefaults::default().l(), 59);
    }

    #[test]
    fn model_shapes() {
        // Synthetic calibration: ECC 1 ms, DL 4 ms per variable-base exp;
        // fixed-base at half rate, the fused hop at 1.7 exps per hop.
        let exp = [
            (GroupKind::Dl1024, Duration::from_millis(4)),
            (GroupKind::Dl2048, Duration::from_millis(28)),
            (GroupKind::Dl3072, Duration::from_millis(95)),
            (GroupKind::Ecc160, Duration::from_millis(1)),
            (GroupKind::Ecc224, Duration::from_millis(2)),
            (GroupKind::Ecc256, Duration::from_micros(2500)),
        ];
        let cal = Calibration {
            exp,
            fixed_exp: exp.map(|(k, d)| (k, d / 2)),
            chain_hop: exp.map(|(k, d)| (k, d.mul_f64(1.7))),
            msm_term: exp.map(|(k, d)| (k, d / 8)),
            field_mul: Duration::from_micros(1),
        };
        let l = 52;
        // ECC beats DL at equal security.
        assert!(
            framework_participant_time(&cal, GroupKind::Ecc160, 25, l)
                < framework_participant_time(&cal, GroupKind::Dl1024, 25, l)
        );
        // SS overtakes the framework cost as n grows (Fig. 2(a) shape).
        let fw_25 = framework_participant_time(&cal, GroupKind::Dl1024, 25, l);
        let ss_25 = ss_participant_time(&cal, 25, l);
        let fw_45 = framework_participant_time(&cal, GroupKind::Dl1024, 45, l);
        let ss_45 = ss_participant_time(&cal, 45, l);
        let fw_growth = fw_45.as_secs_f64() / fw_25.as_secs_f64();
        let ss_growth = ss_45.as_secs_f64() / ss_25.as_secs_f64();
        assert!(ss_growth > fw_growth, "SS must grow faster in n");
    }

    #[test]
    fn measured_ss_small_is_finite() {
        let t = measure_ss(4, 8, 3);
        assert!(t > Duration::ZERO);
    }
}
