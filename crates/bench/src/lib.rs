//! Benchmark harness: calibration, calibrated cost models, synthetic
//! network traces, and table formatting for the `reproduce` binary.
//!
//! ## Methodology
//!
//! The paper's testbed was a Pentium 4; ours is whatever container this
//! runs in. Absolute times therefore differ, but every figure's *shape*
//! is driven by operation counts × per-operation cost, so the harness:
//!
//! 1. **measures** per-operation costs on this machine
//!    ([`calibrate::exp_time`], [`calibrate::field_mul_time`]);
//! 2. **runs the real protocol end-to-end** at small scales and checks the
//!    calibrated model against those measurements ([`model::validate`]);
//! 3. **extrapolates** each figure's series with the validated model at
//!    the paper's scales, where a full run on one core would take hours;
//! 4. for Fig. 3(b), feeds **synthetic wire traces** (exact message sizes
//!    and round structure of each framework — no cryptography needed)
//!    through the discrete-event network simulator.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod model;
pub mod table;
pub mod traces;
