//! Cold-vs-warm session latency benchmark for the offline/online split.
//!
//! Runs N independent ranking sessions two ways — *cold* (the session
//! generates its offline stock inline, on the clock) and *warm* (the stock
//! is generated before the clock starts and attached, exactly what a
//! session drawn from the runtime's precompute pool receives) — asserts
//! the warm outcomes are bit-identical to the cold runs, and writes
//! machine-readable results to `BENCH_latency.json`
//! (schema: `crates/bench/schema/BENCH_latency.schema.json`).
//!
//! The warm stock comes from [`OfflineStock::generate`] on the machine's
//! own fingerprint — the same code path the runtime's background refill
//! lane runs — so the warm measurement is the online latency of a
//! pool-served session without the scheduler noise of measuring through
//! the pool itself (on a single-core host, a concurrent refill would
//! contend with the very session it serves).
//!
//! ```text
//! cargo run --release -p ppgr-bench --bin latency
//! cargo run --release -p ppgr-bench --bin latency -- --sessions 31 --n 4
//! cargo run --release -p ppgr-bench --bin latency -- --smoke   # CI: small + self-check
//! ```

use ppgr_core::{
    FrameworkParams, GroupRanking, OfflineStock, Outcome, Questionnaire, SessionMachine,
};
use ppgr_group::GroupKind;
use std::time::{Duration, Instant};

struct Config {
    sessions: usize,
    participants: usize,
    smoke: bool,
    out: String,
}

fn usage() -> ! {
    eprintln!("usage: latency [--sessions N] [--n PARTICIPANTS] [--smoke] [--out PATH]");
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut cfg = Config {
        sessions: 61,
        participants: 4,
        smoke: false,
        out: "BENCH_latency.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| usage_missing(name));
        match arg.as_str() {
            "--sessions" => cfg.sessions = value("--sessions").parse().unwrap_or_else(|_| usage()),
            "--n" => cfg.participants = value("--n").parse().unwrap_or_else(|_| usage()),
            "--smoke" => cfg.smoke = true,
            "--out" => cfg.out = value("--out"),
            _ => usage(),
        }
    }
    if cfg.smoke {
        // Small enough for a CI debug-or-release smoke lap.
        cfg.sessions = cfg.sessions.min(2);
        cfg.participants = cfg.participants.min(3);
    }
    if cfg.sessions == 0 || cfg.participants < 2 {
        usage();
    }
    cfg
}

fn usage_missing(name: &str) -> String {
    eprintln!("missing value for {name}");
    usage();
}

fn machine_for(participants: usize, seed: u64) -> SessionMachine {
    let params = FrameworkParams::builder(Questionnaire::synthetic(1, 2))
        .participants(participants)
        .top_k(2.min(participants))
        .attr_bits(6)
        .weight_bits(3)
        .mask_bits(6)
        .group(GroupKind::Ecc160)
        .seed(seed)
        .build()
        .expect("valid params");
    GroupRanking::new(params)
        .with_random_population()
        .into_machine()
        .expect("machine")
}

/// Steps the machine to completion with the clock running only from the
/// moment it is called — any stock attached beforehand is off the clock.
fn run_clocked(mut machine: SessionMachine) -> (Duration, Outcome) {
    let start = Instant::now();
    while !machine.is_done() {
        machine.step().expect("session step");
    }
    let elapsed = start.elapsed();
    (elapsed, machine.into_outcome().expect("finished outcome"))
}

fn median(durations: &[Duration]) -> Duration {
    let mut sorted = durations.to_vec();
    sorted.sort();
    sorted[sorted.len() / 2]
}

fn main() {
    let cfg = parse_args();
    eprintln!(
        "latency: {} sessions, ECC-160 n={}, cold (inline offline) vs warm (precomputed stock)",
        cfg.sessions, cfg.participants
    );

    // Cold: the Offline phase generates the stock inline, on the clock.
    // Warm: the stock is generated and attached before the clock starts —
    // the same `OfflineStock::generate` the pool's refill lane runs.
    //
    // The two lanes run interleaved as per-seed pairs with alternating
    // order, so slow drift in the host's clock speed (shared CPU, thermal
    // throttle) lands on both lanes equally instead of biasing whichever
    // lane ran last; the medians then resolve a gap well below the
    // run-to-run noise of a single session.
    let run_cold = |k: usize| run_clocked(machine_for(cfg.participants, k as u64));
    let run_warm = |k: usize| {
        let mut machine = machine_for(cfg.participants, k as u64);
        let stock = OfflineStock::generate(machine.offline_fingerprint());
        assert!(
            machine.attach_offline_stock(stock),
            "stock fingerprint must match the machine that minted it"
        );
        run_clocked(machine)
    };
    let mut cold = Vec::with_capacity(cfg.sessions);
    let mut cold_outcomes = Vec::with_capacity(cfg.sessions);
    let mut warm = Vec::with_capacity(cfg.sessions);
    let mut warm_outcomes = Vec::with_capacity(cfg.sessions);
    for k in 0..cfg.sessions {
        let ((cd, co), (wd, wo)) = if k % 2 == 0 {
            let c = run_cold(k);
            (c, run_warm(k))
        } else {
            let w = run_warm(k);
            (run_cold(k), w)
        };
        cold.push(cd);
        cold_outcomes.push(co);
        warm.push(wd);
        warm_outcomes.push(wo);
    }

    let mut identical = true;
    for (i, (w, c)) in warm_outcomes.iter().zip(&cold_outcomes).enumerate() {
        if w.ranks() != c.ranks() || w.traffic() != c.traffic() {
            identical = false;
            eprintln!("session {i}: warm outcome diverged from cold run!");
        }
    }
    assert!(identical, "warm sessions must match cold runs bit-for-bit");

    let (cold_median, warm_median) = (median(&cold), median(&warm));
    let speedup = cold_median.as_secs_f64() / warm_median.as_secs_f64();
    eprintln!(
        "cold median: {cold_median:.2?} | warm median: {warm_median:.2?} | speedup {speedup:.2}x"
    );

    let lane_json = |durs: &[Duration]| {
        format!(
            "{{\n    \"median_seconds\": {:.6},\n    \"min_seconds\": {:.6},\n    \
             \"max_seconds\": {:.6}\n  }}",
            median(durs).as_secs_f64(),
            durs.iter().min().expect("nonempty").as_secs_f64(),
            durs.iter().max().expect("nonempty").as_secs_f64(),
        )
    };
    let json = format!(
        "{{\n  \"schema\": \"crates/bench/schema/BENCH_latency.schema.json\",\n  \
         \"version\": 1,\n  \"config\": {{\n    \"group\": \"Ecc160\",\n    \
         \"participants\": {},\n    \"sessions\": {},\n    \"smoke\": {}\n  }},\n  \
         \"cold\": {},\n  \"warm\": {},\n  \
         \"speedup\": {:.6},\n  \"outcomes_identical\": {}\n}}\n",
        cfg.participants,
        cfg.sessions,
        cfg.smoke,
        lane_json(&cold),
        lane_json(&warm),
        speedup,
        identical
    );
    std::fs::write(&cfg.out, &json).expect("write BENCH_latency.json");
    eprintln!("wrote {}", cfg.out);

    // Self-check (what CI's smoke lap asserts): determinism held and the
    // emitted JSON is well-formed enough to round-trip its fields. Speed is
    // deliberately NOT asserted here — CI machines are too noisy; the
    // committed full-size run is where warm < cold is demonstrated.
    assert!(
        warm_median.as_secs_f64() > 0.0 && speedup.is_finite(),
        "degenerate timing"
    );
    for field in [
        "\"schema\"",
        "\"config\"",
        "\"cold\"",
        "\"warm\"",
        "\"median_seconds\"",
        "\"speedup\"",
        "\"outcomes_identical\": true",
    ] {
        assert!(json.contains(field), "JSON missing {field}");
    }
}
