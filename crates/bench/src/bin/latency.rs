//! Cold-vs-warm session latency benchmark for the offline/online split.
//!
//! Runs N independent ranking sessions three ways — *cold* (the session
//! generates its offline stock inline, on the clock), *warm-masks* (a
//! masks-only stock: scalars and `g^r` halves precomputed, keygen and
//! `y^r` halves still online) and *warm-keygen* (the full keygen tier:
//! pooled joint keys, assembled Schnorr proofs and `y^r` mask halves,
//! exactly what the runtime's precompute lanes now mint) — asserts all
//! three outcomes are bit-identical per seed, and writes
//! machine-readable results to `BENCH_latency.json`
//! (schema: `crates/bench/schema/BENCH_latency.schema.json`).
//!
//! The warm stocks come from [`OfflineStock::generate_masks_only`] /
//! [`OfflineStock::generate`] on the machine's own fingerprint — the
//! same code paths the runtime's background refill lane runs — so the
//! warm measurements are the online latency of a pool-served session
//! without the scheduler noise of measuring through the pool itself (on
//! a single-core host, a concurrent refill would contend with the very
//! session it serves).
//!
//! ```text
//! cargo run --release -p ppgr-bench --bin latency
//! cargo run --release -p ppgr-bench --bin latency -- --sessions 31 --n 4
//! cargo run --release -p ppgr-bench --bin latency -- --smoke   # CI: small + self-check
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

use ppgr_core::{
    FrameworkParams, GroupRanking, OfflineStock, Outcome, Questionnaire, SessionMachine,
};
use ppgr_group::GroupKind;
use std::time::{Duration, Instant};

struct Config {
    sessions: usize,
    participants: usize,
    smoke: bool,
    out: String,
}

fn usage() -> ! {
    eprintln!("usage: latency [--sessions N] [--n PARTICIPANTS] [--smoke] [--out PATH]");
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut cfg = Config {
        sessions: 61,
        participants: 4,
        smoke: false,
        out: "BENCH_latency.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| usage_missing(name));
        match arg.as_str() {
            "--sessions" => cfg.sessions = value("--sessions").parse().unwrap_or_else(|_| usage()),
            "--n" => cfg.participants = value("--n").parse().unwrap_or_else(|_| usage()),
            "--smoke" => cfg.smoke = true,
            "--out" => cfg.out = value("--out"),
            _ => usage(),
        }
    }
    if cfg.smoke {
        // Small enough for a CI debug-or-release smoke lap.
        cfg.sessions = cfg.sessions.min(2);
        cfg.participants = cfg.participants.min(3);
    }
    if cfg.sessions == 0 || cfg.participants < 2 {
        usage();
    }
    cfg
}

fn usage_missing(name: &str) -> String {
    eprintln!("missing value for {name}");
    usage();
}

fn machine_for(participants: usize, seed: u64) -> SessionMachine {
    let params = FrameworkParams::builder(Questionnaire::synthetic(1, 2))
        .participants(participants)
        .top_k(2.min(participants))
        .attr_bits(6)
        .weight_bits(3)
        .mask_bits(6)
        .group(GroupKind::Ecc160)
        .seed(seed)
        .build()
        .expect("valid params");
    GroupRanking::new(params)
        .with_random_population()
        .into_machine()
        .expect("machine")
}

/// Steps the machine to completion with the clock running only from the
/// moment it is called — any stock attached beforehand is off the clock.
fn run_clocked(mut machine: SessionMachine) -> (Duration, Outcome) {
    let start = Instant::now();
    while !machine.is_done() {
        machine.step().expect("session step");
    }
    let elapsed = start.elapsed();
    (elapsed, machine.into_outcome().expect("finished outcome"))
}

fn median(durations: &[Duration]) -> Duration {
    let mut sorted = durations.to_vec();
    sorted.sort();
    sorted[sorted.len() / 2]
}

/// The three measured lanes, in their canonical (JSON) order.
const LANES: usize = 3;
const COLD: usize = 0;
const WARM_MASKS: usize = 1;
const WARM_KEYGEN: usize = 2;
const LANE_NAMES: [&str; LANES] = ["cold", "warm_masks", "warm_keygen"];

fn main() {
    let cfg = parse_args();
    eprintln!(
        "latency: {} sessions, ECC-160 n={}, cold vs warm-masks vs warm-keygen",
        cfg.sessions, cfg.participants
    );

    // Cold: the Offline phase generates the full stock inline, on the
    // clock. Warm-masks: scalars and `g^r` halves attached off the clock;
    // keygen and `y^r` halves stay online. Warm-keygen: the full tier —
    // pooled keys, assembled proofs, both mask halves — attached off the
    // clock; online work is reduced to exchanging shares, batch-verifying
    // proofs and the inherently-online variable-base hop exponentiations.
    //
    // The lanes run interleaved per seed with a rotating order, so slow
    // drift in the host's clock speed (shared CPU, thermal throttle)
    // lands on every lane equally instead of biasing whichever lane ran
    // last; the medians then resolve gaps well below the run-to-run noise
    // of a single session.
    let run_lane = |lane: usize, k: usize| {
        let mut machine = machine_for(cfg.participants, k as u64);
        match lane {
            COLD => {}
            _ => {
                let fp = machine.offline_fingerprint();
                let stock = if lane == WARM_MASKS {
                    OfflineStock::generate_masks_only(fp)
                } else {
                    OfflineStock::generate(fp)
                };
                assert!(
                    machine.attach_offline_stock(stock),
                    "stock fingerprint must match the machine that minted it"
                );
            }
        }
        run_clocked(machine)
    };
    let mut durations: [Vec<Duration>; LANES] = Default::default();
    let mut outcomes: [Vec<Outcome>; LANES] = Default::default();
    for k in 0..cfg.sessions {
        for step in 0..LANES {
            let lane = (k + step) % LANES;
            let (d, o) = run_lane(lane, k);
            durations[lane].push(d);
            outcomes[lane].push(o);
        }
    }

    let mut identical = true;
    for lane in [WARM_MASKS, WARM_KEYGEN] {
        for (k, (w, c)) in outcomes[lane].iter().zip(&outcomes[COLD]).enumerate() {
            if w.ranks() != c.ranks() || w.traffic() != c.traffic() {
                identical = false;
                eprintln!(
                    "session {k}: {} outcome diverged from cold run!",
                    LANE_NAMES[lane]
                );
            }
        }
    }
    assert!(identical, "warm sessions must match cold runs bit-for-bit");

    let medians: Vec<Duration> = durations.iter().map(|lane| median(lane)).collect();
    let speedup_masks = medians[COLD].as_secs_f64() / medians[WARM_MASKS].as_secs_f64();
    let speedup_keygen = medians[COLD].as_secs_f64() / medians[WARM_KEYGEN].as_secs_f64();
    eprintln!(
        "cold median: {:.2?} | warm-masks median: {:.2?} ({speedup_masks:.2}x) | \
         warm-keygen median: {:.2?} ({speedup_keygen:.2}x)",
        medians[COLD], medians[WARM_MASKS], medians[WARM_KEYGEN]
    );

    let lane_json = |durs: &[Duration]| {
        format!(
            "{{\n    \"median_seconds\": {:.6},\n    \"min_seconds\": {:.6},\n    \
             \"max_seconds\": {:.6}\n  }}",
            median(durs).as_secs_f64(),
            durs.iter().min().expect("nonempty").as_secs_f64(),
            durs.iter().max().expect("nonempty").as_secs_f64(),
        )
    };
    let json = format!(
        "{{\n  \"schema\": \"crates/bench/schema/BENCH_latency.schema.json\",\n  \
         \"version\": 2,\n  \"config\": {{\n    \"group\": \"Ecc160\",\n    \
         \"participants\": {},\n    \"sessions\": {},\n    \"smoke\": {}\n  }},\n  \
         \"cold\": {},\n  \"warm_masks\": {},\n  \"warm_keygen\": {},\n  \
         \"speedup_masks\": {:.6},\n  \"speedup_keygen\": {:.6},\n  \
         \"outcomes_identical\": {}\n}}\n",
        cfg.participants,
        cfg.sessions,
        cfg.smoke,
        lane_json(&durations[COLD]),
        lane_json(&durations[WARM_MASKS]),
        lane_json(&durations[WARM_KEYGEN]),
        speedup_masks,
        speedup_keygen,
        identical
    );
    std::fs::write(&cfg.out, &json).expect("write BENCH_latency.json");
    eprintln!("wrote {}", cfg.out);

    // Self-check (what CI's smoke lap asserts): determinism held and the
    // emitted JSON is well-formed enough to round-trip its fields. Speed is
    // deliberately NOT asserted here — CI machines are too noisy; the
    // committed full-size run is where warm < cold is demonstrated.
    assert!(
        medians.iter().all(|m| m.as_secs_f64() > 0.0)
            && speedup_masks.is_finite()
            && speedup_keygen.is_finite(),
        "degenerate timing"
    );
    for field in [
        "\"schema\"",
        "\"version\": 2",
        "\"config\"",
        "\"cold\"",
        "\"warm_masks\"",
        "\"warm_keygen\"",
        "\"median_seconds\"",
        "\"speedup_masks\"",
        "\"speedup_keygen\"",
        "\"outcomes_identical\": true",
    ] {
        assert!(json.contains(field), "JSON missing {field}");
    }
}
