//! Step-by-step DL-1024 diagnostic (hunting a hang in the framework path).

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

use ppgr_bigint::BigUint;
use ppgr_core::{unlinkable_sort, PartyTimer};
use ppgr_elgamal::{encrypt_bits, ExpElGamal, JointKey, KeyPair};
use ppgr_group::GroupKind;
use ppgr_net::TrafficLog;
use ppgr_zkp::MultiVerifierProof;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn step(name: &str, f: impl FnOnce()) {
    let t = Instant::now();
    f();
    eprintln!("{name}: {:?}", t.elapsed());
}

fn main() {
    let group = GroupKind::Dl1024.group();
    let mut rng = StdRng::seed_from_u64(1);

    let kp1 = KeyPair::generate(&group, &mut rng);
    let kp2 = KeyPair::generate(&group, &mut rng);
    eprintln!("keygen done");

    step("zkp", || {
        let t = MultiVerifierProof::run(&group, kp1.secret_key(), 1, &mut StdRng::seed_from_u64(2));
        assert!(t.verify(&group, kp1.public_key()));
    });

    let joint = JointKey::combine(
        &group,
        &[kp1.public_key().clone(), kp2.public_key().clone()],
    );
    let scheme = ExpElGamal::new(group.clone());

    let mut cts = Vec::new();
    step("encrypt_bits l=4", || {
        cts = encrypt_bits(
            &scheme,
            joint.public_key(),
            &BigUint::from(5u64),
            4,
            &mut rng,
        );
    });

    step("compare circuit", || {
        let taus = ppgr_core::circuit::compare_encrypted(&scheme, &BigUint::from(3u64), &cts, 4);
        assert_eq!(taus.len(), 4);
    });

    step("partial_decrypt + randomize", || {
        let c = scheme.partial_decrypt(&cts[0], kp1.secret_key());
        let r = group.random_nonzero_scalar(&mut rng);
        let _ = scheme.randomize_plaintext(&c, &r);
    });

    step("decrypts_to_zero", || {
        let c = scheme.partial_decrypt(&cts[0], kp1.secret_key());
        let _ = scheme.decrypts_to_zero(kp2.secret_key(), &c);
    });

    step("full sort n=2 l=4", || {
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(3);
        let out = unlinkable_sort(
            &group,
            &[BigUint::from(3u64), BigUint::from(9u64)],
            4,
            &mut StdRng::seed_from_u64(3),
            &log,
            &mut timer,
            0,
        )
        .unwrap();
        eprintln!("ranks: {:?}", out.ranks);
    });
    eprintln!("ALL OK");
}
