//! MSM and batch-verification benchmark.
//!
//! Measures two things on ECC-160 and DL-1024 and writes
//! machine-readable results to `BENCH_msm.json`
//! (schema: `crates/bench/schema/BENCH_msm.schema.json`):
//!
//! 1. **Batch Schnorr verification** at the key-generation batch width:
//!    one verifier checking n−1 proofs one by one (two exponentiations
//!    each) versus one aggregate equation through `ppgr_zkp::verify_batch`
//!    (one fixed-base exponentiation plus a 2(n−1)-term MSM).
//! 2. **The MSM engine** itself: `Group::multi_exp` versus the naive
//!    per-term exp-and-fold across input sizes spanning the
//!    Straus→Pippenger switchover.
//!
//! ```text
//! cargo run --release -p ppgr-bench --bin msm
//! cargo run --release -p ppgr-bench --bin msm -- --n 16 --reps 10
//! cargo run --release -p ppgr-bench --bin msm -- --smoke   # CI: small + self-check
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

use ppgr_group::{Element, Group, GroupKind, Scalar};
use ppgr_zkp::{verify_batch, SchnorrProver, SchnorrTranscript};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Config {
    parties: usize,
    reps: u32,
    smoke: bool,
    out: String,
}

fn usage() -> ! {
    eprintln!("usage: msm [--n PARTIES] [--reps R] [--smoke] [--out PATH]");
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut cfg = Config {
        parties: 16,
        reps: 20,
        smoke: false,
        out: "BENCH_msm.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| usage_missing(name));
        match arg.as_str() {
            "--n" => cfg.parties = value("--n").parse().unwrap_or_else(|_| usage()),
            "--reps" => cfg.reps = value("--reps").parse().unwrap_or_else(|_| usage()),
            "--smoke" => cfg.smoke = true,
            "--out" => cfg.out = value("--out"),
            _ => usage(),
        }
    }
    if cfg.smoke {
        cfg.parties = cfg.parties.min(6);
        cfg.reps = cfg.reps.min(2);
    }
    if cfg.parties < 2 || cfg.reps == 0 {
        usage();
    }
    cfg
}

fn usage_missing(name: &str) -> String {
    eprintln!("missing value for {name}");
    usage();
}

struct BatchRow {
    group: &'static str,
    proofs: usize,
    per_proof_ms: f64,
    batch_ms: f64,
    speedup: f64,
}

struct MsmRow {
    group: &'static str,
    terms: usize,
    naive_ms: f64,
    msm_ms: f64,
    speedup: f64,
}

fn group_label(kind: GroupKind) -> &'static str {
    match kind {
        GroupKind::Ecc160 => "Ecc160",
        GroupKind::Ecc224 => "Ecc224",
        GroupKind::Ecc256 => "Ecc256",
        GroupKind::Dl1024 => "Dl1024",
        GroupKind::Dl2048 => "Dl2048",
        GroupKind::Dl3072 => "Dl3072",
    }
}

fn make_proofs(g: &Group, k: usize, seed: u64) -> (Vec<Element>, Vec<SchnorrTranscript>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut statements = Vec::with_capacity(k);
    let mut transcripts = Vec::with_capacity(k);
    for _ in 0..k {
        let x = g.random_scalar(&mut rng);
        statements.push(g.exp_gen(&x));
        let (p, h) = SchnorrProver::commit(g, x, &mut rng);
        let c = g.random_scalar(&mut rng);
        transcripts.push(p.respond(&c, h));
    }
    (statements, transcripts)
}

/// One verifier's key-generation workload: n−1 foreign proofs, verified
/// per proof (the pre-batch path) and as one aggregate equation.
fn bench_batch_verify(kind: GroupKind, parties: usize, reps: u32) -> BatchRow {
    let g = kind.group();
    let proofs = parties - 1;
    let (ys, ts) = make_proofs(&g, proofs, 0xBA7C4 + parties as u64);
    let items: Vec<(&Element, &SchnorrTranscript)> = ys.iter().zip(&ts).collect();
    // Warm the generator comb table so neither path pays its one-off build.
    std::hint::black_box(g.exp_gen(&g.scalar_from_u64(3)));

    let start = Instant::now();
    for _ in 0..reps {
        for (y, t) in &items {
            assert!(t.verify(&g, y), "valid proof rejected");
        }
    }
    let per_proof = start.elapsed() / reps;

    let start = Instant::now();
    for _ in 0..reps {
        assert!(verify_batch(&g, &items).is_ok(), "valid batch rejected");
    }
    let batch = start.elapsed() / reps;

    let per_proof_ms = per_proof.as_secs_f64() * 1e3;
    let batch_ms = batch.as_secs_f64() * 1e3;
    BatchRow {
        group: group_label(kind),
        proofs,
        per_proof_ms,
        batch_ms,
        speedup: per_proof_ms / batch_ms,
    }
}

/// `Group::multi_exp` versus the naive exp-and-fold at one input size.
fn bench_msm(kind: GroupKind, terms: usize, reps: u32) -> MsmRow {
    let g = kind.group();
    let mut rng = StdRng::seed_from_u64(0x4D534D + terms as u64);
    let bases: Vec<Element> = (0..terms)
        .map(|_| g.exp_gen(&g.random_scalar(&mut rng)))
        .collect();
    let scalars: Vec<Scalar> = (0..terms).map(|_| g.random_scalar(&mut rng)).collect();
    let pairs: Vec<(&Element, &Scalar)> = bases.iter().zip(&scalars).collect();

    let start = Instant::now();
    let mut naive_result = g.identity();
    for _ in 0..reps {
        naive_result = pairs
            .iter()
            .fold(g.identity(), |acc, (b, s)| g.op(&acc, &g.exp(b, s)));
    }
    let naive = start.elapsed() / reps;

    let start = Instant::now();
    let mut msm_result = g.identity();
    for _ in 0..reps {
        msm_result = g.multi_exp(&pairs);
    }
    let msm = start.elapsed() / reps;

    assert_eq!(naive_result, msm_result, "MSM diverged from naive fold");
    let naive_ms = naive.as_secs_f64() * 1e3;
    let msm_ms = msm.as_secs_f64() * 1e3;
    MsmRow {
        group: group_label(kind),
        terms,
        naive_ms,
        msm_ms,
        speedup: naive_ms / msm_ms,
    }
}

fn main() {
    let cfg = parse_args();
    let kinds = [GroupKind::Ecc160, GroupKind::Dl1024];
    let sizes: &[usize] = if cfg.smoke { &[8] } else { &[8, 32, 128] };
    eprintln!(
        "msm: n={} (batch of {} proofs), reps={}, sizes={sizes:?}",
        cfg.parties,
        cfg.parties - 1,
        cfg.reps
    );

    let mut batch_rows = Vec::new();
    for kind in kinds {
        let row = bench_batch_verify(kind, cfg.parties, cfg.reps);
        eprintln!(
            "{}: {} proofs per-proof {:.3} ms | batch {:.3} ms | speedup {:.2}x",
            row.group, row.proofs, row.per_proof_ms, row.batch_ms, row.speedup
        );
        batch_rows.push(row);
    }

    let mut msm_rows = Vec::new();
    for kind in kinds {
        // DL reps are costly at large sizes; a couple suffice there.
        let reps = if kind.is_dl() {
            cfg.reps.min(3)
        } else {
            cfg.reps
        };
        for &terms in sizes {
            let row = bench_msm(kind, terms, reps);
            eprintln!(
                "{}: {} terms naive {:.3} ms | msm {:.3} ms | speedup {:.2}x",
                row.group, row.terms, row.naive_ms, row.msm_ms, row.speedup
            );
            msm_rows.push(row);
        }
    }

    let batch_json: Vec<String> = batch_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"group\": \"{}\",\n      \"proofs\": {},\n      \
                 \"per_proof_ms\": {:.6},\n      \"batch_ms\": {:.6},\n      \
                 \"speedup\": {:.6},\n      \"results_match\": true\n    }}",
                r.group, r.proofs, r.per_proof_ms, r.batch_ms, r.speedup
            )
        })
        .collect();
    let msm_json: Vec<String> = msm_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"group\": \"{}\",\n      \"terms\": {},\n      \
                 \"naive_ms\": {:.6},\n      \"msm_ms\": {:.6},\n      \
                 \"speedup\": {:.6},\n      \"results_match\": true\n    }}",
                r.group, r.terms, r.naive_ms, r.msm_ms, r.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"crates/bench/schema/BENCH_msm.schema.json\",\n  \
         \"version\": 1,\n  \"config\": {{\n    \"parties\": {},\n    \
         \"reps\": {},\n    \"smoke\": {}\n  }},\n  \
         \"batch_verify\": [\n{}\n  ],\n  \"msm\": [\n{}\n  ]\n}}\n",
        cfg.parties,
        cfg.reps,
        cfg.smoke,
        batch_json.join(",\n"),
        msm_json.join(",\n")
    );
    std::fs::write(&cfg.out, &json).expect("write BENCH_msm.json");
    eprintln!("wrote {}", cfg.out);

    // Self-check (what CI's smoke lap asserts): every measurement is
    // positive and finite, and the full-size run clears the 2× gate the
    // key-generation phase is rebuilt around.
    for r in &batch_rows {
        assert!(r.per_proof_ms > 0.0 && r.batch_ms > 0.0 && r.speedup.is_finite());
        if !cfg.smoke {
            assert!(
                r.speedup >= 2.0,
                "{}: batch verification speedup {:.2}x below the 2x gate",
                r.group,
                r.speedup
            );
        }
    }
    for r in &msm_rows {
        assert!(r.naive_ms > 0.0 && r.msm_ms > 0.0 && r.speedup.is_finite());
    }
    for field in ["\"schema\"", "\"config\"", "\"batch_verify\"", "\"msm\""] {
        assert!(json.contains(field), "JSON missing {field}");
    }
}
