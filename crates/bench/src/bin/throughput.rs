//! Sessions/sec benchmark for the multi-session throughput runtime.
//!
//! Runs N independent ranking sessions two ways — back-to-back (one at a
//! time, the PR 1 latency path) and pooled on the persistent work-stealing
//! runtime — asserts the pooled outcomes are bit-identical to the solo
//! runs, and writes machine-readable results to `BENCH_throughput.json`
//! (schema: `crates/bench/schema/BENCH_throughput.schema.json`).
//!
//! ```text
//! cargo run --release -p ppgr-bench --bin throughput
//! cargo run --release -p ppgr-bench --bin throughput -- --sessions 8 --workers 4
//! cargo run --release -p ppgr-bench --bin throughput -- --smoke   # CI: small + self-check
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

use ppgr_core::{FrameworkParams, GroupRanking, Outcome, Questionnaire};
use ppgr_group::GroupKind;
use ppgr_runtime::Runtime;
use std::time::{Duration, Instant};

struct Config {
    sessions: usize,
    workers: usize,
    participants: usize,
    smoke: bool,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: throughput [--sessions N] [--workers W] [--n PARTICIPANTS] \
         [--smoke] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut cfg = Config {
        sessions: 8,
        workers: 0,
        participants: 8,
        smoke: false,
        out: "BENCH_throughput.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| usage_missing(name));
        match arg.as_str() {
            "--sessions" => cfg.sessions = value("--sessions").parse().unwrap_or_else(|_| usage()),
            "--workers" => cfg.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--n" => cfg.participants = value("--n").parse().unwrap_or_else(|_| usage()),
            "--smoke" => cfg.smoke = true,
            "--out" => cfg.out = value("--out"),
            _ => usage(),
        }
    }
    if cfg.smoke {
        // Small enough for a CI debug-or-release smoke lap.
        cfg.sessions = cfg.sessions.min(2);
        cfg.participants = cfg.participants.min(3);
    }
    if cfg.sessions == 0 || cfg.participants < 2 {
        usage();
    }
    cfg
}

fn usage_missing(name: &str) -> String {
    eprintln!("missing value for {name}");
    usage();
}

fn params_for(participants: usize, seed: u64) -> FrameworkParams {
    FrameworkParams::builder(Questionnaire::synthetic(1, 2))
        .participants(participants)
        .top_k(2.min(participants))
        .attr_bits(6)
        .weight_bits(3)
        .mask_bits(6)
        .group(GroupKind::Ecc160)
        .seed(seed)
        .build()
        .expect("valid params")
}

fn main() {
    let cfg = parse_args();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let runtime = Runtime::with_workers(cfg.workers);
    eprintln!(
        "throughput: {} sessions, ECC-160 n={}, pool of {} workers ({} cores)",
        cfg.sessions,
        cfg.participants,
        runtime.workers(),
        cores
    );

    // Baseline: the same sessions back-to-back, one at a time.
    let serial_start = Instant::now();
    let solo: Vec<Outcome> = (0..cfg.sessions)
        .map(|i| {
            GroupRanking::new(params_for(cfg.participants, i as u64))
                .with_random_population()
                .run()
                .expect("solo run")
        })
        .collect();
    let serial = serial_start.elapsed();

    // Pooled: submit everything up front, then join.
    let pooled_start = Instant::now();
    let handles: Vec<_> = (0..cfg.sessions)
        .map(|i| runtime.submit(params_for(cfg.participants, i as u64)))
        .collect();
    let pooled: Vec<Outcome> = handles
        .into_iter()
        .map(|h| h.join().expect("pooled run"))
        .collect();
    let elapsed = pooled_start.elapsed();

    let mut identical = true;
    for (i, (p, s)) in pooled.iter().zip(&solo).enumerate() {
        if p.ranks() != s.ranks() || p.traffic() != s.traffic() {
            identical = false;
            eprintln!("session {i}: pooled outcome diverged from solo run!");
        }
    }
    assert!(identical, "pooled sessions must match solo serial runs");

    let rate = |d: Duration| cfg.sessions as f64 / d.as_secs_f64();
    let (serial_rate, pooled_rate) = (rate(serial), rate(elapsed));
    let speedup = pooled_rate / serial_rate;
    eprintln!(
        "back-to-back: {serial:.2?} ({serial_rate:.3} sessions/s) | \
         pooled: {elapsed:.2?} ({pooled_rate:.3} sessions/s) | speedup {speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"schema\": \"crates/bench/schema/BENCH_throughput.schema.json\",\n  \
         \"version\": 1,\n  \"config\": {{\n    \"group\": \"Ecc160\",\n    \
         \"participants\": {},\n    \"sessions\": {},\n    \"workers\": {},\n    \
         \"available_cores\": {},\n    \"smoke\": {}\n  }},\n  \
         \"baseline\": {{\n    \"wall_seconds\": {:.6},\n    \"sessions_per_sec\": {:.6}\n  }},\n  \
         \"pooled\": {{\n    \"wall_seconds\": {:.6},\n    \"sessions_per_sec\": {:.6}\n  }},\n  \
         \"speedup\": {:.6},\n  \"ranks_identical\": {}\n}}\n",
        cfg.participants,
        cfg.sessions,
        runtime.workers(),
        cores,
        cfg.smoke,
        serial.as_secs_f64(),
        serial_rate,
        elapsed.as_secs_f64(),
        pooled_rate,
        speedup,
        identical
    );
    std::fs::write(&cfg.out, &json).expect("write BENCH_throughput.json");
    eprintln!("wrote {}", cfg.out);

    // Self-check (what CI's smoke lap asserts): rates are positive finite
    // and the emitted JSON is well-formed enough to round-trip its fields.
    assert!(
        pooled_rate > 0.0 && pooled_rate.is_finite(),
        "rate not positive"
    );
    assert!(
        serial_rate > 0.0 && serial_rate.is_finite(),
        "rate not positive"
    );
    for field in [
        "\"schema\"",
        "\"config\"",
        "\"baseline\"",
        "\"pooled\"",
        "\"sessions_per_sec\"",
        "\"speedup\"",
        "\"ranks_identical\": true",
    ] {
        assert!(json.contains(field), "JSON missing {field}");
    }
}
