//! Saturation benchmark for the ranking-as-a-service front door.
//!
//! Measures a *curve*: sessions/sec as a function of offered load (how
//! many requests the synthetic client keeps outstanding against the
//! service at once), plus the cross-session verify-amortization
//! microbenchmark (k sessions' Schnorr checks, one aggregate MSM versus k
//! per-session batches). Every curve point asserts the tentpole
//! invariant in-harness: each served outcome is bit-identical — ranks
//! *and* wire transcript — to a solo serial run of the same parameters.
//!
//! Results go to `BENCH_throughput.json`
//! (schema: `crates/bench/schema/BENCH_throughput.schema.json`, v2).
//!
//! ```text
//! cargo run --release -p ppgr-bench --bin throughput
//! cargo run --release -p ppgr-bench --bin throughput -- --sessions 8 --shard-workers 4
//! cargo run --release -p ppgr-bench --bin throughput -- --smoke   # CI: small + self-check
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

use ppgr_core::{FrameworkParams, GroupRanking, Outcome, Questionnaire};
use ppgr_group::GroupKind;
use ppgr_service::{Service, ServiceConfig, ServiceHandle};
use ppgr_zkp::{verify_multi_batch, verify_sessions_multi_batch, MultiVerifierProof};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

struct Config {
    sessions: usize,
    shards: usize,
    shard_workers: usize,
    verify_batch: usize,
    participants: usize,
    smoke: bool,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: throughput [--sessions N] [--shards S] [--shard-workers W] \
         [--batch B] [--n PARTICIPANTS] [--smoke] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut cfg = Config {
        sessions: 8,
        shards: 1,
        shard_workers: 0,
        verify_batch: 4,
        participants: 8,
        smoke: false,
        out: "BENCH_throughput.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| usage_missing(name));
        match arg.as_str() {
            "--sessions" => cfg.sessions = value("--sessions").parse().unwrap_or_else(|_| usage()),
            "--shards" => cfg.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--shard-workers" => {
                cfg.shard_workers = value("--shard-workers").parse().unwrap_or_else(|_| usage())
            }
            "--batch" => cfg.verify_batch = value("--batch").parse().unwrap_or_else(|_| usage()),
            "--n" => cfg.participants = value("--n").parse().unwrap_or_else(|_| usage()),
            "--smoke" => cfg.smoke = true,
            "--out" => cfg.out = value("--out"),
            _ => usage(),
        }
    }
    if cfg.smoke {
        // Small enough for a CI debug-or-release smoke lap.
        cfg.sessions = cfg.sessions.min(2);
        cfg.participants = cfg.participants.min(3);
    }
    if cfg.sessions == 0 || cfg.participants < 2 || cfg.shards == 0 {
        usage();
    }
    cfg
}

fn usage_missing(name: &str) -> String {
    eprintln!("missing value for {name}");
    usage();
}

fn params_for(participants: usize, seed: u64) -> FrameworkParams {
    FrameworkParams::builder(Questionnaire::synthetic(1, 2))
        .participants(participants)
        .top_k(2.min(participants))
        .attr_bits(6)
        .weight_bits(3)
        .mask_bits(6)
        .group(GroupKind::Ecc160)
        .seed(seed)
        .build()
        .expect("valid params")
}

/// One saturation-curve point: `sessions` requests pushed through a fresh
/// service while keeping up to `offered` outstanding at once (a sliding
/// client window), outcomes checked bit-for-bit against the solo
/// reference runs.
struct CurvePoint {
    offered: usize,
    wall: Duration,
    admitted: u64,
    shed: u64,
    batched_proofs: u64,
}

fn run_curve_point(cfg: &Config, workers: usize, offered: usize, solo: &[Outcome]) -> CurvePoint {
    let service = Service::new(ServiceConfig {
        shards: cfg.shards,
        workers_per_shard: workers,
        verify_batch: cfg.verify_batch,
        ..ServiceConfig::default()
    });
    let mut outcomes: Vec<Option<Outcome>> = (0..cfg.sessions).map(|_| None).collect();
    let mut window: VecDeque<(usize, ServiceHandle)> = VecDeque::new();
    let start = Instant::now();
    for i in 0..cfg.sessions {
        if window.len() == offered {
            let (j, handle) = window.pop_front().expect("non-empty window");
            outcomes[j] = Some(handle.join().expect("served session"));
        }
        let handle = service
            .submit(i as u64, params_for(cfg.participants, i as u64))
            .expect("unbounded window admits everything");
        window.push_back((i, handle));
    }
    while let Some((j, handle)) = window.pop_front() {
        outcomes[j] = Some(handle.join().expect("served session"));
    }
    let wall = start.elapsed();
    for (i, (served, reference)) in outcomes.iter().zip(solo).enumerate() {
        let served = served.as_ref().expect("every session joined");
        assert!(
            served.ranks() == reference.ranks() && served.traffic() == reference.traffic(),
            "offered {offered}, session {i}: served outcome diverged from solo run"
        );
    }
    let metrics = service.metrics();
    CurvePoint {
        offered,
        wall,
        admitted: metrics.sessions_admitted,
        shed: metrics.sessions_rejected_saturated + metrics.sessions_rejected_deadline,
        batched_proofs: metrics.verify_batched_proofs,
    }
}

/// Cross-session verify amortization, isolated: `k` sessions of
/// `proofs_per_session` multi-verifier Schnorr proofs each, verified as
/// `k` per-session aggregate batches versus **one** cross-session MSM.
struct AmortizationResult {
    sessions: usize,
    proofs_per_session: usize,
    per_session: Duration,
    batched: Duration,
}

fn run_verify_amortization(cfg: &Config) -> AmortizationResult {
    let group = GroupKind::Ecc160.group();
    let k = cfg.sessions.max(4);
    let per_session_proofs = cfg.participants;
    let verifiers = cfg.participants - 1;
    let mut rng = StdRng::seed_from_u64(0xa3);
    let sessions: Vec<Vec<_>> = (0..k)
        .map(|_| {
            (0..per_session_proofs)
                .map(|_| {
                    let witness = group.random_scalar(&mut rng);
                    let statement = group.exp_gen(&witness);
                    let transcript =
                        MultiVerifierProof::run(&group, &witness, verifiers.max(1), &mut rng);
                    (statement, transcript)
                })
                .collect()
        })
        .collect();
    let borrowed: Vec<Vec<_>> = sessions
        .iter()
        .map(|s| s.iter().map(|(y, t)| (y, t)).collect())
        .collect();
    let slices: Vec<&[_]> = borrowed.iter().map(Vec::as_slice).collect();

    let rounds = if cfg.smoke { 2 } else { 5 };
    let per_session_start = Instant::now();
    for _ in 0..rounds {
        for items in &borrowed {
            verify_multi_batch(&group, items).expect("honest proofs verify");
        }
    }
    let per_session = per_session_start.elapsed() / rounds;

    let batched_start = Instant::now();
    for _ in 0..rounds {
        verify_sessions_multi_batch(&group, &slices).expect("honest proofs verify");
    }
    let batched = batched_start.elapsed() / rounds;

    AmortizationResult {
        sessions: k,
        proofs_per_session: per_session_proofs,
        per_session,
        batched,
    }
}

fn main() {
    let cfg = parse_args();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = if cfg.shard_workers == 0 {
        cores
    } else {
        cfg.shard_workers
    };
    eprintln!(
        "throughput: {} sessions, ECC-160 n={}, {} shard(s) × {} worker(s), \
         verify batch {} ({} cores)",
        cfg.sessions, cfg.participants, cfg.shards, workers, cfg.verify_batch, cores
    );

    // Solo reference: the same sessions back-to-back, one at a time. Also
    // the bit-identity oracle for every curve point.
    let serial_start = Instant::now();
    let solo: Vec<Outcome> = (0..cfg.sessions)
        .map(|i| {
            GroupRanking::new(params_for(cfg.participants, i as u64))
                .with_random_population()
                .run()
                .expect("solo run")
        })
        .collect();
    let serial = serial_start.elapsed();
    let rate = |d: Duration| cfg.sessions as f64 / d.as_secs_f64();
    let serial_rate = rate(serial);
    eprintln!("baseline back-to-back: {serial:.2?} ({serial_rate:.3} sessions/s)");

    // The saturation curve: offered load 1 (closed-loop serial client)
    // up through a window that keeps every worker saturated.
    let offered_loads: &[usize] = if cfg.smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let mut curve = Vec::new();
    for &offered in offered_loads {
        let point = run_curve_point(&cfg, workers, offered, &solo);
        eprintln!(
            "offered {:>2}: {:.2?} ({:.3} sessions/s, {} admitted, {} shed, \
             {} proofs batch-verified)",
            point.offered,
            point.wall,
            rate(point.wall),
            point.admitted,
            point.shed,
            point.batched_proofs,
        );
        curve.push(point);
    }

    let amort = run_verify_amortization(&cfg);
    let amort_speedup = amort.per_session.as_secs_f64() / amort.batched.as_secs_f64();
    eprintln!(
        "verify amortization: {} sessions × {} proofs — per-session {:.2?}, \
         one MSM {:.2?} ({amort_speedup:.2}x)",
        amort.sessions, amort.proofs_per_session, amort.per_session, amort.batched,
    );

    let curve_json: Vec<String> = curve
        .iter()
        .map(|p| {
            format!(
                "    {{\n      \"offered\": {},\n      \"wall_seconds\": {:.6},\n      \
                 \"sessions_per_sec\": {:.6},\n      \"admitted\": {},\n      \
                 \"shed\": {},\n      \"batched_proofs\": {}\n    }}",
                p.offered,
                p.wall.as_secs_f64(),
                rate(p.wall),
                p.admitted,
                p.shed,
                p.batched_proofs
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"crates/bench/schema/BENCH_throughput.schema.json\",\n  \
         \"version\": 2,\n  \"config\": {{\n    \"group\": \"Ecc160\",\n    \
         \"participants\": {},\n    \"sessions\": {},\n    \"shards\": {},\n    \
         \"workers_per_shard\": {},\n    \"verify_batch\": {},\n    \
         \"available_cores\": {},\n    \"smoke\": {}\n  }},\n  \
         \"baseline\": {{\n    \"wall_seconds\": {:.6},\n    \"sessions_per_sec\": {:.6}\n  }},\n  \
         \"curve\": [\n{}\n  ],\n  \
         \"verify_amortization\": {{\n    \"sessions\": {},\n    \
         \"proofs_per_session\": {},\n    \"per_session_ms\": {:.6},\n    \
         \"batched_ms\": {:.6},\n    \"speedup\": {:.6}\n  }},\n  \
         \"ranks_identical\": true\n}}\n",
        cfg.participants,
        cfg.sessions,
        cfg.shards,
        workers,
        cfg.verify_batch,
        cores,
        cfg.smoke,
        serial.as_secs_f64(),
        serial_rate,
        curve_json.join(",\n"),
        amort.sessions,
        amort.proofs_per_session,
        amort.per_session.as_secs_f64() * 1e3,
        amort.batched.as_secs_f64() * 1e3,
        amort_speedup,
    );
    std::fs::write(&cfg.out, &json).expect("write BENCH_throughput.json");
    eprintln!("wrote {}", cfg.out);

    // Self-check (what CI's smoke lap asserts): the curve has enough
    // points, rates are positive finite, the amortization numbers exist.
    assert!(curve.len() >= 3, "saturation curve needs >= 3 points");
    assert!(
        serial_rate > 0.0 && serial_rate.is_finite(),
        "baseline rate not positive"
    );
    for p in &curve {
        let r = rate(p.wall);
        assert!(
            r > 0.0 && r.is_finite(),
            "offered {} rate not positive",
            p.offered
        );
        assert_eq!(p.admitted, cfg.sessions as u64, "curve sheds nothing");
    }
    assert!(
        amort_speedup > 0.0 && amort_speedup.is_finite(),
        "amortization speedup not positive"
    );
    for field in [
        "\"schema\"",
        "\"version\": 2",
        "\"config\"",
        "\"baseline\"",
        "\"curve\"",
        "\"verify_amortization\"",
        "\"speedup\"",
        "\"ranks_identical\": true",
    ] {
        assert!(json.contains(field), "JSON missing {field}");
    }
}
