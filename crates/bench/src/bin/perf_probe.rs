//! Quick per-exponentiation timing probe for all six groups
//! (the minimal version of what `reproduce`'s calibration does).

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

use ppgr_group::{Group, GroupKind};
use rand::SeedableRng;
use std::time::Instant;

fn probe(kind: GroupKind) {
    let g: Group = kind.group();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let x = g.random_scalar(&mut rng);
    let base = g.exp_gen(&x);
    let n = 200;
    let start = Instant::now();
    let mut acc = base.clone();
    for _ in 0..n {
        let s = g.random_scalar(&mut rng);
        acc = g.exp(&acc, &s);
    }
    let per = start.elapsed() / n;
    println!("{kind}: {per:?} per exp");
    let _ = acc;
}

fn main() {
    for k in GroupKind::all() {
        probe(k);
    }
}
