//! Regenerates every figure of the paper's evaluation (Sec. VII).
//!
//! ```text
//! cargo run --release -p ppgr-bench --bin reproduce -- all
//! cargo run --release -p ppgr-bench --bin reproduce -- fig2a fig3b
//! cargo run --release -p ppgr-bench --bin reproduce -- validate
//! ```
//!
//! Methodology: per-operation costs are measured on this machine, the
//! calibrated model is validated against real end-to-end runs at small
//! scale (`validate`), and each figure's series is produced from the
//! model at the paper's scales (full runs at n=70 with 3072-bit keys
//! would take hours on one core). Fig. 3(b) runs the discrete-event
//! network simulator on exact synthetic wire traces.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

use ppgr_bench::calibrate::Calibration;
use ppgr_bench::model::{self, framework_participant_time, ss_participant_time, PaperDefaults};
use ppgr_bench::table::{fmt_bytes, fmt_duration, Table};
use ppgr_bench::traces;
use ppgr_core::analysis;
use ppgr_core::bit_length;
use ppgr_group::{GroupKind, SecurityLevel};
use ppgr_net::sim::NetworkSim;
use ppgr_smc::cost;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figs: Vec<&str> = args.iter().map(String::as_str).collect();
    if figs.is_empty() || figs.contains(&"all") {
        figs = vec![
            "validate", "fig2a", "fig2b", "fig2c", "fig2d", "fig3a", "fig3b", "analysis",
        ];
    }
    println!("calibrating per-operation costs on this machine…");
    let cal = Calibration::measure(true);
    for ((kind, var), ((_, fixed), (_, hop))) in cal
        .exp
        .iter()
        .zip(cal.fixed_exp.iter().zip(cal.chain_hop.iter()))
    {
        println!(
            "  {kind}: {} per exponentiation ({} fixed-base, {} fused chain hop)",
            fmt_duration(*var),
            fmt_duration(*fixed),
            fmt_duration(*hop),
        );
    }
    println!("  field mul (SS unit): {}\n", fmt_duration(cal.field_mul));

    for fig in figs {
        match fig {
            "validate" => validate(&cal),
            "fig2a" => fig2a(&cal),
            "fig2b" => fig2b(&cal),
            "fig2c" => fig2c(&cal),
            "fig2d" => fig2d(&cal),
            "fig3a" => fig3a(&cal),
            "fig3b" => fig3b(&cal),
            "analysis" => analysis_table(),
            other => eprintln!("unknown figure: {other}"),
        }
    }
}

/// Small-scale end-to-end runs versus the calibrated model.
fn validate(cal: &Calibration) {
    let mut t = Table::new(
        "validate — measured full protocol vs calibrated model",
        &["group", "n", "measured", "model", "ratio"],
    );
    for (kind, n) in [
        (GroupKind::Ecc160, 5usize),
        (GroupKind::Ecc160, 8),
        (GroupKind::Dl1024, 4),
    ] {
        let v = model::validate(cal, kind, n);
        t.row(vec![
            kind.to_string(),
            n.to_string(),
            fmt_duration(v.measured),
            fmt_duration(v.predicted),
            format!("{:.2}{}", v.ratio(), if v.acceptable() { "" } else { " ⚠" }),
        ]);
    }
    // The SS runnable engine, small scale.
    let ss = model::measure_ss(8, 12, 7);
    t.row(vec![
        "SS (runnable)".into(),
        "8".into(),
        fmt_duration(ss),
        "—".into(),
        "—".into(),
    ]);
    t.note("model = per-phase op counts × measured rates (fixed-base tables, fused chain hops, variable-base exps); acceptable within 3×");
    println!("{}", t.render());
}

/// Fig. 2(a): per-participant computation vs number of participants.
fn fig2a(cal: &Calibration) {
    let d = PaperDefaults::default();
    let l = d.l();
    let mut t = Table::new(
        format!("Fig. 2(a) — per-participant computation vs n  (m=10, d1=15, h=15, l={l})"),
        &["n", "ECC-160", "DL-1024", "SS"],
    );
    for n in [5usize, 10, 15, 20, 25, 30, 35, 40, 45] {
        t.row(vec![
            n.to_string(),
            fmt_duration(framework_participant_time(cal, GroupKind::Ecc160, n, l)),
            fmt_duration(framework_participant_time(cal, GroupKind::Dl1024, n, l)),
            fmt_duration(ss_participant_time(cal, n, l)),
        ]);
    }
    t.note("paper shape: SS grows ~cubically, ours ~quadratically; ECC fastest");
    println!("{}", t.render());
}

/// Fig. 2(b): sweep the attribute dimension m.
fn fig2b(cal: &Calibration) {
    let d = PaperDefaults::default();
    let mut t = Table::new(
        "Fig. 2(b) — per-participant computation vs m  (n=25, d1=15, h=15)",
        &["m", "l", "ECC-160", "DL-1024", "SS"],
    );
    for m in [5usize, 10, 15, 20, 25, 30, 35, 40] {
        let l = bit_length(m, d.d1, d.d2, d.h);
        t.row(vec![
            m.to_string(),
            l.to_string(),
            fmt_duration(framework_participant_time(cal, GroupKind::Ecc160, d.n, l)),
            fmt_duration(framework_participant_time(cal, GroupKind::Dl1024, d.n, l)),
            fmt_duration(ss_participant_time(cal, d.n, l)),
        ]);
    }
    t.note("m only enters through ⌈log₂ m⌉ in l → logarithmic growth");
    println!("{}", t.render());
}

/// Fig. 2(c): sweep the attribute bit width d₁.
fn fig2c(cal: &Calibration) {
    let d = PaperDefaults::default();
    let mut t = Table::new(
        "Fig. 2(c) — per-participant computation vs d1  (n=25, m=10, h=15)",
        &["d1", "l", "ECC-160", "DL-1024", "SS"],
    );
    for d1 in [10u32, 15, 20, 25, 30, 35] {
        let l = bit_length(d.m, d1, d.d2, d.h);
        t.row(vec![
            d1.to_string(),
            l.to_string(),
            fmt_duration(framework_participant_time(cal, GroupKind::Ecc160, d.n, l)),
            fmt_duration(framework_participant_time(cal, GroupKind::Dl1024, d.n, l)),
            fmt_duration(ss_participant_time(cal, d.n, l)),
        ]);
    }
    t.note("d1 adds to l linearly → linear growth for every framework");
    println!("{}", t.render());
}

/// Fig. 2(d): sweep the mask bit width h.
fn fig2d(cal: &Calibration) {
    let d = PaperDefaults::default();
    let mut t = Table::new(
        "Fig. 2(d) — per-participant computation vs h  (n=25, m=10, d1=15)",
        &["h", "l", "ECC-160", "DL-1024", "SS"],
    );
    for h in [10u32, 15, 20, 25, 30, 35] {
        let l = bit_length(d.m, d.d1, d.d2, h);
        t.row(vec![
            h.to_string(),
            l.to_string(),
            fmt_duration(framework_participant_time(cal, GroupKind::Ecc160, d.n, l)),
            fmt_duration(framework_participant_time(cal, GroupKind::Dl1024, d.n, l)),
            fmt_duration(ss_participant_time(cal, d.n, l)),
        ]);
    }
    t.note("h adds to l linearly, exactly like d1");
    println!("{}", t.render());
}

/// Fig. 3(a): equivalent security levels at n = 70.
fn fig3a(cal: &Calibration) {
    let d = PaperDefaults::default();
    let l = d.l();
    let n = 70usize;
    let mut t = Table::new(
        "Fig. 3(a) — per-participant computation vs security level (n=70)",
        &["level", "DL", "ECC", "DL/ECC"],
    );
    for level in SecurityLevel::all() {
        let dl = framework_participant_time(cal, level.dl(), n, l);
        let ecc = framework_participant_time(cal, level.ecc(), n, l);
        t.row(vec![
            level.to_string(),
            fmt_duration(dl),
            fmt_duration(ecc),
            format!("{:.1}×", dl.as_secs_f64() / ecc.as_secs_f64()),
        ]);
    }
    t.note("paper shape: ECC advantage widens as the level rises");
    println!("{}", t.render());
}

/// Fig. 3(b): per-participant *execution* time (computation + network)
/// on the simulated network — the paper's y-axis.
fn fig3b(cal: &Calibration) {
    let d = PaperDefaults::default();
    let l = d.l();
    let mut t = Table::new(
        "Fig. 3(b) — execution time (compute + network) on the 80-node/320-edge 2 Mbps/50 ms network",
        &["n", "ECC-160", "DL-1024", "SS (batched)", "SS (unbatched)", "ECC bytes", "DL bytes"],
    );
    for n in [5usize, 10, 20, 30, 40, 50, 60, 70] {
        let sim = NetworkSim::paper_setup(n + 1, 7);
        let ecc_trace = traces::framework_trace(GroupKind::Ecc160, n, l, d.m, d.t, 3);
        let dl_trace = traces::framework_trace(GroupKind::Dl1024, n, l, d.m, d.t, 3);
        let ss_b = traces::ss_trace(n, l, d.m, d.t);
        let ss_u = traces::ss_trace_unbatched(n, l, d.m, d.t);
        let ecc = sim
            .simulate(&ecc_trace)
            .expect("trace is well formed")
            .completion_s
            + framework_participant_time(cal, GroupKind::Ecc160, n, l).as_secs_f64();
        let dl = sim
            .simulate(&dl_trace)
            .expect("trace is well formed")
            .completion_s
            + framework_participant_time(cal, GroupKind::Dl1024, n, l).as_secs_f64();
        let ss_compute = ss_participant_time(cal, n, l).as_secs_f64();
        let ss_batched = sim
            .simulate(&ss_b)
            .expect("trace is well formed")
            .completion_s
            + ss_compute;
        let ss_unbatched = sim
            .simulate(&ss_u)
            .expect("trace is well formed")
            .completion_s
            + ss_compute;
        t.row(vec![
            n.to_string(),
            fmt_duration(std::time::Duration::from_secs_f64(ecc)),
            fmt_duration(std::time::Duration::from_secs_f64(dl)),
            fmt_duration(std::time::Duration::from_secs_f64(ss_batched)),
            fmt_duration(std::time::Duration::from_secs_f64(ss_unbatched)),
            fmt_bytes(traces::trace_bytes(&ecc_trace)),
            fmt_bytes(traces::trace_bytes(&dl_trace)),
        ]);
    }
    t.note("ECC best everywhere (paper ✓); the two SS columns bracket the paper's SS curve:");
    t.note("  batched = mult sub-messages pipelined (SS beats DL at small n, paper ✓);");
    t.note("  unbatched = every mult ships shares (SS behind DL at large n, paper ✓). See EXPERIMENTS.md.");
    println!("{}", t.render());
}

/// The Sec. VI-B complexity comparison.
fn analysis_table() {
    let d = PaperDefaults::default();
    let l = d.l();
    let lambda = 160usize;
    let mut t = Table::new(
        "Sec. VI-B — asymptotic cost comparison (concrete counts)",
        &[
            "n",
            "ours: group mults",
            "ours: rounds",
            "SS: int mults",
            "SS: rounds",
        ],
    );
    for n in [10usize, 25, 45, 70] {
        t.row(vec![
            n.to_string(),
            cost::framework_group_mults(n, l, lambda).to_string(),
            analysis::framework_rounds(n).to_string(),
            cost::ss_sort_int_mults(n, l).to_string(),
            cost::ss_sort_rounds(n, l).to_string(),
        ]);
    }
    t.note("ours: O(l²n + ln²λ) mults, O(n) rounds; SS: O(l·t·n²(log n)³) mults, O((279l+5)·n·(log n)²) rounds");
    let mut ops = Table::new(
        format!("participant exponentiation breakdown (n=25, l={l})"),
        &["phase", "exps"],
    );
    let b = analysis::participant_ops(25, l);
    ops.row(vec!["setup (keys+ZKP)".into(), b.setup_exps.to_string()]);
    ops.row(vec!["bit encryption".into(), b.encrypt_exps.to_string()]);
    ops.row(vec!["comparisons".into(), b.compare_exps.to_string()]);
    ops.row(vec![
        "shuffle-decrypt chain".into(),
        b.chain_exps.to_string(),
    ]);
    ops.row(vec!["final decryption".into(), b.final_exps.to_string()]);
    ops.row(vec!["total".into(), b.total().to_string()]);
    println!("{}", t.render());
    println!("{}", ops.render());
}
