//! A deterministic random bit generator in the style of NIST HMAC-DRBG.
//!
//! Implements [`rand::RngCore`] + [`rand::SeedableRng`] so it can be used
//! anywhere the workspace needs *reproducible* randomness (experiment
//! harness, per-party seeded RNGs derived from a master seed).

use crate::hmac::hmac_sha256;
use rand::{CryptoRng, RngCore, SeedableRng};

/// HMAC-DRBG over SHA-256 (simplified: no reseed counter enforcement —
/// this workspace uses it for reproducible simulation, not production
/// key generation).
#[derive(Clone, Debug)]
pub struct HashDrbg {
    key: [u8; 32],
    v: [u8; 32],
    /// Buffered output not yet handed to the consumer.
    buffer: Vec<u8>,
}

impl HashDrbg {
    /// Instantiates from seed material of any length.
    pub fn new(seed_material: &[u8]) -> Self {
        let mut drbg = HashDrbg {
            key: [0u8; 32],
            v: [1u8; 32],
            buffer: Vec::new(),
        };
        drbg.update(Some(seed_material));
        drbg
    }

    /// Derives an independent child generator, labelled by `label`.
    ///
    /// Used to give each simulated party its own RNG from a master seed so
    /// that experiments are reproducible regardless of scheduling order.
    pub fn fork(&self, label: &[u8]) -> HashDrbg {
        let mut material = self.key.to_vec();
        material.extend_from_slice(b"/fork/");
        material.extend_from_slice(label);
        HashDrbg::new(&material)
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut msg = self.v.to_vec();
        msg.push(0x00);
        if let Some(p) = provided {
            msg.extend_from_slice(p);
        }
        self.key = hmac_sha256(&self.key, &msg);
        self.v = hmac_sha256(&self.key, &self.v);
        if let Some(p) = provided {
            let mut msg = self.v.to_vec();
            msg.push(0x01);
            msg.extend_from_slice(p);
            self.key = hmac_sha256(&self.key, &msg);
            self.v = hmac_sha256(&self.key, &self.v);
        }
    }

    fn generate_block(&mut self) {
        self.v = hmac_sha256(&self.key, &self.v);
        self.buffer.extend_from_slice(&self.v);
    }
}

impl RngCore for HashDrbg {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        while self.buffer.len() < dest.len() {
            self.generate_block();
        }
        let rest = self.buffer.split_off(dest.len());
        dest.copy_from_slice(&self.buffer);
        self.buffer = rest;
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl CryptoRng for HashDrbg {}

impl SeedableRng for HashDrbg {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        HashDrbg::new(&seed)
    }

    fn seed_from_u64(state: u64) -> Self {
        HashDrbg::new(&state.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HashDrbg::seed_from_u64(7);
        let mut b = HashDrbg::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut buf_a = [0u8; 100];
        let mut buf_b = [0u8; 100];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HashDrbg::seed_from_u64(1);
        let mut b = HashDrbg::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let root = HashDrbg::seed_from_u64(3);
        let mut f1 = root.fork(b"party-1");
        let mut f1_again = root.fork(b"party-1");
        let mut f2 = root.fork(b"party-2");
        let x = f1.next_u64();
        assert_eq!(x, f1_again.next_u64());
        assert_ne!(x, f2.next_u64());
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = HashDrbg::seed_from_u64(4);
        let mut ones = 0u32;
        let n = 10_000;
        for _ in 0..n {
            ones += rng.next_u64().count_ones();
        }
        let total = n * 64;
        let ratio = ones as f64 / total as f64;
        assert!((0.49..0.51).contains(&ratio), "bit balance {ratio}");
    }

    #[test]
    fn partial_reads_consume_stream_in_order() {
        let mut a = HashDrbg::seed_from_u64(5);
        let mut b = HashDrbg::seed_from_u64(5);
        let mut one = [0u8; 1];
        let mut many = [0u8; 10];
        let mut combined = Vec::new();
        for _ in 0..10 {
            a.fill_bytes(&mut one);
            combined.push(one[0]);
        }
        b.fill_bytes(&mut many);
        assert_eq!(combined, many);
    }
}
