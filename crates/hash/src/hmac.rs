//! RFC 2104 HMAC instantiated with SHA-256.

use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// Incremental HMAC-SHA-256.
///
/// # Example
///
/// ```
/// use ppgr_hash::{hmac_sha256, HmacSha256};
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"message");
/// assert_eq!(mac.finalize(), hmac_sha256(b"key", b"message"));
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK],
}

impl HmacSha256 {
    /// Creates a MAC with the given key (any length; long keys are hashed).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            k[..32].copy_from_slice(&sha256(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK];
        let mut opad = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Absorbs more message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Returns the 32-byte tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            to_hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            to_hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        assert_eq!(
            to_hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(b"k", b"hello world"));
    }
}
