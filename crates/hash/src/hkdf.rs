//! RFC 5869 HKDF with SHA-256.

use crate::hmac::hmac_sha256;

/// HKDF-Extract: derives a pseudorandom key from input keying material.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: expands a pseudorandom key to `len` output bytes.
///
/// # Panics
///
/// Panics if `len > 255 * 32` (RFC 5869 limit).
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "HKDF output limit exceeded");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut msg = t.clone();
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        t = block.to_vec();
        out.extend_from_slice(&block);
        counter += 1;
    }
    out.truncate(len);
    out
}

/// Full HKDF: extract-then-expand.
pub fn hkdf_sha256(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    hkdf_expand(&hkdf_extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    // RFC 5869 Test Case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0b; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            to_hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 Test Case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0b; 22];
        let okm = hkdf_sha256(&[], &ikm, &[], 42);
        assert_eq!(
            to_hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_multi_block_and_truncation() {
        let prk = hkdf_extract(b"salt", b"ikm");
        let long = hkdf_expand(&prk, b"ctx", 100);
        assert_eq!(long.len(), 100);
        // Prefix property: shorter outputs are prefixes of longer ones.
        let short = hkdf_expand(&prk, b"ctx", 33);
        assert_eq!(&long[..33], &short[..]);
        // Different info → different stream.
        assert_ne!(hkdf_expand(&prk, b"other", 33), short);
    }

    #[test]
    #[should_panic(expected = "HKDF output limit")]
    fn expand_over_limit_panics() {
        let prk = [0u8; 32];
        let _ = hkdf_expand(&prk, b"", 255 * 32 + 1);
    }
}
