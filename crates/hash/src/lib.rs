//! SHA-256, HMAC-SHA-256, HKDF and a hash-based DRBG, from scratch.
//!
//! The allowed dependency set for this reproduction contains no hash crate,
//! so the few places in `ppgr` that need hashing get it from here:
//!
//! * deterministic, seedable randomness for reproducible experiments
//!   ([`HashDrbg`] implements [`rand::RngCore`]);
//! * key derivation for the secure-channel model ([`hkdf_sha256`]);
//! * the optional Fiat–Shamir (non-interactive) variant of the Schnorr
//!   proof in `ppgr-zkp` ([`sha256`]).
//!
//! # Example
//!
//! ```
//! use ppgr_hash::{sha256, to_hex};
//!
//! let digest = sha256(b"abc");
//! assert_eq!(
//!     to_hex(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

mod drbg;
mod hkdf;
mod hmac;
mod sha256;

pub use drbg::HashDrbg;
pub use hkdf::{hkdf_expand, hkdf_extract, hkdf_sha256};
pub use hmac::{hmac_sha256, HmacSha256};
pub use sha256::{sha256, Sha256};

/// Hex-encodes a byte slice (lowercase), convenience for tests and logs.
pub fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
