//! Standard and exponential ElGamal ciphertexts and their homomorphic ops.

use ppgr_bigint::Secret;
use ppgr_group::{Element, FixedBaseTable, Group, HopScalars, Scalar};
use rand::Rng;
use std::fmt;

/// An ElGamal ciphertext `(α, β)`.
///
/// * standard form: `α = M·y^r`, `β = g^r`
/// * exponential form: `α = g^m·y^r`, `β = g^r`
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Ciphertext {
    /// First component (`M·y^r` or `g^m·y^r`).
    pub alpha: Element,
    /// Second component (`g^r`).
    pub beta: Element,
}

impl Ciphertext {
    /// Total encoded size in bytes (two group elements).
    pub fn encoded_len(group: &Group) -> usize {
        2 * group.element_len()
    }

    /// Fixed-length wire encoding (`encode(α) || encode(β)`).
    pub fn encode(&self, group: &Group) -> Vec<u8> {
        let mut out = group.encode(&self.alpha);
        out.extend_from_slice(&group.encode(&self.beta));
        out
    }
}

/// A precomputed encryption mask `(r, g^r, y^r)` for the offline/online
/// phase split.
///
/// The fixed-base half of an encryption or re-randomization — `g^r` — does
/// not depend on the public key, so it can always be computed before the
/// session's joint key even exists. The key-dependent half `y^r` can join
/// it once the joint key is known: a pool that mints keys offline fills it
/// in ([`MaskPair::fill_key_halves`]), leaving the online consumer nothing
/// but group multiplications. A half pair (`y^r` absent) still works — the
/// consuming APIs compute the missing halves through the prepared key
/// table, batched.
///
/// A mask is strictly single-use — re-using `r` across two ciphertexts
/// gives them identical `β` components, visibly linking them — so
/// consuming APIs take it by value.
pub struct MaskPair {
    r: Secret<Scalar>,
    g_r: Element,
    y_r: Option<Element>,
}

impl MaskPair {
    /// Draws a fresh mask and computes `g^r` (the key-independent offline
    /// work); `y^r` is left for [`MaskPair::fill_key_halves`] or the
    /// online consumer.
    ///
    /// Draws exactly one scalar from `rng` — the same single draw the
    /// inline encryption paths perform — so a precomputed encryption fed
    /// from the same randomness stream is bit-identical to an inline one.
    pub fn draw<R: Rng + ?Sized>(group: &Group, rng: &mut R) -> Self {
        let r = group.random_scalar(rng);
        let g_r = group.exp_gen(&r);
        MaskPair {
            r: Secret::new(r),
            g_r,
            y_r: None,
        }
    }

    /// The fixed-base component `g^r` (a ciphertext's `β`).
    pub fn g_r(&self) -> &Element {
        &self.g_r
    }

    /// Whether the key-dependent half `y^r` has been filled in.
    pub fn has_key_half(&self) -> bool {
        self.y_r.is_some()
    }

    /// Fills the `y^r` halves of every mask in `pairs` through the
    /// prepared table for `y`, one batch (elliptic-curve results share a
    /// single field inversion). Masks that already carry their key half
    /// are left untouched, so the call is idempotent.
    pub fn fill_key_halves(group: &Group, key_table: &FixedBaseTable, pairs: &mut [MaskPair]) {
        let todo: Vec<usize> = (0..pairs.len())
            .filter(|&i| pairs[i].y_r.is_none())
            .collect();
        if todo.is_empty() {
            return;
        }
        // tidy:allow(secret-escape) — the cloned nonce batch feeds exp_prepared_batch on the next line and drops at end of call; the pooled originals stay Secret-wrapped
        let rs: Vec<Scalar> = todo.iter().map(|&i| pairs[i].r.expose().clone()).collect();
        let masks = group.exp_prepared_batch(key_table, &rs);
        for (&i, y_r) in todo.iter().zip(masks) {
            pairs[i].y_r = Some(y_r);
        }
    }

    #[cfg(test)]
    pub(crate) fn scalar(&self) -> &Scalar {
        self.r.expose()
    }

    pub(crate) fn into_parts(self) -> (Secret<Scalar>, Element, Option<Element>) {
        (self.r, self.g_r, self.y_r)
    }
}

impl fmt::Debug for MaskPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MaskPair")
            .field("r", &self.r)
            .field("g_r", &self.g_r)
            .field("y_r", &self.y_r)
            .finish()
    }
}

/// Standard (multiplicatively homomorphic) ElGamal over `group`.
#[derive(Clone, Debug)]
pub struct ElGamal {
    group: Group,
}

impl ElGamal {
    /// Creates the scheme over the given group.
    pub fn new(group: Group) -> Self {
        ElGamal { group }
    }

    /// Encrypts a group element `M` under public key `y`.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        public_key: &Element,
        message: &Element,
        rng: &mut R,
    ) -> Ciphertext {
        let r = self.group.random_scalar(rng);
        Ciphertext {
            alpha: self.group.op(message, &self.group.exp(public_key, &r)),
            beta: self.group.exp_gen(&r),
        }
    }

    /// Decrypts: `M = α / β^x`.
    pub fn decrypt(&self, secret_key: &Scalar, ct: &Ciphertext) -> Element {
        let mask = self.group.exp(&ct.beta, secret_key);
        self.group.div(&ct.alpha, &mask)
    }
}

/// Exponential ("modified", paper Sec. IV-D) ElGamal: additively
/// homomorphic in the exponent. Decryption yields `g^m`; the framework only
/// ever needs the `m = 0` test ([`ExpElGamal::decrypts_to_zero`]).
#[derive(Clone, Debug)]
pub struct ExpElGamal {
    group: Group,
}

impl ExpElGamal {
    /// Creates the scheme over the given group.
    pub fn new(group: Group) -> Self {
        ExpElGamal { group }
    }

    /// The underlying group.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// Encrypts the scalar message `m` as `(g^m·y^r, g^r)`.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        public_key: &Element,
        m: &Scalar,
        rng: &mut R,
    ) -> Ciphertext {
        let r = self.group.random_scalar(rng);
        self.encrypt_with_randomness(public_key, m, &r)
    }

    /// Encryption with caller-chosen randomness (used by tests and the
    /// security-game simulator, never by honest protocol parties).
    pub fn encrypt_with_randomness(
        &self,
        public_key: &Element,
        m: &Scalar,
        r: &Scalar,
    ) -> Ciphertext {
        Ciphertext {
            alpha: self
                .group
                .op(&self.group.exp_gen(m), &self.group.exp(public_key, r)),
            beta: self.group.exp_gen(r),
        }
    }

    /// Builds (or fetches from the process-wide cache) a fixed-base
    /// exponentiation table for a public key.
    ///
    /// Every encryption and re-randomization under key `y` computes `y^r`;
    /// with a prepared table that costs about a quarter of a generic
    /// exponentiation. The build cost amortizes after a few uses, so
    /// prepare long-lived keys (the joint key of a protocol run), not
    /// one-shot ones.
    pub fn prepare_key(&self, public_key: &Element) -> FixedBaseTable {
        self.group.prepare_base(public_key)
    }

    /// [`ExpElGamal::encrypt`] through a prepared public-key table.
    ///
    /// Draws the same single scalar from `rng` as `encrypt`, so it is a
    /// drop-in replacement producing bit-identical ciphertexts for the same
    /// randomness stream.
    pub fn encrypt_prepared<R: Rng + ?Sized>(
        &self,
        key_table: &FixedBaseTable,
        m: &Scalar,
        rng: &mut R,
    ) -> Ciphertext {
        let r = self.group.random_scalar(rng);
        Ciphertext {
            alpha: self.group.op(
                &self.group.exp_gen(m),
                &self.group.exp_prepared(key_table, &r),
            ),
            beta: self.group.exp_gen(&r),
        }
    }

    /// Homomorphic addition: `E(m₁) ∘ E(m₂) = E(m₁+m₂)`.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        Ciphertext {
            alpha: self.group.op(&a.alpha, &b.alpha),
            beta: self.group.op(&a.beta, &b.beta),
        }
    }

    /// Homomorphic subtraction: `E(m₁−m₂)`.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        Ciphertext {
            alpha: self.group.div(&a.alpha, &b.alpha),
            beta: self.group.div(&a.beta, &b.beta),
        }
    }

    /// Homomorphic negation: `E(−m)`.
    pub fn neg(&self, a: &Ciphertext) -> Ciphertext {
        Ciphertext {
            alpha: self.group.inv(&a.alpha),
            beta: self.group.inv(&a.beta),
        }
    }

    /// Plaintext-scalar multiplication: `E(k·m)` from `E(m)`.
    pub fn scalar_mul(&self, a: &Ciphertext, k: &Scalar) -> Ciphertext {
        Ciphertext {
            alpha: self.group.exp(&a.alpha, k),
            beta: self.group.exp(&a.beta, k),
        }
    }

    /// Adds a *known* plaintext without re-encrypting: `E(m) → E(m+k)`.
    pub fn add_plaintext(&self, a: &Ciphertext, k: &Scalar) -> Ciphertext {
        Ciphertext {
            alpha: self.group.op(&a.alpha, &self.group.exp_gen(k)),
            beta: a.beta.clone(),
        }
    }

    /// Fresh re-randomization under `y`: same plaintext, new randomness.
    pub fn rerandomize<R: Rng + ?Sized>(
        &self,
        public_key: &Element,
        a: &Ciphertext,
        rng: &mut R,
    ) -> Ciphertext {
        let r = self.group.random_scalar(rng);
        Ciphertext {
            alpha: self.group.op(&a.alpha, &self.group.exp(public_key, &r)),
            beta: self.group.op(&a.beta, &self.group.exp_gen(&r)),
        }
    }

    /// [`ExpElGamal::rerandomize`] through a prepared public-key table;
    /// draws the same single scalar from `rng`.
    pub fn rerandomize_prepared<R: Rng + ?Sized>(
        &self,
        key_table: &FixedBaseTable,
        a: &Ciphertext,
        rng: &mut R,
    ) -> Ciphertext {
        let r = self.group.random_scalar(rng);
        Ciphertext {
            alpha: self
                .group
                .op(&a.alpha, &self.group.exp_prepared(key_table, &r)),
            beta: self.group.op(&a.beta, &self.group.exp_gen(&r)),
        }
    }

    /// [`ExpElGamal::rerandomize_prepared`] with the exponentiations done
    /// ahead of time: `pre` carries `(r, g^r)` — and, if the offline phase
    /// knew the key, `y^r` — so the online work is two group
    /// multiplications for a full pair, or one prepared exponentiation plus
    /// the multiplications for a half pair.
    ///
    /// For a `pre` drawn from the same stream position the inline path
    /// would have used, the output is bit-identical to
    /// [`ExpElGamal::rerandomize_prepared`] either way.
    pub fn rerandomize_with_precomputed(
        &self,
        key_table: &FixedBaseTable,
        a: &Ciphertext,
        pre: MaskPair,
    ) -> Ciphertext {
        let (r, gr, yr) = pre.into_parts();
        let mask = match yr {
            Some(m) => m,
            None => self.group.exp_prepared(key_table, r.expose()),
        };
        Ciphertext {
            alpha: self.group.op(&a.alpha, &mask),
            beta: self.group.op(&a.beta, &gr),
        }
    }

    /// Batch [`ExpElGamal::rerandomize_with_precomputed`] over a ciphertext
    /// set: `pres[i]` re-randomizes `cts[i]`. Any missing `y^r` halves are
    /// computed first in one batch through the prepared table (shared
    /// affine conversion); full pairs reduce the whole call to `2·n` group
    /// multiplications.
    ///
    /// # Panics
    ///
    /// Panics if `cts` and `pres` have different lengths.
    pub fn rerandomize_batch_with_precomputed(
        &self,
        key_table: &FixedBaseTable,
        cts: &[Ciphertext],
        mut pres: Vec<MaskPair>,
    ) -> Vec<Ciphertext> {
        // Hoisted so the assert formats only the (public) count, never
        // the mask vector itself.
        let mask_count = pres.len();
        assert_eq!(cts.len(), mask_count, "one mask per ciphertext");
        MaskPair::fill_key_halves(&self.group, key_table, &mut pres);
        let parts: Vec<(Element, Element)> = pres
            .into_iter()
            .map(|pre| {
                let (r, gr, yr) = pre.into_parts();
                let mask = match yr {
                    // `fill_key_halves` above makes this the only live arm.
                    Some(m) => m,
                    None => self.group.exp_prepared(key_table, r.expose()),
                };
                (mask, gr)
            })
            .collect();
        // One batched multiply for all 2·n component products: on the EC
        // family that is one shared affine conversion instead of a field
        // inversion per component.
        let pairs: Vec<(&Element, &Element)> = cts
            .iter()
            .zip(&parts)
            .flat_map(|(ct, (mask, gr))| [(&ct.alpha, mask), (&ct.beta, gr)])
            .collect();
        let mut prods = self.group.op_batch(&pairs).into_iter();
        let mut out = Vec::with_capacity(cts.len());
        // `op_batch` returns exactly one element per input pair, and two
        // pairs were pushed per ciphertext, so the iterator yields pairs
        // until it is exhausted.
        while let (Some(alpha), Some(beta)) = (prods.next(), prods.next()) {
            out.push(Ciphertext { alpha, beta });
        }
        out
    }

    /// Strips one layer of a joint-key encryption: `α ← α / β^{x_j}`.
    ///
    /// After every key-share holder has applied this, `α = g^m`
    /// (paper Fig. 1, step 8, first bullet).
    pub fn partial_decrypt(&self, a: &Ciphertext, secret_share: &Scalar) -> Ciphertext {
        let mask = self.group.exp(&a.beta, secret_share);
        Ciphertext {
            alpha: self.group.div(&a.alpha, &mask),
            beta: a.beta.clone(),
        }
    }

    /// [`ExpElGamal::partial_decrypt`] without allocating a new ciphertext:
    /// rewrites `α` in place and leaves `β` untouched (no clone).
    pub fn partial_decrypt_in_place(&self, a: &mut Ciphertext, secret_share: &Scalar) {
        let mask = self.group.exp(&a.beta, secret_share);
        a.alpha = self.group.div(&a.alpha, &mask);
    }

    /// Gathered batch [`ExpElGamal::partial_decrypt`]: writes
    /// `out[j] = partial_decrypt(cts[order[j]])` into the caller's reusable
    /// buffer (`order = None` keeps input order). Fuses the chain hop's
    /// shuffle into the output placement, so no separate permutation pass
    /// (and none of its per-ciphertext clones) is needed.
    ///
    /// The whole set shares one exponent: every new `α` is computed as
    /// `α·β^{q−x_j}` through [`Group::exp_same_mul_batch`], so the key
    /// share's digit recoding is done once per hop (not once per
    /// ciphertext), the multiply by `α` is fused into the batched ladder
    /// (no per-ciphertext affine addition, hence no per-ciphertext field
    /// inversion on the EC family), and the DL family drops the division
    /// (a Fermat inversion) entirely — `α·β^{−x}` and `α/β^{x}` are the
    /// same group element.
    ///
    /// # Panics
    ///
    /// Panics if `order` is given and is not the same length as `cts`.
    pub fn partial_decrypt_gather_into(
        &self,
        cts: &[Ciphertext],
        secret_share: &Scalar,
        order: Option<&[usize]>,
        out: &mut Vec<Ciphertext>,
    ) {
        if let Some(o) = order {
            assert_eq!(o.len(), cts.len(), "one output slot per ciphertext");
        }
        let neg_share = self.group.scalar_neg(secret_share);
        let idx = |j: usize| order.map_or(j, |o| o[j]);
        let alphas: Vec<&Element> = (0..cts.len()).map(|j| &cts[idx(j)].alpha).collect();
        let betas: Vec<&Element> = (0..cts.len()).map(|j| &cts[idx(j)].beta).collect();
        let new_alphas = self.group.exp_same_mul_batch(&alphas, &betas, &neg_share);
        out.clear();
        out.reserve(cts.len());
        out.extend(
            new_alphas
                .into_iter()
                .enumerate()
                .map(|(j, alpha)| Ciphertext {
                    alpha,
                    beta: cts[idx(j)].beta.clone(),
                }),
        );
    }

    /// Multiplies the plaintext by `r` by raising both components:
    /// `E(m) → E(r·m)`. Zero is a fixed point — the step-8 randomization.
    pub fn randomize_plaintext(&self, a: &Ciphertext, r: &Scalar) -> Ciphertext {
        self.scalar_mul(a, r)
    }

    /// [`ExpElGamal::randomize_plaintext`] without allocating a new
    /// ciphertext: rewrites both components in place.
    pub fn randomize_plaintext_in_place(&self, a: &mut Ciphertext, r: &Scalar) {
        a.alpha = self.group.exp(&a.alpha, r);
        a.beta = self.group.exp(&a.beta, r);
    }

    /// Batch [`ExpElGamal::randomize_plaintext`]: all 2·n component
    /// exponentiations share one batched affine conversion.
    ///
    /// # Panics
    ///
    /// Panics if `cts` and `rs` have different lengths.
    pub fn randomize_plaintext_batch(&self, cts: &[Ciphertext], rs: &[Scalar]) -> Vec<Ciphertext> {
        assert_eq!(cts.len(), rs.len(), "one randomizer per ciphertext");
        let pairs: Vec<(&Element, &Scalar)> = cts
            .iter()
            .zip(rs)
            .flat_map(|(ct, r)| [(&ct.alpha, r), (&ct.beta, r)])
            .collect();
        let mut exps = self.group.exp_batch(&pairs).into_iter();
        let mut out = Vec::with_capacity(cts.len());
        // `exp_batch` returns exactly one element per input pair, and two
        // pairs were pushed per ciphertext, so the iterator yields pairs
        // until it is exhausted.
        while let (Some(alpha), Some(beta)) = (exps.next(), exps.next()) {
            out.push(Ciphertext { alpha, beta });
        }
        out
    }

    /// Fused `randomize_plaintext(partial_decrypt(a, x), r)` — one shuffle
    /// chain hop (paper Fig. 1 step 8) in a single pass:
    ///
    /// `α′ = α^r · β^{−x·r}`,  `β′ = β^r`.
    ///
    /// The double exponentiation shares one squaring ladder, so the hop
    /// costs ≈ 1.7 exponentiations instead of the 3 paid by composing the
    /// two primitive calls. The output is element-for-element identical to
    /// the composition.
    pub fn partial_decrypt_randomize(
        &self,
        a: &Ciphertext,
        secret_share: &Scalar,
        r: &Scalar,
    ) -> Ciphertext {
        let neg_xr = self
            .group
            .scalar_neg(&self.group.scalar_mul(secret_share, r));
        Ciphertext {
            alpha: self.group.exp_dual(&a.alpha, r, &a.beta, &neg_xr),
            beta: self.group.exp(&a.beta, r),
        }
    }

    /// Batch [`ExpElGamal::partial_decrypt_randomize`] over a whole
    /// ciphertext set: elliptic-curve results additionally share their
    /// affine conversions (two field inversions per set instead of two per
    /// ciphertext).
    ///
    /// # Panics
    ///
    /// Panics if `cts` and `rs` have different lengths.
    pub fn partial_decrypt_randomize_batch(
        &self,
        cts: &[Ciphertext],
        secret_share: &Scalar,
        rs: &[Scalar],
    ) -> Vec<Ciphertext> {
        let mut out = Vec::with_capacity(cts.len());
        self.partial_decrypt_randomize_gather_into(cts, secret_share, rs, None, &mut out);
        out
    }

    /// Gathered batch [`ExpElGamal::partial_decrypt_randomize`] writing into
    /// a caller-provided buffer: `out[j]` is the fused hop applied to
    /// `cts[order[j]]` with randomizer `rs[order[j]]` (`order = None` keeps
    /// input order).
    ///
    /// This is the allocation-lean form of the chain hop: the shuffle
    /// permutation is fused into the *placement* of each result, so the
    /// caller never materializes the un-shuffled set and never clones a
    /// ciphertext to reorder it, and `out`'s capacity is reused across
    /// hops. Element-for-element the results equal
    /// [`ExpElGamal::partial_decrypt_randomize_batch`] followed by a gather
    /// (`permuted[j] = batch[order[j]]`).
    ///
    /// # Panics
    ///
    /// Panics if `rs` (or `order`, when given) is not the same length as
    /// `cts`.
    pub fn partial_decrypt_randomize_gather_into(
        &self,
        cts: &[Ciphertext],
        secret_share: &Scalar,
        rs: &[Scalar],
        order: Option<&[usize]>,
        out: &mut Vec<Ciphertext>,
    ) {
        assert_eq!(cts.len(), rs.len(), "one randomizer per ciphertext");
        if let Some(o) = order {
            assert_eq!(o.len(), cts.len(), "one output slot per ciphertext");
        }
        let idx = |j: usize| order.map_or(j, |o| o[j]);
        let neg_xrs: Vec<Scalar> = (0..cts.len())
            .map(|j| {
                self.group
                    .scalar_neg(&self.group.scalar_mul(secret_share, &rs[idx(j)]))
            })
            .collect();
        // One fused kernel per hop: `(α^r·β^{−xr}, β^r)` share the wNAF
        // recoding of `r` and the precomputed table of `β`, so the hop
        // costs one dual ladder plus one single ladder over *shared*
        // tables instead of a dual batch plus an unrelated single batch.
        let items: Vec<(&Element, &Scalar, &Element, &Scalar)> = (0..cts.len())
            .map(|j| {
                let i = idx(j);
                (&cts[i].alpha, &rs[i], &cts[i].beta, &neg_xrs[j])
            })
            .collect();
        out.clear();
        out.reserve(cts.len());
        out.extend(
            self.group
                .exp_hop_batch(&items)
                .into_iter()
                .map(|(alpha, beta)| Ciphertext { alpha, beta }),
        );
    }

    /// [`ExpElGamal::partial_decrypt_randomize_gather_into`] over hop
    /// scalars prepared ahead of time with
    /// [`ppgr_group::Group::prepare_hop_scalars`]: the `−x·r` products and
    /// the curve-side recodings were paid when the preparation was built,
    /// so this call is nothing but the fused variable-base ladders.
    /// Results are element-for-element identical to the unprepared form
    /// called with the same randomizers and the secret share the
    /// preparation was built from.
    ///
    /// # Panics
    ///
    /// Panics if `prep` (or `order`, when given) is not the same length as
    /// `cts`.
    pub fn partial_decrypt_randomize_prepared_gather_into(
        &self,
        cts: &[Ciphertext],
        prep: &[HopScalars],
        order: Option<&[usize]>,
        out: &mut Vec<Ciphertext>,
    ) {
        assert_eq!(cts.len(), prep.len(), "one preparation per ciphertext");
        if let Some(o) = order {
            assert_eq!(o.len(), cts.len(), "one output slot per ciphertext");
        }
        let idx = |j: usize| order.map_or(j, |o| o[j]);
        let items: Vec<(&Element, &HopScalars, &Element)> = (0..cts.len())
            .map(|j| {
                let i = idx(j);
                (&cts[i].alpha, &prep[i], &cts[i].beta)
            })
            .collect();
        out.clear();
        out.reserve(cts.len());
        out.extend(
            self.group
                .exp_hop_prepared_batch(&items)
                .into_iter()
                .map(|(alpha, beta)| Ciphertext { alpha, beta }),
        );
    }

    /// Full decryption to the group element `g^m`.
    pub fn decrypt_to_element(&self, secret_key: &Scalar, ct: &Ciphertext) -> Element {
        let mask = self.group.exp(&ct.beta, secret_key);
        self.group.div(&ct.alpha, &mask)
    }

    /// Decrypts and tests `m = 0` (i.e. `g^m = 1`) — all the framework needs.
    pub fn decrypts_to_zero(&self, secret_key: &Scalar, ct: &Ciphertext) -> bool {
        self.group
            .is_identity(&self.decrypt_to_element(secret_key, ct))
    }

    /// Brute-force discrete log for *small* plaintexts (test helper).
    ///
    /// Tries `m = 0..bound` and returns the match, if any. Honest protocol
    /// code never needs this; tests use it to verify homomorphic algebra.
    pub fn decrypt_small(&self, secret_key: &Scalar, ct: &Ciphertext, bound: u64) -> Option<u64> {
        let gm = self.decrypt_to_element(secret_key, ct);
        let mut acc = self.group.identity();
        let g = self.group.generator().clone();
        for m in 0..bound {
            // tidy:allow(secret-branch) — test-only brute-force DL helper; never called by protocol parties (see doc above)
            if acc == gm {
                return Some(m);
            }
            acc = self.group.op(&acc, &g);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{JointKey, KeyPair};
    use ppgr_group::GroupKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ExpElGamal, KeyPair, StdRng) {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(42);
        let kp = KeyPair::generate(&group, &mut rng);
        (ExpElGamal::new(group), kp, rng)
    }

    #[test]
    fn standard_elgamal_round_trip() {
        let group = GroupKind::Dl1024.group();
        let mut rng = StdRng::seed_from_u64(1);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ElGamal::new(group.clone());
        let msg = group.exp_gen(&group.scalar_from_u64(777));
        let ct = scheme.encrypt(kp.public_key(), &msg, &mut rng);
        assert_eq!(scheme.decrypt(kp.secret_key(), &ct), msg);
    }

    #[test]
    fn exp_elgamal_zero_test() {
        let (scheme, kp, mut rng) = setup();
        let g = scheme.group().clone();
        let zero = scheme.encrypt(kp.public_key(), &g.scalar_from_u64(0), &mut rng);
        let one = scheme.encrypt(kp.public_key(), &g.scalar_from_u64(1), &mut rng);
        assert!(scheme.decrypts_to_zero(kp.secret_key(), &zero));
        assert!(!scheme.decrypts_to_zero(kp.secret_key(), &one));
    }

    #[test]
    fn homomorphic_algebra() {
        let (scheme, kp, mut rng) = setup();
        let g = scheme.group().clone();
        let e5 = scheme.encrypt(kp.public_key(), &g.scalar_from_u64(5), &mut rng);
        let e3 = scheme.encrypt(kp.public_key(), &g.scalar_from_u64(3), &mut rng);

        let sum = scheme.add(&e5, &e3);
        assert_eq!(scheme.decrypt_small(kp.secret_key(), &sum, 100), Some(8));

        let diff = scheme.sub(&e5, &e3);
        assert_eq!(scheme.decrypt_small(kp.secret_key(), &diff, 100), Some(2));

        let scaled = scheme.scalar_mul(&e5, &g.scalar_from_u64(7));
        assert_eq!(
            scheme.decrypt_small(kp.secret_key(), &scaled, 100),
            Some(35)
        );

        let shifted = scheme.add_plaintext(&e3, &g.scalar_from_u64(10));
        assert_eq!(
            scheme.decrypt_small(kp.secret_key(), &shifted, 100),
            Some(13)
        );

        // 5 - 5 = 0 via neg.
        let zero = scheme.add(&e5, &scheme.neg(&e5));
        assert!(scheme.decrypts_to_zero(kp.secret_key(), &zero));
    }

    #[test]
    fn rerandomization_changes_ciphertext_not_plaintext() {
        let (scheme, kp, mut rng) = setup();
        let g = scheme.group().clone();
        let ct = scheme.encrypt(kp.public_key(), &g.scalar_from_u64(9), &mut rng);
        let ct2 = scheme.rerandomize(kp.public_key(), &ct, &mut rng);
        assert_ne!(ct, ct2);
        assert_eq!(scheme.decrypt_small(kp.secret_key(), &ct2, 100), Some(9));
    }

    #[test]
    fn plaintext_randomization_fixes_zero_only() {
        let (scheme, kp, mut rng) = setup();
        let g = scheme.group().clone();
        let r = g.random_nonzero_scalar(&mut rng);

        let zero = scheme.encrypt(kp.public_key(), &g.scalar_from_u64(0), &mut rng);
        let z = scheme.randomize_plaintext(&zero, &r);
        assert!(scheme.decrypts_to_zero(kp.secret_key(), &z));

        let five = scheme.encrypt(kp.public_key(), &g.scalar_from_u64(5), &mut rng);
        let f = scheme.randomize_plaintext(&five, &r);
        assert!(!scheme.decrypts_to_zero(kp.secret_key(), &f));
        // And the non-zero plaintext is no longer 5·anything recognisable:
        // it became 5r, a essentially-random scalar.
        assert_ne!(scheme.decrypt_small(kp.secret_key(), &f, 1000), Some(5));
    }

    #[test]
    fn joint_key_chain_decryption() {
        // n parties; encrypt under Πy_j; strip layers one by one.
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(3);
        let scheme = ExpElGamal::new(group.clone());
        let kps: Vec<KeyPair> = (0..6)
            .map(|_| KeyPair::generate(&group, &mut rng))
            .collect();
        let shares: Vec<_> = kps.iter().map(|k| k.public_key().clone()).collect();
        let joint = JointKey::combine(&group, &shares);

        let ct = scheme.encrypt(joint.public_key(), &group.scalar_from_u64(0), &mut rng);
        let ct_nz = scheme.encrypt(joint.public_key(), &group.scalar_from_u64(4), &mut rng);

        // First n-1 parties partially decrypt; the last does the final test.
        let mut c0 = ct;
        let mut c4 = ct_nz;
        for kp in &kps[..5] {
            c0 = scheme.partial_decrypt(&c0, kp.secret_key());
            c4 = scheme.partial_decrypt(&c4, kp.secret_key());
        }
        assert!(scheme.decrypts_to_zero(kps[5].secret_key(), &c0));
        assert!(!scheme.decrypts_to_zero(kps[5].secret_key(), &c4));
    }

    #[test]
    fn chain_with_randomization_preserves_zero_pattern() {
        // Full step-8 pipeline on one ciphertext pair.
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(4);
        let scheme = ExpElGamal::new(group.clone());
        let kps: Vec<KeyPair> = (0..4)
            .map(|_| KeyPair::generate(&group, &mut rng))
            .collect();
        let shares: Vec<_> = kps.iter().map(|k| k.public_key().clone()).collect();
        let joint = JointKey::combine(&group, &shares);

        let mut zero = scheme.encrypt(joint.public_key(), &group.scalar_from_u64(0), &mut rng);
        let mut five = scheme.encrypt(joint.public_key(), &group.scalar_from_u64(5), &mut rng);
        for kp in &kps[..3] {
            let r = group.random_nonzero_scalar(&mut rng);
            zero = scheme.randomize_plaintext(&scheme.partial_decrypt(&zero, kp.secret_key()), &r);
            let r = group.random_nonzero_scalar(&mut rng);
            five = scheme.randomize_plaintext(&scheme.partial_decrypt(&five, kp.secret_key()), &r);
        }
        assert!(scheme.decrypts_to_zero(kps[3].secret_key(), &zero));
        assert!(!scheme.decrypts_to_zero(kps[3].secret_key(), &five));
    }

    #[test]
    fn fused_hop_identical_to_composed_hop() {
        // The fused chain hop must be element-for-element identical to
        // partial_decrypt followed by randomize_plaintext — the sorting
        // phase relies on this to keep serial and batched paths bit-equal.
        for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
            let group = kind.group();
            let mut rng = StdRng::seed_from_u64(7);
            let kp = KeyPair::generate(&group, &mut rng);
            let scheme = ExpElGamal::new(group.clone());
            let cts: Vec<Ciphertext> = (0..4)
                .map(|m| scheme.encrypt(kp.public_key(), &group.scalar_from_u64(m), &mut rng))
                .collect();
            let rs: Vec<_> = (0..4)
                .map(|_| group.random_nonzero_scalar(&mut rng))
                .collect();
            let composed: Vec<Ciphertext> = cts
                .iter()
                .zip(&rs)
                .map(|(ct, r)| {
                    scheme.randomize_plaintext(&scheme.partial_decrypt(ct, kp.secret_key()), r)
                })
                .collect();
            for (i, (ct, r)) in cts.iter().zip(&rs).enumerate() {
                assert_eq!(
                    scheme.partial_decrypt_randomize(ct, kp.secret_key(), r),
                    composed[i],
                    "{kind} fused hop #{i}"
                );
            }
            assert_eq!(
                scheme.partial_decrypt_randomize_batch(&cts, kp.secret_key(), &rs),
                composed,
                "{kind} batched hop"
            );
        }
    }

    #[test]
    fn gathered_hop_equals_batch_then_permute() {
        // The sorting chain relies on this: computing each hop directly
        // into its shuffled slot must give exactly the ciphertexts the
        // compute-then-permute path produced.
        for kind in [GroupKind::Ecc160, GroupKind::Dl1024] {
            let group = kind.group();
            let mut rng = StdRng::seed_from_u64(11);
            let kp = KeyPair::generate(&group, &mut rng);
            let scheme = ExpElGamal::new(group.clone());
            let cts: Vec<Ciphertext> = (0..5)
                .map(|m| scheme.encrypt(kp.public_key(), &group.scalar_from_u64(m), &mut rng))
                .collect();
            let rs: Vec<_> = (0..5)
                .map(|_| group.random_nonzero_scalar(&mut rng))
                .collect();
            let perm = [3usize, 0, 4, 1, 2];
            let batch = scheme.partial_decrypt_randomize_batch(&cts, kp.secret_key(), &rs);
            let permuted: Vec<Ciphertext> = perm.iter().map(|&i| batch[i].clone()).collect();
            let mut out = Vec::new();
            scheme.partial_decrypt_randomize_gather_into(
                &cts,
                kp.secret_key(),
                &rs,
                Some(&perm),
                &mut out,
            );
            assert_eq!(out, permuted, "{kind} gathered hop");
            // Buffer reuse: a second gather into the same buffer replaces
            // its contents.
            scheme.partial_decrypt_randomize_gather_into(
                &cts,
                kp.secret_key(),
                &rs,
                None,
                &mut out,
            );
            assert_eq!(out, batch, "{kind} identity-order gather");

            // And the unrandomized gather matches partial_decrypt.
            let singles: Vec<Ciphertext> = perm
                .iter()
                .map(|&i| scheme.partial_decrypt(&cts[i], kp.secret_key()))
                .collect();
            let mut plain = Vec::new();
            scheme.partial_decrypt_gather_into(&cts, kp.secret_key(), Some(&perm), &mut plain);
            assert_eq!(plain, singles, "{kind} unrandomized gather");
        }
    }

    #[test]
    fn in_place_variants_match_allocating_ones() {
        let (scheme, kp, mut rng) = setup();
        let g = scheme.group().clone();
        let ct = scheme.encrypt(kp.public_key(), &g.scalar_from_u64(3), &mut rng);
        let r = g.random_nonzero_scalar(&mut rng);

        let mut a = ct.clone();
        scheme.partial_decrypt_in_place(&mut a, kp.secret_key());
        assert_eq!(a, scheme.partial_decrypt(&ct, kp.secret_key()));

        let mut b = ct.clone();
        scheme.randomize_plaintext_in_place(&mut b, &r);
        assert_eq!(b, scheme.randomize_plaintext(&ct, &r));
    }

    #[test]
    fn prepared_key_paths_match_generic_paths() {
        let (scheme, kp, _rng) = setup();
        let g = scheme.group().clone();
        let table = scheme.prepare_key(kp.public_key());
        // Same seed → same randomness stream → identical ciphertexts.
        let mut rng2 = StdRng::seed_from_u64(123);
        let mut rng3 = StdRng::seed_from_u64(123);
        let m = g.scalar_from_u64(6);
        let a = scheme.encrypt(kp.public_key(), &m, &mut rng2);
        let b = scheme.encrypt_prepared(&table, &m, &mut rng3);
        assert_eq!(a, b);
        let a2 = scheme.rerandomize(kp.public_key(), &a, &mut rng2);
        let b2 = scheme.rerandomize_prepared(&table, &b, &mut rng3);
        assert_eq!(a2, b2);
        assert_eq!(scheme.decrypt_small(kp.secret_key(), &b2, 100), Some(6));
    }

    #[test]
    fn precomputed_rerandomization_matches_prepared_path() {
        let (scheme, kp, mut rng) = setup();
        let g = scheme.group().clone();
        let table = scheme.prepare_key(kp.public_key());
        let ct = scheme.encrypt(kp.public_key(), &g.scalar_from_u64(6), &mut rng);
        // Same seed → same stream → identical outputs.
        let mut rng_a = StdRng::seed_from_u64(55);
        let mut rng_b = StdRng::seed_from_u64(55);
        let inline = scheme.rerandomize_prepared(&table, &ct, &mut rng_a);
        let pre = MaskPair::draw(&g, &mut rng_b);
        let warm = scheme.rerandomize_with_precomputed(&table, &ct, pre);
        assert_eq!(inline, warm);
        assert_eq!(scheme.decrypt_small(kp.secret_key(), &warm, 100), Some(6));
        // A full pair (y^r minted offline) must land on the same bytes.
        let mut rng_c = StdRng::seed_from_u64(55);
        let mut full = vec![MaskPair::draw(&g, &mut rng_c)];
        MaskPair::fill_key_halves(&g, &table, &mut full);
        let warm_full = full
            .pop()
            .map(|p| scheme.rerandomize_with_precomputed(&table, &ct, p));
        assert_eq!(Some(inline), warm_full);
    }

    #[test]
    fn batch_rerandomization_matches_singles() {
        let (scheme, kp, mut rng) = setup();
        let g = scheme.group().clone();
        let table = scheme.prepare_key(kp.public_key());
        let cts: Vec<Ciphertext> = (0..4)
            .map(|m| scheme.encrypt(kp.public_key(), &g.scalar_from_u64(m), &mut rng))
            .collect();
        let mut rng_a = StdRng::seed_from_u64(91);
        let mut rng_b = StdRng::seed_from_u64(91);
        let singles: Vec<Ciphertext> = cts
            .iter()
            .map(|ct| {
                let pre = MaskPair::draw(&g, &mut rng_a);
                scheme.rerandomize_with_precomputed(&table, ct, pre)
            })
            .collect();
        let pres: Vec<MaskPair> = (0..4).map(|_| MaskPair::draw(&g, &mut rng_b)).collect();
        let batch = scheme.rerandomize_batch_with_precomputed(&table, &cts, pres);
        assert_eq!(singles, batch);
        for (m, ct) in batch.iter().enumerate() {
            assert_eq!(
                scheme.decrypt_small(kp.secret_key(), ct, 100),
                Some(m as u64)
            );
        }
    }

    #[test]
    fn mask_pair_debug_redacts_scalar() {
        let (scheme, _kp, mut rng) = setup();
        let g = scheme.group().clone();
        let pre = MaskPair::draw(&g, &mut rng);
        let digits = pre.scalar().to_string();
        let dump = format!("{:?}", pre);
        assert!(dump.contains("Secret(<redacted>)"), "got: {dump}");
        assert!(
            !dump.contains(&digits),
            "mask scalar leaked through Debug: {dump}"
        );
    }

    #[test]
    fn randomize_plaintext_batch_matches_singles() {
        let (scheme, kp, mut rng) = setup();
        let g = scheme.group().clone();
        let cts: Vec<Ciphertext> = (0..3)
            .map(|m| scheme.encrypt(kp.public_key(), &g.scalar_from_u64(m), &mut rng))
            .collect();
        let rs: Vec<_> = (0..3).map(|_| g.random_nonzero_scalar(&mut rng)).collect();
        let batch = scheme.randomize_plaintext_batch(&cts, &rs);
        for ((ct, r), got) in cts.iter().zip(&rs).zip(&batch) {
            assert_eq!(got, &scheme.randomize_plaintext(ct, r));
        }
    }

    #[test]
    fn ciphertext_encoding_length() {
        let (scheme, kp, mut rng) = setup();
        let g = scheme.group().clone();
        let ct = scheme.encrypt(kp.public_key(), &g.scalar_from_u64(1), &mut rng);
        let enc = ct.encode(&g);
        assert_eq!(enc.len(), Ciphertext::encoded_len(&g));
        assert_eq!(enc.len(), 42); // 2 × (1 + 20) bytes on secp160r1
    }
}
