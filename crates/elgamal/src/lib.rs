//! ElGamal over a DDH group: standard, exponential (additively
//! homomorphic), distributed-key and threshold-decryption forms.
//!
//! The unlinkable gain-comparison phase of the framework (paper Sec. V,
//! steps 5–9) rests on three properties implemented here:
//!
//! 1. **Additive homomorphism** of the "modified" (exponential) ElGamal
//!    `E(m) = (g^m·y^r, g^r)` — see [`ExpElGamal::add`] and friends;
//!    decryption yields `g^m`, which suffices because the protocol only
//!    ever tests `m = 0`.
//! 2. **Joint keys**: every participant contributes `y_j = g^{x_j}`; the
//!    joint key is `y = Π y_j` and nobody knows `x = Σ x_j`
//!    ([`JointKey`]). Decryption proceeds by
//!    [`ExpElGamal::partial_decrypt`] (one key layer at a time).
//! 3. **Plaintext randomization**: raising both components to a random `r`
//!    maps plaintext `m ↦ r·m`, fixing zero — exactly the step-8 trick that
//!    hides non-zero `τ` values while preserving the zero count
//!    ([`ExpElGamal::randomize_plaintext`]).
//!
//! # Example
//!
//! ```
//! use ppgr_elgamal::{ExpElGamal, KeyPair};
//! use ppgr_group::GroupKind;
//! use rand::SeedableRng;
//!
//! let group = GroupKind::Ecc160.group();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let kp = KeyPair::generate(&group, &mut rng);
//! let scheme = ExpElGamal::new(group.clone());
//!
//! let a = scheme.encrypt(kp.public_key(), &group.scalar_from_u64(20), &mut rng);
//! let b = scheme.encrypt(kp.public_key(), &group.scalar_from_u64(22), &mut rng);
//! let sum = scheme.add(&a, &b);
//! // Decryption reveals g^42; we can test it against a known value.
//! let gm = scheme.decrypt_to_element(kp.secret_key(), &sum);
//! assert_eq!(gm, group.exp_gen(&group.scalar_from_u64(42)));
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

mod bits;
mod cipher;
mod keys;

pub use bits::{decrypt_bits, encrypt_bits, encrypt_bits_prepared, encrypt_bits_with_precomputed};
pub use cipher::{Ciphertext, ElGamal, ExpElGamal, MaskPair};
pub use keys::{JointKey, KeyPair};
