//! Bitwise encryption of integers (paper Fig. 1, step 6).
//!
//! Each participant encrypts the binary representation of her masked gain
//! `β` bit by bit under the joint key: `E(β)_B = [E(β^l), …, E(β^1)]`.
//! We store bits least-significant-first internally; the comparison circuit
//! in `ppgr-core` indexes them accordingly.

use crate::cipher::{Ciphertext, ExpElGamal};
use ppgr_bigint::BigUint;
use ppgr_group::{Element, Scalar};
use rand::Rng;

/// Encrypts the low `l` bits of `value` under `public_key`.
///
/// Returns `l` ciphertexts, least-significant bit first.
///
/// # Panics
///
/// Panics if `value` does not fit in `l` bits — a protocol-parameter bug
/// that must not be silently truncated.
pub fn encrypt_bits<R: Rng + ?Sized>(
    scheme: &ExpElGamal,
    public_key: &Element,
    value: &BigUint,
    l: usize,
    rng: &mut R,
) -> Vec<Ciphertext> {
    assert!(value.bits() <= l, "value exceeds the declared bit length l");
    let group = scheme.group();
    let zero = group.scalar_from_u64(0);
    let one = group.scalar_from_u64(1);
    (0..l)
        .map(|i| {
            let bit: &Scalar = if value.bit(i) { &one } else { &zero };
            scheme.encrypt(public_key, bit, rng)
        })
        .collect()
}

/// Decrypts a bitwise encryption back to the integer (test helper: requires
/// the full secret key, which no protocol party ever holds).
pub fn decrypt_bits(scheme: &ExpElGamal, secret_key: &Scalar, bits: &[Ciphertext]) -> BigUint {
    let mut v = BigUint::zero();
    for (i, ct) in bits.iter().enumerate() {
        if !scheme.decrypts_to_zero(secret_key, ct) {
            v.set_bit(i, true);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;
    use ppgr_group::GroupKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(1);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group);
        for v in [0u64, 1, 0b1011, 0xffff, 0x8000_0000] {
            let v = BigUint::from(v);
            let cts = encrypt_bits(&scheme, kp.public_key(), &v, 32, &mut rng);
            assert_eq!(cts.len(), 32);
            assert_eq!(decrypt_bits(&scheme, kp.secret_key(), &cts), v);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the declared bit length")]
    fn oversized_value_panics() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(2);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group);
        let _ = encrypt_bits(&scheme, kp.public_key(), &BigUint::from(16u64), 4, &mut rng);
    }

    #[test]
    fn bit_ciphertexts_are_all_distinct() {
        // Even equal bits must encrypt to distinct ciphertexts (fresh r).
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(3);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group);
        let cts = encrypt_bits(&scheme, kp.public_key(), &BigUint::zero(), 16, &mut rng);
        for i in 0..cts.len() {
            for j in i + 1..cts.len() {
                assert_ne!(cts[i], cts[j]);
            }
        }
    }
}
