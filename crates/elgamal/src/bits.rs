//! Bitwise encryption of integers (paper Fig. 1, step 6).
//!
//! Each participant encrypts the binary representation of her masked gain
//! `β` bit by bit under the joint key: `E(β)_B = [E(β^l), …, E(β^1)]`.
//! We store bits least-significant-first internally; the comparison circuit
//! in `ppgr-core` indexes them accordingly.

use crate::cipher::{Ciphertext, ExpElGamal, MaskPair};
use ppgr_bigint::BigUint;
use ppgr_group::{Element, FixedBaseTable, Scalar};
use rand::Rng;

/// Encrypts the low `l` bits of `value` under `public_key`.
///
/// Returns `l` ciphertexts, least-significant bit first.
///
/// # Panics
///
/// Panics if `value` does not fit in `l` bits — a protocol-parameter bug
/// that must not be silently truncated.
pub fn encrypt_bits<R: Rng + ?Sized>(
    scheme: &ExpElGamal,
    public_key: &Element,
    value: &BigUint,
    l: usize,
    rng: &mut R,
) -> Vec<Ciphertext> {
    assert!(value.bits() <= l, "value exceeds the declared bit length l");
    let group = scheme.group();
    let zero = group.scalar_from_u64(0);
    let one = group.scalar_from_u64(1);
    (0..l)
        .map(|i| {
            let bit: &Scalar = if value.bit(i) { &one } else { &zero };
            scheme.encrypt(public_key, bit, rng)
        })
        .collect()
}

/// [`encrypt_bits`] through a prepared public-key table, batched.
///
/// Draws the per-bit randomness in the same order as [`encrypt_bits`]
/// (least-significant bit first), then computes all `2l` exponentiations
/// through comb tables with shared affine conversions. For the same
/// randomness stream the output is bit-identical to [`encrypt_bits`].
///
/// # Panics
///
/// Panics if `value` does not fit in `l` bits.
pub fn encrypt_bits_prepared<R: Rng + ?Sized>(
    scheme: &ExpElGamal,
    key_table: &FixedBaseTable,
    value: &BigUint,
    l: usize,
    rng: &mut R,
) -> Vec<Ciphertext> {
    assert!(value.bits() <= l, "value exceeds the declared bit length l");
    let group = scheme.group();
    // Same draw order as the per-bit loop in `encrypt_bits`.
    let rs: Vec<Scalar> = (0..l).map(|_| group.random_scalar(rng)).collect();
    let masks = group.exp_prepared_batch(key_table, &rs); // y^r_i
    let betas = group.exp_gen_batch(&rs); // g^r_i
    let g1 = group.generator();
    masks
        .into_iter()
        .zip(betas)
        .enumerate()
        .map(|(i, (mask, beta))| {
            // α = g^bit · y^r; g^0 is the identity, so only set bits cost
            // a group operation.
            let alpha = if value.bit(i) {
                group.op(g1, &mask)
            } else {
                mask
            };
            Ciphertext { alpha, beta }
        })
        .collect()
}

/// [`encrypt_bits_prepared`] with the exponentiations done ahead of time:
/// `masks[i]` carries `(r_i, g^{r_i})` — and, when the offline phase knew
/// the joint key, `y^{r_i}` — for bit `i` (least-significant first). With
/// full pairs the online cost is one group operation per set bit; any
/// missing `y^{r_i}` halves are computed in one batch through `key_table`.
///
/// Consumes the masks: each is single-use. For masks drawn from the same
/// stream positions the inline path would have used, the output is
/// bit-identical to [`encrypt_bits_prepared`].
///
/// # Panics
///
/// Panics if `value` does not fit in `l` bits or if `masks` does not hold
/// exactly `l` entries.
pub fn encrypt_bits_with_precomputed(
    scheme: &ExpElGamal,
    key_table: &FixedBaseTable,
    value: &BigUint,
    l: usize,
    mut masks: Vec<MaskPair>,
) -> Vec<Ciphertext> {
    assert!(value.bits() <= l, "value exceeds the declared bit length l");
    // Hoisted so the assert formats only the (public) count, never the
    // mask vector itself.
    let mask_count = masks.len();
    assert_eq!(mask_count, l, "one mask pair per bit");
    let group = scheme.group();
    MaskPair::fill_key_halves(group, key_table, &mut masks);
    let g1 = group.generator();
    let parts: Vec<(Element, Element)> = masks
        .into_iter()
        .map(|pre| {
            let (r, beta, yr) = pre.into_parts();
            let mask = match yr {
                // `fill_key_halves` above makes this the only live arm.
                Some(m) => m,
                None => group.exp_prepared(key_table, r.expose()),
            };
            (mask, beta)
        })
        .collect();
    // The set bits' `g·y^r` products share one batched affine conversion
    // instead of paying a field inversion per one-bit.
    let set_pairs: Vec<(&Element, &Element)> = parts
        .iter()
        .enumerate()
        .filter(|(i, _)| value.bit(*i))
        .map(|(_, (mask, _))| (g1, mask))
        .collect();
    let mut set_alphas = group.op_batch(&set_pairs).into_iter();
    parts
        .into_iter()
        .enumerate()
        .map(|(i, (mask, beta))| {
            let alpha = if value.bit(i) {
                // tidy:allow(panic) — one batched product was queued above for every set bit, so the iterator cannot run dry
                set_alphas.next().expect("one product per set bit")
            } else {
                mask
            };
            Ciphertext { alpha, beta }
        })
        .collect()
}

/// Decrypts a bitwise encryption back to the integer (test helper: requires
/// the full secret key, which no protocol party ever holds).
pub fn decrypt_bits(scheme: &ExpElGamal, secret_key: &Scalar, bits: &[Ciphertext]) -> BigUint {
    let mut v = BigUint::zero();
    for (i, ct) in bits.iter().enumerate() {
        if !scheme.decrypts_to_zero(secret_key, ct) {
            v.set_bit(i, true);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;
    use ppgr_group::GroupKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(1);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group);
        for v in [0u64, 1, 0b1011, 0xffff, 0x8000_0000] {
            let v = BigUint::from(v);
            let cts = encrypt_bits(&scheme, kp.public_key(), &v, 32, &mut rng);
            assert_eq!(cts.len(), 32);
            assert_eq!(decrypt_bits(&scheme, kp.secret_key(), &cts), v);
        }
    }

    #[test]
    fn prepared_batch_matches_per_bit_encryption() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(5);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group);
        let table = scheme.prepare_key(kp.public_key());
        let v = BigUint::from(0b1010_1100u64);
        // Identical seed → identical randomness stream → identical wire
        // ciphertexts from both paths.
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        let serial = encrypt_bits(&scheme, kp.public_key(), &v, 12, &mut rng_a);
        let batched = encrypt_bits_prepared(&scheme, &table, &v, 12, &mut rng_b);
        assert_eq!(serial, batched);
        assert_eq!(decrypt_bits(&scheme, kp.secret_key(), &batched), v);
    }

    #[test]
    fn precomputed_masks_match_prepared_encryption() {
        // Same stream position → bit-identical ciphertexts, which is what
        // lets the offline pool swap in without changing any wire bytes.
        // Half pairs (g^r only) and full pairs (y^r minted offline) must
        // both reproduce the inline path exactly.
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(6);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group.clone());
        let table = scheme.prepare_key(kp.public_key());
        let v = BigUint::from(0b0110_0101u64);
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        let mut rng_c = StdRng::seed_from_u64(77);
        let inline = encrypt_bits_prepared(&scheme, &table, &v, 10, &mut rng_a);
        let half: Vec<MaskPair> = (0..10)
            .map(|_| MaskPair::draw(&group, &mut rng_b))
            .collect();
        let mut full: Vec<MaskPair> = (0..10)
            .map(|_| MaskPair::draw(&group, &mut rng_c))
            .collect();
        MaskPair::fill_key_halves(&group, &table, &mut full);
        assert!(full.iter().all(MaskPair::has_key_half));
        let warm_half = encrypt_bits_with_precomputed(&scheme, &table, &v, 10, half);
        let warm_full = encrypt_bits_with_precomputed(&scheme, &table, &v, 10, full);
        assert_eq!(inline, warm_half);
        assert_eq!(inline, warm_full);
        assert_eq!(decrypt_bits(&scheme, kp.secret_key(), &warm_full), v);
    }

    #[test]
    #[should_panic(expected = "exceeds the declared bit length")]
    fn oversized_value_panics() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(2);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group);
        let _ = encrypt_bits(&scheme, kp.public_key(), &BigUint::from(16u64), 4, &mut rng);
    }

    #[test]
    fn bit_ciphertexts_are_all_distinct() {
        // Even equal bits must encrypt to distinct ciphertexts (fresh r).
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(3);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group);
        let cts = encrypt_bits(&scheme, kp.public_key(), &BigUint::zero(), 16, &mut rng);
        for i in 0..cts.len() {
            for j in i + 1..cts.len() {
                assert_ne!(cts[i], cts[j]);
            }
        }
    }
}
