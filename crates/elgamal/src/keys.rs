//! Key material: single key pairs and distributed joint keys.

use ppgr_bigint::Secret;
use ppgr_group::{Element, Group, Scalar};
use rand::Rng;
use std::fmt;

/// An ElGamal key pair `(x, y = g^x)`.
///
/// The secret exponent is held in a [`Secret`] wrapper: `{:?}` on a
/// `KeyPair` redacts it, and the limbs are wiped (best-effort) on drop.
#[derive(Clone)]
pub struct KeyPair {
    secret: Secret<Scalar>,
    public: Element,
}

impl fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KeyPair")
            .field("secret", &self.secret)
            .field("public", &self.public)
            .finish()
    }
}

impl KeyPair {
    /// Generates a fresh key pair.
    pub fn generate<R: Rng + ?Sized>(group: &Group, rng: &mut R) -> Self {
        let secret = group.random_nonzero_scalar(rng);
        let public = group.exp_gen(&secret);
        KeyPair {
            secret: Secret::new(secret),
            public,
        }
    }

    /// Rebuilds a key pair from a known secret (used by test harnesses and
    /// the security-game simulator, which extracts colluder keys).
    pub fn from_secret(group: &Group, secret: Scalar) -> Self {
        let public = group.exp_gen(&secret);
        KeyPair {
            secret: Secret::new(secret),
            public,
        }
    }

    /// The secret exponent `x`.
    pub fn secret_key(&self) -> &Scalar {
        self.secret.expose()
    }

    /// The public element `y = g^x`.
    pub fn public_key(&self) -> &Element {
        &self.public
    }
}

/// A joint public key `y = Π y_j` assembled from per-party shares.
///
/// The corresponding secret `x = Σ x_j` is never materialized; decryption
/// requires one [`partial_decrypt`](crate::ExpElGamal::partial_decrypt) per
/// share (paper Sec. IV-D, "distributed way").
#[derive(Clone, Debug)]
pub struct JointKey {
    shares: Vec<Element>,
    combined: Element,
}

impl JointKey {
    /// Combines the published per-party public shares.
    ///
    /// # Panics
    ///
    /// Panics if `shares` is empty.
    pub fn combine(group: &Group, shares: &[Element]) -> Self {
        assert!(!shares.is_empty(), "need at least one key share");
        let mut combined = shares[0].clone();
        for s in &shares[1..] {
            combined = group.op(&combined, s);
        }
        JointKey {
            shares: shares.to_vec(),
            combined,
        }
    }

    /// The combined public key `y`.
    pub fn public_key(&self) -> &Element {
        &self.combined
    }

    /// The individual shares `y_j` (indexed as supplied).
    pub fn shares(&self) -> &[Element] {
        &self.shares
    }

    /// Number of contributing parties.
    pub fn parties(&self) -> usize {
        self.shares.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgr_group::GroupKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn keypair_consistency() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(1);
        let kp = KeyPair::generate(&group, &mut rng);
        assert_eq!(group.exp_gen(kp.secret_key()), *kp.public_key());
        let rebuilt = KeyPair::from_secret(&group, kp.secret_key().clone());
        assert_eq!(rebuilt.public_key(), kp.public_key());
    }

    #[test]
    fn joint_key_is_product_of_shares() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(2);
        let kps: Vec<KeyPair> = (0..5)
            .map(|_| KeyPair::generate(&group, &mut rng))
            .collect();
        let shares: Vec<Element> = kps.iter().map(|k| k.public_key().clone()).collect();
        let joint = JointKey::combine(&group, &shares);
        // g^(Σ x_j) == Π y_j
        let mut sum = group.scalar_from_u64(0);
        for kp in &kps {
            sum = group.scalar_add(&sum, kp.secret_key());
        }
        assert_eq!(group.exp_gen(&sum), *joint.public_key());
        assert_eq!(joint.parties(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one key share")]
    fn empty_shares_panic() {
        let group = GroupKind::Ecc160.group();
        let _ = JointKey::combine(&group, &[]);
    }

    #[test]
    fn debug_redacts_secret_key() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(3);
        let kp = KeyPair::generate(&group, &mut rng);
        let dump = format!("{:?}", kp);
        assert!(dump.contains("Secret(<redacted>)"), "got: {dump}");
        let secret_digits = kp.secret_key().to_string();
        assert!(
            !dump.contains(&secret_digits),
            "secret scalar value leaked through Debug: {dump}"
        );
    }
}
