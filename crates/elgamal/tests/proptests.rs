//! Property-based tests of the homomorphic algebra: for random small
//! plaintexts, every ciphertext-level operation must commute with the
//! corresponding plaintext operation.

use ppgr_bigint::BigUint;
use ppgr_elgamal::{decrypt_bits, encrypt_bits, ExpElGamal, JointKey, KeyPair};
use ppgr_group::GroupKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn add_sub_scale_commute_with_plaintext(a in 0u64..50, b in 0u64..50, k in 1u64..20, seed in 0u64..1000) {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group.clone());
        let ea = scheme.encrypt(kp.public_key(), &group.scalar_from_u64(a), &mut rng);
        let eb = scheme.encrypt(kp.public_key(), &group.scalar_from_u64(b), &mut rng);

        let sum = scheme.add(&ea, &eb);
        prop_assert_eq!(scheme.decrypt_small(kp.secret_key(), &sum, 200), Some(a + b));

        let scaled = scheme.scalar_mul(&ea, &group.scalar_from_u64(k));
        prop_assert_eq!(scheme.decrypt_small(kp.secret_key(), &scaled, 2000), Some(a * k));

        let shifted = scheme.add_plaintext(&eb, &group.scalar_from_u64(k));
        prop_assert_eq!(scheme.decrypt_small(kp.secret_key(), &shifted, 200), Some(b + k));

        // a − a = 0 regardless of randomness.
        let zero = scheme.sub(&ea, &scheme.rerandomize(kp.public_key(), &ea, &mut rng));
        prop_assert!(scheme.decrypts_to_zero(kp.secret_key(), &zero));
    }

    #[test]
    fn bitwise_round_trip_random_values(v in any::<u32>(), seed in 0u64..1000) {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group);
        let v = BigUint::from(v as u64);
        let cts = encrypt_bits(&scheme, kp.public_key(), &v, 32, &mut rng);
        prop_assert_eq!(decrypt_bits(&scheme, kp.secret_key(), &cts), v);
    }

    #[test]
    fn joint_key_chain_any_order(parties in 2usize..6, m in 0u64..2, seed in 0u64..1000) {
        // Partial decryption layers commute: any strip order works.
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(seed);
        let scheme = ExpElGamal::new(group.clone());
        let kps: Vec<KeyPair> = (0..parties).map(|_| KeyPair::generate(&group, &mut rng)).collect();
        let shares: Vec<_> = kps.iter().map(|k| k.public_key().clone()).collect();
        let joint = JointKey::combine(&group, &shares);
        let ct = scheme.encrypt(joint.public_key(), &group.scalar_from_u64(m), &mut rng);

        // Forward order.
        let mut c1 = ct.clone();
        for kp in &kps[..parties - 1] {
            c1 = scheme.partial_decrypt(&c1, kp.secret_key());
        }
        // Reverse order (skipping the last holder both times).
        let mut c2 = ct;
        for kp in kps[..parties - 1].iter().rev() {
            c2 = scheme.partial_decrypt(&c2, kp.secret_key());
        }
        let last = kps[parties - 1].secret_key();
        prop_assert_eq!(
            scheme.decrypts_to_zero(last, &c1),
            scheme.decrypts_to_zero(last, &c2)
        );
        prop_assert_eq!(scheme.decrypts_to_zero(last, &c1), m == 0);
    }

    #[test]
    fn randomize_plaintext_preserves_zeroness(m in 0u64..5, seed in 0u64..1000) {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group.clone());
        let ct = scheme.encrypt(kp.public_key(), &group.scalar_from_u64(m), &mut rng);
        let r = group.random_nonzero_scalar(&mut rng);
        let rand_ct = scheme.randomize_plaintext(&ct, &r);
        prop_assert_eq!(
            scheme.decrypts_to_zero(kp.secret_key(), &rand_ct),
            m == 0
        );
    }
}
