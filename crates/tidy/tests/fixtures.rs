//! The analyzer against a known-good/known-bad corpus: every rule has at
//! least one fixture that must fire and one that must stay silent, plus
//! waiver-handling and `#[cfg(test)]`-scoping cases.

use ppgr_tidy::analyze_source;

/// Rules fired by a fixture, in file order.
fn rules_for(rel_path: &str, source: &str) -> Vec<&'static str> {
    analyze_source(rel_path, source)
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

macro_rules! fixture {
    ($name:literal) => {
        include_str!(concat!("fixtures/", $name))
    };
}

/// A path inside a panic-free protocol crate (also exercises determinism
/// and secret-hygiene, which apply everywhere).
const PROTO: &str = "crates/core/src/fixture.rs";

#[test]
fn panic_bad_fires_once_per_site() {
    // One site per panic flavour: unwrap, expect, unreachable!, todo!,
    // unimplemented!, panic!.
    let rules = rules_for(PROTO, fixture!("panic_bad.rs"));
    assert_eq!(rules, vec!["panic"; 6]);
}

#[test]
fn panic_good_is_silent() {
    assert!(rules_for(PROTO, fixture!("panic_good.rs")).is_empty());
}

#[test]
fn panic_outside_protocol_crates_is_not_checked() {
    // The same bad source in a non-protocol crate (e.g. the bench harness)
    // does not fire the panic rule.
    let rules = rules_for("crates/bench/src/fixture.rs", fixture!("panic_bad.rs"));
    assert!(rules.is_empty());
}

#[test]
fn panic_in_the_transport_crate_is_checked() {
    // The mesh/deadline/fault-injection layer is protocol surface: a panic
    // there takes a party down mid-session, which the fault-tolerance
    // layer must instead surface as a typed, blamed error.
    let rules = rules_for("crates/net/src/fixture.rs", fixture!("panic_bad.rs"));
    assert_eq!(rules, vec!["panic"; 6]);
}

#[test]
fn waivers_cover_same_line_and_next_line() {
    assert!(rules_for(PROTO, fixture!("panic_waived.rs")).is_empty());
}

#[test]
fn stale_waiver_is_flagged() {
    let rules = rules_for(PROTO, fixture!("panic_stale_waiver.rs"));
    assert_eq!(rules, vec!["waiver"]);
}

#[test]
fn reasonless_waiver_is_flagged() {
    // The unwrap is NOT excused (reasonless waivers don't apply), and the
    // waiver itself is flagged.
    let mut rules = rules_for(PROTO, fixture!("panic_reasonless_waiver.rs"));
    rules.sort_unstable();
    assert_eq!(rules, vec!["panic", "waiver"]);
}

#[test]
fn cfg_test_scope_is_exempt() {
    assert!(rules_for(PROTO, fixture!("panic_test_scoped.rs")).is_empty());
}

#[test]
fn determinism_bad_fires() {
    let rules = rules_for(PROTO, fixture!("determinism_bad.rs"));
    assert!(!rules.is_empty());
    assert!(rules.iter().all(|r| *r == "determinism"));
}

#[test]
fn determinism_good_is_silent() {
    assert!(rules_for(PROTO, fixture!("determinism_good.rs")).is_empty());
}

#[test]
fn sanctioned_modules_are_exempt_from_the_clock_rule_only() {
    // Wall-clock reads are the timing modules' job — silent there, flagged
    // on the protocol surface.
    let clock = fixture!("determinism_clock_only.rs");
    assert!(rules_for("crates/bench/src/fixture.rs", clock).is_empty());
    assert_eq!(rules_for(PROTO, clock), vec!["determinism"]);
    // Ambient entropy has no sanctioned modules: the same bad source in a
    // timing module still fires for its `thread_rng` (but not its clock).
    let rules = rules_for(
        "crates/bench/src/fixture.rs",
        fixture!("determinism_bad.rs"),
    );
    assert_eq!(rules, vec!["determinism"]);
}

#[test]
fn headers_bad_crate_root_fires_for_each_missing_header() {
    let rules = rules_for("crates/fake/src/lib.rs", fixture!("headers_bad.rs"));
    assert_eq!(rules, vec!["headers", "headers"]);
}

#[test]
fn headers_good_crate_root_is_silent() {
    assert!(rules_for("crates/fake/src/lib.rs", fixture!("headers_good.rs")).is_empty());
}

#[test]
fn headers_only_checked_on_crate_roots() {
    // The same header-less source as a non-root module is fine.
    assert!(rules_for("crates/fake/src/other.rs", fixture!("headers_bad.rs")).is_empty());
}

#[test]
fn derived_debug_on_secret_type_fires() {
    let rules = rules_for(PROTO, fixture!("secret_derive_bad.rs"));
    assert_eq!(rules, vec!["secret-hygiene"]);
}

#[test]
fn derived_debug_on_pooled_secret_types_fires() {
    // Precomputed nonces/mask pairs/key stocks are as sensitive as live ones.
    let rules = rules_for(PROTO, fixture!("secret_pool_derive_bad.rs"));
    assert_eq!(
        rules,
        vec!["secret-hygiene", "secret-hygiene", "secret-hygiene"]
    );
}

#[test]
fn secret_in_format_macro_fires() {
    let rules = rules_for(PROTO, fixture!("secret_format_bad.rs"));
    assert_eq!(rules, vec!["secret-hygiene", "secret-hygiene"]);
}

#[test]
fn variable_time_eq_on_secret_fires() {
    // The lexical rule flags the `==` itself; the dataflow engine
    // additionally flags the tainted verdict escaping as a plain `bool`
    // (fixed by `ct_eq`, which declassifies).
    let rules = rules_for(PROTO, fixture!("secret_eq_bad.rs"));
    assert_eq!(rules, vec!["secret-escape", "secret-hygiene"]);
}

#[test]
fn secret_good_is_silent() {
    assert!(rules_for(PROTO, fixture!("secret_good.rs")).is_empty());
}

#[test]
fn randomized_batch_combiner_fires_determinism_and_panic() {
    // The textbook batch-verification combiner is drawn from OsRng; on the
    // zkp protocol surface that breaks both the bit-identical-transcript
    // rule and the panic-free rule (the unwrap on the aggregate verdict).
    let rules = rules_for(
        "crates/zkp/src/fixture.rs",
        fixture!("batch_combiner_bad.rs"),
    );
    assert_eq!(rules, vec!["determinism", "panic"]);
}

#[test]
fn deterministic_msm_batch_shape_is_silent() {
    // The shape the real msm/batch modules use — hash-derived combiners,
    // Option/Result fallbacks — is clean on both protocol crates involved.
    for path in ["crates/zkp/src/fixture.rs", "crates/group/src/fixture.rs"] {
        assert!(rules_for(path, fixture!("msm_batch_good.rs")).is_empty());
    }
}

#[test]
fn pooled_verify_collector_shape_is_silent() {
    // The cross-session verify collector parks only published values —
    // key statements and their transcripts — so it needs no secret
    // registry entries; the shape is clean on the runtime and core paths.
    for path in [
        "crates/runtime/src/fixture.rs",
        "crates/core/src/fixture.rs",
    ] {
        assert!(rules_for(path, fixture!("verify_pool_good.rs")).is_empty());
    }
}

#[test]
fn fault_surface_bad_fires_per_hook() {
    // tamper + Tamper::Truncate + forge + corrupt_key_proof + equivocate.
    let rules = rules_for(PROTO, fixture!("fault_surface_bad.rs"));
    assert_eq!(rules, vec!["fault-surface"; 5], "{rules:?}");
}

#[test]
fn fault_surface_hooks_in_test_code_are_silent() {
    let rules = rules_for(PROTO, fixture!("fault_surface_good.rs"));
    assert!(rules.is_empty(), "{rules:?}");
}

#[test]
fn fault_surface_sanctioned_files_are_exempt() {
    // The injector, the proof-tamper helpers, and the offline stock's test
    // hook define the surface — the rule is silent where it lives.
    for path in [
        "crates/net/src/fault.rs",
        "crates/zkp/src/tamper.rs",
        "crates/core/src/offline.rs",
    ] {
        let rules = rules_for(path, fixture!("fault_surface_bad.rs"));
        assert!(rules.is_empty(), "{path}: {rules:?}");
    }
}

#[test]
fn service_crate_is_not_clock_sanctioned() {
    // The front door's admission projection must stay clock-free: the
    // service crate is deliberately absent from DETERMINISM_SANCTIONED,
    // so a wall-clock read in a projection fires the determinism rule.
    let rules = rules_for(
        "crates/service/src/fixture.rs",
        fixture!("service_clock_bad.rs"),
    );
    assert_eq!(rules, vec!["determinism"; 2], "{rules:?}");
}

// ---------------------------------------------------------------------------
// Dataflow rule families (secret-branch / secret-index / secret-escape)
// ---------------------------------------------------------------------------

#[test]
fn secret_branch_bad_fires_per_construct() {
    // if (two-step flow), for (secret trip count), match + guard, while.
    let rules = rules_for(PROTO, fixture!("secret_branch_bad.rs"));
    assert_eq!(rules, vec!["secret-branch"; 5], "{rules:?}");
}

#[test]
fn secret_branch_good_is_silent() {
    let rules = rules_for(PROTO, fixture!("secret_branch_good.rs"));
    assert!(rules.is_empty(), "{rules:?}");
}

#[test]
fn secret_index_bad_fires_per_lookup() {
    let diags = analyze_source(PROTO, fixture!("secret_index_bad.rs"));
    let index_hits = diags.iter().filter(|d| d.rule == "secret-index").count();
    assert_eq!(index_hits, 2, "{diags:?}");
}

#[test]
fn secret_index_good_is_silent() {
    let rules = rules_for(PROTO, fixture!("secret_index_good.rs"));
    assert!(rules.is_empty(), "{rules:?}");
}

#[test]
fn secret_escape_bad_fires_per_exit() {
    // clone of an exposed nonce, plain-typed return, formatted derived
    // binding (via an inline `{derived}` capture).
    let rules = rules_for(PROTO, fixture!("secret_escape_bad.rs"));
    assert_eq!(rules, vec!["secret-escape"; 3], "{rules:?}");
}

#[test]
fn secret_escape_good_is_silent() {
    let rules = rules_for(PROTO, fixture!("secret_escape_good.rs"));
    assert!(rules.is_empty(), "{rules:?}");
}

#[test]
fn dataflow_rules_skip_test_code() {
    // The same hot branch inside #[cfg(test)] is exempt, like every rule.
    let src = "#[cfg(test)]\nmod tests {\n fn f(sk: u64) { if sk > 0 { g(); } }\n}\n";
    assert!(rules_for(PROTO, src).is_empty());
}

#[test]
fn inline_waiver_silences_dataflow_finding() {
    let src = "fn f(sk: u64) {\n // tidy:allow(secret-branch) — fixture: value is public here\n if sk > 0 { g(); }\n}\n";
    assert!(rules_for(PROTO, src).is_empty());
}

#[test]
fn fingerprints_are_stable_across_line_shifts() {
    let before = analyze_source(PROTO, "fn f(sk: u64) { if sk > 0 { g(); } }\n");
    let after = analyze_source(
        PROTO,
        "//! A new doc comment shifting everything down.\n\nfn f(sk: u64) { if sk > 0 { g(); } }\n",
    );
    assert_eq!(before.len(), 1);
    assert_eq!(after.len(), 1);
    assert_ne!(before[0].line, after[0].line);
    assert_eq!(before[0].fingerprint, after[0].fingerprint);
    assert_eq!(before[0].fingerprint.len(), 16);
}

#[test]
fn identical_findings_get_distinct_fingerprints() {
    let src = "fn f(sk: u64) { if sk > 0 { g(); } }\nfn h(sk: u64) { if sk > 0 { g(); } }\n";
    let diags = analyze_source(PROTO, src);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert_ne!(diags[0].fingerprint, diags[1].fingerprint);
}
