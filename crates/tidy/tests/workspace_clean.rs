//! The analyzer run as a test: `cargo test` fails if any workspace file
//! violates a rule without a waiver. This is the same pass CI runs via
//! `cargo run --release -p ppgr-tidy`.

use std::path::Path;

#[test]
fn workspace_has_no_unwaived_diagnostics() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let diags = ppgr_tidy::analyze_workspace(&root);
    assert!(
        diags.is_empty(),
        "ppgr-tidy found {} diagnostic(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
