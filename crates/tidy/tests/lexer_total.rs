//! The analyzer is fed every `.rs` file in the tree, including ones that
//! don't parse — it must be total. Property: `analyze_source` never panics
//! on arbitrary byte soup (lossily decoded, as the walker does).

use ppgr_tidy::analyze_source;
use proptest::prelude::*;

/// Characters biased toward what trips lexers: quote/comment/brace tokens,
/// so unterminated strings, half-opened comments, and stray escapes all
/// get generated.
const ROUGH_ALPHABET: &[u8] = br##"abcXYZ019_(){}[];:,."'`/\#!=- $
r"##;

fn rough_text(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..ROUGH_ALPHABET.len(), 0..max)
        .prop_map(|idx| idx.into_iter().map(|i| ROUGH_ALPHABET[i] as char).collect())
}

proptest! {
    #[test]
    fn analyze_source_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let _ = analyze_source("crates/core/src/soup.rs", &source);
        let _ = analyze_source("crates/fake/src/lib.rs", &source);
    }

    #[test]
    fn analyze_source_is_total_on_rust_shaped_text(s in rough_text(2048)) {
        let _ = analyze_source("crates/core/src/soup.rs", &s);
    }

    #[test]
    fn analyze_source_is_total_on_waiver_like_comments(reason in rough_text(60), pick in 0usize..6) {
        let rule = ["panic", "determinism", "headers", "secret-hygiene", "bogus-rule", ""][pick];
        // Waiver parsing sees well-formed and mangled variants alike.
        let reason = reason.replace('\n', " ");
        let src = format!(
            "// tidy:allow({rule}) {reason}\nfn f() {{ x.unwrap() }}\n// tidy:allow({rule})\n"
        );
        let _ = analyze_source("crates/core/src/soup.rs", &src);
    }
}
