//! Bad (as a crate root): missing both lint headers.

pub fn noop() {}
