//! Good: typed errors instead of panics.

pub fn decode(input: Option<u32>) -> Result<u32, &'static str> {
    input.ok_or("missing")
}
