//! Good: secrets stay out of format macros and == comparisons.

pub fn check_ct(a: &[u64], b: &[u64]) -> bool {
    let mut acc = 0u64;
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        acc |= x ^ y;
    }
    acc == 0
}
