//! Bad: an admission projection that reads the wall clock. The service
//! crate is deliberately absent from the clock-sanctioned registry — its
//! projection must reason over phase budgets and queue depths only, so
//! this `Instant` read fires the determinism rule.

use std::time::Instant;

pub fn projected_completion(started: Instant, queued_ahead: usize) -> u64 {
    let elapsed = started.elapsed().as_millis() as u64;
    elapsed * (queued_ahead as u64 + 1)
}
