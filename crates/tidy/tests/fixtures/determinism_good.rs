//! Good: randomness is injected by the caller.

use rand::Rng;

pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    rng.gen()
}
