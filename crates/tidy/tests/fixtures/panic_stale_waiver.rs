//! Bad: a waiver that covers no diagnostic is itself flagged.

// tidy:allow(panic) — nothing here actually panics
pub fn quiet() -> u32 {
    7
}
