//! Bad: secret-tainted values deciding control flow — each construct is
//! variable-time in secret bits.

/// Two-step flow: the token rules can't see this; the dataflow engine can.
pub fn bit_scan(sk: u64, hits: &mut u32) {
    let masked = sk & 0xff;
    let digit = masked >> 4;
    if digit > 7 {
        *hits += 1;
    }
}

/// Loop trip count derived from a secret exponent.
pub fn ladder(group: &Group, base: &Element, sk: u64) -> Element {
    let mut acc = group.identity();
    for _ in 0..sk {
        acc = group.op(&acc, base);
    }
    acc
}

/// Match on a secret scrutinee, and a guard comparing against a secret.
pub fn classify(witness: u64, probe: u64, sink: &mut u32) {
    match witness {
        0 => *sink = 0,
        w if w > probe => *sink = 1,
        _ => *sink = 2,
    }
}

/// `while` on an exposed secret.
pub fn drain(counter: &Secret<u64>) {
    let mut left = *counter.expose();
    while left > 0 {
        left -= 1;
    }
}
