//! Good: a violation covered by a reasoned waiver, both spellings.

pub fn decode(input: Option<u32>) -> u32 {
    input.unwrap() // tidy:allow(panic) — input is produced two lines up and always Some
}

pub fn decode2(input: Option<u32>) -> u32 {
    // tidy:allow(panic) — input is produced two lines up and always Some
    input.expect("always present")
}
