//! Bad: a waiver without a reason is itself flagged.

pub fn decode(input: Option<u32>) -> u32 {
    input.unwrap() // tidy:allow(panic)
}
