//! Fixture: misbehaviour hooks reached from ordinary (non-test) protocol
//! code — every hook identifier fires once.

pub fn sabotage(plan: &mut FaultPlan, stock: &mut OfflineStock, group: &Group) {
    plan.tamper(2, Phase::Encrypt, 0, Tamper::Truncate(6));
    plan.forge(3, Phase::Encrypt, frame_bytes());
    stock.corrupt_key_proof(group, 1);
}

pub fn split_view(plan: &mut FaultPlan) {
    plan.equivocate(3, 1, Phase::KeyGen, 1, byte_flip());
}
