//! Good: every exit is declassified, re-wrapped, or secret-typed.

/// The clone goes straight back under `Secret` protection.
pub fn stash(nonce: &Secret<Scalar>) -> Secret<Scalar> {
    Secret::new(nonce.expose().clone())
}

/// Exponentiation declassifies: the public key is safe to return.
pub fn derive(group: &Group, sk: &Scalar) -> Element {
    group.exp_gen(sk)
}

/// A secret-bearing return type keeps the value inside the discipline.
pub fn rewrap(sk: Scalar) -> Secret<Scalar> {
    Secret::new(sk)
}

/// Formatting the *hash* of derived material is declassified.
pub fn trace_state(sk: &[u8]) {
    let digest = sha256(sk);
    println!("state = {digest:?}");
}
