//! Bad: tainted values leaving the taint discipline — unwiped clones,
//! non-secret returns, and formatted derived values.

/// Clones an exposed pooled nonce into an unwiped copy.
pub fn stash(nonce: &Secret<Scalar>) -> () {
    let copy = nonce.expose().clone();
    keep(copy);
}

/// Returns secret-derived material through a plain type.
pub fn derive(sk: &Scalar) -> Scalar {
    sk.double()
}

/// Formats a secret-*derived* binding (the lexical rule only sees
/// registry names; this one is two steps removed).
pub fn trace_state(sk: u64) {
    let derived = sk.rotate_left(3);
    println!("state = {derived}");
}
