//! Bad: secret-named bindings reaching format macros.

pub fn leak(secret_key: u64, witness: u64) {
    println!("sk={secret_key}");
    let _ = format!("{:x}", witness);
}
