//! Bad: a batch-verification combiner drawn from ambient entropy.
//!
//! Randomized combiners are the textbook construction, but this codebase
//! forbids them: transcripts must be bit-identical across replays, so the
//! combiners must be derived by hashing the transcript set instead
//! (`ppgr_zkp::batch`). An `OsRng`-based combiner must trip the
//! determinism rule, and the `unwrap` on the aggregate equation must trip
//! the panic rule on the protocol surface.

pub fn random_combiners(count: usize) -> Vec<u128> {
    let mut rng = rand::rngs::OsRng;
    (0..count).map(|_| rng.gen()).collect()
}

pub fn aggregate_check(lhs: Option<bool>) -> bool {
    lhs.unwrap()
}
