//! Good: the same shapes kept branch-free or branching only on
//! declassified values.

/// Branch-free digit selection: arithmetic masking instead of `if`.
/// The derived bit is still secret-dependent, so it stays wrapped.
pub fn bit_scan(sk: u64) -> Secret<u64> {
    let masked = sk & 0xff;
    let digit = masked >> 4;
    // 1 if digit > 7 else 0, computed without a branch.
    Secret::new((digit.wrapping_sub(8) >> 63) ^ 1)
}

/// Loop bound is the *public* bit length, not the secret value.
pub fn ladder(group: &Group, base: &Element, sk: &Scalar) -> Element {
    let mut acc = group.identity();
    for _ in 0..sk.bit_len() {
        acc = group.op(&acc, base);
    }
    acc
}

/// Branching on a declassified verdict (exp is one-way under DL).
pub fn check(group: &Group, sk: &Scalar) -> u32 {
    let y = group.exp_gen(sk);
    if group.is_identity(&y) {
        1
    } else {
        0
    }
}
