//! Good: the shape of the MSM engine and the batch verifier — combiners
//! derived deterministically by hashing the transcript set, fallible
//! paths returning `Result`/`Option` instead of panicking.

pub fn derive_combiners(encodings: &[Vec<u8>]) -> Vec<u128> {
    let mut out = Vec::with_capacity(encodings.len());
    for (i, enc) in encodings.iter().enumerate() {
        let mut acc: u128 = 0x6363_u128;
        for &b in enc {
            acc = acc.rotate_left(8) ^ u128::from(b) ^ (i as u128);
        }
        out.push(acc | 1);
    }
    out
}

pub fn bucket_index(digit: usize) -> Option<usize> {
    digit.checked_sub(1)
}

pub fn aggregate_check(lhs: Option<bool>) -> bool {
    lhs.unwrap_or(false)
}
