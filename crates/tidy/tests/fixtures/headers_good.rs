//! Good (as a crate root): both lint headers present.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

pub fn noop() {}
