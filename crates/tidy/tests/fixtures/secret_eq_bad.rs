//! Bad: variable-time comparison on secret-named operands.

pub fn check(sk: u64, guess: u64) -> bool {
    sk == guess
}
