//! Bad: derived Debug on a registered secret-bearing type.

#[derive(Clone, Debug)]
pub struct KeyPair {
    secret: u64,
    public: u64,
}
