//! Bad: panic-family calls on the protocol surface.

pub fn decode(input: Option<u32>) -> u32 {
    input.unwrap()
}

pub fn decode2(input: Option<u32>) -> u32 {
    input.expect("always present")
}

pub fn never() {
    unreachable!()
}

pub fn later() {
    todo!()
}

pub fn missing() {
    unimplemented!()
}

pub fn blow_up() {
    panic!("boom");
}
