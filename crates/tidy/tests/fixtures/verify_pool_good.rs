//! Good: the shape of the cross-session verify collector — parked jobs
//! carry only *published* protocol values (key statements and their
//! proof transcripts), settle through a typed verdict, and never read
//! the clock. Nothing here belongs in a secret registry.

pub struct ParkedJob {
    pub statements: Vec<Vec<u8>>,
    pub transcripts: Vec<Vec<u8>>,
}

pub struct Collector {
    window: usize,
    pending: Vec<ParkedJob>,
}

impl Collector {
    pub fn park(&mut self, job: ParkedJob) -> bool {
        self.pending.push(job);
        self.pending.len() >= self.window
    }

    pub fn flush(&mut self) -> Vec<Result<(), usize>> {
        let batch = std::mem::take(&mut self.pending);
        batch
            .iter()
            .map(|job| {
                if job.statements.len() == job.transcripts.len() {
                    Ok(())
                } else {
                    Err(job.statements.len())
                }
            })
            .collect()
    }
}
