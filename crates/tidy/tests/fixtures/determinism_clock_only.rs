//! Wall-clock reads only — no ambient entropy. Silent in sanctioned
//! timing modules, flagged on the protocol surface.

pub fn measure() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}
