//! Bad: derived Debug on offline-precomputed secret material.

#[derive(Clone, Debug)]
pub struct SchnorrNonce {
    pub nonce: [u64; 4],
}

#[derive(Debug)]
pub struct EncRandomizer {
    pub r: [u64; 4],
}
