//! Bad: derived Debug on offline-precomputed secret material.

#[derive(Clone, Debug)]
pub struct SchnorrNonce {
    pub nonce: [u64; 4],
}

#[derive(Debug)]
pub struct MaskPair {
    pub r: [u64; 4],
}

#[derive(Debug)]
pub struct KeyStock {
    pub secrets: Vec<[u64; 4]>,
}
