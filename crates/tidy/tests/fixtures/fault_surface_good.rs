//! Fixture: the same misbehaviour hooks inside test code are fine —
//! scripting an adversary is exactly what the byzantine matrix does.

pub fn run(values: &[u64]) -> usize {
    values.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn scripted_adversary() {
        let mut plan = FaultPlan::default();
        plan.tamper(2, Phase::Encrypt, 0, Tamper::Truncate(6));
        plan.equivocate(3, 1, Phase::KeyGen, 1, Tamper::FlipByte { offset: 10, mask: 2 });
        plan.forge(3, Phase::Encrypt, vec![0x02]);
    }
}
