//! Bad: ambient randomness and wall-clock reads.

pub fn bad_rng() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn bad_clock() -> std::time::Instant {
    std::time::Instant::now()
}
