//! Good: panics inside test scope are fine.

pub fn id(x: u32) -> u32 {
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
