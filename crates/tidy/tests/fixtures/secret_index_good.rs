//! Good: constant-time scan instead of a secret-addressed load, and
//! public indices into secret tables.

/// Constant-time gather: every slot is touched; selection is arithmetic.
pub fn ct_lookup(table: &[u64], sk: u64) -> u64 {
    let want = sk & 0xf;
    let mut out = 0u64;
    for (i, v) in table.iter().enumerate() {
        let hit = ct_eq(i as u64, want);
        out = ct_select_limb(hit, *v, out);
    }
    out
}

/// Indexing a secret-typed table with a *public* loop index is fine —
/// the address depends only on `i`.
pub fn sum_pool(pool: &[MaskPair], count: usize) -> usize {
    let mut n = 0;
    for i in 0..count {
        // Presence of the precomputed half is scheduler state (conceded
        // structural query), so the branch is on declassified data.
        if pool[i].y_r.is_some() {
            n += 1;
        }
    }
    n
}
