//! Bad: secret-derived table indices — the accessed address leaks
//! through the cache.

/// The classic comb-table lookup keyed by secret digits.
pub fn comb_lookup(table: &[Element], sk: u64) -> Element {
    let digit = (sk >> 4) & 0xf;
    table[digit as usize].clone()
}

/// Index computed from an exposed pooled nonce.
pub fn pick(table: &[u64], nonce: &Secret<u64>) -> u64 {
    let i = (*nonce.expose() as usize) % table.len();
    table[i]
}
