//! The structural parser is fed whatever the lexer produces — including
//! token streams from files that aren't Rust at all. Property: `parse_file`
//! never panics on arbitrary token soup, and the dataflow pass is total on
//! whatever function skeletons the parser recovers.

use ppgr_tidy::lexer::{Tok, TokKind};
use ppgr_tidy::parser::parse_file;
use proptest::prelude::*;

/// Lexemes biased toward what trips recursive-descent parsers: half-open
/// delimiters, keywords out of position, operators with missing operands.
const ROUGH_LEXEMES: &[(&str, TokKind)] = &[
    ("fn", TokKind::Ident),
    ("let", TokKind::Ident),
    ("if", TokKind::Ident),
    ("else", TokKind::Ident),
    ("match", TokKind::Ident),
    ("while", TokKind::Ident),
    ("for", TokKind::Ident),
    ("in", TokKind::Ident),
    ("return", TokKind::Ident),
    ("move", TokKind::Ident),
    ("mut", TokKind::Ident),
    ("sk", TokKind::Ident),
    ("x", TokKind::Ident),
    ("Secret", TokKind::Ident),
    ("(", TokKind::Punct),
    (")", TokKind::Punct),
    ("{", TokKind::Punct),
    ("}", TokKind::Punct),
    ("[", TokKind::Punct),
    ("]", TokKind::Punct),
    ("<", TokKind::Punct),
    (">", TokKind::Punct),
    (",", TokKind::Punct),
    (";", TokKind::Punct),
    (":", TokKind::Punct),
    ("::", TokKind::Punct),
    ("->", TokKind::Punct),
    ("=>", TokKind::Punct),
    ("=", TokKind::Punct),
    ("==", TokKind::Punct),
    ("&&", TokKind::Punct),
    ("||", TokKind::Punct),
    ("<=", TokKind::Punct),
    (">=", TokKind::Punct),
    ("&", TokKind::Punct),
    ("|", TokKind::Punct),
    ("?", TokKind::Punct),
    (".", TokKind::Punct),
    ("!", TokKind::Punct),
    ("#", TokKind::Punct),
    ("..", TokKind::Punct),
    ("0", TokKind::Num),
    ("42u64", TokKind::Num),
    ("{sk}", TokKind::Str),
    ("plain", TokKind::Str),
    ("a", TokKind::Char),
    ("a", TokKind::Lifetime),
];

fn rough_tokens(max: usize) -> impl Strategy<Value = Vec<Tok>> {
    prop::collection::vec(0usize..ROUGH_LEXEMES.len(), 0..max).prop_map(|idx| {
        idx.into_iter()
            .enumerate()
            .map(|(i, j)| {
                let (text, kind) = ROUGH_LEXEMES[j];
                Tok {
                    line: (i / 8) as u32 + 1,
                    kind,
                    text: text.to_string(),
                }
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn parse_file_is_total_on_arbitrary_token_streams(toks in rough_tokens(512)) {
        let _ = parse_file(&toks);
    }

    #[test]
    fn flow_pass_is_total_on_recovered_skeletons(toks in rough_tokens(512)) {
        // Whatever `fn` skeletons the parser salvages from the soup must
        // also survive the taint walk.
        let mut out = Vec::new();
        for item in parse_file(&toks) {
            ppgr_tidy::flow::check_fn("crates/core/src/soup.rs", &item, &mut out);
        }
    }

    #[test]
    fn parse_file_is_total_on_lexed_rough_text(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let toks = ppgr_tidy::lexer::lex(&source);
        let _ = parse_file(&toks);
    }
}
