//! `ppgr-tidy` — crypto-invariant static analysis for the ppgr workspace.
//!
//! The paper's central privacy claims (private input hiding, gain secrecy,
//! identity unlinkability — Sec. IV/V) hold only while the implementation
//! keeps a set of invariants no type system checks for us:
//!
//! * **secret-hygiene** — secrets (ElGamal key shares, Schnorr witnesses,
//!   the ρ/ρ_j masks, shuffle permutations) never reach `Debug`/`Display`
//!   output or a variable-time `==`;
//! * **determinism** — all protocol randomness flows from an injected
//!   `Rng`; no ambient `thread_rng()`/`OsRng`/wall-clock reads outside
//!   sanctioned timing modules (the pooled runtime's bit-identical
//!   transcript guarantee rests on this);
//! * **panic** — the protocol surface returns typed errors instead of
//!   panicking on attacker-reachable input;
//! * **headers** — every crate and binary root keeps its
//!   `#![forbid(unsafe_code)]` / `#![deny(unused_must_use)]` lint
//!   headers;
//! * **secret-branch / secret-index / secret-escape** — an
//!   intraprocedural taint pass ([`flow`]) over function skeletons
//!   recovered by a structural parser ([`parser`]): control flow and
//!   memory addressing must not depend on secret-derived values, and
//!   tainted values must not escape via unwiped clones, plain-typed
//!   returns, or formatting — unless laundered through a registered
//!   declassifier (exponentiation, hashing, encryption, verification
//!   verdicts) or re-wrapped in `Secret`.
//!
//! The analyzer is dependency-free: a hand-rolled tokenizer ([`lexer`])
//! feeds token-level rules ([`rules`]) and the dataflow pass, driven
//! per-file by [`engine`], which also implements `#[cfg(test)]`
//! scoping, stable line-independent fingerprints, and the inline
//! waiver syntax:
//!
//! ```text
//! do_thing().unwrap(); // tidy:allow(panic) — <why this cannot fire>
//! ```
//!
//! A standalone `// tidy:allow(rule) — reason` comment line covers the
//! next line. Findings justified by a *protocol argument* rather than
//! a line-local claim live in `tidy.waivers` at the workspace root
//! ([`waivers`]), keyed by fingerprint with a mandatory reason and
//! expiry date. Reasonless, stale, expired, and unmatched waivers are
//! themselves diagnostics. [`report`] serializes findings as JSON and
//! SARIF 2.1.0 for CI. See `docs/ANALYSIS.md` for the full rule
//! catalogue and each rule's protocol rationale.
//!
//! Run as `cargo run --release -p ppgr-tidy`; the same pass also runs as a
//! `#[test]` so `cargo test` gates it.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod engine;
pub mod flow;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod waivers;

pub use engine::{analyze_source, analyze_workspace, Diagnostic};
