//! `ppgr-tidy` — crypto-invariant static analysis for the ppgr workspace.
//!
//! The paper's central privacy claims (private input hiding, gain secrecy,
//! identity unlinkability — Sec. IV/V) hold only while the implementation
//! keeps a set of invariants no type system checks for us:
//!
//! * **secret-hygiene** — secrets (ElGamal key shares, Schnorr witnesses,
//!   the ρ/ρ_j masks, shuffle permutations) never reach `Debug`/`Display`
//!   output or a variable-time `==`;
//! * **determinism** — all protocol randomness flows from an injected
//!   `Rng`; no ambient `thread_rng()`/`OsRng`/wall-clock reads outside
//!   sanctioned timing modules (the pooled runtime's bit-identical
//!   transcript guarantee rests on this);
//! * **panic** — the protocol surface returns typed errors instead of
//!   panicking on attacker-reachable input;
//! * **headers** — every crate keeps its `#![forbid(unsafe_code)]` /
//!   `#![deny(unused_must_use)]` lint headers.
//!
//! The analyzer is dependency-free: a hand-rolled tokenizer ([`lexer`])
//! feeds token-level rules ([`rules`]) driven per-file by [`engine`],
//! which also implements `#[cfg(test)]` scoping and the inline waiver
//! syntax:
//!
//! ```text
//! do_thing().unwrap(); // tidy:allow(panic) — <why this cannot fire>
//! ```
//!
//! A standalone `// tidy:allow(rule) — reason` comment line covers the
//! next line. Reasonless and stale (unused) waivers are themselves
//! diagnostics. See `docs/ANALYSIS.md` for the full rule catalogue and
//! each rule's protocol rationale.
//!
//! Run as `cargo run --release -p ppgr-tidy`; the same pass also runs as a
//! `#[test]` so `cargo test` gates it.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{analyze_source, analyze_workspace, Diagnostic};
