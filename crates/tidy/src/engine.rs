//! Analysis driver: waiver parsing, `#[cfg(test)]` scoping, per-file rule
//! dispatch, and workspace walking.

use crate::lexer::{lex, Tok};
use crate::rules;
use std::fmt;
use std::path::{Path, PathBuf};

/// One finding, addressed `path:line`.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule that fired (`panic`, `determinism`, `secret-hygiene`,
    /// `headers`, `waiver`).
    pub rule: &'static str,
    /// Human-oriented explanation.
    pub message: String,
    /// Stable 16-hex-char fingerprint (FNV-1a over rule, path, message,
    /// and the per-file occurrence index of identical findings — line
    /// numbers deliberately excluded so unrelated edits don't churn it).
    /// Filled in by the engine after a file's rules run.
    pub fingerprint: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// An inline waiver: `// tidy:allow(rule) — reason`.
///
/// A waiver on the same line as the flagged code covers that line; a
/// waiver that is the whole line (a standalone comment) covers the next
/// line. The reason text after the closing parenthesis is mandatory.
#[derive(Debug)]
struct Waiver {
    /// Line the waiver covers.
    covers: u32,
    /// Line the waiver is written on (for diagnostics).
    declared: u32,
    rules: Vec<String>,
    has_reason: bool,
    used: bool,
}

const WAIVER_MARKER: &str = "tidy:allow(";

/// Extracts waivers from raw source (comment-aware enough for real code:
/// the marker is only meaningful inside a plain `//` comment — doc
/// comments are prose, not waivers).
fn parse_waivers(source: &str) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let Some(comment_at) = raw.find("//") else {
            continue;
        };
        if raw[comment_at..].starts_with("///") || raw[comment_at..].starts_with("//!") {
            continue;
        }
        let comment = &raw[comment_at..];
        let Some(m) = comment.find(WAIVER_MARKER) else {
            continue;
        };
        let after = &comment[m + WAIVER_MARKER.len()..];
        let Some(close) = after.find(')') else {
            // Malformed: treat as a reasonless waiver of nothing so the
            // hygiene check reports it.
            out.push(Waiver {
                covers: line_no,
                declared: line_no,
                rules: Vec::new(),
                has_reason: false,
                used: false,
            });
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let reason = after[close + 1..]
            .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
            .trim();
        let standalone = raw[..comment_at].trim().is_empty();
        out.push(Waiver {
            covers: if standalone { line_no + 1 } else { line_no },
            declared: line_no,
            rules,
            has_reason: !reason.is_empty(),
            used: false,
        });
    }
    out
}

/// Returns a parallel `bool` mask: `true` for tokens inside test-only code
/// (`#[cfg(test)]` items, `#[test]` functions, `mod tests { … }`).
fn test_scope_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        // `#[cfg(test)]` / `#[test]` (and `#[cfg(any(test, …))]`).
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            let attr_end = match matching(toks, i + 1, "[", "]") {
                Some(e) => e,
                None => toks.len() - 1,
            };
            let attr = &toks[i + 2..attr_end];
            let is_test_attr = (attr.len() == 1 && attr[0].is_ident("test"))
                || (attr.first().is_some_and(|t| t.is_ident("cfg"))
                    && attr.iter().any(|t| t.is_ident("test")));
            if is_test_attr {
                let end = item_end(toks, attr_end + 1);
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        // A `mod tests { … }` block is test code even without the cfg.
        if toks[i].is_ident("mod")
            && i + 2 < toks.len()
            && toks[i + 1].is_ident("tests")
            && toks[i + 2].is_punct("{")
        {
            let end = matching(toks, i + 2, "{", "}").unwrap_or(toks.len() - 1);
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the token closing the bracket opened at `open` (which must
/// hold the `open_t` punct), or `None` if unbalanced.
pub(crate) fn matching(toks: &[Tok], open: usize, open_t: &str, close_t: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_t) {
            depth += 1;
        } else if t.is_punct(close_t) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the last token of the item starting at `start`: skips any
/// further attributes, then runs to the first top-level `;` or through a
/// balanced `{ … }` body.
fn item_end(toks: &[Tok], start: usize) -> usize {
    let mut i = start;
    // Skip stacked attributes.
    while i + 1 < toks.len() && toks[i].is_punct("#") && toks[i + 1].is_punct("[") {
        match matching(toks, i + 1, "[", "]") {
            Some(e) => i = e + 1,
            None => return toks.len() - 1,
        }
    }
    let mut depth = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            return matching(toks, i, "{", "}").unwrap_or(toks.len() - 1);
        }
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth = depth.saturating_sub(1);
        } else if t.is_punct(";") && depth == 0 {
            return i;
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Analyzes one file's source as though it lived at the workspace-relative
/// `rel_path` (which decides rule applicability). This is the unit the
/// fixture tests drive directly.
pub fn analyze_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let toks = lex(source);
    let test_mask = if toks.is_empty() {
        Vec::new()
    } else {
        test_scope_mask(&toks)
    };
    // Line ranges covered by test-only code: waivers written there (e.g. in
    // a test's source-string fixture) are outside the rules' jurisdiction.
    let mut test_ranges: Vec<(u32, u32)> = Vec::new();
    let mut run_start: Option<u32> = None;
    for (t, &masked) in toks.iter().zip(&test_mask) {
        match (masked, run_start) {
            (true, None) => run_start = Some(t.line),
            (false, Some(s)) => {
                test_ranges.push((s, t.line));
                run_start = None;
            }
            _ => {}
        }
    }
    if let (Some(s), Some(last)) = (run_start, toks.last()) {
        test_ranges.push((s, last.line));
    }
    let in_test_lines = |line: u32| test_ranges.iter().any(|&(s, e)| s <= line && line <= e);
    let mut waivers = parse_waivers(source);
    waivers.retain(|w| !in_test_lines(w.declared));

    let mut raw = Vec::new();
    let ctx = rules::FileCtx {
        rel_path,
        toks: &toks,
        test_mask: &test_mask,
    };
    rules::check_headers(&ctx, &mut raw);
    rules::check_determinism(&ctx, &mut raw);
    rules::check_panic(&ctx, &mut raw);
    rules::check_fault_surface(&ctx, &mut raw);
    rules::check_secret_hygiene(&ctx, &mut raw);

    // Dataflow rules run over the parsed AST (parsed once per file);
    // test-only functions are exempt, same as the token rules.
    for f in &crate::parser::parse_file(&toks) {
        if test_mask.get(f.tok_index).copied().unwrap_or(false) {
            continue;
        }
        crate::flow::check_fn(rel_path, f, &mut raw);
    }

    // Fingerprints are assigned over the *unwaived* finding list in line
    // order, so adding an inline waiver never shifts a neighbour's
    // occurrence counter.
    raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    assign_fingerprints(&mut raw);

    // Apply waivers.
    let mut out = Vec::new();
    for d in raw {
        let waived = waivers.iter_mut().find(|w| {
            w.covers == d.line && w.has_reason && w.rules.iter().any(|r| r == d.rule || r == "all")
        });
        match waived {
            Some(w) => w.used = true,
            None => out.push(d),
        }
    }
    // Waiver hygiene: reasonless or unused waivers are themselves findings
    // (a stale waiver silently re-opens the hole it documented).
    for w in &waivers {
        if !w.has_reason {
            out.push(Diagnostic {
                path: rel_path.to_string(),
                line: w.declared,
                rule: "waiver",
                message: "waiver without a reason: document why the rule is safe to \
                          silence here"
                    .to_string(),
                fingerprint: String::new(),
            });
        } else if !w.used {
            out.push(Diagnostic {
                path: rel_path.to_string(),
                line: w.declared,
                rule: "waiver",
                message: format!(
                    "unused waiver for ({}): nothing fires on the covered line — remove it",
                    w.rules.join(", ")
                ),
                fingerprint: String::new(),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    assign_fingerprints(&mut out); // fills the waiver-hygiene entries
    out
}

/// 64-bit FNV-1a over `bytes`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fills the `fingerprint` of every diagnostic that doesn't have one yet:
/// FNV-1a over `(rule, path, message, k)` where `k` is the occurrence
/// index of identical triples within this list. Line numbers are
/// deliberately excluded so a fingerprint — and the waiver pinned to it —
/// survives unrelated edits above the finding.
fn assign_fingerprints(diags: &mut [Diagnostic]) {
    let mut seen: std::collections::HashMap<(String, &'static str, String), u32> =
        std::collections::HashMap::new();
    for d in diags.iter_mut() {
        let key = (d.path.clone(), d.rule, d.message.clone());
        let k = seen.entry(key).or_insert(0);
        if d.fingerprint.is_empty() {
            let input = format!("{}\u{1}{}\u{1}{}\u{1}{}", d.rule, d.path, d.message, *k);
            d.fingerprint = format!("{:016x}", fnv1a64(input.as_bytes()));
        }
        *k += 1;
    }
}

/// Directories never scanned: vendored code, build output, and test-only
/// trees (fixtures deliberately contain rule violations).
const SKIP_DIRS: &[&str] = &[
    "target",
    "third_party",
    "tests",
    "benches",
    "examples",
    "fixtures",
    ".git",
];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs_files(&p, out);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

/// Walks the workspace at `root` (its `crates/` and `src/` trees) and
/// returns every diagnostic.
pub fn analyze_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut files = Vec::new();
    for sub in ["crates", "src"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files);
        }
    }
    let mut out = Vec::new();
    for file in files {
        let Ok(source) = std::fs::read(&file) else {
            continue;
        };
        let source = String::from_utf8_lossy(&source);
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        out.extend(analyze_source(&rel, &source));
    }
    // Fingerprint-pinned waivers from `tidy.waivers` apply workspace-wide
    // (inline waivers were already applied per-file above).
    let mut out = crate::waivers::apply_file_waivers(root, out);
    assign_fingerprints(&mut out); // fills the waiver-file hygiene entries
    out.sort_by_key(|d| (d.path.clone(), d.line));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_same_line_and_next_line() {
        let src = "\
fn f() {
    x.unwrap(); // tidy:allow(panic) — provably non-empty here
    // tidy:allow(panic) — checked by caller
    y.unwrap();
}
";
        let d = analyze_source("crates/core/src/x.rs", src);
        assert!(d.iter().all(|d| d.rule != "panic"), "{d:?}");
    }

    #[test]
    fn waiver_without_reason_is_flagged() {
        let src = "fn f() { x.unwrap(); } // tidy:allow(panic)\n";
        let d = analyze_source("crates/core/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == "waiver"), "{d:?}");
    }

    #[test]
    fn unused_waiver_is_flagged() {
        let src = "// tidy:allow(panic) — stale\nfn f() {}\n";
        let d = analyze_source("crates/core/src/x.rs", src);
        assert!(
            d.iter()
                .any(|d| d.rule == "waiver" && d.message.contains("unused")),
            "{d:?}"
        );
    }

    #[test]
    fn cfg_test_mod_is_scoped_out() {
        let src = "\
fn good() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
";
        let d = analyze_source("crates/core/src/x.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_attr_fn_is_scoped_out() {
        let src = "#[test]\nfn t() { Some(1).unwrap(); }\n";
        let d = analyze_source("crates/core/src/x.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }
}
