//! Machine-readable output: JSON, SARIF 2.1.0, and the per-rule summary.
//!
//! Both serializers are hand-rolled (the analyzer stays dependency-free);
//! the SARIF document carries the minimal structure CI code-scanning
//! uploads need — `tool.driver.rules`, per-result `ruleId` / `message` /
//! `physicalLocation`, and the stable fingerprint under
//! `partialFingerprints` so re-runs update findings instead of
//! duplicating them.

use crate::engine::Diagnostic;

/// Rule catalogue: id and a one-line description, in report order.
/// Mirrors the registries in [`crate::rules`] / [`crate::flow`] and the
/// catalogue in `docs/ANALYSIS.md` — keep the three in sync.
pub const RULES: &[(&str, &str)] = &[
    (
        "headers",
        "crate roots keep #![forbid(unsafe_code)] and #![deny(unused_must_use)]",
    ),
    (
        "determinism",
        "no ambient clock or entropy outside sanctioned modules; randomness flows from injected Rngs",
    ),
    (
        "panic",
        "protocol-surface crates return typed errors instead of panicking on reachable input",
    ),
    (
        "secret-hygiene",
        "secrets never reach Debug/Display formatting or a variable-time ==",
    ),
    (
        "fault-surface",
        "misbehaviour hooks (tamper/equivocate/forge/…) stay pinned to the fault-injection surface and test code",
    ),
    (
        "secret-branch",
        "no control flow (if/match/while/for/let-else) on secret-tainted data",
    ),
    (
        "secret-index",
        "no array/slice/table index derived from secret-tainted data",
    ),
    (
        "secret-escape",
        "tainted values reach no clone, non-secret return, or format macro without declassification",
    ),
    (
        "waiver",
        "waivers carry a reason and an expiry, and match a current finding",
    ),
];

/// JSON string escape (quotes, backslashes, control characters).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Per-rule counts of firing rules, in [`RULES`] order.
fn counts(diags: &[Diagnostic]) -> Vec<(&'static str, usize)> {
    let mut out: Vec<(&'static str, usize)> = Vec::new();
    for &(id, _) in RULES {
        let n = diags.iter().filter(|d| d.rule == id).count();
        if n > 0 {
            out.push((id, n));
        }
    }
    out
}

/// Renders the finding list as a JSON report.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("{\n  \"version\": 1,\n  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \
             \"fingerprint\": \"{}\", \"message\": \"{}\"}}{}\n",
            esc(d.rule),
            esc(&d.path),
            d.line,
            esc(&d.fingerprint),
            esc(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"counts\": {");
    let cs = counts(diags);
    for (i, (rule, n)) in cs.iter().enumerate() {
        s.push_str(&format!(
            "\"{rule}\": {n}{}",
            if i + 1 < cs.len() { ", " } else { "" }
        ));
    }
    s.push_str(&format!("}},\n  \"total\": {}\n}}\n", diags.len()));
    s
}

/// Renders the finding list as a SARIF 2.1.0 document.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut s = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"ppgr-tidy\",\n          \
         \"informationUri\": \"https://example.invalid/ppgr-tidy\",\n          \
         \"rules\": [\n",
    );
    for (i, (id, desc)) in RULES.iter().enumerate() {
        s.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            esc(id),
            esc(desc),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    s.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        s.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\", \"uriBaseId\": \"SRCROOT\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}], \
             \"partialFingerprints\": {{\"ppgrTidy/v1\": \"{}\"}}}}{}\n",
            esc(d.rule),
            esc(&d.message),
            esc(&d.path),
            d.line.max(1),
            esc(&d.fingerprint),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

/// Diff-friendly per-rule summary: one `rule: count` line per firing
/// rule, then the total — stable ordering, no volatile detail, so two CI
/// runs diff cleanly.
pub fn summary(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "ppgr-tidy: workspace clean\n".to_string();
    }
    let mut s = String::from("ppgr-tidy findings by rule:\n");
    for (rule, n) in counts(diags) {
        s.push_str(&format!("  {rule}: {n}\n"));
    }
    s.push_str(&format!("  total: {}\n", diags.len()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                path: "crates/core/src/a.rs".to_string(),
                line: 3,
                rule: "secret-branch",
                message: "a \"quoted\" message\nwith a newline".to_string(),
                fingerprint: "0123456789abcdef".to_string(),
            },
            Diagnostic {
                path: "crates/core/src/b.rs".to_string(),
                line: 7,
                rule: "secret-index",
                message: "plain".to_string(),
                fingerprint: "fedcba9876543210".to_string(),
            },
        ]
    }

    #[test]
    fn json_escapes_and_counts() {
        let j = to_json(&sample());
        assert!(j.contains("\\\"quoted\\\""), "{j}");
        assert!(j.contains("\\n"), "{j}");
        assert!(j.contains("\"secret-branch\": 1"), "{j}");
        assert!(j.contains("\"total\": 2"), "{j}");
    }

    #[test]
    fn sarif_has_required_structure() {
        let s = to_sarif(&sample());
        for needle in [
            "\"version\": \"2.1.0\"",
            "\"name\": \"ppgr-tidy\"",
            "\"ruleId\": \"secret-branch\"",
            "\"startLine\": 3",
            "\"uri\": \"crates/core/src/a.rs\"",
            "\"ppgrTidy/v1\": \"0123456789abcdef\"",
        ] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
        // Every catalogued rule appears in the driver rules array.
        for (id, _) in RULES {
            assert!(s.contains(&format!("\"id\": \"{id}\"")), "{id}");
        }
    }

    #[test]
    fn summary_is_stable_and_totalled() {
        let s = summary(&sample());
        assert_eq!(
            s,
            "ppgr-tidy findings by rule:\n  secret-branch: 1\n  secret-index: 1\n  total: 2\n"
        );
        assert_eq!(summary(&[]), "ppgr-tidy: workspace clean\n");
    }
}
