//! Intraprocedural secret-taint dataflow over the [`parser`](crate::parser)
//! AST: the engine behind the `secret-branch`, `secret-index`, and
//! `secret-escape` rules.
//!
//! # Model
//!
//! Taint is a per-function map from binding names to the *origin* secret
//! they derive from. It is seeded from three places:
//!
//! * parameters and `let` bindings whose **name** is in the
//!   `SECRET_IDENTS` registry, or whose **type annotation** mentions a
//!   type from `SECRET_TYPES` (incl. `Secret<T>` itself);
//! * field accesses whose field name is in `SECRET_IDENTS`
//!   (`self.nonce`, `pair.sk`);
//! * the `Secret<T>` unwrap points `.expose()` / `.expose_mut()`.
//!
//! Taint propagates through arithmetic, references, `?`, casts, tuples,
//! closures (iterator-style closures inherit the receiver's taint into
//! their parameters), indexing, and secret-dependent `if`/`match`
//! selection results. It **ends** at a declassification point: a registry
//! of constructions whose output is public by cryptographic argument
//! (exponentiations under the DL assumption, hashes, ciphertext/proof
//! constructors, constant-time comparison verdicts) or a re-wrap into
//! `Secret`. Struct literals are an aggregation boundary: building a
//! value of a secret-bearing type is governed by the type-level rules
//! (`derive(Debug)` ban, `Secret` fields), not by taint — the analysis is
//! intraprocedural and stops there.
//!
//! # The three rule families
//!
//! * **secret-branch** — a secret-tainted value decides control flow:
//!   `if`/`while` condition, `match` scrutinee or arm guard, `for`
//!   iterable, `let … else`. Execution time then depends on secret bits
//!   — the class of leak the protocol math does not model.
//! * **secret-index** — a secret-tainted value computes an array/slice
//!   index: the accessed address leaks through the cache (the classic
//!   attack against comb/wNAF table lookups).
//! * **secret-escape** — a tainted value leaves the taint discipline
//!   without declassification: duplicated by a clone-family call (the
//!   copy is never wiped), returned from a function whose declared
//!   return type is not secret-bearing, or captured by a formatting
//!   macro (the dataflow extension of the lexical format ban).
//!
//! Intraprocedural means: calls are *not* followed. A called function
//! re-seeds its own taint from its parameter names/types, so the
//! workspace convention of naming secret parameters by their protocol
//! role (already enforced lexically) is what carries taint across
//! function boundaries.

use crate::engine::Diagnostic;
use crate::parser::{Block, Expr, FnItem, Stmt};
use crate::rules::{FMT_MACROS, SECRET_IDENTS, SECRET_TYPES};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Registries (documented in docs/ANALYSIS.md — keep the two in sync).
// ---------------------------------------------------------------------------

/// Calls whose result is public even when fed secrets — the points where
/// taint legitimately ends, each with a cryptographic argument:
///
/// * the exponentiation family (`exp*`, `multi_exp`): one-way under the
///   DL assumption — `g^x` reveals nothing efficiently computable about
///   `x`;
/// * hashes/KDFs (`sha256`, `hmac_sha256`, `hkdf_*`): one-wayness in the
///   random-oracle model;
/// * ciphertext constructors (`encrypt*`, `rerandomize*`,
///   `randomize_plaintext`): ElGamal semantic security;
/// * proof verdicts (`verify*`) and constant-time equality (`ct_eq`,
///   `ct_eq_limbs`): the boolean verdict is the protocol's intended
///   public output — the `ct_` property protects the *path* to it, not
///   the bit itself. Note `ct_select*` is **not** here: a selected value
///   is as secret as its inputs;
/// * public-part accessors on secret-bearing values (`commitment`,
///   `public_key`) and encodings of public group elements (`encode`,
///   `try_encode`);
/// * structural size/shape queries (`len`, `is_empty`, `bit_len`,
///   `bits`, `is_zero`, `is_none`, `is_some`): conceded channels — limb
///   vectors are normalized, so operand length already correlates with
///   magnitude (the honesty note in `crates/bigint/src/ct.rs`),
///   protocol scalars are publicly validated nonzero, and the
///   presence/absence of pooled precomputed material is scheduler
///   state, not secret data;
/// * `wipe` (destroys the value; result is `()`).
const DECLASSIFIERS: &[&str] = &[
    // exponentiation family (one-way under DL)
    "exp",
    "try_exp",
    "exp_gen",
    "exp_dual",
    "exp_dual_batch",
    "exp_batch",
    "exp_gen_batch",
    "multi_exp",
    "try_multi_exp",
    "exp_same_batch",
    "exp_same_mul_batch",
    "exp_hop_batch",
    "exp_hop_prepared_batch",
    "exp_prepared",
    "exp_prepared_batch",
    // hashes / KDFs
    "sha256",
    "hmac_sha256",
    "hkdf_extract",
    "hkdf_expand",
    "hkdf_sha256",
    // ciphertext constructors
    "encrypt",
    "encrypt_bits",
    "encrypt_bits_with_precomputed",
    "rerandomize",
    "rerandomize_with_precomputed",
    "randomize_plaintext",
    // public verdicts and constant-time comparison
    "verify",
    "verify_batch",
    "verify_multi_batch",
    "is_identity",
    "decrypts_to_zero",
    "ct_eq",
    "ct_eq_limbs",
    // public-part accessors / encodings
    "commitment",
    "public_key",
    "encode",
    "try_encode",
    // conceded structural queries
    "len",
    "is_empty",
    "bit_len",
    "bits",
    "is_zero",
    "is_none",
    "is_some",
    // destructuring that keeps the secret component wrapped: `into_parts`
    // yields `Secret<…>`-wrapped secrets plus public halves (`g^r`,
    // commitments), so the bindings are safe until their `.expose()`,
    // which re-taints
    "into_parts",
    // `DebugStruct::finish` — the `fmt::Result` verdict carries no
    // payload; what was fed to the builder is the secret-hygiene rule's
    // jurisdiction (redacting `Debug` impls hand over still-wrapped
    // `Secret` fields)
    "finish",
    // destruction
    "wipe",
];

/// Free functions / associated constructors that move a value *back
/// under* secret protection: escape checks are suppressed inside their
/// arguments and the result is clean (future access must go through
/// `.expose()` again).
const REWRAPPERS: &[&str] = &["from_secret"];

/// Type path segments whose `new`/`from` constructors rewrap
/// (`Secret::new`, `Secret::from`).
const REWRAP_TYPES: &[&str] = &["Secret"];

/// Clone-family methods: each duplicates secret material into a copy no
/// `Secret` wrapper will ever wipe.
const CLONE_LIKE: &[&str] = &["clone", "to_vec", "to_owned", "to_string"];

/// `Secret<T>` unwrap points — calling one makes the result hot whatever
/// the receiver is named.
const EXPOSERS: &[&str] = &["expose", "expose_mut"];

/// True if a flattened type string mentions a secret-bearing type.
fn type_is_secret(ty: &str) -> bool {
    ty.split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .any(|seg| SECRET_TYPES.contains(&seg))
}

/// True if a binding/parameter name is secret by workspace convention.
fn name_is_secret(name: &str) -> bool {
    SECRET_IDENTS.contains(&name)
}

/// Taint: `Some(origin)` names the secret a value derives from.
type Taint = Option<String>;

/// Binding-name → origin-secret map for one function.
type Env = HashMap<String, String>;

/// The per-function walker.
struct Flow<'a> {
    rel_path: &'a str,
    fn_name: &'a str,
    /// Declared return type (for escape messages).
    ret: Option<&'a str>,
    /// Declared return type mentions a secret-bearing wrapper.
    ret_secret: bool,
    /// The fn's *name* declares it hands out secret material
    /// (`secret_key`, `expose_*`): returning taint from it is the
    /// documented, greppable escape hatch, so escape-on-return is off.
    sanctioned_accessor: bool,
    /// Suppression depth for escape findings (inside declassifier or
    /// rewrapper arguments the value is on its way to safety).
    suppress_escape: u32,
    out: &'a mut Vec<Diagnostic>,
}

/// Runs the taint engine over one function and appends any
/// `secret-branch` / `secret-index` / `secret-escape` findings.
pub fn check_fn(rel_path: &str, item: &FnItem, out: &mut Vec<Diagnostic>) {
    let ret_secret = item.ret.as_deref().is_some_and(type_is_secret);
    let lower = item.name.to_lowercase();
    let sanctioned_accessor =
        name_is_secret(&item.name) || lower.contains("secret") || lower.contains("expose");
    let mut flow = Flow {
        rel_path,
        fn_name: &item.name,
        ret: item.ret.as_deref(),
        ret_secret,
        sanctioned_accessor,
        suppress_escape: 0,
        out,
    };
    let mut env = Env::new();
    for p in &item.params {
        let ty_secret = type_is_secret(&p.ty);
        for n in &p.names {
            if ty_secret || name_is_secret(n) {
                env.insert(n.clone(), n.clone());
            }
        }
    }
    let tail = flow.walk_block(&item.body, &mut env);
    // The body's tail expression is the return value.
    if let Some(origin) = tail {
        if item.ret.is_some() && !flow.ret_secret && !flow.sanctioned_accessor {
            let line = item
                .body
                .stmts
                .iter()
                .rev()
                .find_map(|s| match s {
                    Stmt::Expr { expr, semi: false } => Some(expr_line(expr)),
                    _ => None,
                })
                .unwrap_or(item.line);
            flow.escape_return(line, &origin);
        }
    }
}

/// Representative source line of an expression (for diagnostics).
fn expr_line(e: &Expr) -> u32 {
    match e {
        Expr::Ident(_, l)
        | Expr::Path(_, l)
        | Expr::Lit(l)
        | Expr::Call { line: l, .. }
        | Expr::Method { line: l, .. }
        | Expr::Field { line: l, .. }
        | Expr::Index { line: l, .. }
        | Expr::Binary { line: l, .. }
        | Expr::Assign { line: l, .. }
        | Expr::If { line: l, .. }
        | Expr::Match { line: l, .. }
        | Expr::While { line: l, .. }
        | Expr::For { line: l, .. }
        | Expr::Return { line: l, .. }
        | Expr::Closure { line: l, .. }
        | Expr::StructLit { line: l, .. }
        | Expr::Macro { line: l, .. }
        | Expr::Unknown(l) => *l,
        Expr::Unary { expr } | Expr::Try { expr } | Expr::Cast { expr } => expr_line(expr),
        Expr::Break { value: Some(v) } => expr_line(v),
        Expr::Break { value: None } => 0,
        Expr::Range { lo: Some(l), .. } => expr_line(l),
        Expr::Range {
            lo: None,
            hi: Some(h),
        } => expr_line(h),
        Expr::Range { lo: None, hi: None } => 0,
        Expr::Loop { body } | Expr::BlockExpr(body) => body.stmts.first().map_or(0, |s| match s {
            Stmt::Let { line, .. } => *line,
            Stmt::Expr { expr, .. } => expr_line(expr),
        }),
        Expr::Tuple { items } => items.first().map_or(0, expr_line),
    }
}

/// Short display name for a receiver expression (for messages).
fn expr_name(e: &Expr) -> String {
    match e {
        Expr::Ident(n, _) => n.clone(),
        Expr::Path(p, _) => p.clone(),
        Expr::Field { name, .. } => name.clone(),
        Expr::Unary { expr } | Expr::Try { expr } | Expr::Cast { expr } => expr_name(expr),
        Expr::Method { recv, .. } => expr_name(recv),
        Expr::Index { base, .. } => expr_name(base),
        _ => "value".to_string(),
    }
}

/// Last path segment of a call's callee, if the callee is a name.
fn callee_name(e: &Expr) -> Option<&str> {
    match e {
        Expr::Ident(n, _) => Some(n),
        Expr::Path(p, _) => p.rsplit("::").next(),
        _ => None,
    }
}

/// True if the callee path rewraps its argument into secret protection
/// (`Secret::new`, `KeyPair::from_secret`, …).
fn callee_rewraps(e: &Expr) -> bool {
    match e {
        Expr::Path(p, _) => {
            let mut segs = p.rsplit("::");
            let last = segs.next().unwrap_or("");
            let qualifier = segs.next().unwrap_or("");
            REWRAPPERS.contains(&last)
                || (REWRAP_TYPES.contains(&qualifier) && matches!(last, "new" | "from"))
        }
        Expr::Ident(n, _) => REWRAPPERS.contains(&n.as_str()),
        _ => false,
    }
}

impl Flow<'_> {
    fn emit(&mut self, line: u32, rule: &'static str, message: String) {
        self.out.push(Diagnostic {
            path: self.rel_path.to_string(),
            line,
            rule,
            message,
            fingerprint: String::new(),
        });
    }

    fn branch(&mut self, line: u32, construct: &str, origin: &str) {
        let fn_name = self.fn_name;
        self.emit(
            line,
            "secret-branch",
            format!(
                "`{construct}` in `{fn_name}` depends on secret `{origin}`: control flow on \
                 secret data is variable-time — rewrite branch-free (ct_select/masking) or \
                 waive with the argument that the value is public at this point"
            ),
        );
    }

    fn escape_return(&mut self, line: u32, origin: &str) {
        let fn_name = self.fn_name;
        let ret = self.ret.unwrap_or("_");
        self.emit(
            line,
            "secret-escape",
            format!(
                "secret `{origin}` leaves `{fn_name}` through return type `{ret}`, which is \
                 not a secret-bearing wrapper — wrap it in `Secret<T>`, declassify it \
                 (hash/exp/encrypt), or waive with the masking argument"
            ),
        );
    }

    fn walk_block(&mut self, b: &Block, env: &mut Env) -> Taint {
        let mut tail = None;
        for s in &b.stmts {
            tail = None;
            match s {
                Stmt::Let {
                    names,
                    ty,
                    init,
                    else_block,
                    line,
                } => {
                    let init_taint = init.as_ref().and_then(|e| self.eval(e, env));
                    // `let Some(x) = tainted else { … }`: whether the
                    // pattern matches — i.e. whether control diverges —
                    // is a function of secret data.
                    if else_block.is_some() {
                        if let Some(origin) = &init_taint {
                            self.branch(*line, "let-else", origin);
                        }
                        if let Some(eb) = else_block {
                            self.walk_block(eb, env);
                        }
                    }
                    let ty_secret = ty.as_deref().is_some_and(type_is_secret);
                    for n in names {
                        if ty_secret || name_is_secret(n) {
                            env.insert(n.clone(), n.clone());
                        } else if let Some(origin) = &init_taint {
                            env.insert(n.clone(), origin.clone());
                        } else {
                            env.remove(n); // rebind to a clean value
                        }
                    }
                }
                Stmt::Expr { expr, semi } => {
                    let t = self.eval(expr, env);
                    if !*semi {
                        tail = t;
                    }
                }
            }
        }
        tail
    }

    /// Evaluates an expression: emits findings for the constructs inside
    /// it and returns its taint.
    fn eval(&mut self, e: &Expr, env: &mut Env) -> Taint {
        match e {
            Expr::Lit(_) | Expr::Unknown(_) => None,
            Expr::Ident(n, _) => {
                if let Some(origin) = env.get(n) {
                    Some(origin.clone())
                } else if name_is_secret(n) {
                    Some(n.clone())
                } else {
                    None
                }
            }
            // Paths name consts/variants/functions — public namespace.
            Expr::Path(_, _) => None,
            Expr::Field { base, name, .. } => {
                let base_taint = self.eval(base, env);
                if name_is_secret(name) {
                    Some(name.clone())
                } else {
                    base_taint
                }
            }
            Expr::Unary { expr } | Expr::Try { expr } | Expr::Cast { expr } => self.eval(expr, env),
            Expr::Binary { lhs, rhs, .. } => {
                let l = self.eval(lhs, env);
                let r = self.eval(rhs, env);
                l.or(r)
            }
            Expr::Range { lo, hi } => {
                let l = lo.as_ref().and_then(|e| self.eval(e, env));
                let r = hi.as_ref().and_then(|e| self.eval(e, env));
                l.or(r)
            }
            Expr::Tuple { items } => {
                let mut taint = None;
                for it in items {
                    let t = self.eval(it, env);
                    taint = taint.or(t);
                }
                taint
            }
            Expr::StructLit { fields, .. } => {
                // Aggregation boundary: field values are walked (for
                // nested findings) but do not taint the aggregate — the
                // type-level rules govern secret-bearing structs.
                for (_, v) in fields {
                    self.eval(v, env);
                }
                None
            }
            Expr::Index { base, index, line } => {
                let base_taint = self.eval(base, env);
                let index_taint = self.eval(index, env);
                if let Some(origin) = &index_taint {
                    let fn_name = self.fn_name;
                    self.emit(
                        *line,
                        "secret-index",
                        format!(
                            "index in `{fn_name}` is derived from secret `{origin}`: the \
                             accessed address leaks through the cache (the classic attack \
                             on comb/wNAF tables) — use a constant-time scan/gather or \
                             waive with why the index is public"
                        ),
                    );
                }
                base_taint.or(index_taint)
            }
            Expr::Call { callee, args, .. } => {
                if callee_rewraps(callee) {
                    self.suppress_escape += 1;
                    for a in args {
                        self.eval(a, env);
                    }
                    self.suppress_escape -= 1;
                    return None;
                }
                let declassifies = callee_name(callee).is_some_and(|n| DECLASSIFIERS.contains(&n));
                if declassifies {
                    self.suppress_escape += 1;
                }
                let mut taint = None;
                for a in args {
                    let t = self.eval(a, env);
                    taint = taint.or(t);
                }
                if declassifies {
                    self.suppress_escape -= 1;
                    return None;
                }
                taint
            }
            Expr::Method {
                recv,
                name,
                args,
                line,
            } => {
                let recv_taint = self.eval(recv, env);
                if EXPOSERS.contains(&name.as_str()) {
                    // The unwrap point: the result is secret material
                    // whatever the receiver is called.
                    let origin = recv_taint.unwrap_or_else(|| expr_name(recv));
                    return Some(origin);
                }
                let declassifies = DECLASSIFIERS.contains(&name.as_str());
                if declassifies {
                    self.suppress_escape += 1;
                }
                let mut taint = recv_taint.clone();
                for a in args {
                    let t = match a {
                        // Iterator-style closure: elements of a secret
                        // collection are secret.
                        Expr::Closure { params, body, .. } => {
                            let mut inner = env.clone();
                            if let Some(origin) = &recv_taint {
                                for p in params {
                                    inner.insert(p.clone(), origin.clone());
                                }
                            } else {
                                for p in params {
                                    inner.remove(p);
                                }
                            }
                            self.eval(body, &mut inner)
                        }
                        _ => self.eval(a, env),
                    };
                    taint = taint.or(t);
                }
                if declassifies {
                    self.suppress_escape -= 1;
                    return None;
                }
                if CLONE_LIKE.contains(&name.as_str()) && self.suppress_escape == 0 {
                    if let Some(origin) = &recv_taint {
                        let fn_name = self.fn_name;
                        self.emit(
                            *line,
                            "secret-escape",
                            format!(
                                "`{name}()` in `{fn_name}` duplicates secret `{origin}` \
                                 outside any `Secret` wrapper — the copy is never wiped; \
                                 move it back under `Secret::new`, declassify it, or waive \
                                 with its lifecycle argument"
                            ),
                        );
                    }
                }
                taint
            }
            Expr::Closure { params, body, .. } => {
                // A bare closure: parameters are unbound (no receiver to
                // inherit from); the body still sees the captures.
                let mut inner = env.clone();
                for p in params {
                    inner.remove(p);
                }
                self.eval(body, &mut inner)
            }
            Expr::Assign {
                target,
                value,
                compound,
                ..
            } => {
                let value_taint = self.eval(value, env);
                match target.as_ref() {
                    Expr::Ident(n, _) => {
                        let existing = env.get(n).cloned();
                        let new_taint = if *compound {
                            value_taint.or(existing)
                        } else {
                            value_taint
                        };
                        match new_taint {
                            Some(origin) => {
                                env.insert(n.clone(), origin);
                            }
                            None => {
                                if !name_is_secret(n) {
                                    env.remove(n);
                                }
                            }
                        }
                    }
                    other => {
                        // Assignment through a place expression — walk it
                        // so tainted indices still fire.
                        self.eval(other, env);
                    }
                }
                None
            }
            Expr::If {
                cond,
                let_bound,
                then,
                els,
                line,
            } => {
                let cond_taint = self.eval(cond, env);
                if let Some(origin) = &cond_taint {
                    let construct = if let_bound.is_empty() { "if" } else { "if let" };
                    self.branch(*line, construct, origin);
                }
                let mut then_env = env.clone();
                if let Some(origin) = &cond_taint {
                    for n in let_bound {
                        then_env.insert(n.clone(), origin.clone());
                    }
                }
                let then_taint = self.walk_block(then, &mut then_env);
                let els_taint = els.as_ref().and_then(|e| self.eval(e, env));
                // A value selected under a secret condition is secret.
                cond_taint.or(then_taint).or(els_taint)
            }
            Expr::While {
                cond,
                let_bound,
                body,
                line,
            } => {
                let cond_taint = self.eval(cond, env);
                if let Some(origin) = &cond_taint {
                    let construct = if let_bound.is_empty() {
                        "while"
                    } else {
                        "while let"
                    };
                    self.branch(*line, construct, origin);
                }
                let mut body_env = env.clone();
                if let Some(origin) = &cond_taint {
                    for n in let_bound {
                        body_env.insert(n.clone(), origin.clone());
                    }
                }
                self.walk_block(body, &mut body_env);
                None
            }
            Expr::For {
                bound,
                iter,
                body,
                line,
            } => {
                let iter_taint = self.eval(iter, env);
                if let Some(origin) = &iter_taint {
                    self.branch(*line, "for", origin);
                }
                let mut body_env = env.clone();
                if let Some(origin) = &iter_taint {
                    for n in bound {
                        body_env.insert(n.clone(), origin.clone());
                    }
                }
                self.walk_block(body, &mut body_env);
                None
            }
            Expr::Loop { body } => {
                let mut body_env = env.clone();
                self.walk_block(body, &mut body_env);
                None
            }
            Expr::Match {
                scrutinee,
                arms,
                line,
            } => {
                let scrut_taint = self.eval(scrutinee, env);
                if let Some(origin) = &scrut_taint {
                    self.branch(*line, "match", origin);
                }
                let mut taint = scrut_taint.clone();
                for arm in arms {
                    let mut arm_env = env.clone();
                    if let Some(origin) = &scrut_taint {
                        for n in &arm.bound {
                            arm_env.insert(n.clone(), origin.clone());
                        }
                    }
                    if let Some(g) = &arm.guard {
                        if let Some(origin) = self.eval(g, &mut arm_env) {
                            self.branch(arm.line, "match guard", &origin);
                        }
                    }
                    let t = self.eval(&arm.body, &mut arm_env);
                    taint = taint.or(t);
                }
                taint
            }
            Expr::BlockExpr(b) => {
                let mut inner = env.clone();
                self.walk_block(b, &mut inner)
            }
            Expr::Return { value, line } => {
                let t = value.as_ref().and_then(|v| self.eval(v, env));
                if let Some(origin) = t {
                    if !self.ret_secret && !self.sanctioned_accessor && self.suppress_escape == 0 {
                        self.escape_return(*line, &origin);
                    }
                }
                None
            }
            Expr::Break { value } => {
                if let Some(v) = value {
                    self.eval(v, env);
                }
                None
            }
            Expr::Macro { name, idents, line } => {
                let mut taint = None;
                for (id, _) in idents {
                    if let Some(origin) = env.get(id).cloned() {
                        // The lexical secret-hygiene rule already flags
                        // registry names inside fmt macros; the dataflow
                        // rule adds the *derived* bindings it cannot see.
                        if FMT_MACROS.contains(&name.as_str())
                            && !name_is_secret(id)
                            && self.suppress_escape == 0
                        {
                            let fn_name = self.fn_name;
                            self.emit(
                                *line,
                                "secret-escape",
                                format!(
                                    "`{name}!` in `{fn_name}` captures `{id}`, which is \
                                     tainted by secret `{origin}` — formatting a \
                                     secret-derived value leaks it; drop it from the \
                                     message or waive with the declassification argument"
                                ),
                            );
                        }
                        taint = taint.or(Some(origin));
                    }
                }
                taint
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn run(src: &str) -> Vec<(u32, &'static str)> {
        let toks = lex(src);
        let fns = parse_file(&toks);
        let mut out = Vec::new();
        for f in &fns {
            check_fn("crates/core/src/x.rs", f, &mut out);
        }
        out.iter().map(|d| (d.line, d.rule)).collect()
    }

    #[test]
    fn two_step_flow_into_if_fires_branch() {
        // The motivating case: a secret flowing through two assignments
        // into an `if` — invisible to token-level rules.
        let d = run("fn f(sk: u64) {\n let a = sk + 1;\n let b = a * 2;\n if b > 0 { g(); }\n}");
        assert_eq!(d, vec![(4, "secret-branch")]);
    }

    #[test]
    fn declassified_flow_is_silent() {
        let d = run(
            "fn f(group: &Group, sk: &Scalar) {\n let y = group.exp_gen(sk);\n if y.is_small() { g(); }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn secret_index_fires() {
        let d = run("fn f(table: &[u8], sk: usize) -> u8 {\n let i = sk & 7;\n table[i]\n}");
        assert_eq!(d.first(), Some(&(3, "secret-index")));
    }

    #[test]
    fn expose_taints_result() {
        let d = run("fn f(s: &Secret<u64>) {\n let v = s.expose();\n if v > &0 { g(); }\n}");
        assert_eq!(d, vec![(3, "secret-branch")]);
    }

    #[test]
    fn clone_of_secret_fires_escape() {
        let d = run("fn f(witness: &Scalar) {\n let w = witness.clone();\n use_it(w);\n}");
        assert_eq!(d, vec![(2, "secret-escape")]);
    }

    #[test]
    fn clone_into_rewrap_is_silent() {
        let d = run("fn f(witness: &Scalar) -> Secret<Scalar> {\n Secret::new(witness.clone())\n}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn tainted_return_fires_escape() {
        let d = run("fn f(sk: &Scalar) -> Scalar {\n sk.double()\n}");
        assert_eq!(d, vec![(2, "secret-escape")]);
    }

    #[test]
    fn secret_return_type_is_silent() {
        let d = run("fn f(sk: Scalar) -> Secret<Scalar> {\n Secret::new(sk)\n}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn match_for_and_while_fire() {
        let d = run(
            "fn f(nonce: u64) {\n match nonce { 0 => a(), _ => b(), }\n \
             for i in 0..nonce { c(i); }\n while nonce > 0 { d(); }\n}",
        );
        assert_eq!(
            d,
            vec![
                (2, "secret-branch"),
                (3, "secret-branch"),
                (4, "secret-branch")
            ]
        );
    }

    #[test]
    fn closure_inherits_receiver_taint() {
        let d = run(
            "fn f(secrets: Vec<Secret<u64>>) {\n let v = secrets.iter().map(|s| if s.odd() { 1 } else { 0 });\n use_it(v);\n}",
        );
        assert_eq!(d, vec![(2, "secret-branch")]);
    }

    #[test]
    fn fmt_macro_on_derived_taint_fires_escape() {
        let d = run(
            "fn f(sk: u64) {\n let digest_input = sk + 1;\n println!(\"{}\", digest_input);\n}",
        );
        assert_eq!(d, vec![(3, "secret-escape")]);
    }

    #[test]
    fn rebinding_to_clean_value_clears_taint() {
        let d = run("fn f(sk: u64) {\n let mut a = sk;\n a = 0;\n if a > 0 { g(); }\n}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn compound_assign_keeps_taint() {
        let d = run("fn f(sk: u64, mut acc: u64) {\n acc += sk;\n if acc > 0 { g(); }\n}");
        assert_eq!(d, vec![(3, "secret-branch")]);
    }

    #[test]
    fn let_else_on_secret_fires() {
        let d = run("fn f(sk: Option<u64>) {\n let Some(v) = sk else { return; };\n use_it(v);\n}");
        assert_eq!(d, vec![(2, "secret-branch")]);
    }

    #[test]
    fn sanctioned_accessor_may_return_taint() {
        let d = run("fn secret_key(sk: &Scalar) -> &Scalar {\n sk\n}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn guard_on_secret_fires() {
        let d = run("fn f(v: u64, sk: u64) {\n match v {\n n if n > sk => a(),\n _ => b(),\n }\n}");
        assert_eq!(d, vec![(3, "secret-branch")]);
    }

    #[test]
    fn ct_select_result_stays_tainted() {
        // ct_select is deliberately NOT a declassifier: selecting between
        // secrets yields a secret.
        let d = run(
            "fn f(sk: u64, a: u64, b: u64) -> u64 {\n let c = ct_select_limb(sk, a, b);\n c\n}",
        );
        assert_eq!(d, vec![(3, "secret-escape")]);
    }

    #[test]
    fn hash_declassifies() {
        let d = run("fn f(sk: &[u8]) -> [u8; 32] {\n sha256(sk)\n}");
        assert!(d.is_empty(), "{d:?}");
    }
}
