//! The four crypto-invariant rules.
//!
//! Each rule is a pure function over the token stream of one file; see
//! `docs/ANALYSIS.md` for the protocol rationale behind every rule and
//! the registries below.

use crate::engine::{matching, Diagnostic};
use crate::lexer::{Tok, TokKind};

/// Everything a rule needs about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub rel_path: &'a str,
    /// Token stream.
    pub toks: &'a [Tok],
    /// Parallel mask: `true` = token is inside test-only code.
    pub test_mask: &'a [bool],
}

impl FileCtx<'_> {
    fn emit(&self, out: &mut Vec<Diagnostic>, line: u32, rule: &'static str, message: String) {
        out.push(Diagnostic {
            path: self.rel_path.to_string(),
            line,
            rule,
            message,
            fingerprint: String::new(),
        });
    }
}

// ---------------------------------------------------------------------------
// Registries (documented in docs/ANALYSIS.md — keep the two in sync).
// ---------------------------------------------------------------------------

/// Types that directly hold raw secret material. Deriving `Debug` on them
/// would print limbs; they must carry a hand-written redacting impl (or
/// wrap their fields in `ppgr_bigint::Secret`).
pub(crate) const SECRET_TYPES: &[&str] = &[
    "KeyPair",
    "SchnorrProver",
    "SenderState",
    "Secret",
    // Offline-precomputed material: a pooled Schnorr nonce, mask pair or
    // key stock is exactly as sensitive as the live value it stands in for
    // (recovering r from a transcript recovers the witness/plaintext; a
    // key stock holds every party's secret exponent outright).
    "SchnorrNonce",
    "MaskPair",
    "KeyStock",
];

/// Identifier names that, by workspace convention, bind secret values:
/// ElGamal secret exponents and shares, Schnorr witnesses and nonces, the
/// initiator's ρ/ρ_j masks, and shuffle permutations. Formatting them or
/// comparing them with `==`/`!=` is forbidden.
pub(crate) const SECRET_IDENTS: &[&str] = &[
    "secret",
    "secret_key",
    "secret_share",
    "witness",
    "nonce",
    "sk",
    "rho",
    "rho_j",
    "key_share",
    "private_key",
    "shuffle_perm",
];

/// Wall-clock identifiers that break the transcript determinism the pooled
/// runtime's bit-identical guarantee rests on. Sanctioned timing modules
/// are exempt — measuring real time is their job.
const AMBIENT_CLOCK: &[&str] = &["SystemTime", "Instant"];

/// Ambient entropy identifiers. Unlike the clock these have **no**
/// sanctioned modules: every random draw in the workspace — including the
/// precompute pool's background refill of offline stocks — must flow from
/// a seeded, injected `Rng`, or a warm session's transcript could never be
/// bit-identical to its cold fallback.
const AMBIENT_ENTROPY: &[&str] = &["thread_rng", "from_entropy", "OsRng"];

/// Modules sanctioned to read the wall clock: the benchmark harness
/// (measures real time by definition), the shared timing ledger, and this
/// analyzer. Ambient *entropy* is not excused here — see
/// [`AMBIENT_ENTROPY`].
const DETERMINISM_SANCTIONED: &[&str] = &[
    "crates/bench/",
    "crates/tidy/",
    "crates/core/src/timing.rs",
    // Deadlines are liveness-only: wall-clock reads here never feed
    // protocol state or randomness (see docs/FAULTS.md).
    "crates/net/src/deadline.rs",
];

/// Crates whose non-test code forms the protocol surface and must be
/// panic-free (typed errors instead).
const PANIC_FREE_CRATES: &[&str] = &[
    "crates/group/",
    "crates/elgamal/",
    "crates/zkp/",
    "crates/dotprod/",
    "crates/smc/",
    "crates/anon/",
    "crates/core/",
    "crates/net/",
];

/// Misbehaviour hooks: the identifiers through which a test scripts an
/// active adversary (byte tampering, per-lane equivocation, forged abort
/// frames, corrupted proofs). They exist *only* so the byzantine matrix
/// can exercise the blame machinery; reachable from ordinary protocol
/// code they would be a built-in backdoor.
pub(crate) const FAULT_HOOKS: &[&str] = &[
    "Tamper",
    "TamperBytes",
    "tamper",
    "equivocate",
    "forge",
    "corrupt_key_proof",
    "bump_response",
    "bump_multi_response",
    "swap_responses",
    "forged_response_bytes",
];

/// Files sanctioned to define (or re-export) the fault-injection surface.
/// The crate roots appear because they declare/re-export the injector
/// module — they may name the hooks, not call them into the protocol.
const FAULT_SURFACE_SANCTIONED: &[&str] = &[
    "crates/net/src/fault.rs",
    "crates/net/src/lib.rs",
    "crates/zkp/src/tamper.rs",
    "crates/zkp/src/lib.rs",
    "crates/core/src/offline.rs",
];

/// Formatting macros through which a secret could reach a log line, a
/// panic message, or a debugger transcript.
pub(crate) const FMT_MACROS: &[&str] = &[
    "format",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "dbg",
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "trace",
    "debug",
    "info",
    "warn",
    "error",
];

// ---------------------------------------------------------------------------
// Rule: headers
// ---------------------------------------------------------------------------

/// Every crate root keeps `#![forbid(unsafe_code)]` and
/// `#![deny(unused_must_use)]`: no unsafe in a from-scratch crypto
/// workspace, and no silently dropped `Result` on the protocol surface.
/// Binary crate roots (`src/main.rs`, `src/bin/*.rs`) are crate roots
/// too — a bench or CLI binary without the headers would quietly reopen
/// both holes for everything it links.
pub fn check_headers(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let is_bin_root = ctx.rel_path.ends_with("src/main.rs")
        || (ctx.rel_path.ends_with(".rs") && ctx.rel_path.contains("src/bin/"));
    if !ctx.rel_path.ends_with("src/lib.rs") && !is_bin_root {
        return;
    }
    for (attr, ident, header) in [
        ("forbid", "unsafe_code", "#![forbid(unsafe_code)]"),
        ("deny", "unused_must_use", "#![deny(unused_must_use)]"),
    ] {
        if !has_inner_lint(ctx.toks, attr, ident) {
            ctx.emit(
                out,
                1,
                "headers",
                format!("crate root is missing the `{header}` lint header"),
            );
        }
    }
}

/// True if the stream contains `#![<attr>(… <ident> …)]`.
fn has_inner_lint(toks: &[Tok], attr: &str, ident: &str) -> bool {
    for i in 0..toks.len() {
        if toks[i].is_punct("#")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("["))
            && toks.get(i + 3).is_some_and(|t| t.is_ident(attr))
        {
            if let Some(end) = matching(toks, i + 2, "[", "]") {
                if toks[i + 4..end].iter().any(|t| t.is_ident(ident)) {
                    return true;
                }
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule: determinism
// ---------------------------------------------------------------------------

/// All protocol randomness must flow from an injected `Rng` — everywhere,
/// sanctioned modules included; wall-clock reads are confined to
/// sanctioned timing modules.
pub fn check_determinism(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let clock_sanctioned = DETERMINISM_SANCTIONED
        .iter()
        .any(|p| ctx.rel_path.starts_with(p) || ctx.rel_path.ends_with(p));
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.test_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if AMBIENT_ENTROPY.contains(&t.text.as_str()) {
            ctx.emit(
                out,
                t.line,
                "determinism",
                format!(
                    "`{}` is ambient entropy: every draw — offline precompute refills \
                     included — must come from a seeded, injected Rng, or warm and cold \
                     transcripts diverge",
                    t.text
                ),
            );
        } else if !clock_sanctioned && AMBIENT_CLOCK.contains(&t.text.as_str()) {
            ctx.emit(
                out,
                t.line,
                "determinism",
                format!(
                    "`{}` breaks transcript determinism: wall-clock reads belong in \
                     sanctioned timing modules",
                    t.text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: panic
// ---------------------------------------------------------------------------

/// Non-test protocol code must not contain `unwrap()`, `expect(`,
/// `panic!`, `unreachable!`, `todo!`, or `unimplemented!`.
pub fn check_panic(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !PANIC_FREE_CRATES
        .iter()
        .any(|p| ctx.rel_path.starts_with(p))
    {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.test_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let next = ctx.toks.get(i + 1);
        let method_panic =
            matches!(t.text.as_str(), "unwrap" | "expect") && next.is_some_and(|n| n.is_punct("("));
        let macro_panic = matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && next.is_some_and(|n| n.is_punct("!"));
        if method_panic || macro_panic {
            ctx.emit(
                out,
                t.line,
                "panic",
                format!(
                    "`{}` on the protocol surface: return a typed error \
                     (ProtocolError/GroupError/…) or waive a provably-unreachable case",
                    t.text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: fault-surface
// ---------------------------------------------------------------------------

/// Misbehaviour hooks stay pinned to the fault-injection surface: non-test
/// code outside the sanctioned injector files must not touch them. Tests
/// (the byzantine matrix, pool fixtures) are exempt like everywhere else.
pub fn check_fault_surface(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if FAULT_SURFACE_SANCTIONED.contains(&ctx.rel_path) {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.test_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if FAULT_HOOKS.contains(&t.text.as_str()) {
            ctx.emit(
                out,
                t.line,
                "fault-surface",
                format!(
                    "`{}` is a scripted-misbehaviour hook: it belongs to the \
                     fault-injection surface (crates/net/src/fault.rs, \
                     crates/zkp/src/tamper.rs) and test code only — reachable \
                     from the protocol path it is a backdoor",
                    t.text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: secret-hygiene
// ---------------------------------------------------------------------------

/// Secrets must not reach `Debug`/`Display` output or variable-time
/// comparisons.
pub fn check_secret_hygiene(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    check_derive_debug(ctx, out);
    check_format_leaks(ctx, out);
    check_variable_time_eq(ctx, out);
}

/// Forbids `#[derive(… Debug …)]` on registry types: a derived impl prints
/// every limb of the secret.
fn check_derive_debug(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.test_mask[i]
            || !toks[i].is_ident("derive")
            || i < 2
            || !toks[i - 1].is_punct("[")
            || !toks[i - 2].is_punct("#")
            || !toks.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            continue;
        }
        let Some(close) = matching(toks, i + 1, "(", ")") else {
            continue;
        };
        if !toks[i + 2..close].iter().any(|t| t.is_ident("Debug")) {
            continue;
        }
        // Find the struct/enum this derive decorates.
        let Some(name) = decorated_type_name(toks, close + 1) else {
            continue;
        };
        if SECRET_TYPES.contains(&name.as_str()) {
            ctx.emit(
                out,
                toks[i].line,
                "secret-hygiene",
                format!(
                    "`{name}` holds secret material: derive(Debug) would print its limbs — \
                     write a redacting impl (or wrap fields in `Secret<T>`)"
                ),
            );
        }
    }
}

/// The `struct`/`enum` name following an attribute ending at `start - 1`,
/// skipping further attributes and visibility modifiers.
fn decorated_type_name(toks: &[Tok], start: usize) -> Option<String> {
    let mut i = start;
    // `]` that closes the derive attribute.
    if toks.get(i).is_some_and(|t| t.is_punct("]")) {
        i += 1;
    }
    loop {
        let t = toks.get(i)?;
        if t.is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            i = matching(toks, i + 1, "[", "]")? + 1;
            continue;
        }
        if t.is_ident("pub") {
            i += 1;
            if toks.get(i).is_some_and(|t| t.is_punct("(")) {
                i = matching(toks, i, "(", ")")? + 1;
            }
            continue;
        }
        if t.is_ident("struct") || t.is_ident("enum") || t.is_ident("union") {
            let name = toks.get(i + 1)?;
            if name.kind == TokKind::Ident {
                return Some(name.text.clone());
            }
            return None;
        }
        return None;
    }
}

/// Flags secret identifiers appearing inside formatting macros, either as
/// arguments or as `{name}` / `{name:?}` inline captures in the format
/// string.
fn check_format_leaks(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.test_mask[i]
            || !(toks[i].kind == TokKind::Ident && FMT_MACROS.contains(&toks[i].text.as_str()))
            || !toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
        {
            continue;
        }
        let Some(open) = toks.get(i + 2) else {
            continue;
        };
        let (open_t, close_t) = match open.text.as_str() {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => continue,
        };
        let Some(close) = matching(toks, i + 2, open_t, close_t) else {
            continue;
        };
        for t in &toks[i + 3..close] {
            match t.kind {
                TokKind::Ident if SECRET_IDENTS.contains(&t.text.as_str()) => {
                    ctx.emit(
                        out,
                        t.line,
                        "secret-hygiene",
                        format!(
                            "secret `{}` reaches a `{}!` formatting macro — secrets must never \
                             be formatted or logged",
                            t.text, toks[i].text
                        ),
                    );
                }
                TokKind::Str => {
                    for s in SECRET_IDENTS {
                        if t.text.contains(&format!("{{{s}}}"))
                            || t.text.contains(&format!("{{{s}:"))
                        {
                            ctx.emit(
                                out,
                                t.line,
                                "secret-hygiene",
                                format!(
                                    "secret `{s}` captured in a `{}!` format string — secrets \
                                     must never be formatted or logged",
                                    toks[i].text
                                ),
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// Flags `==` / `!=` whose operand chain touches a secret identifier:
/// short-circuiting equality is variable-time, which leaks where the first
/// differing limb is. Use `ct_eq` from `ppgr-bigint`.
fn check_variable_time_eq(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.test_mask[i] || !(toks[i].is_punct("==") || toks[i].is_punct("!=")) {
            continue;
        }
        let mut offender: Option<&str> = None;
        // Walk outward over tokens that can belong to an operand
        // expression; stop at anything else (statement/block boundaries).
        let chain_tok = |t: &Tok| -> bool {
            matches!(t.kind, TokKind::Ident | TokKind::Num)
                || matches!(
                    t.text.as_str(),
                    "." | "(" | ")" | "[" | "]" | "&" | "*" | ":" | "::" | "?"
                )
        };
        for j in (i.saturating_sub(8)..i).rev() {
            if !chain_tok(&toks[j]) {
                break;
            }
            if toks[j].kind == TokKind::Ident && SECRET_IDENTS.contains(&toks[j].text.as_str()) {
                offender = Some(toks[j].text.as_str());
            }
        }
        if offender.is_none() {
            for t in toks.iter().skip(i + 1).take(8) {
                if !chain_tok(t) {
                    break;
                }
                if t.kind == TokKind::Ident && SECRET_IDENTS.contains(&t.text.as_str()) {
                    offender = Some(t.text.as_str());
                }
            }
        }
        if let Some(name) = offender {
            ctx.emit(
                out,
                toks[i].line,
                "secret-hygiene",
                format!(
                    "variable-time `{}` on secret `{name}` — short-circuit equality leaks the \
                     first differing limb; use `ct_eq`",
                    toks[i].text
                ),
            );
        }
    }
}
