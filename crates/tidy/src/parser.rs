//! A lightweight structural parser over the [`lexer`](crate::lexer)
//! token stream — just enough shape for dataflow analysis: function
//! items, blocks, `let`/assignment, the control-flow constructs
//! (`if`/`match`/`while`/`for`/`loop`), `?`, short-circuit operators,
//! calls, method calls, field access, and indexing.
//!
//! It is **not** a Rust parser. Generic arguments, lifetimes, trait
//! bounds, and attributes are skipped; types are kept only as flattened
//! text (enough to ask "does this mention `Secret`"); patterns are
//! reduced to the identifiers they bind. Anything the parser does not
//! understand degrades to [`Expr::Unknown`] and the scan continues.
//!
//! Like the lexer, the parser is total: it never panics, whatever token
//! stream it is fed (pinned by `tests/parser_total.rs`). Totality is
//! enforced by two mechanisms: every parse function consumes at least
//! one token before recursing or returning, and recursion carries an
//! explicit depth budget — when it runs out, the parser consumes a
//! single token and yields [`Expr::Unknown`] instead of recursing.

use crate::lexer::{Tok, TokKind};

/// Recursion budget for nested expressions. Beyond this depth the parser
/// degrades to [`Expr::Unknown`]; real workspace code nests far shallower,
/// and proptest soup (`"((((("…`) must not overflow the stack.
const MAX_DEPTH: u32 = 64;

/// One `fn` item found anywhere in the file (top level, `impl` blocks,
/// or nested inside another function — each gets its own entry).
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Index of the `fn` token in the lexed stream (for test-mask lookup).
    pub tok_index: usize,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Flattened return-type text (tokens joined with spaces), if any.
    pub ret: Option<String>,
    /// Function body.
    pub body: Block,
}

/// One parameter: the names its pattern binds plus flattened type text.
#[derive(Debug)]
pub struct Param {
    /// Identifiers bound by the parameter pattern (usually one).
    pub names: Vec<String>,
    /// Flattened type text (`"& mut Secret < Scalar >"`); `"Self"` for
    /// `self` receivers.
    pub ty: String,
}

/// A `{ … }` block: a statement list (the tail expression, if any, is the
/// final [`Stmt::Expr`] with `semi == false`).
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat>(: <ty>)? (= <init>)? (else { … })?;`
    Let {
        /// Identifiers the pattern binds.
        names: Vec<String>,
        /// Flattened type annotation, if present.
        ty: Option<String>,
        /// Initializer, if present.
        init: Option<Expr>,
        /// `let … else { … }` diverging block, if present.
        else_block: Option<Block>,
        /// 1-based line of the `let`.
        line: u32,
    },
    /// An expression statement; `semi` records whether it was terminated
    /// by `;` (the block tail is the last statement with `semi == false`).
    Expr {
        /// The expression.
        expr: Expr,
        /// Whether a `;` followed.
        semi: bool,
    },
}

/// An expression, reduced to what taint analysis needs.
#[derive(Debug)]
pub enum Expr {
    /// A plain identifier (including `self`).
    Ident(String, u32),
    /// A `::`-joined path (`"a::b::c"`, turbofish stripped).
    Path(String, u32),
    /// Any literal (number, string, char, lifetime).
    Lit(u32),
    /// `callee(args…)`
    Call {
        /// Callee expression (usually a path).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `recv.name(args…)`
    Method {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `base.name` (also numeric tuple fields, name = `"0"`).
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        name: String,
        /// 1-based line.
        line: u32,
    },
    /// `base[index]`
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// Prefix `&`/`&mut`/`*`/`!`/`-`.
    Unary {
        /// Operand.
        expr: Box<Expr>,
    },
    /// `lhs <op> rhs` for every binary operator (incl. `&&`/`||`).
    Binary {
        /// Operator text.
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `target = value` and compound assignments (`+=`, `<<=`, …).
    Assign {
        /// Assignment target.
        target: Box<Expr>,
        /// Assigned value.
        value: Box<Expr>,
        /// True for compound (`op=`) forms, which read the target too.
        compound: bool,
        /// 1-based line.
        line: u32,
    },
    /// `if cond { … } (else …)?` — `if let` records the bound names.
    If {
        /// Condition (for `if let`, the scrutinee).
        cond: Box<Expr>,
        /// Names bound by an `if let` pattern (empty otherwise).
        let_bound: Vec<String>,
        /// Then-block.
        then: Block,
        /// Else branch: a block or a chained `if`.
        els: Option<Box<Expr>>,
        /// 1-based line of the `if`.
        line: u32,
    },
    /// `match scrutinee { arms… }`
    Match {
        /// Scrutinee.
        scrutinee: Box<Expr>,
        /// Arms in order.
        arms: Vec<Arm>,
        /// 1-based line of the `match`.
        line: u32,
    },
    /// `while cond { … }` — `while let` records the bound names.
    While {
        /// Condition (for `while let`, the scrutinee).
        cond: Box<Expr>,
        /// Names bound by a `while let` pattern (empty otherwise).
        let_bound: Vec<String>,
        /// Loop body.
        body: Block,
        /// 1-based line.
        line: u32,
    },
    /// `for pat in iter { … }`
    For {
        /// Names bound by the loop pattern.
        bound: Vec<String>,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
        /// 1-based line.
        line: u32,
    },
    /// `loop { … }`
    Loop {
        /// Loop body.
        body: Block,
    },
    /// A nested `{ … }` block in expression position.
    BlockExpr(Block),
    /// `return (value)?`
    Return {
        /// Returned value, if any.
        value: Option<Box<Expr>>,
        /// 1-based line.
        line: u32,
    },
    /// `break (value)?` / `continue` (value only for `break`).
    Break {
        /// Break value, if any.
        value: Option<Box<Expr>>,
    },
    /// `expr?`
    Try {
        /// Inner expression.
        expr: Box<Expr>,
    },
    /// `expr as Type` (type text dropped).
    Cast {
        /// Inner expression.
        expr: Box<Expr>,
    },
    /// `|params| body` / `move |params| body`
    Closure {
        /// Parameter names.
        params: Vec<String>,
        /// Closure body.
        body: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// Tuple or array literal (`(a, b)`, `[a, b]`, `[x; n]`).
    Tuple {
        /// Element expressions.
        items: Vec<Expr>,
    },
    /// `Path { field: expr, … }`
    StructLit {
        /// Struct path text.
        path: String,
        /// `(field-name, value)` pairs; shorthand fields get an
        /// [`Expr::Ident`] of the same name.
        fields: Vec<(String, Expr)>,
        /// 1-based line.
        line: u32,
    },
    /// `lo .. hi` / `lo ..= hi` (either side optional).
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
    },
    /// `name!(…)` — contents are not parsed; the identifiers inside are
    /// collected for taint inspection.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Identifier tokens appearing inside the delimiters.
        idents: Vec<(String, u32)>,
        /// 1-based line.
        line: u32,
    },
    /// Anything the parser could not shape; the token is consumed and
    /// analysis continues.
    Unknown(u32),
}

/// One `match` arm.
#[derive(Debug)]
pub struct Arm {
    /// Identifiers the arm pattern binds.
    pub bound: Vec<String>,
    /// Guard expression (`pat if guard =>`), if present.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
    /// 1-based line of the pattern.
    pub line: u32,
}

/// Keywords that begin an item the statement parser skips wholesale.
const ITEM_KEYWORDS: &[&str] = &[
    "struct",
    "enum",
    "union",
    "impl",
    "trait",
    "mod",
    "use",
    "static",
    "const",
    "type",
    "extern",
    "macro_rules",
];

/// Words never collected as pattern bindings.
const NON_BINDING: &[&str] = &[
    "mut", "ref", "box", "self", "Self", "true", "false", "_", "if", "in",
];

/// Names captured inline by a format string: for each `{…}` hole, the
/// leading identifier (terminated by `}`, `:`, or `.`) if there is one.
/// `{{` escapes and positional/numeric holes yield nothing. Treating
/// every string inside a macro as a format string over-collects, but a
/// non-format string contributes names that are almost never bound — and
/// over-collection only makes the taint analysis more conservative.
fn inline_format_captures(lit: &str) -> Vec<String> {
    let mut out = Vec::new();
    let chars: Vec<char> = lit.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] != '{' {
            i += 1;
            continue;
        }
        if chars.get(i + 1) == Some(&'{') {
            i += 2; // escaped `{{`
            continue;
        }
        i += 1;
        let start = i;
        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
        let name: String = chars[start..i].iter().collect();
        let terminated = matches!(chars.get(i), Some('}') | Some(':') | Some('.'));
        let is_ident = name
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_');
        if terminated && is_ident {
            out.push(name);
        }
    }
    out
}

/// Parses every `fn` item in the token stream, including functions nested
/// inside other functions (each gets its own [`FnItem`]).
pub fn parse_file(toks: &[Tok]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            if let Some((item, body_open)) = parse_fn(toks, i) {
                // Resume just *inside* the body so nested `fn`s are found
                // and parsed as their own items too.
                i = body_open + 1;
                fns.push(item);
                continue;
            }
        }
        i += 1;
    }
    fns
}

/// Parses the `fn` starting at `start` (which must hold the `fn` token).
/// Returns the item plus the index of its body-opening `{`, or `None` for
/// bodyless declarations (trait methods) and unparseable signatures.
fn parse_fn(toks: &[Tok], start: usize) -> Option<(FnItem, usize)> {
    let name_tok = toks.get(start + 1)?;
    let mut i = start + 2;
    // Generic parameters: skip balanced `<…>`. `->`/`=>`/`<=`/`>=` are
    // single tokens, so only bare `<`/`>` move the depth.
    if toks.get(i).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i64;
        while i < toks.len() {
            if toks[i].is_punct("<") {
                depth += 1;
            } else if toks[i].is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            } else if toks[i].is_punct("{") || toks[i].is_punct(";") {
                return None; // signature never closed its generics
            }
            i += 1;
        }
    }
    if !toks.get(i).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    let params_close = crate::engine::matching(toks, i, "(", ")")?;
    let params = parse_params(&toks[i + 1..params_close]);
    i = params_close + 1;
    // Return type: everything up to the body `{`, a `where` clause, or `;`.
    let mut ret = None;
    if toks.get(i).is_some_and(|t| t.is_punct("->")) {
        i += 1;
        let ret_start = i;
        while i < toks.len()
            && !toks[i].is_punct("{")
            && !toks[i].is_punct(";")
            && !toks[i].is_ident("where")
        {
            i += 1;
        }
        ret = Some(flatten(&toks[ret_start..i]));
    }
    // `where` clause: skip to the body.
    if toks.get(i).is_some_and(|t| t.is_ident("where")) {
        while i < toks.len() && !toks[i].is_punct("{") && !toks[i].is_punct(";") {
            i += 1;
        }
    }
    if !toks.get(i).is_some_and(|t| t.is_punct("{")) {
        return None; // bodyless declaration
    }
    let body_open = i;
    let mut p = Parser {
        toks,
        pos: body_open,
    };
    let body = p.parse_block(MAX_DEPTH);
    Some((
        FnItem {
            name: name_tok.text.clone(),
            line: toks[start].line,
            tok_index: start,
            params,
            ret,
            body,
        },
        body_open,
    ))
}

/// Splits a parameter-list token range at top-level commas and extracts
/// `(bound-names, type-text)` per parameter.
fn parse_params(toks: &[Tok]) -> Vec<Param> {
    let mut params = Vec::new();
    for group in split_top_level(toks, ",") {
        if group.is_empty() {
            continue;
        }
        // First top-level single `:` separates pattern from type.
        let mut depth = 0i64;
        let mut colon = None;
        for (j, t) in group.iter().enumerate() {
            match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                ":" if depth == 0 && t.kind == TokKind::Punct => {
                    colon = Some(j);
                    break;
                }
                _ => {}
            }
        }
        match colon {
            Some(c) => params.push(Param {
                names: pattern_bindings(&group[..c]),
                ty: flatten(&group[c + 1..]),
            }),
            None => {
                // `self` / `&self` / `&mut self`.
                if group.iter().any(|t| t.is_ident("self")) {
                    params.push(Param {
                        names: vec!["self".to_string()],
                        ty: "Self".to_string(),
                    });
                }
            }
        }
    }
    params
}

/// Splits `toks` at top-level occurrences of the punct `sep` (depth over
/// `(`/`[`/`{`/`<`).
fn split_top_level<'a>(toks: &'a [Tok], sep: &str) -> Vec<&'a [Tok]> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    for (j, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            s if s == sep && depth == 0 => {
                out.push(&toks[start..j]);
                start = j + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        out.push(&toks[start..]);
    }
    out
}

/// The identifiers a pattern fragment binds: lowercase-start identifiers
/// that are not keywords and not path segments (`a::b`).
fn pattern_bindings(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    for (j, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let starts_lower = t
            .text
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_');
        if !starts_lower || NON_BINDING.contains(&t.text.as_str()) || t.text == "_" {
            continue;
        }
        let path_adjacent = (j > 0 && toks[j - 1].is_punct("::"))
            || toks.get(j + 1).is_some_and(|n| n.is_punct("::"));
        if path_adjacent {
            continue;
        }
        if !out.contains(&t.text) {
            out.push(t.text.clone());
        }
    }
    out
}

/// Joins token texts with single spaces (flattened type text).
fn flatten(toks: &[Tok]) -> String {
    let mut s = String::new();
    for t in toks {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&t.text);
    }
    s
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, n: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + n)
    }

    fn line(&self) -> u32 {
        self.peek()
            .or_else(|| self.toks.last())
            .map_or(0, |t| t.line)
    }

    fn at_punct(&self, p: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(p))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(s))
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes one token and yields `Unknown` — the universal fallback;
    /// guarantees progress.
    fn unknown(&mut self) -> Expr {
        let line = self.line();
        self.bump();
        Expr::Unknown(line)
    }

    /// Skips tokens through the matching close bracket (the open bracket
    /// must be the current token). Collects any identifier tokens seen.
    fn skip_balanced(&mut self, open: &str, close: &str, idents: &mut Vec<(String, u32)>) {
        let mut depth = 0i64;
        while let Some(t) = self.peek() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth <= 0 {
                    self.pos += 1;
                    return;
                }
            } else if t.kind == TokKind::Ident {
                idents.push((t.text.clone(), t.line));
            } else if t.kind == TokKind::Str {
                // Inline format captures (`"x = {name}"`, `"{name:08x}"`)
                // name bindings from inside the literal — surface them so
                // the taint rules see `println!("{sk}")` like
                // `println!("{}", sk)`.
                let line = t.line;
                for cap in inline_format_captures(&t.text) {
                    idents.push((cap, line));
                }
            }
            self.pos += 1;
        }
    }

    /// Parses a `{ … }` block. The current token must be `{` (if not, an
    /// empty block is returned without consuming anything).
    fn parse_block(&mut self, depth: u32) -> Block {
        let mut block = Block::default();
        if !self.eat_punct("{") {
            return block;
        }
        if depth == 0 {
            // Out of budget: consume the block blindly so the caller
            // still makes progress.
            let mut sink = Vec::new();
            self.pos -= 1;
            self.skip_balanced("{", "}", &mut sink);
            return block;
        }
        while let Some(t) = self.peek() {
            if t.is_punct("}") {
                self.pos += 1;
                break;
            }
            if t.is_punct(";") {
                self.pos += 1;
                continue;
            }
            // Attributes on statements: skip.
            if t.is_punct("#") && self.peek_at(1).is_some_and(|n| n.is_punct("[")) {
                self.pos += 1;
                let mut sink = Vec::new();
                self.skip_balanced("[", "]", &mut sink);
                continue;
            }
            if t.is_ident("let") {
                let stmt = self.parse_let(depth - 1);
                block.stmts.push(stmt);
                continue;
            }
            if t.kind == TokKind::Ident && ITEM_KEYWORDS.contains(&t.text.as_str()) {
                self.skip_item();
                continue;
            }
            if t.is_ident("fn") {
                // Nested fn: skipped here; `parse_file` finds it again and
                // parses it as its own item.
                self.skip_item();
                continue;
            }
            let before = self.pos;
            let expr = self.parse_expr(depth - 1, true);
            let semi = self.eat_punct(";");
            block.stmts.push(Stmt::Expr { expr, semi });
            if self.pos == before {
                // Defensive: an expression must consume tokens; if it ever
                // did not, drop one to avoid looping.
                self.pos += 1;
            }
        }
        block
    }

    /// Skips one item (to its `;` or through its balanced `{ … }` body).
    fn skip_item(&mut self) {
        let mut sink = Vec::new();
        while let Some(t) = self.peek() {
            if t.is_punct(";") {
                self.pos += 1;
                return;
            }
            if t.is_punct("{") {
                self.skip_balanced("{", "}", &mut sink);
                return;
            }
            if t.is_punct("}") {
                return; // enclosing block closes — malformed item
            }
            self.pos += 1;
        }
    }

    /// Parses `let <pat>(: <ty>)? (= <init>)? (else { … })? ;`.
    fn parse_let(&mut self, depth: u32) -> Stmt {
        let line = self.line();
        self.bump(); // `let`
                     // Pattern: up to a top-level `:`, `=`, or `;`.
        let pat_start = self.pos;
        let mut pat_depth = 0i64;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" | "<" => pat_depth += 1,
                    ")" | "]" | "}" | ">" => {
                        if pat_depth == 0 {
                            break; // enclosing bracket — malformed
                        }
                        pat_depth -= 1;
                    }
                    ":" | "=" | ";" if pat_depth == 0 => break,
                    _ => {}
                }
            }
            self.pos += 1;
        }
        let names = pattern_bindings(&self.toks[pat_start..self.pos]);
        // Optional type annotation.
        let mut ty = None;
        if self.eat_punct(":") {
            let ty_start = self.pos;
            let mut ty_depth = 0i64;
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "<" => ty_depth += 1,
                        ")" | "]" => {
                            if ty_depth == 0 {
                                break;
                            }
                            ty_depth -= 1;
                        }
                        ">" => ty_depth -= 1,
                        "=" | ";" if ty_depth <= 0 => break,
                        "}" => break,
                        _ => {}
                    }
                }
                self.pos += 1;
            }
            ty = Some(flatten(&self.toks[ty_start..self.pos]));
        }
        // Optional initializer.
        let mut init = None;
        if self.eat_punct("=") {
            init = Some(self.parse_expr(depth, true));
        }
        // Optional `else { … }` (let-else).
        let mut else_block = None;
        if self.at_ident("else") {
            self.bump();
            if self.at_punct("{") {
                else_block = Some(self.parse_block(depth));
            }
        }
        self.eat_punct(";");
        Stmt::Let {
            names,
            ty,
            init,
            else_block,
            line,
        }
    }

    /// Full expression parse (assignment level).
    fn parse_expr(&mut self, depth: u32, allow_struct: bool) -> Expr {
        if depth == 0 {
            return self.unknown();
        }
        let line = self.line();
        let lhs = self.parse_range(depth - 1, allow_struct);
        // Plain assignment.
        if self.at_punct("=") {
            self.bump();
            let value = self.parse_expr(depth - 1, allow_struct);
            return Expr::Assign {
                target: Box::new(lhs),
                value: Box::new(value),
                compound: false,
                line,
            };
        }
        // Compound assignment: `<op> =` as adjacent tokens, plus the
        // shift forms `< <=` / `> >=` the lexer produces for `<<=`/`>>=`.
        let compound = match (self.peek(), self.peek_at(1)) {
            (Some(a), Some(b))
                if a.kind == TokKind::Punct
                    && matches!(
                        a.text.as_str(),
                        "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
                    )
                    && b.is_punct("=") =>
            {
                Some(2)
            }
            (Some(a), Some(b))
                if (a.is_punct("<") && b.is_punct("<="))
                    || (a.is_punct(">") && b.is_punct(">=")) =>
            {
                Some(2)
            }
            _ => None,
        };
        if let Some(n) = compound {
            self.pos += n;
            let value = self.parse_expr(depth - 1, allow_struct);
            return Expr::Assign {
                target: Box::new(lhs),
                value: Box::new(value),
                compound: true,
                line,
            };
        }
        lhs
    }

    /// Range level: `a .. b`, `a ..= b`, `..`, `.. b`.
    fn parse_range(&mut self, depth: u32, allow_struct: bool) -> Expr {
        if depth == 0 {
            return self.unknown();
        }
        // Prefix range.
        if self.at_punct(".") && self.peek_at(1).is_some_and(|t| t.is_punct(".")) {
            self.pos += 2;
            self.eat_punct("=");
            let hi = if self.range_bound_follows() {
                Some(Box::new(self.parse_or(depth - 1, allow_struct)))
            } else {
                None
            };
            return Expr::Range { lo: None, hi };
        }
        let lo = self.parse_or(depth - 1, allow_struct);
        if self.at_punct(".") && self.peek_at(1).is_some_and(|t| t.is_punct(".")) {
            self.pos += 2;
            self.eat_punct("=");
            let hi = if self.range_bound_follows() {
                Some(Box::new(self.parse_or(depth - 1, allow_struct)))
            } else {
                None
            };
            return Expr::Range {
                lo: Some(Box::new(lo)),
                hi,
            };
        }
        lo
    }

    /// Whether the current token can begin a range bound.
    fn range_bound_follows(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => {
                !(t.is_punct("{")
                    || t.is_punct("}")
                    || t.is_punct(")")
                    || t.is_punct("]")
                    || t.is_punct(",")
                    || t.is_punct(";")
                    || t.is_punct("=>"))
            }
        }
    }

    fn parse_or(&mut self, depth: u32, allow_struct: bool) -> Expr {
        self.parse_binary_level(depth, allow_struct, 0)
    }

    /// Binary-operator precedence climbing. Levels (loosest first):
    /// `||`, `&&`, comparisons, `|`, `^`, `&`, shifts, `+ -`, `* / %`.
    fn parse_binary_level(&mut self, depth: u32, allow_struct: bool, level: usize) -> Expr {
        if depth == 0 {
            return self.unknown();
        }
        const LEVELS: &[&[&str]] = &[
            &["||"],
            &["&&"],
            &["==", "!=", "<", ">", "<=", ">="],
            &["|"],
            &["^"],
            &["&"],
            &["<<", ">>"], // assembled from adjacent `<`/`>` below
            &["+", "-"],
            &["*", "/", "%"],
        ];
        if level >= LEVELS.len() {
            return self.parse_unary(depth - 1, allow_struct);
        }
        let mut lhs = self.parse_binary_level(depth - 1, allow_struct, level + 1);
        loop {
            let line = self.line();
            // Shift operators arrive as two adjacent tokens.
            if LEVELS[level].contains(&"<<") {
                let double = match (self.peek(), self.peek_at(1)) {
                    (Some(a), Some(b)) if a.is_punct("<") && b.is_punct("<") => Some("<<"),
                    (Some(a), Some(b)) if a.is_punct(">") && b.is_punct(">") => Some(">>"),
                    _ => None,
                };
                if let Some(op) = double {
                    self.pos += 2;
                    let rhs = self.parse_binary_level(depth - 1, allow_struct, level + 1);
                    lhs = Expr::Binary {
                        op: op.to_string(),
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        line,
                    };
                    continue;
                }
                return lhs;
            }
            let Some(t) = self.peek() else { return lhs };
            if t.kind != TokKind::Punct || !LEVELS[level].contains(&t.text.as_str()) {
                return lhs;
            }
            // Compound assignment (`+=` arrives as `+` `=`; `<<=` as `<`
            // `<=`): leave it for the assignment level.
            let next = self.peek_at(1);
            let is_compound_assign = next.is_some_and(|n| n.is_punct("="))
                || (t.is_punct("<") && next.is_some_and(|n| n.is_punct("<=")))
                || (t.is_punct(">") && next.is_some_and(|n| n.is_punct(">=")));
            if is_compound_assign {
                return lhs;
            }
            let op = t.text.clone();
            self.pos += 1;
            let rhs = self.parse_binary_level(depth - 1, allow_struct, level + 1);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
    }

    fn parse_unary(&mut self, depth: u32, allow_struct: bool) -> Expr {
        if depth == 0 {
            return self.unknown();
        }
        let Some(t) = self.peek() else {
            return self.unknown();
        };
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "&" | "*" | "!" | "-" => {
                    self.pos += 1;
                    if self.at_ident("mut") {
                        self.pos += 1;
                    }
                    let inner = self.parse_unary(depth - 1, allow_struct);
                    return Expr::Unary {
                        expr: Box::new(inner),
                    };
                }
                // `&&x` — a double reference, not the and-operator.
                "&&" => {
                    self.pos += 1;
                    if self.at_ident("mut") {
                        self.pos += 1;
                    }
                    let inner = self.parse_unary(depth - 1, allow_struct);
                    return Expr::Unary {
                        expr: Box::new(inner),
                    };
                }
                _ => {}
            }
        }
        self.parse_postfix(depth - 1, allow_struct)
    }

    fn parse_postfix(&mut self, depth: u32, allow_struct: bool) -> Expr {
        if depth == 0 {
            return self.unknown();
        }
        let mut expr = self.parse_primary(depth - 1, allow_struct);
        loop {
            let line = self.line();
            if self.at_punct("?") {
                self.pos += 1;
                expr = Expr::Try {
                    expr: Box::new(expr),
                };
                continue;
            }
            if self.at_punct("(") {
                let args = self.parse_args(depth - 1);
                expr = Expr::Call {
                    callee: Box::new(expr),
                    args,
                    line,
                };
                continue;
            }
            if self.at_punct("[") {
                self.pos += 1;
                let index = self.parse_expr(depth - 1, true);
                // Recover to the closing bracket.
                let mut sink = Vec::new();
                if !self.eat_punct("]") {
                    self.pos = self.pos.saturating_sub(1);
                    self.skip_balanced("[", "]", &mut sink);
                }
                expr = Expr::Index {
                    base: Box::new(expr),
                    index: Box::new(index),
                    line,
                };
                continue;
            }
            if self.at_ident("as") {
                self.bump();
                self.skip_type();
                expr = Expr::Cast {
                    expr: Box::new(expr),
                };
                continue;
            }
            if self.at_punct(".") {
                // `..` is a range — leave it for the range level.
                if self.peek_at(1).is_some_and(|t| t.is_punct(".")) {
                    return expr;
                }
                match self.peek_at(1) {
                    Some(n) if n.kind == TokKind::Ident => {
                        let name = n.text.clone();
                        self.pos += 2;
                        // Turbofish: `.collect::<Vec<_>>()`.
                        if self.at_punct("::") {
                            self.pos += 1;
                            if self.at_punct("<") {
                                self.skip_angle_brackets();
                            }
                        }
                        if self.at_punct("(") {
                            let args = self.parse_args(depth - 1);
                            expr = Expr::Method {
                                recv: Box::new(expr),
                                name,
                                args,
                                line,
                            };
                        } else {
                            expr = Expr::Field {
                                base: Box::new(expr),
                                name,
                                line,
                            };
                        }
                        continue;
                    }
                    Some(n) if n.kind == TokKind::Num => {
                        let name = n.text.clone();
                        self.pos += 2;
                        expr = Expr::Field {
                            base: Box::new(expr),
                            name,
                            line,
                        };
                        continue;
                    }
                    _ => {
                        // Stray `.` — consume it and stop.
                        self.pos += 1;
                        return expr;
                    }
                }
            }
            return expr;
        }
    }

    /// Parses a `( … )` argument list; the current token must be `(`.
    fn parse_args(&mut self, depth: u32) -> Vec<Expr> {
        let mut args = Vec::new();
        self.bump(); // `(`
        loop {
            if self.at_punct(")") {
                self.pos += 1;
                return args;
            }
            if self.peek().is_none() {
                return args;
            }
            if self.eat_punct(",") {
                continue;
            }
            let before = self.pos;
            let e = self.parse_expr(depth, true);
            args.push(e);
            if self.pos == before {
                self.pos += 1; // defensive progress
            }
        }
    }

    /// Greedily skips type-shaped tokens after `as`.
    fn skip_type(&mut self) {
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Ident {
                if NON_BINDING.contains(&t.text.as_str()) && !t.is_ident("Self") {
                    // `as` types never contain `mut`-like words except in
                    // pointer types, which are fine to consume too.
                }
                self.pos += 1;
                continue;
            }
            if t.is_punct("::") || t.is_punct("&") || t.is_punct("*") {
                self.pos += 1;
                continue;
            }
            if t.is_punct("<") {
                self.skip_angle_brackets();
                continue;
            }
            return;
        }
    }

    /// Skips a balanced `<…>` group; the current token must be `<`.
    fn skip_angle_brackets(&mut self) {
        let mut depth = 0i64;
        while let Some(t) = self.peek() {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                depth -= 1;
                if depth <= 0 {
                    self.pos += 1;
                    return;
                }
            } else if t.is_punct("(") || t.is_punct("{") || t.is_punct(";") {
                // Angle brackets never span these in type position; bail
                // rather than eat the rest of the file.
                return;
            }
            self.pos += 1;
        }
    }

    fn parse_primary(&mut self, depth: u32, allow_struct: bool) -> Expr {
        if depth == 0 {
            return self.unknown();
        }
        let Some(t) = self.peek() else {
            return self.unknown();
        };
        let line = t.line;
        match t.kind {
            TokKind::Num | TokKind::Str | TokKind::Char | TokKind::Lifetime => {
                self.pos += 1;
                Expr::Lit(line)
            }
            TokKind::Punct => match t.text.as_str() {
                "(" => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    let mut is_tuple = false;
                    loop {
                        if self.at_punct(")") {
                            self.pos += 1;
                            break;
                        }
                        if self.peek().is_none() {
                            break;
                        }
                        if self.eat_punct(",") {
                            is_tuple = true;
                            continue;
                        }
                        let before = self.pos;
                        items.push(self.parse_expr(depth - 1, true));
                        if self.pos == before {
                            self.pos += 1;
                        }
                    }
                    if items.len() == 1 && !is_tuple {
                        items.pop().unwrap_or(Expr::Unknown(line))
                    } else {
                        Expr::Tuple { items }
                    }
                }
                "[" => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    loop {
                        if self.at_punct("]") {
                            self.pos += 1;
                            break;
                        }
                        if self.peek().is_none() {
                            break;
                        }
                        if self.eat_punct(",") || self.eat_punct(";") {
                            continue;
                        }
                        let before = self.pos;
                        items.push(self.parse_expr(depth - 1, true));
                        if self.pos == before {
                            self.pos += 1;
                        }
                    }
                    Expr::Tuple { items }
                }
                "{" => Expr::BlockExpr(self.parse_block(depth - 1)),
                "|" | "||" => self.parse_closure(depth - 1),
                _ => self.unknown(),
            },
            TokKind::Ident => match t.text.as_str() {
                "if" => self.parse_if(depth - 1),
                "match" => self.parse_match(depth - 1),
                "while" => self.parse_while(depth - 1),
                "for" => self.parse_for(depth - 1),
                "loop" => {
                    self.bump();
                    Expr::Loop {
                        body: self.parse_block(depth - 1),
                    }
                }
                "return" => {
                    self.bump();
                    let value = if self.expr_follows() {
                        Some(Box::new(self.parse_expr(depth - 1, allow_struct)))
                    } else {
                        None
                    };
                    Expr::Return { value, line }
                }
                "break" => {
                    self.bump();
                    // Skip a loop label if present.
                    if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.pos += 1;
                    }
                    let value = if self.expr_follows() {
                        Some(Box::new(self.parse_expr(depth - 1, allow_struct)))
                    } else {
                        None
                    };
                    Expr::Break { value }
                }
                "continue" => {
                    self.bump();
                    if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.pos += 1;
                    }
                    Expr::Break { value: None }
                }
                "move" => {
                    self.bump();
                    if self.at_punct("|") || self.at_punct("||") {
                        self.parse_closure(depth - 1)
                    } else {
                        Expr::Unknown(line)
                    }
                }
                "unsafe" => {
                    self.bump();
                    if self.at_punct("{") {
                        Expr::BlockExpr(self.parse_block(depth - 1))
                    } else {
                        Expr::Unknown(line)
                    }
                }
                _ => self.parse_path_like(depth - 1, allow_struct),
            },
        }
    }

    /// Whether the current token can begin an expression (after `return` /
    /// `break`).
    fn expr_follows(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => {
                !(t.is_punct(";")
                    || t.is_punct("}")
                    || t.is_punct(")")
                    || t.is_punct("]")
                    || t.is_punct(",")
                    || t.is_punct("=>"))
            }
        }
    }

    /// Identifier-led expression: a path, a macro invocation, a struct
    /// literal, or a plain identifier.
    fn parse_path_like(&mut self, depth: u32, allow_struct: bool) -> Expr {
        let first = match self.bump() {
            Some(t) => t,
            None => return Expr::Unknown(0),
        };
        let line = first.line;
        let mut segments = vec![first.text.clone()];
        // Macro?
        if self.at_punct("!") {
            let delim_ok = matches!(
                self.peek_at(1).map(|t| t.text.as_str()),
                Some("(") | Some("[") | Some("{")
            );
            if delim_ok {
                self.pos += 1; // `!`
                let (open, close) = match self.peek().map(|t| t.text.as_str()) {
                    Some("(") => ("(", ")"),
                    Some("[") => ("[", "]"),
                    _ => ("{", "}"),
                };
                let mut idents = Vec::new();
                self.skip_balanced(open, close, &mut idents);
                return Expr::Macro {
                    name: segments.pop().unwrap_or_default(),
                    idents,
                    line,
                };
            }
        }
        // Path segments (turbofish stripped).
        while self.at_punct("::") {
            match self.peek_at(1) {
                Some(n) if n.kind == TokKind::Ident => {
                    segments.push(n.text.clone());
                    self.pos += 2;
                }
                Some(n) if n.is_punct("<") => {
                    self.pos += 1;
                    self.skip_angle_brackets();
                }
                _ => {
                    self.pos += 1;
                    break;
                }
            }
        }
        // Macro at the end of a path (`core::todo!(…)`)?
        if self.at_punct("!") {
            let delim_ok = matches!(
                self.peek_at(1).map(|t| t.text.as_str()),
                Some("(") | Some("[") | Some("{")
            );
            if delim_ok {
                self.pos += 1;
                let (open, close) = match self.peek().map(|t| t.text.as_str()) {
                    Some("(") => ("(", ")"),
                    Some("[") => ("[", "]"),
                    _ => ("{", "}"),
                };
                let mut idents = Vec::new();
                self.skip_balanced(open, close, &mut idents);
                return Expr::Macro {
                    name: segments.pop().unwrap_or_default(),
                    idents,
                    line,
                };
            }
        }
        // Struct literal? Only when allowed, and only for paths whose last
        // segment is capitalized (rules out `if x {`-style blocks).
        let last_capitalized = segments
            .last()
            .and_then(|s| s.chars().next())
            .is_some_and(|c| c.is_uppercase());
        if allow_struct && last_capitalized && self.at_punct("{") {
            return self.parse_struct_lit(depth, segments.join("::"), line);
        }
        if segments.len() == 1 {
            let only = segments.pop().unwrap_or_default();
            Expr::Ident(only, line)
        } else {
            Expr::Path(segments.join("::"), line)
        }
    }

    /// Parses `{ field: expr, .. }` after a struct path.
    fn parse_struct_lit(&mut self, depth: u32, path: String, line: u32) -> Expr {
        self.bump(); // `{`
        let mut fields = Vec::new();
        loop {
            if self.at_punct("}") {
                self.pos += 1;
                break;
            }
            if self.peek().is_none() {
                break;
            }
            if self.eat_punct(",") {
                continue;
            }
            // `..base` functional update.
            if self.at_punct(".") && self.peek_at(1).is_some_and(|t| t.is_punct(".")) {
                self.pos += 2;
                let base = self.parse_expr(depth, true);
                fields.push(("..".to_string(), base));
                continue;
            }
            let Some(name_tok) = self.peek() else { break };
            if name_tok.kind != TokKind::Ident {
                self.pos += 1; // defensive progress
                continue;
            }
            let fname = name_tok.text.clone();
            let fline = name_tok.line;
            self.pos += 1;
            if self.eat_punct(":") {
                let value = self.parse_expr(depth, true);
                fields.push((fname, value));
            } else {
                // Shorthand `Foo { name }`.
                let value = Expr::Ident(fname.clone(), fline);
                fields.push((fname, value));
            }
        }
        Expr::StructLit { path, fields, line }
    }

    fn parse_closure(&mut self, depth: u32) -> Expr {
        let line = self.line();
        let mut params = Vec::new();
        if self.at_punct("||") {
            self.pos += 1;
        } else {
            self.pos += 1; // first `|`
            let start = self.pos;
            let mut pdepth = 0i64;
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "<" => pdepth += 1,
                        ")" | "]" | ">" => pdepth -= 1,
                        "|" if pdepth <= 0 => break,
                        "{" | ";" => break, // malformed — bail
                        _ => {}
                    }
                }
                self.pos += 1;
            }
            for group in split_top_level(&self.toks[start..self.pos], ",") {
                // Bindings are the pattern part (before any `:` type).
                let pat_end = group
                    .iter()
                    .position(|t| t.is_punct(":"))
                    .unwrap_or(group.len());
                params.extend(pattern_bindings(&group[..pat_end]));
            }
            self.eat_punct("|");
        }
        // Optional return type.
        if self.at_punct("->") {
            self.pos += 1;
            while let Some(t) = self.peek() {
                if t.is_punct("{") || t.is_punct(",") || t.is_punct(";") || t.is_punct(")") {
                    break;
                }
                if t.is_punct("<") {
                    self.skip_angle_brackets();
                    continue;
                }
                self.pos += 1;
            }
        }
        let body = self.parse_expr(depth, true);
        Expr::Closure {
            params,
            body: Box::new(body),
            line,
        }
    }

    fn parse_if(&mut self, depth: u32) -> Expr {
        let line = self.line();
        self.bump(); // `if`
        let (cond, let_bound) = self.parse_condition(depth);
        let then = self.parse_block(depth);
        let els = if self.at_ident("else") {
            self.bump();
            if self.at_ident("if") {
                Some(Box::new(self.parse_if(depth)))
            } else {
                Some(Box::new(Expr::BlockExpr(self.parse_block(depth))))
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            let_bound,
            then,
            els,
            line,
        }
    }

    fn parse_while(&mut self, depth: u32) -> Expr {
        let line = self.line();
        self.bump(); // `while`
        let (cond, let_bound) = self.parse_condition(depth);
        let body = self.parse_block(depth);
        Expr::While {
            cond: Box::new(cond),
            let_bound,
            body,
            line,
        }
    }

    /// Parses an `if`/`while` condition, handling the `let <pat> = <expr>`
    /// form. Returns the condition/scrutinee and any pattern bindings.
    fn parse_condition(&mut self, depth: u32) -> (Expr, Vec<String>) {
        if self.at_ident("let") {
            self.bump();
            let pat_start = self.pos;
            let mut pdepth = 0i64;
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "<" => pdepth += 1,
                        ")" | "]" | ">" => pdepth -= 1,
                        "=" if pdepth <= 0 => break,
                        "{" | ";" => break,
                        _ => {}
                    }
                }
                self.pos += 1;
            }
            let bound = pattern_bindings(&self.toks[pat_start..self.pos]);
            self.eat_punct("=");
            let cond = self.parse_expr(depth, false);
            (cond, bound)
        } else {
            (self.parse_expr(depth, false), Vec::new())
        }
    }

    fn parse_for(&mut self, depth: u32) -> Expr {
        let line = self.line();
        self.bump(); // `for`
        let pat_start = self.pos;
        while let Some(t) = self.peek() {
            if t.is_ident("in") || t.is_punct("{") || t.is_punct(";") {
                break;
            }
            self.pos += 1;
        }
        let bound = pattern_bindings(&self.toks[pat_start..self.pos]);
        if self.at_ident("in") {
            self.bump();
        }
        let iter = self.parse_expr(depth, false);
        let body = self.parse_block(depth);
        Expr::For {
            bound,
            iter: Box::new(iter),
            body,
            line,
        }
    }

    fn parse_match(&mut self, depth: u32) -> Expr {
        let line = self.line();
        self.bump(); // `match`
        let scrutinee = self.parse_expr(depth, false);
        let mut arms = Vec::new();
        if !self.eat_punct("{") {
            return Expr::Match {
                scrutinee: Box::new(scrutinee),
                arms,
                line,
            };
        }
        loop {
            if self.at_punct("}") {
                self.pos += 1;
                break;
            }
            if self.peek().is_none() {
                break;
            }
            if self.eat_punct(",") {
                continue;
            }
            // Pattern: up to a top-level `=>` or `if` guard.
            let arm_line = self.line();
            let pat_start = self.pos;
            let mut pdepth = 0i64;
            let mut has_guard = false;
            while let Some(t) = self.peek() {
                if t.is_ident("if") && pdepth == 0 {
                    has_guard = true;
                    break;
                }
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" | "<" => pdepth += 1,
                        ")" | "]" | ">" => pdepth -= 1,
                        "}" => {
                            if pdepth == 0 {
                                break; // enclosing close — malformed arm
                            }
                            pdepth -= 1;
                        }
                        "=>" if pdepth <= 0 => break,
                        _ => {}
                    }
                }
                self.pos += 1;
            }
            let bound = pattern_bindings(&self.toks[pat_start..self.pos]);
            let guard = if has_guard {
                self.bump(); // `if`
                Some(self.parse_expr(depth, false))
            } else {
                None
            };
            if !self.eat_punct("=>") {
                // Malformed arm: consume one token and retry.
                if self.bump().is_none() {
                    break;
                }
                continue;
            }
            let body = self.parse_expr(depth, true);
            arms.push(Arm {
                bound,
                guard,
                body,
                line: arm_line,
            });
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<FnItem> {
        parse_file(&lex(src))
    }

    fn only_fn(src: &str) -> FnItem {
        let mut fns = parse(src);
        assert_eq!(fns.len(), 1, "expected one fn in {src}");
        fns.pop().unwrap()
    }

    #[test]
    fn fn_signature_is_extracted() {
        let f = only_fn("fn scale(x: &Secret<Scalar>, n: u64) -> Vec<u8> { }");
        assert_eq!(f.name, "scale");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].names, vec!["x"]);
        assert!(f.params[0].ty.contains("Secret"));
        assert_eq!(f.ret.as_deref(), Some("Vec < u8 >"));
    }

    #[test]
    fn self_and_generics_are_handled() {
        let f = only_fn("fn go<T: Fn() -> u8>(&mut self, k: T) -> bool where T: Clone { true }");
        assert_eq!(f.name, "go");
        assert_eq!(f.params[0].names, vec!["self"]);
        assert_eq!(f.params[1].names, vec!["k"]);
        assert_eq!(f.ret.as_deref(), Some("bool"));
    }

    #[test]
    fn let_and_tail_are_separated() {
        let f = only_fn("fn f() -> u8 { let x = 1; x }");
        assert_eq!(f.body.stmts.len(), 2);
        assert!(matches!(
            &f.body.stmts[0],
            Stmt::Let { names, init: Some(_), .. } if names == &["x"]
        ));
        assert!(matches!(&f.body.stmts[1], Stmt::Expr { semi: false, .. }));
    }

    #[test]
    fn control_flow_shapes_parse() {
        let f = only_fn(
            "fn f(s: u8) { if s > 0 { g(); } else { h(); } \
             while s < 9 { t(); } \
             for i in 0..s { u(i); } \
             match s { 0 => a(), n if n > 3 => b(n), _ => c(), } }",
        );
        let kinds: Vec<&str> = f
            .body
            .stmts
            .iter()
            .map(|s| match s {
                Stmt::Expr {
                    expr: Expr::If { .. },
                    ..
                } => "if",
                Stmt::Expr {
                    expr: Expr::While { .. },
                    ..
                } => "while",
                Stmt::Expr {
                    expr: Expr::For { .. },
                    ..
                } => "for",
                Stmt::Expr {
                    expr: Expr::Match { .. },
                    ..
                } => "match",
                _ => "?",
            })
            .collect();
        assert_eq!(kinds, vec!["if", "while", "for", "match"]);
        if let Stmt::Expr {
            expr: Expr::Match { arms, .. },
            ..
        } = &f.body.stmts[3]
        {
            assert_eq!(arms.len(), 3);
            assert_eq!(arms[1].bound, vec!["n"]);
            assert!(arms[1].guard.is_some());
        } else {
            unreachable!()
        }
    }

    #[test]
    fn method_chains_calls_and_indexing() {
        let f =
            only_fn("fn f(v: Vec<u8>, i: usize) -> u8 { v.iter().map(|x| x + 1).count(); v[i] }");
        // Tail is the index expression.
        let Some(Stmt::Expr {
            expr: Expr::Index { index, .. },
            semi: false,
        }) = f.body.stmts.last()
        else {
            unreachable!("tail should be an index expr: {:?}", f.body.stmts.last())
        };
        assert!(matches!(index.as_ref(), Expr::Ident(n, _) if n == "i"));
    }

    #[test]
    fn if_let_and_let_else_bind_names() {
        let f = only_fn(
            "fn f(o: Option<u8>) { if let Some(x) = o { g(x); } \
             let Some(y) = o else { return; }; h(y); }",
        );
        let Stmt::Expr {
            expr: Expr::If { let_bound, .. },
            ..
        } = &f.body.stmts[0]
        else {
            unreachable!()
        };
        assert_eq!(let_bound, &["x"]);
        let Stmt::Let {
            names, else_block, ..
        } = &f.body.stmts[1]
        else {
            unreachable!()
        };
        assert_eq!(names, &["y"]);
        assert!(else_block.is_some());
    }

    #[test]
    fn struct_literals_and_blocks_disambiguate() {
        let f = only_fn(
            "fn f(c: bool) -> Foo { if c { return Foo { a: 1, b: 2 }; } Foo { a: 3, b: 4 } }",
        );
        let Some(Stmt::Expr {
            expr: Expr::StructLit { path, fields, .. },
            semi: false,
        }) = f.body.stmts.last()
        else {
            unreachable!("tail should be a struct literal")
        };
        assert_eq!(path, "Foo");
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn nested_fns_get_their_own_items() {
        let fns = parse("fn outer() { fn inner(sk: u64) { use_it(sk); } inner(1); }");
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn macros_collect_inner_idents() {
        let f = only_fn("fn f(sk: u64) { println!(\"v {}\", sk); }");
        let Stmt::Expr {
            expr: Expr::Macro { name, idents, .. },
            ..
        } = &f.body.stmts[0]
        else {
            unreachable!()
        };
        assert_eq!(name, "println");
        assert!(idents.iter().any(|(n, _)| n == "sk"));
    }

    #[test]
    fn closures_and_shifts_parse() {
        let f = only_fn("fn f(a: u64) -> u64 { let g = |x: u64| x << 2; g(a >> 1) }");
        assert_eq!(f.body.stmts.len(), 2);
        let Stmt::Let {
            init: Some(init), ..
        } = &f.body.stmts[0]
        else {
            unreachable!()
        };
        assert!(matches!(init, Expr::Closure { params, .. } if params == &["x"]));
    }

    #[test]
    fn compound_assignment_parses() {
        let f = only_fn("fn f(mut a: u64, b: u64) { a += b; a <<= 1; a = b; }");
        let compounds: Vec<bool> = f
            .body
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Expr {
                    expr: Expr::Assign { compound, .. },
                    ..
                } => Some(*compound),
                _ => None,
            })
            .collect();
        assert_eq!(compounds, vec![true, true, false]);
    }

    #[test]
    fn trait_decls_without_bodies_are_skipped() {
        let fns = parse("trait T { fn a(&self) -> u8; fn b(&self) { body(); } }");
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["b"]);
    }

    #[test]
    fn deep_nesting_degrades_instead_of_overflowing() {
        let mut src = String::from("fn f() { let x = ");
        for _ in 0..500 {
            src.push('(');
        }
        src.push('1');
        for _ in 0..500 {
            src.push(')');
        }
        src.push_str("; }");
        let _ = parse(&src); // must not panic or overflow
    }
}
