//! A small hand-rolled Rust tokenizer — just enough lexical structure for
//! the tidy rules: it distinguishes identifiers, punctuation, numbers,
//! lifetimes, and the *contents* of string literals, while skipping
//! comments (line, nested block, doc) and correctly crossing raw strings
//! (`r#"…"#`), byte strings, and char literals so that a `"` inside one
//! never desynchronizes the scan.
//!
//! The lexer never panics, whatever bytes it is fed (a property pinned by
//! a proptest in `tests/`): malformed input degrades to single-character
//! punctuation tokens and the scan continues.

/// What kind of lexeme a [`Tok`] is.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// Punctuation; multi-character for the operators the parser and the
    /// rules care about: `==`, `!=`, `&&`, `||`, `<=`, `>=`, `->`, `=>`,
    /// `::`. Everything else (including `<<`/`>>`, whose merging would
    /// desynchronize generic-argument scanning) stays single-character.
    Punct,
    /// A string or byte-string literal; `text` holds the literal contents
    /// (escapes unprocessed, quotes and raw-string hashes stripped).
    Str,
    /// A character literal (contents, quotes stripped).
    Char,
    /// A numeric literal (digits and any suffix letters).
    Num,
    /// A lifetime such as `'a` (text excludes the leading quote).
    Lifetime,
}

/// One token plus the 1-based source line it starts on.
#[derive(Clone, Debug)]
pub struct Tok {
    /// 1-based line number.
    pub line: u32,
    /// Lexeme class.
    pub kind: TokKind,
    /// Lexeme text (see [`TokKind`] for per-kind conventions).
    pub text: String,
}

impl Tok {
    /// True if this token is an identifier equal to `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is punctuation equal to `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `source`. Total function: any input yields a token stream.
pub fn lex(source: &str) -> Vec<Tok> {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let count_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if chars[i + 1] == '/' {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if chars[i + 1] == '*' {
                let mut depth = 1usize;
                let start = i;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                line += count_lines(&chars[start..i.min(n)]);
                continue;
            }
        }
        // Raw strings and byte strings: r"…", r#"…"#, br#"…"#, b"…".
        if c == 'r' || c == 'b' {
            if let Some((tok_len, content, content_lines)) = scan_raw_or_byte_string(&chars[i..]) {
                toks.push(Tok {
                    line,
                    kind: TokKind::Str,
                    text: content,
                });
                line += content_lines;
                i += tok_len;
                continue;
            }
        }
        // Ordinary string literal.
        if c == '"' {
            let (tok_len, content) = scan_string(&chars[i..]);
            toks.push(Tok {
                line,
                kind: TokKind::Str,
                text: content,
            });
            line += count_lines(&chars[i..(i + tok_len).min(n)]);
            i += tok_len;
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            match scan_char_or_lifetime(&chars[i..]) {
                CharScan::Char(tok_len, content) => {
                    toks.push(Tok {
                        line,
                        kind: TokKind::Char,
                        text: content,
                    });
                    i += tok_len;
                    continue;
                }
                CharScan::Lifetime(tok_len, name) => {
                    toks.push(Tok {
                        line,
                        kind: TokKind::Lifetime,
                        text: name,
                    });
                    i += tok_len;
                    continue;
                }
                CharScan::Bare => {
                    toks.push(Tok {
                        line,
                        kind: TokKind::Punct,
                        text: "'".to_string(),
                    });
                    i += 1;
                    continue;
                }
            }
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            toks.push(Tok {
                line,
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        // Number (digits plus alphanumeric suffix like 0xff, 1u64).
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (is_ident_continue(chars[i])) {
                i += 1;
            }
            toks.push(Tok {
                line,
                kind: TokKind::Num,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        // Multi-character operators the parser and the rules inspect.
        // Deliberately absent: `<<` and `>>` (merging them would break
        // balanced scanning of nested generics like `Vec<Vec<u8>>`) and
        // the compound assignments (`+=`, `<<=`, …), which the parser
        // reassembles from adjacent tokens. Anything not listed degrades
        // to single-character punctuation.
        if i + 1 < n {
            let pair = match (c, chars[i + 1]) {
                ('=', '=') => Some("=="),
                ('!', '=') => Some("!="),
                ('&', '&') => Some("&&"),
                ('|', '|') => Some("||"),
                ('<', '=') => Some("<="),
                ('>', '=') => Some(">="),
                ('-', '>') => Some("->"),
                ('=', '>') => Some("=>"),
                (':', ':') => Some("::"),
                _ => None,
            };
            if let Some(p) = pair {
                toks.push(Tok {
                    line,
                    kind: TokKind::Punct,
                    text: p.to_string(),
                });
                i += 2;
                continue;
            }
        }
        toks.push(Tok {
            line,
            kind: TokKind::Punct,
            text: c.to_string(),
        });
        i += 1;
    }
    toks
}

/// Scans a `"…"` string starting at `s[0] == '"'`. Returns (consumed
/// chars, contents). Unterminated strings run to EOF without panicking.
fn scan_string(s: &[char]) -> (usize, String) {
    let mut i = 1usize;
    let mut content = String::new();
    while i < s.len() {
        match s[i] {
            '\\' => {
                content.push('\\');
                if i + 1 < s.len() {
                    content.push(s[i + 1]);
                }
                i += 2;
            }
            '"' => return (i + 1, content),
            c => {
                content.push(c);
                i += 1;
            }
        }
    }
    (s.len(), content)
}

/// Scans `b"…"`, `r"…"`, `r#"…"#`, `br##"…"##` style literals starting at
/// `s[0]` ∈ {`b`, `r`}. Returns `(consumed, contents, newlines-inside)` or
/// `None` if `s` does not start such a literal.
fn scan_raw_or_byte_string(s: &[char]) -> Option<(usize, String, u32)> {
    let mut i = 0usize;
    let mut raw = false;
    if s.get(i) == Some(&'b') {
        i += 1;
    }
    if s.get(i) == Some(&'r') {
        raw = true;
        i += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while s.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
        if s.get(i) != Some(&'"') {
            return None;
        }
        i += 1;
        let start = i;
        // Find `"` followed by `hashes` hashes.
        while i < s.len() {
            if s[i] == '"'
                && s[i + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&c| c == '#')
                    .count()
                    == hashes
            {
                let content: String = s[start..i].iter().collect();
                let nl = content.matches('\n').count() as u32;
                return Some((i + 1 + hashes, content, nl));
            }
            i += 1;
        }
        let content: String = s[start..].iter().collect();
        let nl = content.matches('\n').count() as u32;
        Some((s.len(), content, nl))
    } else {
        // Only `b"…"` (with escapes) qualifies; a bare `b` or `r` ident
        // falls through to identifier scanning.
        if s.get(i) != Some(&'"') {
            return None;
        }
        let (len, content) = scan_string(&s[i..]);
        let nl = content.matches('\n').count() as u32;
        Some((i + len, content, nl))
    }
}

enum CharScan {
    /// `(consumed, contents)`
    Char(usize, String),
    /// `(consumed, name)`
    Lifetime(usize, String),
    /// A stray `'` that is neither.
    Bare,
}

/// Disambiguates a `'` at `s[0]`: char literal (`'x'`, `'\n'`, `'\u{1F}'`)
/// versus lifetime (`'a`, `'static`).
fn scan_char_or_lifetime(s: &[char]) -> CharScan {
    match s.get(1) {
        None => CharScan::Bare,
        Some('\\') => {
            // Escaped char literal: scan (bounded) for the closing quote.
            let mut i = 2usize;
            let limit = s.len().min(16);
            while i < limit {
                if s[i] == '\'' {
                    return CharScan::Char(i + 1, s[1..i].iter().collect());
                }
                i += 1;
            }
            CharScan::Bare
        }
        Some(&c) if is_ident_start(c) => {
            if s.get(2) == Some(&'\'') {
                // 'x' — a one-character literal.
                CharScan::Char(3, c.to_string())
            } else {
                let mut i = 2usize;
                while i < s.len() && is_ident_continue(s[i]) {
                    i += 1;
                }
                CharScan::Lifetime(i, s[1..i].iter().collect())
            }
        }
        Some(&c) => {
            // Non-identifier single char like '+' — literal if closed.
            if s.get(2) == Some(&'\'') {
                CharScan::Char(3, c.to_string())
            } else {
                CharScan::Bare
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_are_skipped() {
        let toks = texts("a // thread_rng()\n/* Instant */ b /* /* nested */ */ c");
        let idents: Vec<_> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let toks = texts(r#"let s = "unwrap() thread_rng";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| { *k != TokKind::Ident || (t != "unwrap" && t != "thread_rng") }));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("unwrap()")));
    }

    #[test]
    fn raw_strings_cross_quotes() {
        let toks = texts(r###"let s = r#"a "quoted" b"#; x"###);
        assert!(toks.iter().any(|(_, t)| t == "x"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("quoted")));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = texts("fn f<'a>(x: &'a u8) { let c = 'x'; let d = '\\n'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "x"));
    }

    #[test]
    fn eq_operators_merge() {
        let toks = texts("a == b != c = d");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "="]);
    }

    #[test]
    fn multi_char_operators_merge() {
        let toks = texts("a && b || c <= d >= e -> f => g :: h");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["&&", "||", "<=", ">=", "->", "=>", "::"]);
    }

    #[test]
    fn shifts_and_compound_assignments_stay_single_chars() {
        // `>>` must not merge (it closes nested generics); `+=`-style
        // compound assignments are reassembled by the parser instead.
        let toks = texts("Vec<Vec<u8>> x += y <<= z");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        // `<<=` lexes as `<` + `<=` — the parser reassembles shift-assign
        // from that adjacency.
        assert_eq!(puncts, vec!["<", "<", ">", ">", "+", "=", "<", "<="]);
    }

    #[test]
    fn adjacent_singles_degrade_without_merging_past_pairs() {
        // `&&&` = `&&` + `&`; `::::` = `::` + `::`; `<=>` = `<=` + `>`.
        assert_eq!(
            texts("&&&")
                .iter()
                .map(|(_, t)| t.as_str())
                .collect::<Vec<_>>(),
            vec!["&&", "&"]
        );
        assert_eq!(
            texts("::::")
                .iter()
                .map(|(_, t)| t.as_str())
                .collect::<Vec<_>>(),
            vec!["::", "::"]
        );
        assert_eq!(
            texts("<=>")
                .iter()
                .map(|(_, t)| t.as_str())
                .collect::<Vec<_>>(),
            vec!["<=", ">"]
        );
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "'\\", "b\"", "'a"] {
            let _ = lex(src);
        }
    }
}
