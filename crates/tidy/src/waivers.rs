//! The workspace waiver file: reasoned, *expiring* suppressions pinned to
//! diagnostic fingerprints.
//!
//! Inline `// tidy:allow(rule) — reason` comments (see [`crate::engine`])
//! suit one-line sites; findings that argue from protocol properties — "z
//! = r + c·x is uniformly masked by the one-time nonce" — belong in one
//! reviewable place: `tidy.waivers` at the workspace root. Format, one
//! entry per line (`#` comments and blank lines ignored):
//!
//! ```text
//! <fingerprint> <rule> <YYYY-MM-DD> <reason…>
//! ```
//!
//! * `fingerprint` — the 16-hex-char stable fingerprint printed with the
//!   diagnostic (line-number independent, so the entry survives
//!   unrelated edits);
//! * `rule` — cross-checked against the finding's rule, so a fingerprint
//!   collision can never silence a different class of hazard;
//! * `YYYY-MM-DD` — expiry. Waivers are arguments about today's code;
//!   the date forces a periodic re-review instead of letting the
//!   argument rot;
//! * `reason` — mandatory free text.
//!
//! Hygiene is enforced the same way as for inline waivers: malformed
//! entries, entries matching no current finding, and expired entries are
//! themselves `waiver` diagnostics, so the file can only shrink the
//! finding set while it is accurate.

use crate::engine::Diagnostic;
use std::path::Path;

/// File name looked up at the workspace root.
pub const WAIVER_FILE: &str = "tidy.waivers";

/// One parsed `tidy.waivers` entry.
#[derive(Debug)]
pub struct FileWaiver {
    /// 16-hex-char fingerprint of the finding this entry silences.
    pub fingerprint: String,
    /// Rule the finding must belong to.
    pub rule: String,
    /// Expiry as days since the Unix epoch.
    pub expires_days: i64,
    /// Expiry as written (`YYYY-MM-DD`), for messages.
    pub date: String,
    /// Why the finding is safe.
    pub reason: String,
    /// 1-based line in the waiver file.
    pub line: u32,
}

/// Days since the Unix epoch for a civil date (Howard Hinnant's
/// `days_from_civil`; exact over the proleptic Gregorian calendar).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = i64::from((m + 9) % 12);
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Today as days since the Unix epoch. `crates/tidy/` is in the
/// determinism-sanctioned list: expiry checking is exactly the wall-clock
/// read the rule carves out for this analyzer.
fn today_days() -> i64 {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    (secs / 86_400) as i64
}

fn malformed(line: u32, detail: &str) -> Diagnostic {
    Diagnostic {
        path: WAIVER_FILE.to_string(),
        line,
        rule: "waiver",
        message: format!(
            "malformed waiver entry ({detail}): expected \
             `<fingerprint> <rule> <YYYY-MM-DD> <reason…>`"
        ),
        fingerprint: String::new(),
    }
}

/// Parses waiver-file text into entries plus diagnostics for malformed
/// lines.
pub fn parse(text: &str) -> (Vec<FileWaiver>, Vec<Diagnostic>) {
    let mut entries = Vec::new();
    let mut diags = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, char::is_whitespace);
        let (Some(fp), Some(rule), Some(date)) = (parts.next(), parts.next(), parts.next()) else {
            diags.push(malformed(line_no, "fewer than four fields"));
            continue;
        };
        let reason = parts.next().map(str::trim).unwrap_or("");
        if fp.len() != 16 || !fp.bytes().all(|b| b.is_ascii_hexdigit()) {
            diags.push(malformed(line_no, "fingerprint is not 16 hex chars"));
            continue;
        }
        let mut ymd = date.splitn(3, '-');
        let parsed = (
            ymd.next().and_then(|s| s.parse::<i64>().ok()),
            ymd.next().and_then(|s| s.parse::<u32>().ok()),
            ymd.next().and_then(|s| s.parse::<u32>().ok()),
        );
        let (Some(y), Some(m), Some(d)) = parsed else {
            diags.push(malformed(line_no, "expiry is not YYYY-MM-DD"));
            continue;
        };
        if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            diags.push(malformed(line_no, "expiry is not a calendar date"));
            continue;
        }
        if reason.is_empty() {
            diags.push(malformed(line_no, "missing reason"));
            continue;
        }
        entries.push(FileWaiver {
            fingerprint: fp.to_string(),
            rule: rule.to_string(),
            expires_days: days_from_civil(y, m, d),
            date: date.to_string(),
            reason: reason.to_string(),
            line: line_no,
        });
    }
    (entries, diags)
}

/// Applies `root/tidy.waivers` to a finding list: silences findings with
/// a live matching entry and appends `waiver` diagnostics for malformed,
/// expired, and no-longer-matching entries.
pub fn apply_file_waivers(root: &Path, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    apply_at(root, diags, today_days())
}

/// [`apply_file_waivers`] with an injected "today" (tested directly; the
/// binary path uses the real clock).
fn apply_at(root: &Path, diags: Vec<Diagnostic>, today: i64) -> Vec<Diagnostic> {
    let path = root.join(WAIVER_FILE);
    let Ok(text) = std::fs::read_to_string(&path) else {
        return diags;
    };
    let (entries, mut extra) = parse(&text);
    let mut used = vec![false; entries.len()];
    let mut out = Vec::new();
    for d in diags {
        let hit = entries
            .iter()
            .position(|w| w.fingerprint == d.fingerprint && w.rule == d.rule);
        match hit {
            Some(i) => {
                used[i] = true;
                if entries[i].expires_days < today {
                    // Expired: the finding comes back (below, the entry
                    // itself is also flagged for re-review).
                    out.push(d);
                }
            }
            None => out.push(d),
        }
    }
    for (i, w) in entries.iter().enumerate() {
        if w.expires_days < today {
            extra.push(Diagnostic {
                path: WAIVER_FILE.to_string(),
                line: w.line,
                rule: "waiver",
                message: format!(
                    "expired waiver for {} ({}, expired {}): re-review the argument — \
                     renew the date or fix the finding",
                    w.rule, w.fingerprint, w.date
                ),
                fingerprint: String::new(),
            });
        } else if !used[i] {
            extra.push(Diagnostic {
                path: WAIVER_FILE.to_string(),
                line: w.line,
                rule: "waiver",
                message: format!(
                    "waiver for {} ({}) matches no current finding — remove it",
                    w.rule, w.fingerprint
                ),
                fingerprint: String::new(),
            });
        }
    }
    out.extend(extra);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, fp: &str) -> Diagnostic {
        Diagnostic {
            path: "crates/core/src/x.rs".to_string(),
            line: 1,
            rule,
            message: "m".to_string(),
            fingerprint: fp.to_string(),
        }
    }

    fn with_file(name: &str, content: &str, f: impl FnOnce(&Path)) {
        let dir = std::env::temp_dir().join(format!("tidy-waiver-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WAIVER_FILE), content).unwrap();
        f(&dir);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_entry_silences_matching_finding() {
        with_file(
            "live",
            "00112233aabbccdd secret-branch 2999-01-01 loop bound is the public bit length\n",
            |root| {
                let out = apply_at(
                    root,
                    vec![diag("secret-branch", "00112233aabbccdd")],
                    days_from_civil(2026, 8, 9),
                );
                assert!(out.is_empty(), "{out:?}");
            },
        );
    }

    #[test]
    fn rule_mismatch_does_not_silence() {
        with_file(
            "rule-mismatch",
            "00112233aabbccdd secret-index 2999-01-01 reason text\n",
            |root| {
                let out = apply_at(
                    root,
                    vec![diag("secret-branch", "00112233aabbccdd")],
                    days_from_civil(2026, 8, 9),
                );
                // The finding survives and the entry reads as unused.
                assert_eq!(out.len(), 2, "{out:?}");
                assert!(out.iter().any(|d| d.rule == "secret-branch"));
                assert!(out
                    .iter()
                    .any(|d| d.rule == "waiver" && d.message.contains("no current finding")));
            },
        );
    }

    #[test]
    fn expired_entry_resurfaces_finding_and_flags_itself() {
        with_file(
            "expired",
            "00112233aabbccdd secret-branch 2020-01-01 was valid back then\n",
            |root| {
                let out = apply_at(
                    root,
                    vec![diag("secret-branch", "00112233aabbccdd")],
                    days_from_civil(2026, 8, 9),
                );
                assert_eq!(out.len(), 2, "{out:?}");
                assert!(out
                    .iter()
                    .any(|d| d.rule == "waiver" && d.message.contains("expired")));
                assert!(out.iter().any(|d| d.rule == "secret-branch"));
            },
        );
    }

    #[test]
    fn malformed_lines_are_flagged() {
        let (entries, diags) = parse(
            "# comment\n\
             \n\
             not-a-fingerprint secret-branch 2999-01-01 reason\n\
             00112233aabbccdd secret-branch tomorrow reason\n\
             00112233aabbccdd secret-branch 2999-01-01\n\
             00112233aabbccdd secret-branch 2999-13-01 reason\n",
        );
        assert!(entries.is_empty(), "{entries:?}");
        assert_eq!(diags.len(), 4, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "waiver"));
    }

    #[test]
    fn civil_date_conversion_matches_known_anchors() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2000, 3, 1), 11017);
        assert_eq!(days_from_civil(2026, 8, 9), 20674);
    }
}
