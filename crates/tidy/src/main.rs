//! The `ppgr-tidy` binary: analyze the workspace, print `file:line`
//! diagnostics (with their stable fingerprints, ready to pin in
//! `tidy.waivers`), optionally write JSON / SARIF reports, exit non-zero
//! if any rule fires.
//!
//! Usage:
//!
//! ```text
//! ppgr-tidy [--json PATH] [--sarif PATH] [--summary-only] [workspace-root]
//! ```
//!
//! Default root: walk up from the current directory to the first
//! `Cargo.toml` containing `[workspace]`. `--summary-only` replaces the
//! per-finding dump with the diff-friendly per-rule summary (CI uses it;
//! the full detail still lands in the JSON/SARIF artifacts).

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

struct Opts {
    json: Option<PathBuf>,
    sarif: Option<PathBuf>,
    summary_only: bool,
    root: Option<PathBuf>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        json: None,
        sarif: None,
        summary_only: false,
        root: None,
    };
    let mut args = std::env::args_os().skip(1);
    while let Some(a) = args.next() {
        match a.to_str() {
            Some("--json") => {
                opts.json = Some(PathBuf::from(
                    args.next().ok_or("--json needs a path argument")?,
                ));
            }
            Some("--sarif") => {
                opts.sarif = Some(PathBuf::from(
                    args.next().ok_or("--sarif needs a path argument")?,
                ));
            }
            Some("--summary-only") => opts.summary_only = true,
            Some(s) if s.starts_with("--") => {
                return Err(format!("unknown flag {s}"));
            }
            _ => {
                if opts.root.is_some() {
                    return Err("more than one workspace root given".to_string());
                }
                opts.root = Some(PathBuf::from(a));
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ppgr-tidy: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match opts.root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("ppgr-tidy: no workspace root found (pass one explicitly)");
            return ExitCode::from(2);
        }
    };
    if !root.is_dir() {
        eprintln!("ppgr-tidy: {} is not a directory", root.display());
        return ExitCode::from(2);
    }
    let diags = ppgr_tidy::analyze_workspace(&root);
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, ppgr_tidy::report::to_json(&diags)) {
            eprintln!("ppgr-tidy: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &opts.sarif {
        if let Err(e) = std::fs::write(path, ppgr_tidy::report::to_sarif(&diags)) {
            eprintln!("ppgr-tidy: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if opts.summary_only {
        print!("{}", ppgr_tidy::report::summary(&diags));
    } else {
        for d in &diags {
            println!("{d}  [fp:{}]", d.fingerprint);
        }
        if diags.is_empty() {
            println!("ppgr-tidy: workspace clean");
        } else {
            println!("ppgr-tidy: {} diagnostic(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
