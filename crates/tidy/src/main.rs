//! The `ppgr-tidy` binary: analyze the workspace, print `file:line`
//! diagnostics, exit non-zero if any rule fires.
//!
//! Usage: `ppgr-tidy [workspace-root]` (default: walk up from the current
//! directory to the first `Cargo.toml` containing `[workspace]`).

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(p) => PathBuf::from(p),
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("ppgr-tidy: no workspace root found (pass one explicitly)");
                return ExitCode::from(2);
            }
        },
    };
    if !root.is_dir() {
        eprintln!("ppgr-tidy: {} is not a directory", root.display());
        return ExitCode::from(2);
    }
    let diags = ppgr_tidy::analyze_workspace(&root);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("ppgr-tidy: workspace clean");
        ExitCode::SUCCESS
    } else {
        println!("ppgr-tidy: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}
