//! Deterministic fault injection against the distributed runner: no
//! crashed or wedged party may hang a ranking session. For every phase,
//! crashing one participant must make every surviving thread exit within
//! its configured deadline with a typed error blaming exactly that party.

use ppgr_core::{
    run_distributed, run_distributed_with, DistributedConfig, DistributedError, DistributedFailure,
    FrameworkParams, Questionnaire,
};
use ppgr_group::GroupKind;
use ppgr_hash::HashDrbg;
use ppgr_net::{FaultPlan, Phase, PhaseBudget};
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A small session (initiator + 2 participants) so debug-mode compute
/// stays far below even the tightest phase budget used here.
fn params(seed: u64) -> FrameworkParams {
    FrameworkParams::builder(Questionnaire::synthetic(1, 2))
        .participants(2)
        .top_k(1)
        .attr_bits(5)
        .weight_bits(3)
        .mask_bits(5)
        .group(GroupKind::Ecc160)
        .seed(seed)
        .build()
        .unwrap()
}

fn run_with_plan(plan: FaultPlan, budget: PhaseBudget, seed: u64) -> DistributedFailure {
    let p = params(seed);
    let mut rng = HashDrbg::seed_from_u64(p.seed());
    let (profile, infos) = p.random_population(&mut rng);
    let config = DistributedConfig {
        budget,
        faults: Some(Arc::new(plan)),
    };
    run_distributed_with(&p, profile, infos, config)
        .expect_err("a crashed party must fail the session")
}

/// Every recorded observation — including the victim's own `Crashed`
/// marker — must blame the victim; nobody blames an innocent party.
fn assert_unanimous_blame(failure: &DistributedFailure, victim: usize, phase: Phase) {
    assert!(
        !failure.observations.is_empty(),
        "at least the victim reports at {phase}"
    );
    for (observer, error) in &failure.observations {
        assert_eq!(
            error.blamed(),
            victim,
            "party {observer} blamed {} instead of {victim} at {phase}: {error}",
            error.blamed()
        );
    }
    assert_eq!(failure.primary.blamed(), victim);
}

/// The phase where a party crashed at `phase` is first *observable*.
///
/// `compare` is communication-free (every party compares ciphertexts it
/// already holds), so nobody can notice an absence until the first
/// receive of the shuffle-decrypt chain that follows.
fn first_observable(phase: Phase) -> Phase {
    match phase {
        Phase::Compare => Phase::Hop,
        p => p,
    }
}

#[test]
fn crash_stop_at_every_phase_blames_the_victim() {
    for (i, &phase) in Phase::ALL.iter().enumerate() {
        // Alternate the victim so both participant roles (chain head and
        // chain tail) get exercised.
        let victim = 1 + (i % 2);
        let plan = FaultPlan::new().crash_stop(victim, phase);
        // Generous budget: a closed channel is observed immediately, so
        // nothing here ever waits the budget out.
        let budget = PhaseBudget::uniform(Duration::from_secs(5));
        let started = Instant::now();
        let failure = run_with_plan(plan, budget, 400 + i as u64);
        assert_unanimous_blame(&failure, victim, phase);
        match failure.primary {
            DistributedError::Disconnected { party, phase: seen } => {
                assert_eq!(party, victim);
                assert_eq!(
                    seen,
                    first_observable(phase),
                    "blame carries the crash phase"
                );
            }
            ref other => panic!("crash-stop at {phase} surfaced as {other}"),
        }
        // Liveness: survivors exited promptly, nowhere near the budget.
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "crash-stop at {phase} took {:?}",
            started.elapsed()
        );
    }
}

#[test]
fn silent_stall_at_every_phase_times_out_blaming_the_victim() {
    for (i, &phase) in Phase::ALL.iter().enumerate() {
        let victim = 1 + (i % 2);
        let plan = FaultPlan::new().silent_stall(victim, phase);
        // A stall is only detected by waiting a deadline out, so the
        // budget bounds the test's wall-clock directly. The initiator's
        // submission gather waits `session_total(n)`, which sums every
        // phase — keep the budget small enough that even that bound (8
        // slots for n = 2) stays under two seconds.
        let budget = PhaseBudget::uniform(Duration::from_millis(150));
        let started = Instant::now();
        let failure = run_with_plan(plan, budget, 500 + i as u64);
        assert_unanimous_blame(&failure, victim, phase);
        match failure.primary {
            DistributedError::Timeout { party, phase: seen } => {
                assert_eq!(party, victim);
                assert_eq!(
                    seen,
                    first_observable(phase),
                    "blame carries the stall phase"
                );
            }
            ref other => panic!("silent stall at {phase} surfaced as {other}"),
        }
        // Liveness: every survivor exited within a small multiple of the
        // per-wait bound (scaled waits reach n× a slot; the submission
        // gather reaches session_total = 8 slots for n = 2).
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "silent stall at {phase} took {:?}",
            started.elapsed()
        );
    }
}

#[test]
fn seeded_plans_crash_a_real_participant_and_are_reproducible() {
    for seed in [1u64, 7, 1234] {
        let plan = FaultPlan::seeded(seed, 2);
        let again = FaultPlan::seeded(seed, 2);
        let scripted: Vec<_> = plan.crashes().collect();
        assert_eq!(scripted, again.crashes().collect::<Vec<_>>());
        assert_eq!(scripted.len(), 1, "seeded plans script exactly one crash");
        let (victim, phase, _kind) = scripted[0];
        assert!((1..=2).contains(&victim), "victim is a participant");

        let budget = PhaseBudget::uniform(Duration::from_millis(150));
        let failure = run_with_plan(plan, budget, 600 + seed);
        assert_unanimous_blame(&failure, victim, phase);
    }
}

#[test]
fn fault_free_config_runs_clean_and_matches_the_default_runner() {
    let p = params(71);
    let mut rng = HashDrbg::seed_from_u64(p.seed());
    let (profile, infos) = p.random_population(&mut rng);

    let plain = run_distributed(&p, profile.clone(), infos.clone()).unwrap();
    let explicit = run_distributed_with(
        &p,
        profile,
        infos,
        DistributedConfig {
            budget: PhaseBudget::uniform(Duration::from_secs(30)),
            faults: None,
        },
    )
    .unwrap();
    assert_eq!(
        plain.ranks, explicit.ranks,
        "deadlines must not perturb results"
    );
    assert!(explicit.report.is_clean());
}
