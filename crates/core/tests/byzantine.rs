//! Active-adversary scripting against the distributed runner: a scripted
//! misbehaving party (corrupted bytes, bad proofs, equivocation,
//! inconsistent shuffles, forged or replayed abort frames) must always be
//! the party blamed — never an honest intermediary — and every honest
//! survivor must exit within one phase deadline.
//!
//! The culprit's *thread* always runs honest code; its `FaultyMesh`
//! rewrites outgoing bytes (`tamper`/`equivocate`) or injects forged
//! frames at phase entry (`forge`). This mirrors a compromised process
//! whose protocol stack is hostile while the rest of the fleet is honest.

use ppgr_core::wire::{AbortFrame, AbortKind, TAG_DATA};
use ppgr_core::{
    run_distributed, run_distributed_with, DistributedConfig, DistributedError, DistributedFailure,
    FrameworkParams, Questionnaire,
};
use ppgr_group::GroupKind;
use ppgr_hash::HashDrbg;
use ppgr_net::{FaultPlan, Phase, PhaseBudget, Tamper};
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Initiator + 3 participants: enough that every failure has an honest
/// *bystander* (a party with no first-hand evidence, fed only hearsay),
/// which is exactly where wrong blame propagation would show up.
fn params(seed: u64) -> FrameworkParams {
    FrameworkParams::builder(Questionnaire::synthetic(1, 2))
        .participants(3)
        .top_k(1)
        .attr_bits(5)
        .weight_bits(3)
        .mask_bits(5)
        .group(GroupKind::Ecc160)
        .seed(seed)
        .build()
        .unwrap()
}

fn run_with_plan(plan: FaultPlan, seed: u64) -> DistributedFailure {
    let p = params(seed);
    let mut rng = HashDrbg::seed_from_u64(p.seed());
    let (profile, infos) = p.random_population(&mut rng);
    let config = DistributedConfig {
        budget: PhaseBudget::uniform(Duration::from_secs(5)),
        faults: Some(Arc::new(plan)),
    };
    let started = Instant::now();
    let failure = run_distributed_with(&p, profile, infos, config)
        .expect_err("a scripted misbehavior must fail the session");
    // Liveness: misbehavior is detected by inspection or by a poison
    // frame, never by waiting a 5-second deadline out — every thread
    // (culprit's included) must be joined well within one phase budget.
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "survivors took {:?} to exit",
        started.elapsed()
    );
    failure
}

/// Every *honest* observer blames the culprit — either directly
/// (`blamed()` names it) or through hearsay whose original accuser is the
/// culprit itself (a forged frame carries the forger in `reporter`). The
/// culprit's own thread runs honest code and may rightly dispute being
/// framed, so it is exempt; the consensus primary must still pin the
/// culprit.
fn assert_culprit_blamed(failure: &DistributedFailure, culprit: usize) {
    assert_eq!(
        failure.primary.blamed(),
        culprit,
        "consensus primary was {} (expected blame on {culprit})",
        failure.primary
    );
    assert!(!failure.observations.is_empty());
    for (observer, error) in &failure.observations {
        if *observer == culprit {
            continue;
        }
        let ok = error.blamed() == culprit
            || matches!(error, DistributedError::Reported { reporter, .. } if *reporter == culprit);
        assert!(
            ok,
            "party {observer} observed \"{error}\" — neither blames {culprit} nor traces to its forged frame"
        );
    }
}

/// At least one honest observer held first-hand evidence (not hearsay,
/// not a refuted accusation) against the culprit.
fn assert_direct_evidence(failure: &DistributedFailure, culprit: usize) {
    assert!(
        failure.observations.iter().any(|(observer, e)| {
            *observer != culprit
                && matches!(
                    e,
                    DistributedError::Protocol { party, .. } if *party == culprit
                )
        }),
        "no honest party held first-hand evidence against {culprit}: {:?}",
        failure.observations
    );
}

// ---- Corrupted ciphertext / message bytes, one phase at a time. --------

#[test]
fn corrupt_gain_message_blames_the_sender() {
    // Trailing garbage on P3's dot-product message: the initiator's
    // `done()` check counts the unconsumed byte and blames P3. (P3 goes
    // last in the initiator's service order, so no honest party still has
    // an in-flight send to the initiator when it aborts.)
    let plan = FaultPlan::new().tamper(3, Phase::Gain, 0, Tamper::Append(vec![0xAB]));
    let failure = run_with_plan(plan, 900);
    assert_culprit_blamed(&failure, 3);
    assert_direct_evidence(&failure, 3);
}

#[test]
fn corrupt_encrypt_broadcast_blames_the_sender_on_every_lane() {
    // P2's encrypted bit vector is truncated mid-ciphertext on *every*
    // lane: both receivers independently hold first-hand evidence.
    let plan = FaultPlan::new().tamper(2, Phase::Encrypt, 0, Tamper::Truncate(6));
    let failure = run_with_plan(plan, 901);
    assert_culprit_blamed(&failure, 2);
    let direct = failure
        .observations
        .iter()
        .filter(|(o, e)| *o != 2 && matches!(e, DistributedError::Protocol { party: 2, .. }))
        .count();
    assert_eq!(direct, 2, "both receivers caught the corruption first-hand");
}

#[test]
fn corrupt_hop_chain_blames_the_immediate_sender() {
    // P2 corrupts the shuffle-chain vector it forwards to P3. Every hop
    // re-encodes what it forwards, so bad bytes always implicate the
    // immediate sender — P1's honest upstream work must not be blamed.
    let plan = FaultPlan::new().equivocate(2, 3, Phase::Hop, 0, Tamper::Append(vec![0xFF]));
    let failure = run_with_plan(plan, 902);
    assert_culprit_blamed(&failure, 2);
    assert_direct_evidence(&failure, 2);
}

// ---- Invalid / forged Schnorr proofs at keygen. ------------------------

#[test]
fn flipped_proof_response_is_rejected_and_blamed() {
    // One bit of P2's Schnorr response flips in flight (all lanes). The
    // batch verifier's fallback scan must name P2, and consensus must
    // prefer that first-hand rejection over anything else.
    // P2's per-lane KeyGen sequence: pk(0), share(1), echo(2),
    // commitment(3), response(4).
    let plan = FaultPlan::new().tamper(
        2,
        Phase::KeyGen,
        4,
        Tamper::FlipByte {
            offset: 12,
            mask: 0x10,
        },
    );
    let failure = run_with_plan(plan, 903);
    assert_culprit_blamed(&failure, 2);
    assert!(
        failure
            .observations
            .iter()
            .any(|(o, e)| { *o != 2 && matches!(e, DistributedError::ProofRejected { party: 2 }) }),
        "a verifier must hold a first-hand proof rejection: {:?}",
        failure.observations
    );
    assert!(matches!(
        failure.primary,
        DistributedError::ProofRejected { party: 2 }
    ));
}

#[test]
fn forged_proof_response_is_rejected_and_blamed() {
    // P2's response is wholesale replaced with a well-formed, in-range,
    // deterministic scalar lifted from nowhere — exactly the bytes an
    // honest message carries, wrong only algebraically. Verification is
    // the only line of defense and must hold.
    let group = GroupKind::Ecc160.group();
    let mut payload = vec![TAG_DATA];
    payload.extend_from_slice(&ppgr_zkp::tamper::forged_response_bytes(&group, 42));
    let plan = FaultPlan::new().tamper(2, Phase::KeyGen, 4, Tamper::Replace(payload));
    let failure = run_with_plan(plan, 904);
    assert_culprit_blamed(&failure, 2);
    assert!(matches!(
        failure.primary,
        DistributedError::ProofRejected { party: 2 }
    ));
}

// ---- Equivocating broadcasts (per-lane rewrites). ----------------------

#[test]
fn equivocated_keygen_share_is_caught_by_the_echo() {
    // P3 sends the prover (P1) a different challenge share than it
    // broadcasts to everyone else. Without the echo round this would
    // break P1's proof and get *P1* blamed; with it, P1 compares the
    // share against P3's own broadcast digest and blames P3 first-hand.
    // P3's per-lane KeyGen sequence: pk(0), share(1), echo(2), ...
    let plan = FaultPlan::new().equivocate(
        3,
        1,
        Phase::KeyGen,
        1,
        Tamper::FlipByte {
            offset: 10,
            mask: 0x02,
        },
    );
    let failure = run_with_plan(plan, 905);
    assert_culprit_blamed(&failure, 3);
    assert_direct_evidence(&failure, 3);
    // The prover (the equivocation's victim) must never be blamed.
    for (observer, error) in &failure.observations {
        if *observer == 3 {
            continue; // the culprit's own thread disputes the frame
        }
        assert_ne!(
            error.blamed(),
            1,
            "honest prover blamed by {observer}: {error}"
        );
    }
}

#[test]
fn equivocated_encrypt_broadcast_blames_the_sender() {
    // P1's bit vector grows trailing garbage on the lane to P3 only; P2
    // sees clean bytes and learns the truth via P3's abort frame.
    let plan = FaultPlan::new().equivocate(1, 3, Phase::Encrypt, 0, Tamper::Append(vec![0x00]));
    let failure = run_with_plan(plan, 906);
    assert_culprit_blamed(&failure, 1);
    assert_direct_evidence(&failure, 1);
}

// ---- Inconsistent shuffles (duplicated ciphertexts). -------------------

#[test]
fn duplicated_ciphertext_in_hop_chain_is_caught() {
    // P2 duplicates the first ciphertext of P1's set over the second
    // while forwarding the chain to P3 — an inconsistent shuffle that
    // would bias the zero count. Honest processors re-randomize every
    // element, so a repeat is impossible by chance and P3 blames P2.
    let group = GroupKind::Ecc160.group();
    let ct_len = 2 * group.element_len();
    // Chain frame: tag(1) | set count u32(4) | set0: len u32(4) | cts...
    let first_ct = 1 + 4 + 4;
    let plan = FaultPlan::new().equivocate(
        2,
        3,
        Phase::Hop,
        0,
        Tamper::CopyWithin {
            src: first_ct,
            dst: first_ct + ct_len,
            len: ct_len,
        },
    );
    let failure = run_with_plan(plan, 907);
    assert_culprit_blamed(&failure, 2);
    assert_direct_evidence(&failure, 2);
}

#[test]
fn duplicated_ciphertext_in_encrypt_broadcast_is_caught() {
    // Same corruption one phase earlier: P3's published bit vector
    // repeats a ciphertext on every lane; both receivers catch it.
    let group = GroupKind::Ecc160.group();
    let ct_len = 2 * group.element_len();
    let first_ct = 1 + 4; // tag(1) | count u32(4) | cts...
    let plan = FaultPlan::new().tamper(
        3,
        Phase::Encrypt,
        0,
        Tamper::CopyWithin {
            src: first_ct,
            dst: first_ct + ct_len,
            len: ct_len,
        },
    );
    let failure = run_with_plan(plan, 908);
    assert_culprit_blamed(&failure, 3);
    assert_direct_evidence(&failure, 3);
}

// ---- Forged and replayed abort frames. ---------------------------------

fn forged_frame(blamed: usize, phase: Phase, kind: AbortKind, reporter: usize) -> Vec<u8> {
    AbortFrame {
        blamed,
        phase,
        kind,
        reporter,
    }
    .encode()
    .to_vec()
}

#[test]
fn forged_abort_frame_blames_the_forger_not_the_framed_party() {
    // P3 injects a frame accusing honest P1 of a timeout. P1 is alive to
    // read it, refutes it, and names the frame's claimed reporter — the
    // forger. Bystanders hold hearsay whose `reporter` is the forger, so
    // consensus must land on P3 even though nobody saw bad bytes.
    let plan = FaultPlan::new().forge(
        3,
        Phase::Encrypt,
        forged_frame(1, Phase::Encrypt, AbortKind::Timeout, 3),
    );
    let failure = run_with_plan(plan, 909);
    assert_culprit_blamed(&failure, 3);
    assert!(
        matches!(
            failure.primary,
            DistributedError::FalselyAccused { party: 3, .. }
        ),
        "the framed party's refutation must win consensus: {}",
        failure.primary
    );
}

#[test]
fn replayed_stale_abort_frame_blames_the_replayer() {
    // P2 replays a frame that looks like a long-past failure: it accuses
    // P3 of a Gain-phase disconnect during the Hop phase. The accused is
    // demonstrably alive, so the stale frame converts to a refutation
    // naming its reporter — the replayer.
    let plan = FaultPlan::new().forge(
        2,
        Phase::Hop,
        forged_frame(3, Phase::Gain, AbortKind::Disconnected, 2),
    );
    let failure = run_with_plan(plan, 910);
    assert_culprit_blamed(&failure, 2);
    assert!(matches!(
        failure.primary,
        DistributedError::FalselyAccused { party: 2, .. }
    ));
}

#[test]
fn second_forged_frame_cannot_overwrite_the_first() {
    // P3 injects two contradictory frames in the same phase. The
    // seen-abort latch must keep every receiver's exit derived from the
    // *first* frame: P2 (framed by the second) must exit as a hearsay
    // observer of the first accusation, not as a falsely-accused party.
    let plan = FaultPlan::new()
        .forge(
            3,
            Phase::Encrypt,
            forged_frame(1, Phase::Encrypt, AbortKind::Disconnected, 3),
        )
        .forge(
            3,
            Phase::Encrypt,
            forged_frame(2, Phase::Encrypt, AbortKind::Disconnected, 3),
        );
    let failure = run_with_plan(plan, 911);
    assert_culprit_blamed(&failure, 3);
    let p2 = failure
        .observations
        .iter()
        .find(|(o, _)| *o == 2)
        .map(|(_, e)| e)
        .expect("P2 must report an observation");
    assert!(
        matches!(
            p2,
            DistributedError::Reported {
                party: 1,
                reporter: 3,
                ..
            }
        ),
        "P2 must derive its exit from the first frame, got: {p2}"
    );
}

#[test]
fn self_accusing_forged_frame_blames_the_delivering_lane() {
    // A frame whose reporter accuses itself cannot come from honest code
    // (fail() never blames its own author). Receivers bin it as a
    // protocol violation by whoever delivered it — here the forger's own
    // lane, so the forger is blamed with first-hand evidence everywhere.
    let plan = FaultPlan::new().forge(
        1,
        Phase::Encrypt,
        forged_frame(1, Phase::Encrypt, AbortKind::Timeout, 1),
    );
    let failure = run_with_plan(plan, 912);
    assert_culprit_blamed(&failure, 1);
    assert_direct_evidence(&failure, 1);
    assert!(matches!(
        failure.primary,
        DistributedError::Protocol { party: 1, .. }
    ));
}

// ---- Fault-free plans must not perturb anything. -----------------------

#[test]
fn empty_plan_with_misbehavior_machinery_matches_the_default_runner() {
    // The misbehavior tier (tamper hooks, echo round, integrity checks)
    // must consume no randomness and change no bytes on the honest path:
    // a session run under an empty plan is bit-identical to the default
    // runner.
    let p = params(913);
    let mut rng = HashDrbg::seed_from_u64(p.seed());
    let (profile, infos) = p.random_population(&mut rng);
    let plain = run_distributed(&p, profile.clone(), infos.clone()).unwrap();
    let scripted = run_distributed_with(
        &p,
        profile,
        infos,
        DistributedConfig {
            budget: PhaseBudget::uniform(Duration::from_secs(30)),
            faults: Some(Arc::new(FaultPlan::new())),
        },
    )
    .unwrap();
    assert_eq!(plain.ranks, scripted.ranks);
    assert!(scripted.report.is_clean());
}
