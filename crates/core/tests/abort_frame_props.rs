//! Property tests for the abort-frame wire format: encoding round-trips
//! exactly, and *no* byte-level derangement of a frame — truncation,
//! oversizing, bit flips — may ever panic the parser. A hostile peer owns
//! every byte it sends; the parser's only moves are a typed value or a
//! typed [`WireError`].

use ppgr_core::wire::{parse_frame, AbortFrame, AbortKind, Frame};
use ppgr_net::Phase;
use proptest::prelude::*;

fn phase_from_index(i: usize) -> Phase {
    Phase::ALL[i % Phase::ALL.len()]
}

fn kind_from_index(i: usize) -> AbortKind {
    [
        AbortKind::Timeout,
        AbortKind::Disconnected,
        AbortKind::ProofRejected,
        AbortKind::Protocol,
    ][i % 4]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_parse_round_trips(
        blamed in 0u32..=u32::MAX,
        phase_idx in 0usize..6,
        kind_idx in 0usize..4,
        reporter in 0u32..=u32::MAX,
    ) {
        let frame = AbortFrame {
            blamed: blamed as usize,
            phase: phase_from_index(phase_idx),
            kind: kind_from_index(kind_idx),
            reporter: reporter as usize,
        };
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), AbortFrame::ENCODED_LEN);
        prop_assert_eq!(parse_frame(&bytes), Ok(Frame::Abort(frame)));
    }

    #[test]
    fn truncated_frames_error_without_panicking(
        blamed in 0u32..1000,
        phase_idx in 0usize..6,
        kind_idx in 0usize..4,
        reporter in 0u32..1000,
        keep in 0usize..11,
    ) {
        let frame = AbortFrame {
            blamed: blamed as usize,
            phase: phase_from_index(phase_idx),
            kind: kind_from_index(kind_idx),
            reporter: reporter as usize,
        };
        let bytes = frame.encode().slice(..keep);
        // Every strict prefix must fail with a typed error — a truncated
        // abort tag must never half-parse into blame.
        prop_assert!(parse_frame(&bytes).is_err());
    }

    #[test]
    fn oversized_frames_error_without_panicking(
        blamed in 0u32..1000,
        phase_idx in 0usize..6,
        kind_idx in 0usize..4,
        reporter in 0u32..1000,
        extra in prop::collection::vec(0u8..=255, 1..8),
    ) {
        let frame = AbortFrame {
            blamed: blamed as usize,
            phase: phase_from_index(phase_idx),
            kind: kind_from_index(kind_idx),
            reporter: reporter as usize,
        };
        let mut bytes = frame.encode().to_vec();
        bytes.extend_from_slice(&extra);
        // Trailing garbage after a complete frame is rejected, not
        // silently dropped (the remaining-byte check in `Reader::done`).
        prop_assert!(parse_frame(&bytes::Bytes::from(bytes)).is_err());
    }

    #[test]
    fn bit_flipped_frames_parse_or_error_but_never_panic(
        blamed in 0u32..1000,
        phase_idx in 0usize..6,
        kind_idx in 0usize..4,
        reporter in 0u32..1000,
        flip_at in 0usize..11,
        flip_mask in 1u8..=255,
    ) {
        let frame = AbortFrame {
            blamed: blamed as usize,
            phase: phase_from_index(phase_idx),
            kind: kind_from_index(kind_idx),
            reporter: reporter as usize,
        };
        let mut bytes = frame.encode().to_vec();
        bytes[flip_at] ^= flip_mask;
        // A flipped id byte may still parse (ids are unauthenticated
        // integers); a flipped tag, phase, or kind byte must error. In
        // either case: no panic, and an accepted frame re-encodes to the
        // exact bytes that were parsed.
        match parse_frame(&bytes::Bytes::from(bytes.clone())) {
            Ok(Frame::Abort(f)) => prop_assert_eq!(f.encode().to_vec(), bytes),
            Ok(Frame::Data(_)) => {
                // The tag byte flipped into TAG_DATA: fine, the payload
                // is opaque at this layer.
                prop_assert_eq!(bytes[0], ppgr_core::wire::TAG_DATA);
            }
            Err(_) => {}
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_parser(
        raw in prop::collection::vec(0u8..=255, 0..24),
    ) {
        let _ = parse_frame(&bytes::Bytes::from(raw));
    }
}
