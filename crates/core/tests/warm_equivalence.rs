//! Warm-vs-cold equivalence properties for the offline stock tiers.
//!
//! A session served from the precompute pool — whether the stock carries
//! only mask halves or the full keygen tier — must be indistinguishable
//! on the wire from a cold session: identical ranks AND identical
//! traffic transcripts, for arbitrary `(n, seed)`.

use ppgr_core::{
    FrameworkParams, GroupRanking, OfflineStock, Outcome, Questionnaire, SessionMachine, SortError,
    SortMachine, SortOptions, StockFingerprint,
};
use ppgr_group::GroupKind;
use proptest::prelude::*;

fn machine_for(n: usize, seed: u64) -> SessionMachine {
    let params = FrameworkParams::builder(Questionnaire::synthetic(1, 2))
        .participants(n)
        .top_k(1)
        .attr_bits(6)
        .weight_bits(3)
        .mask_bits(6)
        .group(GroupKind::Ecc160)
        .seed(seed)
        .build()
        .expect("valid params");
    GroupRanking::new(params)
        .with_random_population()
        .into_machine()
        .expect("machine")
}

fn run(mut machine: SessionMachine) -> Outcome {
    while !machine.is_done() {
        machine.step().expect("session step");
    }
    machine.into_outcome().expect("finished outcome")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn warm_tiers_match_cold_ranks_and_transcripts(n in 2usize..5, seed in 0u64..10_000) {
        let cold = run(machine_for(n, seed));

        let mut masks = machine_for(n, seed);
        let stock = OfflineStock::generate_masks_only(masks.offline_fingerprint());
        prop_assert!(masks.attach_offline_stock(stock), "masks stock must attach");
        let masks = run(masks);

        let mut keygen = machine_for(n, seed);
        let stock = OfflineStock::generate(keygen.offline_fingerprint());
        prop_assert!(keygen.attach_offline_stock(stock), "keygen stock must attach");
        let keygen = run(keygen);

        // Ranks agree and the wire transcripts are bit-identical: the
        // tiers change where the exponentiations happen, never what is
        // sent.
        prop_assert_eq!(cold.ranks(), masks.ranks());
        prop_assert_eq!(cold.ranks(), keygen.ranks());
        prop_assert_eq!(cold.traffic(), masks.traffic());
        prop_assert_eq!(cold.traffic(), keygen.traffic());
    }
}

#[test]
fn wrong_group_stock_is_rejected_with_a_typed_error() {
    // A mis-keyed pool lane (stock minted for a different group
    // instantiation) must surface as `StockGroupMismatch`, not silently
    // regenerate cold.
    let group = GroupKind::Ecc160.group();
    let values: Vec<_> = [3u64, 1, 2]
        .iter()
        .map(|&v| ppgr_bigint::BigUint::from(v))
        .collect();
    let mut machine =
        SortMachine::new(&group, &values, 6, SortOptions::default(), 0).expect("machine");
    let foreign = StockFingerprint::new(9, 3, 6, GroupKind::Ecc224);
    let stock = OfflineStock::generate_masks_only(foreign);
    match machine.attach_offline_stock(stock) {
        Err(SortError::StockGroupMismatch { expected, got }) => {
            assert_eq!(expected, GroupKind::Ecc160);
            assert_eq!(got, GroupKind::Ecc224);
        }
        other => panic!("expected StockGroupMismatch, got {other:?}"),
    }
}

#[test]
fn matching_group_but_wrong_shape_is_still_an_internal_error() {
    // The group check is the typed front door; shape mismatches within
    // the right group keep their existing internal-error path.
    let group = GroupKind::Ecc160.group();
    let values: Vec<_> = [3u64, 1, 2]
        .iter()
        .map(|&v| ppgr_bigint::BigUint::from(v))
        .collect();
    let mut machine =
        SortMachine::new(&group, &values, 6, SortOptions::default(), 0).expect("machine");
    // Right group, wrong participant count.
    let stock =
        OfflineStock::generate_masks_only(StockFingerprint::new(9, 4, 6, GroupKind::Ecc160));
    assert!(matches!(
        machine.attach_offline_stock(stock),
        Err(SortError::Internal(_))
    ));
}
