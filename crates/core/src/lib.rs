//! The privacy-preserving group ranking framework — the paper's core
//! contribution (Li, Zhao, Xue, Silva — ICDCS 2012).
//!
//! An initiator `P₀` and `n` participants jointly rank the participants by
//! the gain function of Definition 1 so that:
//!
//! * nobody's private vector leaks (*private input hiding*),
//! * no party learns any gain value (*gain secure*), and
//! * up to `n−2` colluders cannot link a gain to its owner's identity as
//!   long as the owner's final rank is hidden (*identity unlinkability*).
//!
//! The three protocol phases (Fig. 1 of the paper) map to modules:
//!
//! | phase | module |
//! |-------|--------|
//! | secure gain computation | [`gain`] |
//! | unlinkable gain comparison (the multiparty sorting protocol) | [`sorting`] + [`circuit`] |
//! | ranking submission | [`submit`] |
//!
//! [`framework::GroupRanking`] orchestrates all three;
//! [`games`] implements the security-game harnesses of Definitions 5/7;
//! [`analysis`] encodes the Sec. VI-B complexity formulas.
//!
//! # Example
//!
//! ```
//! use ppgr_core::{AttributeKind, FrameworkParams, GroupRanking, Questionnaire};
//! use ppgr_group::GroupKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let q = Questionnaire::builder()
//!     .attribute("age", AttributeKind::EqualTo)
//!     .attribute("friends", AttributeKind::GreaterThan)
//!     .build()?;
//! let params = FrameworkParams::builder(q)
//!     .participants(4)
//!     .top_k(2)
//!     .group(GroupKind::Ecc160)
//!     .attr_bits(8)
//!     .weight_bits(4)
//!     .mask_bits(8)
//!     .seed(7)
//!     .build()?;
//! let outcome = GroupRanking::new(params).with_random_population().run()?;
//! assert_eq!(outcome.top_k().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod analysis;
mod attrs;
pub mod circuit;
pub mod distributed;
mod framework;
pub mod gain;
pub mod games;
pub mod offline;
mod params;
pub mod sorting;
pub mod submit;
mod timing;
pub mod wire;

pub use attrs::{
    gain as compute_gain, partial_gain as compute_partial_gain, AttributeKind, AttributeSpec,
    CriterionVector, InfoVector, InitiatorProfile, Questionnaire, QuestionnaireBuilder,
    VectorError, WeightVector,
};
pub use distributed::{
    consensus_primary, run_distributed, run_distributed_with, DistributedConfig, DistributedError,
    DistributedFailure, DistributedOutcome,
};
pub use framework::{GroupRanking, Outcome, PhaseTimings, RunError, SessionMachine, SessionStatus};
pub use offline::{KeyStock, OfflineStock, StockFingerprint, StockTier, STOCK_LAYOUT};
// Re-exported because scratch recycling ([`SessionMachine::adopt_hop_scratch`])
// names it in this crate's public signatures.
pub use params::{bit_length, FrameworkParams, FrameworkParamsBuilder, ParamError};
pub use ppgr_elgamal::Ciphertext;
pub use sorting::{
    unlinkable_sort, verify_deferred_jobs, KeygenVerifyJob, SortError, SortMachine, SortOptions,
    SortOutcome, SortStatus,
};
pub use timing::PartyTimer;
