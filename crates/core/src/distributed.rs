//! A genuinely distributed execution of the framework: every party is an
//! OS thread, and every protocol message crosses a channel as *encoded
//! bytes* ([`crate::wire`]) — no shared state beyond the public
//! parameters.
//!
//! The orchestrated runner ([`crate::GroupRanking`]) is the instrumented
//! reference (per-party timing, traffic logs); this module demonstrates
//! that the very same protocol runs correctly as a message-passing system
//! and is the starting point for a networked deployment. Integration
//! tests assert both runners produce identical rankings.

use crate::attrs::{InfoVector, InitiatorProfile};
use crate::circuit::compare_encrypted;
use crate::gain::to_unsigned;
use crate::params::FrameworkParams;
use crate::submit::{verify_submissions, Submission, VerificationReport};
use crate::timing::PartyTimer;
use crate::wire::{Reader, Writer};
use ppgr_bigint::Fp;
use ppgr_dotprod::{default_field, DotProduct, Round1Message, Round2Message};
use ppgr_elgamal::{encrypt_bits, Ciphertext, ExpElGamal, JointKey, KeyPair};
use ppgr_group::Group;
use ppgr_hash::HashDrbg;
use ppgr_net::{LocalMesh, PartyHandle, TrafficLog};
use ppgr_zkp::{verify_batch, SchnorrProver, SchnorrTranscript};
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;
use std::thread;

/// Error from the distributed execution.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct DistributedError {
    party: usize,
    what: String,
}

impl fmt::Display for DistributedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "party {} failed: {}", self.party, self.what)
    }
}

impl Error for DistributedError {}

/// Outcome of a distributed run.
#[derive(Clone, Debug)]
pub struct DistributedOutcome {
    /// Each participant's self-computed rank (index `j−1` for party `j`).
    pub ranks: Vec<usize>,
    /// The initiator's verification report over the received submissions.
    pub report: VerificationReport,
}

type Net = PartyHandle<bytes::Bytes>;

fn err<T>(party: usize, what: impl Into<String>) -> Result<T, DistributedError> {
    Err(DistributedError {
        party,
        what: what.into(),
    })
}

macro_rules! wire_try {
    ($party:expr, $e:expr) => {
        match $e {
            Ok(v) => v,
            Err(e) => return err($party, e.to_string()),
        }
    };
}

/// Runs the full framework with one thread per party over a channel mesh.
///
/// # Errors
///
/// Returns [`DistributedError`] if any party hits a malformed message, a
/// failed proof, or a disconnected peer.
pub fn run_distributed(
    params: &FrameworkParams,
    profile: InitiatorProfile,
    infos: Vec<InfoVector>,
) -> Result<DistributedOutcome, DistributedError> {
    let n = params.participants();
    assert_eq!(infos.len(), n, "population size mismatch");
    let handles = LocalMesh::new::<bytes::Bytes>(n + 1);
    let mut handles: Vec<Option<Net>> = handles.into_iter().map(Some).collect();

    let initiator_net = match handles[0].take() {
        Some(h) => h,
        None => return err(0, "missing initiator handle"),
    };
    let params0 = params.clone();
    let initiator = thread::spawn(move || initiator_thread(params0, profile, initiator_net));

    let mut participants = Vec::with_capacity(n);
    for (idx, info) in infos.into_iter().enumerate() {
        let net = match handles[idx + 1].take() {
            Some(h) => h,
            None => return err(idx + 1, "missing participant handle"),
        };
        let params_j = params.clone();
        participants.push(thread::spawn(move || {
            participant_thread(params_j, info, net)
        }));
    }

    let report = initiator.join().map_err(|_| DistributedError {
        party: 0,
        what: "initiator thread panicked".into(),
    })??;
    let mut ranks = vec![0usize; n];
    for (idx, t) in participants.into_iter().enumerate() {
        let rank = t.join().map_err(|_| DistributedError {
            party: idx + 1,
            what: "thread panicked".into(),
        })??;
        ranks[idx] = rank;
    }
    Ok(DistributedOutcome { ranks, report })
}

/// The initiator (`P₀`): answers dot-product rounds, then collects and
/// verifies submissions.
fn initiator_thread(
    params: FrameworkParams,
    profile: InitiatorProfile,
    net: Net,
) -> Result<VerificationReport, DistributedError> {
    let me = 0usize;
    let n = params.participants();
    let field = default_field();
    let proto = DotProduct::new(field.clone());
    let mut rng = HashDrbg::seed_from_u64(params.seed()).fork(b"party-0");
    let q = params.questionnaire();
    let (m, t) = (q.dimension(), q.equal_to_count());
    let h = params.mask_bits();
    let top = 1u64 << (h - 1);
    let rho = top | rng.gen_range(0..top);

    // ρ-scaled receiver vector (shared across participants).
    let w = profile.weights.values();
    let v0 = profile.criterion.values();
    let mut v_recv: Vec<Fp> = Vec::with_capacity(m + t);
    for &wk in &w[t..m] {
        v_recv.push(field.from_i128(rho as i128 * wk as i128));
    }
    for &wk in &w[..t] {
        v_recv.push(field.from_i128(-(rho as i128) * wk as i128));
    }
    for k in 0..t {
        v_recv.push(field.from_i128(2 * rho as i128 * w[k] as i128 * v0[k] as i128));
    }

    // Phase 1: serve each participant's dot product, in party order.
    for j in 1..=n {
        let bytes = wire_try!(me, net.recv_from(j));
        let mut r = Reader::new(bytes);
        let rows = wire_try!(me, r.len());
        let mut qx = Vec::with_capacity(rows);
        for _ in 0..rows {
            qx.push(wire_try!(me, r.fp_vec(&field)));
        }
        let c_prime = wire_try!(me, r.fp_vec(&field));
        let g = wire_try!(me, r.fp_vec(&field));
        wire_try!(me, r.done());
        let msg1 = Round1Message { qx, c_prime, g };

        let rho_j = rng.gen_range(0..rho);
        let alpha = field.from_i128(rho_j as i128);
        let msg2 = proto.receiver_round2(&v_recv, &alpha, &msg1, &mut rng);
        let mut w_out = Writer::new();
        w_out.put_fp(&msg2.a);
        w_out.put_fp(&msg2.h);
        wire_try!(me, net.send(j, w_out.finish()));
    }

    // Phase 3: gather one submission-or-decline from every participant.
    let mut submissions = Vec::new();
    for j in 1..=n {
        let bytes = wire_try!(me, net.recv_from(j));
        let mut r = Reader::new(bytes);
        let claimed = wire_try!(me, r.u64()) as usize;
        if claimed == 0 {
            wire_try!(me, r.done());
            continue; // decline
        }
        let count = wire_try!(me, r.len());
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(wire_try!(me, r.u64()));
        }
        wire_try!(me, r.done());
        let info = match InfoVector::new(q, values, params.attr_bits()) {
            Ok(i) => i,
            Err(e) => return err(me, format!("bad submission from {j}: {e}")),
        };
        submissions.push(Submission {
            party: j,
            claimed_rank: claimed,
            info,
        });
    }
    let log = TrafficLog::new();
    let mut timer = PartyTimer::new(1);
    Ok(verify_submissions(
        q,
        &profile,
        &submissions,
        params.top_k(),
        &log,
        &mut timer,
        0,
    ))
}

/// One participant (`P_j`): full three-phase protocol.
fn participant_thread(
    params: FrameworkParams,
    info: InfoVector,
    net: Net,
) -> Result<usize, DistributedError> {
    let me = net.id(); // 1..=n
    let n = params.participants();
    let l = params.beta_bits();
    let group: Group = params.group().group();
    let scheme = ExpElGamal::new(group.clone());
    let field = default_field();
    let proto = DotProduct::new(field.clone());
    let mut rng = HashDrbg::seed_from_u64(params.seed()).fork(format!("party-{me}").as_bytes());
    let q = params.questionnaire();
    let (m, t) = (q.dimension(), q.equal_to_count());

    // ---- Phase 1: masked gain via the secure dot product. -------------
    let vj = info.values();
    let mut w_vec: Vec<Fp> = Vec::with_capacity(m + t);
    for &vk in &vj[t..m] {
        w_vec.push(field.from_i128(vk as i128));
    }
    for &vk in &vj[..t] {
        w_vec.push(field.from_i128(vk as i128 * vk as i128));
    }
    for &vk in &vj[..t] {
        w_vec.push(field.from_i128(vk as i128));
    }
    let (state, msg1) = proto.sender_round1(&w_vec, &mut rng);
    let mut w_out = Writer::new();
    wire_try!(me, w_out.put_len(msg1.qx.len()));
    for row in &msg1.qx {
        wire_try!(me, w_out.put_fp_vec(row));
    }
    wire_try!(me, w_out.put_fp_vec(&msg1.c_prime));
    wire_try!(me, w_out.put_fp_vec(&msg1.g));
    wire_try!(me, net.send(0, w_out.finish()));

    let bytes = wire_try!(me, net.recv_from(0));
    let mut r = Reader::new(bytes);
    let a = wire_try!(me, r.fp(&field));
    let hh = wire_try!(me, r.fp(&field));
    wire_try!(me, r.done());
    let beta_signed = match state.finish(&Round2Message { a, h: hh }).to_i128_centered() {
        Some(v) => v,
        None => return err(me, "masked gain out of i128 range"),
    };
    let beta = to_unsigned(beta_signed, l);

    // ---- Phase 2, step 5: keys + proofs of knowledge. ------------------
    let kp = KeyPair::generate(&group, &mut rng);
    {
        let mut w_out = Writer::new();
        w_out.put_element(&group, kp.public_key());
        wire_try!(me, broadcast_participants(&net, n, w_out.finish()));
    }
    let mut public_shares: Vec<ppgr_group::Element> = vec![group.identity(); n + 1];
    public_shares[me] = kp.public_key().clone();
    for j in participants_except(n, me) {
        let bytes = wire_try!(me, net.recv_from(j));
        let mut r = Reader::new(bytes);
        public_shares[j] = wire_try!(me, r.element(&group));
        wire_try!(me, r.done());
    }

    // Sequential proofs, prover order 1..=n. Verifier challenge shares are
    // broadcast so every verifier can form the same challenge sum.
    // Transcripts are collected as they arrive and verified in one batch
    // (a single aggregate multi-exponentiation) after the round; on
    // rejection the fallback scan inside `verify_batch` runs in prover
    // order, so the first dishonest prover is still the one named.
    let mut foreign_proofs: Vec<(usize, SchnorrTranscript)> = Vec::with_capacity(n - 1);
    #[allow(clippy::needless_range_loop)] // protocol round over 1-based party IDs
    for prover in 1..=n {
        if prover == me {
            let (st, commitment) = SchnorrProver::commit(&group, kp.secret_key().clone(), &mut rng);
            let mut w_out = Writer::new();
            w_out.put_element(&group, &commitment);
            wire_try!(me, broadcast_participants(&net, n, w_out.finish()));
            let mut total = group.scalar_from_u64(0);
            for j in participants_except(n, me) {
                let bytes = wire_try!(me, net.recv_from(j));
                let mut r = Reader::new(bytes);
                total = group.scalar_add(&total, &wire_try!(me, r.scalar(&group)));
                wire_try!(me, r.done());
            }
            let transcript = st.respond(&total, commitment);
            let mut w_out = Writer::new();
            w_out.put_scalar(&group, &transcript.response);
            wire_try!(me, broadcast_participants(&net, n, w_out.finish()));
        } else {
            let bytes = wire_try!(me, net.recv_from(prover));
            let mut r = Reader::new(bytes);
            let commitment = wire_try!(me, r.element(&group));
            wire_try!(me, r.done());
            // My challenge share, broadcast to everyone.
            let c_mine = group.random_scalar(&mut rng);
            let mut w_out = Writer::new();
            w_out.put_scalar(&group, &c_mine);
            wire_try!(me, broadcast_participants(&net, n, w_out.finish()));
            // Gather the other verifiers' shares.
            let mut total = c_mine;
            for j in participants_except(n, me) {
                if j == prover {
                    continue;
                }
                let bytes = wire_try!(me, net.recv_from(j));
                let mut r = Reader::new(bytes);
                total = group.scalar_add(&total, &wire_try!(me, r.scalar(&group)));
                wire_try!(me, r.done());
            }
            let bytes = wire_try!(me, net.recv_from(prover));
            let mut r = Reader::new(bytes);
            let response = wire_try!(me, r.scalar(&group));
            wire_try!(me, r.done());
            // g^z = h · y^Σc, checked for all provers at once below.
            foreign_proofs.push((
                prover,
                SchnorrTranscript {
                    commitment,
                    challenge: total,
                    response,
                },
            ));
        }
    }
    {
        let items: Vec<(&ppgr_group::Element, &SchnorrTranscript)> = foreign_proofs
            .iter()
            .map(|(p, t)| (&public_shares[*p], t))
            .collect();
        if let Err(i) = verify_batch(&group, &items) {
            let prover = foreign_proofs[i].0;
            return err(me, format!("proof of key knowledge by {prover} rejected"));
        }
    }
    let joint = JointKey::combine(
        &group,
        &(1..=n)
            .map(|j| public_shares[j].clone())
            .collect::<Vec<_>>(),
    );

    // ---- Step 6: bitwise encryption, broadcast. ------------------------
    let my_bits = encrypt_bits(&scheme, joint.public_key(), &beta, l, &mut rng);
    {
        let mut w_out = Writer::new();
        wire_try!(me, w_out.put_ciphertexts(&group, &my_bits));
        wire_try!(me, broadcast_participants(&net, n, w_out.finish()));
    }
    let mut all_bits: Vec<Vec<Ciphertext>> = vec![Vec::new(); n + 1];
    all_bits[me] = my_bits;
    for j in participants_except(n, me) {
        let bytes = wire_try!(me, net.recv_from(j));
        let mut r = Reader::new(bytes);
        all_bits[j] = wire_try!(me, r.ciphertexts(&group));
        wire_try!(me, r.done());
        if all_bits[j].len() != l {
            return err(
                me,
                format!("party {j} published {} bit ciphertexts", all_bits[j].len()),
            );
        }
    }

    // ---- Step 7: comparisons against every opponent. --------------------
    let mut my_set: Vec<Ciphertext> = Vec::with_capacity((n - 1) * l);
    for j in participants_except(n, me) {
        my_set.extend(compare_encrypted(&scheme, &beta, &all_bits[j], l));
    }

    // ---- Step 8: the shuffle-decrypt chain. -----------------------------
    let process = |sets: &mut Vec<Vec<Ciphertext>>, rng: &mut HashDrbg| {
        for (owner_minus_1, set) in sets.iter_mut().enumerate() {
            if owner_minus_1 + 1 == me {
                continue;
            }
            for ct in set.iter_mut() {
                let c = scheme.partial_decrypt(ct, kp.secret_key());
                let rr = group.random_nonzero_scalar(rng);
                *ct = scheme.randomize_plaintext(&c, &rr);
            }
            use rand::seq::SliceRandom;
            set.shuffle(rng);
        }
    };
    let encode_sets = |sets: &[Vec<Ciphertext>]| {
        let mut w_out = Writer::new();
        w_out.put_len(sets.len())?;
        for set in sets {
            w_out.put_ciphertexts(&group, set)?;
        }
        Ok::<_, crate::wire::WireError>(w_out.finish())
    };
    let my_final_set: Vec<Ciphertext>;
    if me == 1 {
        // Collect everyone's set, process, pass on.
        let mut sets: Vec<Vec<Ciphertext>> = vec![Vec::new(); n];
        sets[0] = my_set;
        for j in 2..=n {
            let bytes = wire_try!(me, net.recv_from(j));
            let mut r = Reader::new(bytes);
            sets[j - 1] = wire_try!(me, r.ciphertexts(&group));
            wire_try!(me, r.done());
        }
        process(&mut sets, &mut rng);
        if n >= 2 {
            let encoded = wire_try!(me, encode_sets(&sets));
            wire_try!(me, net.send(2, encoded));
        }
        // My set comes back from P_n at the end.
        let bytes = wire_try!(me, net.recv_from(n));
        let mut r = Reader::new(bytes);
        my_final_set = wire_try!(me, r.ciphertexts(&group));
        wire_try!(me, r.done());
    } else {
        // Send my comparison set to P₁ first.
        let mut w_out = Writer::new();
        wire_try!(me, w_out.put_ciphertexts(&group, &my_set));
        wire_try!(me, net.send(1, w_out.finish()));
        // Receive V from my predecessor, process, forward.
        let bytes = wire_try!(me, net.recv_from(me - 1));
        let mut r = Reader::new(bytes);
        let count = wire_try!(me, r.len());
        if count != n {
            return err(me, "chain vector has wrong arity");
        }
        let mut sets = Vec::with_capacity(n);
        for _ in 0..n {
            sets.push(wire_try!(me, r.ciphertexts(&group)));
        }
        wire_try!(me, r.done());
        process(&mut sets, &mut rng);
        if me < n {
            let encoded = wire_try!(me, encode_sets(&sets));
            wire_try!(me, net.send(me + 1, encoded));
            // Own set returns from P_n.
            let bytes = wire_try!(me, net.recv_from(n));
            let mut r = Reader::new(bytes);
            my_final_set = wire_try!(me, r.ciphertexts(&group));
            wire_try!(me, r.done());
        } else {
            // I am P_n: return every set to its owner; keep mine.
            for owner in 1..n {
                let mut w_out = Writer::new();
                wire_try!(me, w_out.put_ciphertexts(&group, &sets[owner - 1]));
                wire_try!(me, net.send(owner, w_out.finish()));
            }
            my_final_set = match sets.pop() {
                Some(set) => set,
                None => return err(me, "chain vector lost the final set"),
            };
        }
    }

    // ---- Step 9: count zeros → rank. ------------------------------------
    let zeros = my_final_set
        .iter()
        .filter(|ct| scheme.decrypts_to_zero(kp.secret_key(), ct))
        .count();
    let rank = zeros + 1;

    // ---- Phase 3: submit or decline. ------------------------------------
    let mut w_out = Writer::new();
    if rank <= params.top_k() {
        w_out.put_u64(rank as u64);
        wire_try!(me, w_out.put_len(info.values().len()));
        for &v in info.values() {
            w_out.put_u64(v);
        }
    } else {
        w_out.put_u64(0); // decline
    }
    wire_try!(me, net.send(0, w_out.finish()));

    Ok(rank)
}

/// Participant ids `1..=n` except `me`.
fn participants_except(n: usize, me: usize) -> impl Iterator<Item = usize> {
    (1..=n).filter(move |&j| j != me)
}

/// Broadcast to participant ids only (not the initiator).
fn broadcast_participants(
    net: &Net,
    n: usize,
    bytes: bytes::Bytes,
) -> Result<(), ppgr_net::MeshError> {
    for j in 1..=n {
        if j != net.id() {
            net.send(j, bytes.clone())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Questionnaire;
    use crate::framework::GroupRanking;
    use ppgr_group::GroupKind;

    fn params(n: usize, seed: u64) -> FrameworkParams {
        FrameworkParams::builder(Questionnaire::synthetic(1, 2))
            .participants(n)
            .top_k(2)
            .attr_bits(6)
            .weight_bits(3)
            .mask_bits(6)
            .group(GroupKind::Ecc160)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn distributed_run_produces_valid_ranking() {
        let p = params(4, 51);
        let mut rng = HashDrbg::seed_from_u64(p.seed());
        let (profile, infos) = p.random_population(&mut rng);
        let out = run_distributed(&p, profile.clone(), infos.clone()).unwrap();

        // Validate against plaintext gains.
        let q = p.questionnaire();
        let gains: Vec<i128> = infos
            .iter()
            .map(|i| crate::attrs::gain(q, &profile, i))
            .collect();
        for a in 0..gains.len() {
            for b in 0..gains.len() {
                if gains[a] > gains[b] {
                    assert!(
                        out.ranks[a] < out.ranks[b],
                        "gains {gains:?} ranks {:?}",
                        out.ranks
                    );
                }
            }
        }
        assert!(out.report.is_clean());
        assert!(!out.report.accepted.is_empty());
    }

    #[test]
    fn distributed_matches_orchestrated() {
        let p = params(3, 77);
        let mut rng = HashDrbg::seed_from_u64(p.seed());
        let (profile, infos) = p.random_population(&mut rng);

        let orchestrated = GroupRanking::new(p.clone())
            .with_random_population()
            .run()
            .unwrap();
        let distributed = run_distributed(&p, profile, infos).unwrap();
        assert_eq!(orchestrated.ranks(), &distributed.ranks[..]);
    }

    #[test]
    fn two_party_chain_works() {
        let p = params(2, 5);
        let mut rng = HashDrbg::seed_from_u64(p.seed());
        let (profile, infos) = p.random_population(&mut rng);
        let out = run_distributed(&p, profile, infos).unwrap();
        let mut sorted = out.ranks.clone();
        sorted.sort_unstable();
        assert!(sorted == vec![1, 2] || sorted == vec![1, 1]);
    }
}
