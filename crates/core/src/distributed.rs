//! A genuinely distributed execution of the framework: every party is an
//! OS thread, and every protocol message crosses a channel as *encoded
//! bytes* ([`crate::wire`]) — no shared state beyond the public
//! parameters.
//!
//! The orchestrated runner ([`crate::GroupRanking`]) is the instrumented
//! reference (per-party timing, traffic logs); this module demonstrates
//! that the very same protocol runs correctly as a message-passing system
//! and is the starting point for a networked deployment. Integration
//! tests assert both runners produce identical rankings.
//!
//! # Fault tolerance
//!
//! The protocol is strictly lockstep, so a single crashed or silent party
//! would block every other party forever if receives were unbounded.
//! Every blocking wait here is bounded by a per-phase allowance
//! ([`PhaseBudget`]), failures are typed with *blame*
//! ([`DistributedError`]), and the first party to observe a failure
//! broadcasts an abort frame ([`crate::wire::AbortFrame`]) so survivors
//! exit within one deadline — adopting the original blame — instead of
//! cascading timeouts that would blame innocent intermediaries.
//! Deterministic fault injection ([`FaultPlan`]) exercises all of this in
//! tests; see `docs/FAULTS.md` for the fault model.

use crate::attrs::{InfoVector, InitiatorProfile};
use crate::circuit::compare_encrypted;
use crate::gain::to_unsigned;
use crate::params::FrameworkParams;
use crate::submit::{verify_submissions, Submission, VerificationReport};
use crate::timing::PartyTimer;
use crate::wire::{parse_frame, AbortFrame, AbortKind, Frame, Reader, Writer};
use bytes::Bytes;
use ppgr_bigint::Fp;
use ppgr_dotprod::{default_field, DotProduct, Round1Message, Round2Message};
use ppgr_elgamal::{encrypt_bits, Ciphertext, ExpElGamal, JointKey, KeyPair};
use ppgr_group::{Group, Scalar};
use ppgr_hash::{HashDrbg, Sha256};
use ppgr_net::{
    CrashStash, FaultPlan, FaultyMesh, LocalMesh, MeshError, Phase, PhaseBudget, TrafficLog,
};
use ppgr_zkp::{verify_batch, SchnorrProver, SchnorrTranscript};
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Error from the distributed execution, carrying blame: the party id
/// each variant names is the party held responsible, not (necessarily)
/// the party that reported it.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum DistributedError {
    /// The blamed party sent nothing before the phase deadline (a wedged
    /// or silently-stopped process — its channels stayed open).
    Timeout {
        /// The party that stayed silent.
        party: usize,
        /// The phase in which the silence was observed.
        phase: Phase,
    },
    /// The blamed party's channels tore down (a crashed process).
    Disconnected {
        /// The party that hung up.
        party: usize,
        /// The phase in which the disconnect was observed.
        phase: Phase,
    },
    /// The blamed party presented a proof of key knowledge that failed
    /// verification.
    ProofRejected {
        /// The prover whose proof was rejected.
        party: usize,
    },
    /// The blamed party violated the protocol (malformed or unexpected
    /// bytes).
    Protocol {
        /// The party whose bytes did not decode.
        party: usize,
        /// What was wrong.
        what: String,
    },
    /// Secondhand blame adopted from a peer's abort frame. Unlike the
    /// first-hand variants above, nothing here was observed directly —
    /// the frame is unauthenticated hearsay, which is why consensus blame
    /// ranks it below every first-hand observation
    /// (see [`consensus_primary`]).
    Reported {
        /// The party the frame blames.
        party: usize,
        /// The phase the frame says the failure was observed in.
        phase: Phase,
        /// The kind of failure the frame reports.
        kind: AbortKind,
        /// The party that originated the accusation.
        reporter: usize,
        /// The lane that delivered the (possibly relayed) frame.
        via: usize,
    },
    /// This party — alive and processing messages — received an abort
    /// frame blaming *itself*. Being alive to read the frame is evidence
    /// against the accusation, so blame turns back on the accuser:
    /// `party` is the frame's claimed reporter.
    FalselyAccused {
        /// The accuser (the frame's reporter field), now blamed.
        party: usize,
        /// The phase this party was in when the frame arrived.
        phase: Phase,
        /// The lane that delivered the frame.
        via: usize,
    },
    /// This party was stopped by injected fault (test harnesses only; a
    /// crashed party blames itself and stays silent).
    Crashed {
        /// The party that was crashed.
        party: usize,
    },
}

impl DistributedError {
    /// The party this error holds responsible.
    pub fn blamed(&self) -> usize {
        match self {
            DistributedError::Timeout { party, .. }
            | DistributedError::Disconnected { party, .. }
            | DistributedError::ProofRejected { party }
            | DistributedError::Protocol { party, .. }
            | DistributedError::Reported { party, .. }
            | DistributedError::FalselyAccused { party, .. }
            | DistributedError::Crashed { party } => *party,
        }
    }
}

impl fmt::Display for DistributedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistributedError::Timeout { party, phase } => {
                write!(f, "party {party} sent nothing before the {phase} deadline")
            }
            DistributedError::Disconnected { party, phase } => {
                write!(f, "party {party} disconnected during {phase}")
            }
            DistributedError::ProofRejected { party } => {
                write!(f, "proof of key knowledge by party {party} rejected")
            }
            DistributedError::Protocol { party, what } => {
                write!(f, "party {party} violated the protocol: {what}")
            }
            DistributedError::Reported {
                party,
                phase,
                kind,
                reporter,
                via,
            } => {
                write!(
                    f,
                    "party {party} blamed for {kind} in {phase} \
                     (reported by party {reporter}, frame via party {via})"
                )
            }
            DistributedError::FalselyAccused { party, phase, via } => {
                write!(
                    f,
                    "party {party} falsely accused a live party in {phase} \
                     (frame via party {via})"
                )
            }
            DistributedError::Crashed { party } => {
                write!(f, "party {party} was crashed by fault injection")
            }
        }
    }
}

impl Error for DistributedError {}

/// Everything the driver learned from a failed session: one primary error
/// (the consensus blame) plus what every individual thread observed.
#[derive(Clone, Debug)]
pub struct DistributedFailure {
    /// The consensus failure: the best-ranked observation across all
    /// threads — first-hand misbehavior evidence before refuted
    /// accusations before liveness failures before hearsay (see
    /// [`consensus_primary`] for the full ranking).
    pub primary: DistributedError,
    /// `(observer, error)` for every thread that failed, in party order.
    /// Surviving threads that completed cleanly do not appear.
    pub observations: Vec<(usize, DistributedError)>,
}

impl fmt::Display for DistributedFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} parties reported failures)",
            self.primary,
            self.observations.len()
        )
    }
}

impl Error for DistributedFailure {}

/// Liveness configuration for a distributed run.
#[derive(Clone, Debug, Default)]
pub struct DistributedConfig {
    /// Per-phase wall-clock allowances for blocking waits.
    pub budget: PhaseBudget,
    /// Scripted fault injection (tests only); `None` runs fault-free.
    pub faults: Option<Arc<FaultPlan>>,
}

/// Outcome of a distributed run.
#[derive(Clone, Debug)]
pub struct DistributedOutcome {
    /// Each participant's self-computed rank (index `j−1` for party `j`).
    pub ranks: Vec<usize>,
    /// The initiator's verification report over the received submissions.
    pub report: VerificationReport,
}

type Net = FaultyMesh<Bytes>;

/// Per-thread protocol context: the party's mesh endpoint plus the
/// deadline budget, with failure paths that broadcast abort frames.
struct Ctx {
    net: Net,
    me: usize,
    /// Number of participants (the mesh holds `n + 1` parties).
    n: usize,
    budget: PhaseBudget,
    /// Seen-abort latch: the first abort frame this party accepted, with
    /// the lane that delivered it. Only the first frame is re-broadcast
    /// and only the first frame determines this party's exit error —
    /// later frames (replays, forgeries, echoes of our own re-broadcast)
    /// can neither ping-pong between survivors nor overwrite earlier,
    /// correct blame.
    seen: RefCell<Option<(AbortFrame, usize)>>,
}

impl Ctx {
    fn new(net: Net, me: usize, n: usize, budget: PhaseBudget) -> Self {
        Ctx {
            net,
            me,
            n,
            budget,
            seen: RefCell::new(None),
        }
    }
}

impl Ctx {
    /// Declares entry into `phase` (scripted crashes fire here).
    fn enter(&self, phase: Phase) -> Result<(), DistributedError> {
        self.net
            .enter_phase(phase)
            .map_err(|_| DistributedError::Crashed { party: self.me })
    }

    /// Broadcasts an abort frame describing `e` (best-effort, to every
    /// party) and returns `e`. The frame carries only blame — never
    /// protocol state — so survivors learn *who* failed and nothing else.
    fn fail(&self, e: DistributedError) -> DistributedError {
        let frame = match &e {
            DistributedError::Timeout { party, phase } => Some(AbortFrame {
                blamed: *party,
                phase: *phase,
                kind: AbortKind::Timeout,
                reporter: self.me,
            }),
            DistributedError::Disconnected { party, phase } => Some(AbortFrame {
                blamed: *party,
                phase: *phase,
                kind: AbortKind::Disconnected,
                reporter: self.me,
            }),
            DistributedError::ProofRejected { party } => Some(AbortFrame {
                blamed: *party,
                phase: self.net.phase(),
                kind: AbortKind::ProofRejected,
                reporter: self.me,
            }),
            DistributedError::Protocol { party, .. } => Some(AbortFrame {
                blamed: *party,
                phase: self.net.phase(),
                kind: AbortKind::Protocol,
                reporter: self.me,
            }),
            // Secondhand errors re-broadcast the *original* frame at
            // adoption time (inside `adopt`), never a rewritten one.
            DistributedError::Reported { .. } | DistributedError::FalselyAccused { .. } => None,
            // A crashed party is dead: it must not speak.
            DistributedError::Crashed { .. } => None,
        };
        if let Some(frame) = frame {
            let _ = self.net.broadcast(&frame.encode());
        }
        e
    }

    /// Adopts an abort frame received on lane `via`.
    ///
    /// The first frame a party accepts is latched and re-broadcast
    /// *verbatim, exactly once* (so parties waiting on this party's lanes
    /// learn the original blame rather than blaming this party's exit —
    /// and so a replayed frame cannot ping-pong between survivors). Any
    /// later frame is discarded: the exit error always derives from the
    /// latched first frame.
    ///
    /// A frame blaming *this* party is refuted by the fact that this
    /// party is alive to read it, so it converts to
    /// [`DistributedError::FalselyAccused`] naming the frame's reporter;
    /// any other frame becomes hearsay
    /// ([`DistributedError::Reported`]).
    fn adopt(&self, frame: AbortFrame, via: usize) -> DistributedError {
        // Unauthenticated ids are still range-checked: a frame naming an
        // impossible party, or one whose reporter accuses itself, cannot
        // have been built by honest code — blame whoever delivered it.
        if frame.blamed > self.n || frame.reporter > self.n || frame.blamed == frame.reporter {
            return self.protocol(via, "abort frame with impossible ids");
        }
        let first = {
            let mut seen = self.seen.borrow_mut();
            if seen.is_none() {
                *seen = Some((frame, via));
                true
            } else {
                false
            }
        };
        if first {
            let _ = self.net.broadcast(&frame.encode());
        }
        // The latched first frame wins; the fallback arm is unreachable
        // (the latch was set above if it was empty).
        let (frame, via) = (*self.seen.borrow()).unwrap_or((frame, via));
        if frame.blamed == self.me {
            return DistributedError::FalselyAccused {
                party: frame.reporter,
                phase: self.net.phase(),
                via,
            };
        }
        DistributedError::Reported {
            party: frame.blamed,
            phase: frame.phase,
            kind: frame.kind,
            reporter: frame.reporter,
            via,
        }
    }

    /// A protocol-violation failure blaming `party` (abort broadcast).
    fn protocol(&self, party: usize, what: impl fmt::Display) -> DistributedError {
        self.fail(DistributedError::Protocol {
            party,
            what: what.to_string(),
        })
    }

    /// Receives a data frame from `from`, waiting at most `timeout`; abort
    /// frames are adopted, mesh failures blamed on the awaited party.
    fn recv_within(&self, from: usize, timeout: Duration) -> Result<Bytes, DistributedError> {
        let phase = self.net.phase();
        let raw = self
            .net
            .recv_from_timeout(from, timeout)
            .map_err(|e| match e {
                MeshError::Timeout { peer } => {
                    self.fail(DistributedError::Timeout { party: peer, phase })
                }
                MeshError::Disconnected { peer } => {
                    self.fail(DistributedError::Disconnected { party: peer, phase })
                }
                MeshError::Crashed => DistributedError::Crashed { party: self.me },
                other => self.fail(DistributedError::Protocol {
                    party: self.me,
                    what: other.to_string(),
                }),
            })?;
        match parse_frame(&raw) {
            Ok(Frame::Data(payload)) => Ok(payload),
            Ok(Frame::Abort(frame)) => Err(self.adopt(frame, from)),
            Err(e) => Err(self.protocol(from, e)),
        }
    }

    /// Receives from `from` within `steps` allowances of the current
    /// phase. `steps > 1` covers waits that legitimately span several
    /// upstream parties' work (the shuffle chain, serial service loops).
    fn recv_scaled(&self, from: usize, steps: u32) -> Result<Bytes, DistributedError> {
        self.recv_within(from, self.budget.of(self.net.phase()) * steps.max(1))
    }

    /// Receives from `from` within one allowance of the current phase.
    fn recv(&self, from: usize) -> Result<Bytes, DistributedError> {
        self.recv_scaled(from, 1)
    }

    /// Drains a torn-down peer's inbound lane looking for its final abort
    /// frame — a failing party broadcasts one *before* dropping its mesh,
    /// so by the time a send to it errors, any explanation it had is
    /// already queued. Skips over stale data frames (the session is dead
    /// either way). `None` means the peer died silently (a crash).
    ///
    /// This is what keeps an honest party that aborted early — because it
    /// caught a third party misbehaving — from being blamed for
    /// "disconnecting" by peers that were mid-broadcast to it: its last
    /// words name the real culprit.
    fn last_words(&self, peer: usize) -> Option<AbortFrame> {
        loop {
            let raw = self
                .net
                .recv_from_timeout(peer, Duration::from_millis(25))
                .ok()?;
            if let Ok(Frame::Abort(frame)) = parse_frame(&raw) {
                return Some(frame);
            }
        }
    }

    /// Converts a failed send to `peer` into blame: the peer's queued
    /// abort frame if it left one (adopting the original accusation),
    /// otherwise a first-hand disconnect observation.
    fn send_failure(&self, peer: usize, phase: Phase) -> DistributedError {
        match self.last_words(peer) {
            Some(frame) => self.adopt(frame, peer),
            None => self.fail(DistributedError::Disconnected { party: peer, phase }),
        }
    }

    /// Sends `bytes` to `to`; a torn-down peer is blamed immediately
    /// (after adopting any abort frame it left behind).
    fn send(&self, to: usize, bytes: Bytes) -> Result<(), DistributedError> {
        let phase = self.net.phase();
        self.net.send(to, bytes).map_err(|e| match e {
            MeshError::Crashed => DistributedError::Crashed { party: self.me },
            MeshError::Disconnected { peer } => self.send_failure(peer, phase),
            other => self.fail(DistributedError::Protocol {
                party: self.me,
                what: other.to_string(),
            }),
        })
    }

    /// Broadcasts to every *participant* (not the initiator), attempting
    /// all peers; the first torn-down peer is blamed (after adopting any
    /// abort frame it left behind).
    fn bcast_participants(&self, bytes: &Bytes) -> Result<(), DistributedError> {
        let phase = self.net.phase();
        let mut failed = Vec::new();
        for j in 1..=self.n {
            if j == self.me {
                continue;
            }
            match self.net.send(j, bytes.clone()) {
                Ok(()) => {}
                Err(MeshError::Crashed) => {
                    return Err(DistributedError::Crashed { party: self.me })
                }
                Err(_) => failed.push(j),
            }
        }
        match failed.first() {
            None => Ok(()),
            Some(&party) => Err(self.send_failure(party, phase)),
        }
    }
}

/// Decodes with `$e`; a failure is a protocol violation blamed on `$from`
/// (use the local id for encoding failures).
macro_rules! try_wire {
    ($ctx:expr, $from:expr, $e:expr) => {
        match $e {
            Ok(v) => v,
            Err(e) => return Err($ctx.protocol($from, e)),
        }
    };
}

/// Runs the full framework with one thread per party over a channel mesh,
/// with default deadlines and no fault injection.
///
/// # Errors
///
/// Returns the primary [`DistributedError`] if any party hits a malformed
/// message, a failed proof, a timeout, or a disconnected peer.
pub fn run_distributed(
    params: &FrameworkParams,
    profile: InitiatorProfile,
    infos: Vec<InfoVector>,
) -> Result<DistributedOutcome, DistributedError> {
    run_distributed_with(params, profile, infos, DistributedConfig::default())
        .map_err(|f| f.primary)
}

/// Runs the distributed framework under an explicit [`DistributedConfig`]
/// (deadline budget and optional fault injection).
///
/// Every thread is joined even when the session fails, so a returned
/// [`DistributedFailure`] lists what *each* party observed — the liveness
/// guarantee is that all of them return within their deadlines.
///
/// # Errors
///
/// [`DistributedFailure`] carrying the consensus blame and all per-party
/// observations.
pub fn run_distributed_with(
    params: &FrameworkParams,
    profile: InitiatorProfile,
    infos: Vec<InfoVector>,
    config: DistributedConfig,
) -> Result<DistributedOutcome, DistributedFailure> {
    let n = params.participants();
    assert_eq!(infos.len(), n, "population size mismatch");
    let budget = config.budget;
    let stash = CrashStash::new();
    let plan = config.faults;
    let wrap = |h| match &plan {
        Some(p) => FaultyMesh::with_plan(h, Arc::clone(p), stash.clone()),
        None => FaultyMesh::passthrough(h),
    };
    let mut nets: Vec<Net> = LocalMesh::new::<Bytes>(n + 1)
        .into_iter()
        .map(wrap)
        .collect();
    nets.reverse(); // pop() now yields party 0 first

    let spawn_failure = |party: usize| DistributedFailure {
        primary: DistributedError::Protocol {
            party,
            what: "missing mesh handle".into(),
        },
        observations: Vec::new(),
    };

    let Some(initiator_net) = nets.pop() else {
        return Err(spawn_failure(0));
    };
    let params0 = params.clone();
    let initiator =
        thread::spawn(move || initiator_thread(params0, profile, initiator_net, budget));

    let mut participants = Vec::with_capacity(n);
    for (idx, info) in infos.into_iter().enumerate() {
        let Some(net) = nets.pop() else {
            return Err(spawn_failure(idx + 1));
        };
        let params_j = params.clone();
        participants.push(thread::spawn(move || {
            participant_thread(params_j, info, net, budget)
        }));
    }

    // Join *everything* before judging the outcome: the liveness guarantee
    // is that every thread returns, not merely the first.
    let panicked = |party: usize| DistributedError::Protocol {
        party,
        what: "thread panicked".into(),
    };
    let init_result = initiator.join().map_err(|_| panicked(0));
    let mut part_results = Vec::with_capacity(n);
    for (idx, t) in participants.into_iter().enumerate() {
        part_results.push(t.join().map_err(|_| panicked(idx + 1)));
    }
    drop(stash); // silently-stalled handles may close only after all joins

    let mut observations: Vec<(usize, DistributedError)> = Vec::new();
    let report = match init_result {
        Ok(Ok(report)) => Some(report),
        Ok(Err(e)) | Err(e) => {
            observations.push((0, e));
            None
        }
    };
    let mut ranks = vec![0usize; n];
    for (idx, r) in part_results.into_iter().enumerate() {
        match r {
            Ok(Ok(rank)) => ranks[idx] = rank,
            Ok(Err(e)) | Err(e) => observations.push((idx + 1, e)),
        }
    }

    if let (Some(report), true) = (report, observations.is_empty()) {
        return Ok(DistributedOutcome { ranks, report });
    }
    let primary = consensus_primary(&observations).unwrap_or(DistributedError::Protocol {
        party: 0,
        what: "session failed with no observations".into(),
    });
    Err(DistributedFailure {
        primary,
        observations,
    })
}

/// Picks the consensus primary — the observation closest to the root
/// cause — from every thread's exit error.
///
/// Ranking, best first:
///
/// 1. **First-hand misbehavior evidence** ([`DistributedError::ProofRejected`],
///    [`DistributedError::Protocol`]): the observer held the bad bytes.
/// 2. **A refuted accusation** ([`DistributedError::FalselyAccused`]): a
///    party alive to read a frame blaming itself. A *genuine* accusation
///    always coexists with its accuser's first-hand evidence (which
///    outranks this), so a `FalselyAccused` winning the pick means the
///    frame was forged — and its claimed reporter is the culprit.
/// 3. **First-hand liveness evidence** ([`DistributedError::Timeout`],
///    [`DistributedError::Disconnected`]), earliest phase first — a party
///    wedged in `encrypt` also strands the initiator's `submit` gather,
///    but `encrypt` is where it died.
/// 4. **Hearsay** ([`DistributedError::Reported`]): blame adopted from an
///    unauthenticated abort frame. Ranking hearsay below *every*
///    first-hand observation is what stops a misbehaving party's forged
///    self-serving frames — adopted by low-id survivors — from outranking
///    a high-id victim's direct evidence.
/// 5. [`DistributedError::Crashed`]: a thread's own injected-fault exit
///    marker, never blame evidence.
///
/// Ties break by observation order (party order). Returns `None` only for
/// an empty observation list.
pub fn consensus_primary(observations: &[(usize, DistributedError)]) -> Option<DistributedError> {
    let rank = |e: &DistributedError| match e {
        DistributedError::ProofRejected { .. } | DistributedError::Protocol { .. } => 0i64,
        DistributedError::FalselyAccused { .. } => 1,
        DistributedError::Timeout { phase, .. } | DistributedError::Disconnected { phase, .. } => {
            2 + Phase::ALL.iter().position(|p| p == phase).unwrap_or(0) as i64
        }
        DistributedError::Reported { .. } => 100,
        DistributedError::Crashed { .. } => i64::MAX,
    };
    observations
        .iter()
        .enumerate()
        .min_by_key(|(order, (_, e))| (rank(e), *order))
        .map(|(_, (_, e))| e.clone())
}

/// The initiator (`P₀`): answers dot-product rounds, then collects and
/// verifies submissions.
fn initiator_thread(
    params: FrameworkParams,
    profile: InitiatorProfile,
    net: Net,
    budget: PhaseBudget,
) -> Result<VerificationReport, DistributedError> {
    let me = 0usize;
    let n = params.participants();
    let ctx = Ctx::new(net, me, n, budget);
    let field = default_field();
    let proto = DotProduct::new(field.clone());
    let mut rng = HashDrbg::seed_from_u64(params.seed()).fork(b"party-0");
    let q = params.questionnaire();
    let (m, t) = (q.dimension(), q.equal_to_count());
    let h = params.mask_bits();
    let top = 1u64 << (h - 1);
    let rho = top | rng.gen_range(0..top);

    // ρ-scaled receiver vector (shared across participants).
    let w = profile.weights.values();
    let v0 = profile.criterion.values();
    let mut v_recv: Vec<Fp> = Vec::with_capacity(m + t);
    for &wk in &w[t..m] {
        v_recv.push(field.from_i128(rho as i128 * wk as i128));
    }
    for &wk in &w[..t] {
        v_recv.push(field.from_i128(-(rho as i128) * wk as i128));
    }
    for k in 0..t {
        v_recv.push(field.from_i128(2 * rho as i128 * w[k] as i128 * v0[k] as i128));
    }

    // Phase 1: serve each participant's dot product, in party order.
    ctx.enter(Phase::Gain)?;
    for j in 1..=n {
        let bytes = ctx.recv(j)?;
        let mut r = Reader::new(bytes);
        let rows = try_wire!(ctx, j, r.len());
        let mut qx = Vec::with_capacity(rows);
        for _ in 0..rows {
            qx.push(try_wire!(ctx, j, r.fp_vec(&field)));
        }
        let c_prime = try_wire!(ctx, j, r.fp_vec(&field));
        let g = try_wire!(ctx, j, r.fp_vec(&field));
        try_wire!(ctx, j, r.done());
        let msg1 = Round1Message { qx, c_prime, g };

        let rho_j = rng.gen_range(0..rho);
        let alpha = field.from_i128(rho_j as i128);
        let msg2 = proto.receiver_round2(&v_recv, &alpha, &msg1, &mut rng);
        let mut w_out = Writer::framed();
        w_out.put_fp(&msg2.a);
        w_out.put_fp(&msg2.h);
        ctx.send(j, w_out.finish())?;
    }

    // Phase 3: gather one submission-or-decline from every participant.
    // The first gather legitimately spans the participants' entire
    // phase 2, so each wait is bounded by the whole-session budget.
    ctx.enter(Phase::Submit)?;
    let gather_window = budget.session_total(n);
    let mut submissions = Vec::new();
    for j in 1..=n {
        let bytes = ctx.recv_within(j, gather_window)?;
        let mut r = Reader::new(bytes);
        let claimed = try_wire!(ctx, j, r.u64()) as usize;
        if claimed == 0 {
            try_wire!(ctx, j, r.done());
            continue; // decline
        }
        // A rank beyond the participant count is unsatisfiable; reject it
        // here instead of letting the claim ride into verification.
        if claimed > n {
            return Err(ctx.protocol(j, format!("claimed rank {claimed} exceeds n = {n}")));
        }
        let count = try_wire!(ctx, j, r.len());
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(try_wire!(ctx, j, r.u64()));
        }
        try_wire!(ctx, j, r.done());
        let info = match InfoVector::new(q, values, params.attr_bits()) {
            Ok(i) => i,
            Err(e) => return Err(ctx.protocol(j, format!("bad submission: {e}"))),
        };
        submissions.push(Submission {
            party: j,
            claimed_rank: claimed,
            info,
        });
    }
    let log = TrafficLog::new();
    let mut timer = PartyTimer::new(1);
    Ok(verify_submissions(
        q,
        &profile,
        &submissions,
        params.top_k(),
        &log,
        &mut timer,
        0,
    ))
}

/// One participant (`P_j`): full three-phase protocol.
fn participant_thread(
    params: FrameworkParams,
    info: InfoVector,
    net: Net,
    budget: PhaseBudget,
) -> Result<usize, DistributedError> {
    let me = net.id(); // 1..=n
    let n = params.participants();
    let ctx = Ctx::new(net, me, n, budget);
    let l = params.beta_bits();
    let group: Group = params.group().group();
    let scheme = ExpElGamal::new(group.clone());
    let field = default_field();
    let proto = DotProduct::new(field.clone());
    let mut rng = HashDrbg::seed_from_u64(params.seed()).fork(format!("party-{me}").as_bytes());
    let q = params.questionnaire();
    let (m, t) = (q.dimension(), q.equal_to_count());

    // ---- Phase 1: masked gain via the secure dot product. -------------
    ctx.enter(Phase::Gain)?;
    let vj = info.values();
    let mut w_vec: Vec<Fp> = Vec::with_capacity(m + t);
    for &vk in &vj[t..m] {
        w_vec.push(field.from_i128(vk as i128));
    }
    for &vk in &vj[..t] {
        w_vec.push(field.from_i128(vk as i128 * vk as i128));
    }
    for &vk in &vj[..t] {
        w_vec.push(field.from_i128(vk as i128));
    }
    let (state, msg1) = proto.sender_round1(&w_vec, &mut rng);
    let mut w_out = Writer::framed();
    try_wire!(ctx, me, w_out.put_len(msg1.qx.len()));
    for row in &msg1.qx {
        try_wire!(ctx, me, w_out.put_fp_vec(row));
    }
    try_wire!(ctx, me, w_out.put_fp_vec(&msg1.c_prime));
    try_wire!(ctx, me, w_out.put_fp_vec(&msg1.g));
    ctx.send(0, w_out.finish())?;

    // The initiator serves parties in id order, so P_me waits behind
    // `me − 1` earlier services.
    let bytes = ctx.recv_scaled(0, me as u32)?;
    let mut r = Reader::new(bytes);
    let a = try_wire!(ctx, 0, r.fp(&field));
    let hh = try_wire!(ctx, 0, r.fp(&field));
    try_wire!(ctx, 0, r.done());
    let beta_signed = match state.finish(&Round2Message { a, h: hh }).to_i128_centered() {
        Some(v) => v,
        None => return Err(ctx.protocol(me, "masked gain out of i128 range")),
    };
    let beta = to_unsigned(beta_signed, l);

    // ---- Phase 2, step 5: keys + proofs of knowledge. ------------------
    ctx.enter(Phase::KeyGen)?;
    let kp = KeyPair::generate(&group, &mut rng);
    {
        let mut w_out = Writer::framed();
        w_out.put_element(&group, kp.public_key());
        ctx.bcast_participants(&w_out.finish())?;
    }
    let mut public_shares: Vec<ppgr_group::Element> = vec![group.identity(); n + 1];
    public_shares[me] = kp.public_key().clone();
    for j in participants_except(n, me) {
        let bytes = ctx.recv(j)?;
        let mut r = Reader::new(bytes);
        public_shares[j] = try_wire!(ctx, j, r.element(&group));
        try_wire!(ctx, j, r.done());
    }

    // Sequential proofs, prover order 1..=n. Verifier challenge shares are
    // broadcast so every verifier can form the same challenge sum, and
    // every share is immediately echoed (a broadcast digest binding the
    // share to its sender and round): a verifier that equivocates — one
    // receiver gets different share bytes than everyone else — is caught
    // by the receiver comparing bytes against the sender's own public
    // claim, *before* the mismatched challenge sums could wreck the
    // prover's verification and get an honest prover blamed.
    // Transcripts are collected as they arrive and verified in one batch
    // (a single aggregate multi-exponentiation) after the round; on
    // rejection the fallback scan inside `verify_batch` runs in prover
    // order, so the first dishonest prover is still the one named.
    let recv_share_echoed = |ctx: &Ctx, prover: usize, j: usize| {
        let bytes = ctx.recv(j)?;
        let mut r = Reader::new(bytes);
        let share = try_wire!(ctx, j, r.scalar(&group));
        try_wire!(ctx, j, r.done());
        let bytes = ctx.recv(j)?;
        let mut r = Reader::new(bytes);
        let echo = try_wire!(ctx, j, r.take(32));
        try_wire!(ctx, j, r.done());
        if echo[..] != share_digest(&group, prover, j, &share)[..] {
            return Err(ctx.protocol(
                j,
                "challenge share inconsistent with its echo (equivocating broadcast)",
            ));
        }
        Ok(share)
    };
    let mut foreign_proofs: Vec<(usize, SchnorrTranscript)> = Vec::with_capacity(n - 1);
    #[allow(clippy::needless_range_loop)] // protocol round over 1-based party IDs
    for prover in 1..=n {
        if prover == me {
            let (st, commitment) = SchnorrProver::commit(&group, kp.secret_key().clone(), &mut rng);
            let mut w_out = Writer::framed();
            w_out.put_element(&group, &commitment);
            ctx.bcast_participants(&w_out.finish())?;
            let mut total = group.scalar_from_u64(0);
            for j in participants_except(n, me) {
                let share = recv_share_echoed(&ctx, prover, j)?;
                total = group.scalar_add(&total, &share);
            }
            let transcript = st.respond(&total, commitment);
            let mut w_out = Writer::framed();
            w_out.put_scalar(&group, &transcript.response);
            ctx.bcast_participants(&w_out.finish())?;
        } else {
            let bytes = ctx.recv(prover)?;
            let mut r = Reader::new(bytes);
            let commitment = try_wire!(ctx, prover, r.element(&group));
            try_wire!(ctx, prover, r.done());
            // My challenge share, broadcast to everyone, then its echo.
            let c_mine = group.random_scalar(&mut rng);
            let mut w_out = Writer::framed();
            w_out.put_scalar(&group, &c_mine);
            ctx.bcast_participants(&w_out.finish())?;
            let mut w_out = Writer::framed();
            w_out.put_raw(&share_digest(&group, prover, me, &c_mine));
            ctx.bcast_participants(&w_out.finish())?;
            // Gather the other verifiers' shares (with their echoes).
            let mut total = c_mine;
            for j in participants_except(n, me) {
                if j == prover {
                    continue;
                }
                let share = recv_share_echoed(&ctx, prover, j)?;
                total = group.scalar_add(&total, &share);
            }
            let bytes = ctx.recv(prover)?;
            let mut r = Reader::new(bytes);
            let response = try_wire!(ctx, prover, r.scalar(&group));
            try_wire!(ctx, prover, r.done());
            // g^z = h · y^Σc, checked for all provers at once below.
            foreign_proofs.push((
                prover,
                SchnorrTranscript {
                    commitment,
                    challenge: total,
                    response,
                },
            ));
        }
    }
    {
        let items: Vec<(&ppgr_group::Element, &SchnorrTranscript)> = foreign_proofs
            .iter()
            .map(|(p, t)| (&public_shares[*p], t))
            .collect();
        if let Err(i) = verify_batch(&group, &items) {
            let prover = foreign_proofs[i].0;
            return Err(ctx.fail(DistributedError::ProofRejected { party: prover }));
        }
    }
    let joint = JointKey::combine(
        &group,
        &(1..=n)
            .map(|j| public_shares[j].clone())
            .collect::<Vec<_>>(),
    );

    // ---- Step 6: bitwise encryption, broadcast. ------------------------
    ctx.enter(Phase::Encrypt)?;
    let my_bits = encrypt_bits(&scheme, joint.public_key(), &beta, l, &mut rng);
    {
        let mut w_out = Writer::framed();
        try_wire!(ctx, me, w_out.put_ciphertexts(&group, &my_bits));
        ctx.bcast_participants(&w_out.finish())?;
    }
    let mut all_bits: Vec<Vec<Ciphertext>> = vec![Vec::new(); n + 1];
    all_bits[me] = my_bits;
    for j in participants_except(n, me) {
        let bytes = ctx.recv(j)?;
        let mut r = Reader::new(bytes);
        all_bits[j] = try_wire!(ctx, j, r.ciphertexts(&group));
        try_wire!(ctx, j, r.done());
        if all_bits[j].len() != l {
            return Err(ctx.protocol(
                j,
                format!(
                    "published {} bit ciphertexts, expected {l}",
                    all_bits[j].len()
                ),
            ));
        }
        if has_duplicate(&group, &all_bits[j]) {
            return Err(ctx.protocol(j, "duplicate ciphertext in encrypted bit vector"));
        }
    }

    // ---- Step 7: comparisons against every opponent. --------------------
    ctx.enter(Phase::Compare)?;
    let mut my_set: Vec<Ciphertext> = Vec::with_capacity((n - 1) * l);
    for j in participants_except(n, me) {
        my_set.extend(compare_encrypted(&scheme, &beta, &all_bits[j], l));
    }

    // ---- Step 8: the shuffle-decrypt chain. -----------------------------
    ctx.enter(Phase::Hop)?;
    let process = |sets: &mut Vec<Vec<Ciphertext>>, rng: &mut HashDrbg| {
        for (owner_minus_1, set) in sets.iter_mut().enumerate() {
            if owner_minus_1 + 1 == me {
                continue;
            }
            for ct in set.iter_mut() {
                let c = scheme.partial_decrypt(ct, kp.secret_key());
                let rr = group.random_nonzero_scalar(rng);
                *ct = scheme.randomize_plaintext(&c, &rr);
            }
            use rand::seq::SliceRandom;
            set.shuffle(rng);
        }
    };
    let encode_sets = |sets: &[Vec<Ciphertext>]| {
        let mut w_out = Writer::framed();
        w_out.put_len(sets.len())?;
        for set in sets {
            w_out.put_ciphertexts(&group, set)?;
        }
        Ok::<_, crate::wire::WireError>(w_out.finish())
    };
    let my_final_set: Vec<Ciphertext>;
    if me == 1 {
        // Collect everyone's set, process, pass on.
        let mut sets: Vec<Vec<Ciphertext>> = vec![Vec::new(); n];
        sets[0] = my_set;
        for j in 2..=n {
            let bytes = ctx.recv(j)?;
            let mut r = Reader::new(bytes);
            sets[j - 1] = try_wire!(ctx, j, r.ciphertexts(&group));
            try_wire!(ctx, j, r.done());
            check_set(&ctx, &group, &sets[j - 1], j, (n - 1) * l)?;
        }
        process(&mut sets, &mut rng);
        if n >= 2 {
            let encoded = try_wire!(ctx, me, encode_sets(&sets));
            ctx.send(2, encoded)?;
        }
        // My set comes back from P_n after the whole chain: n − 1 hops.
        let bytes = ctx.recv_scaled(n, n as u32)?;
        let mut r = Reader::new(bytes);
        my_final_set = try_wire!(ctx, n, r.ciphertexts(&group));
        try_wire!(ctx, n, r.done());
        check_set(&ctx, &group, &my_final_set, n, (n - 1) * l)?;
    } else {
        // Send my comparison set to P₁ first.
        let mut w_out = Writer::framed();
        try_wire!(ctx, me, w_out.put_ciphertexts(&group, &my_set));
        ctx.send(1, w_out.finish())?;
        // Receive V from my predecessor (me − 1 upstream hops), process,
        // forward.
        let bytes = ctx.recv_scaled(me - 1, me as u32)?;
        let mut r = Reader::new(bytes);
        let count = try_wire!(ctx, me - 1, r.len());
        if count != n {
            return Err(ctx.protocol(me - 1, "chain vector has wrong arity"));
        }
        let mut sets = Vec::with_capacity(n);
        for _ in 0..n {
            sets.push(try_wire!(ctx, me - 1, r.ciphertexts(&group)));
        }
        try_wire!(ctx, me - 1, r.done());
        for set in &sets {
            check_set(&ctx, &group, set, me - 1, (n - 1) * l)?;
        }
        process(&mut sets, &mut rng);
        if me < n {
            let encoded = try_wire!(ctx, me, encode_sets(&sets));
            ctx.send(me + 1, encoded)?;
            // Own set returns from P_n at chain end.
            let bytes = ctx.recv_scaled(n, n as u32)?;
            let mut r = Reader::new(bytes);
            my_final_set = try_wire!(ctx, n, r.ciphertexts(&group));
            try_wire!(ctx, n, r.done());
            check_set(&ctx, &group, &my_final_set, n, (n - 1) * l)?;
        } else {
            // I am P_n: return every set to its owner; keep mine.
            for owner in 1..n {
                let mut w_out = Writer::framed();
                try_wire!(ctx, me, w_out.put_ciphertexts(&group, &sets[owner - 1]));
                ctx.send(owner, w_out.finish())?;
            }
            my_final_set = match sets.pop() {
                Some(set) => set,
                None => return Err(ctx.protocol(me, "chain vector lost the final set")),
            };
        }
    }

    // ---- Step 9: count zeros → rank. ------------------------------------
    let zeros = my_final_set
        .iter()
        .filter(|ct| scheme.decrypts_to_zero(kp.secret_key(), ct))
        .count();
    let rank = zeros + 1;

    // ---- Phase 3: submit or decline. ------------------------------------
    ctx.enter(Phase::Submit)?;
    let mut w_out = Writer::framed();
    if rank <= params.top_k() {
        w_out.put_u64(rank as u64);
        try_wire!(ctx, me, w_out.put_len(info.values().len()));
        for &v in info.values() {
            w_out.put_u64(v);
        }
    } else {
        w_out.put_u64(0); // decline
    }
    ctx.send(0, w_out.finish())?;

    Ok(rank)
}

/// Domain-separated digest binding a keygen challenge share to its prover
/// round and sender. Broadcast as an echo right after the share itself, so
/// every receiver can check that the share bytes it was handed match the
/// sender's public claim — an equivocating verifier (different shares down
/// different lanes) is caught by whoever got the minority bytes, with
/// first-hand evidence against the sender.
///
/// Hashing consumes no randomness, so fault-free transcripts are
/// unaffected. Caveat (see `docs/FAULTS.md`): a *wire-level* adversary
/// that tampers both the share and its echo on the same lane defeats this
/// attribution; frames are unsigned, so the mesh lane itself is trusted.
fn share_digest(group: &Group, prover: usize, sender: usize, share: &Scalar) -> [u8; 32] {
    let mut w = Writer::new();
    w.put_u64(prover as u64);
    w.put_u64(sender as u64);
    w.put_scalar(group, share);
    let mut h = Sha256::new();
    h.update(b"ppgr keygen echo v1");
    h.update(&w.finish());
    h.finalize()
}

/// True when two ciphertexts in `set` serialise identically. Honest
/// parties re-randomize every element they produce or forward, so a
/// repeat happens with negligible probability — an observed duplicate is
/// a scripted inconsistent shuffle (an element copied over another to
/// bias the zero count).
fn has_duplicate(group: &Group, set: &[Ciphertext]) -> bool {
    let mut seen = HashSet::with_capacity(set.len());
    for ct in set {
        let mut key = group.encode(&ct.alpha);
        key.extend_from_slice(&group.encode(&ct.beta));
        if !seen.insert(key) {
            return true;
        }
    }
    false
}

/// Structural integrity of a received comparison set: advertised
/// cardinality and no duplicated ciphertext. Every hop re-encrypts and
/// re-shuffles each set it forwards, so honest relays always pass — a
/// violation always implicates the immediate sender `from`, never an
/// upstream party whose bytes were merely relayed.
fn check_set(
    ctx: &Ctx,
    group: &Group,
    set: &[Ciphertext],
    from: usize,
    expected: usize,
) -> Result<(), DistributedError> {
    if set.len() != expected {
        return Err(ctx.protocol(
            from,
            format!(
                "comparison set carries {} ciphertexts, expected {expected}",
                set.len()
            ),
        ));
    }
    if has_duplicate(group, set) {
        return Err(ctx.protocol(
            from,
            "duplicate ciphertext in a comparison set (inconsistent shuffle)",
        ));
    }
    Ok(())
}

/// Participant ids `1..=n` except `me`.
fn participants_except(n: usize, me: usize) -> impl Iterator<Item = usize> {
    (1..=n).filter(move |&j| j != me)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Questionnaire;
    use crate::framework::GroupRanking;
    use ppgr_group::GroupKind;

    fn params(n: usize, seed: u64) -> FrameworkParams {
        FrameworkParams::builder(Questionnaire::synthetic(1, 2))
            .participants(n)
            .top_k(2)
            .attr_bits(6)
            .weight_bits(3)
            .mask_bits(6)
            .group(GroupKind::Ecc160)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn distributed_run_produces_valid_ranking() {
        let p = params(4, 51);
        let mut rng = HashDrbg::seed_from_u64(p.seed());
        let (profile, infos) = p.random_population(&mut rng);
        let out = run_distributed(&p, profile.clone(), infos.clone()).unwrap();

        // Validate against plaintext gains.
        let q = p.questionnaire();
        let gains: Vec<i128> = infos
            .iter()
            .map(|i| crate::attrs::gain(q, &profile, i))
            .collect();
        for a in 0..gains.len() {
            for b in 0..gains.len() {
                if gains[a] > gains[b] {
                    assert!(
                        out.ranks[a] < out.ranks[b],
                        "gains {gains:?} ranks {:?}",
                        out.ranks
                    );
                }
            }
        }
        assert!(out.report.is_clean());
        assert!(!out.report.accepted.is_empty());
    }

    #[test]
    fn distributed_matches_orchestrated() {
        let p = params(3, 77);
        let mut rng = HashDrbg::seed_from_u64(p.seed());
        let (profile, infos) = p.random_population(&mut rng);

        let orchestrated = GroupRanking::new(p.clone())
            .with_random_population()
            .run()
            .unwrap();
        let distributed = run_distributed(&p, profile, infos).unwrap();
        assert_eq!(orchestrated.ranks(), &distributed.ranks[..]);
    }

    #[test]
    fn two_party_chain_works() {
        let p = params(2, 5);
        let mut rng = HashDrbg::seed_from_u64(p.seed());
        let (profile, infos) = p.random_population(&mut rng);
        let out = run_distributed(&p, profile, infos).unwrap();
        let mut sorted = out.ranks.clone();
        sorted.sort_unstable();
        assert!(sorted == vec![1, 2] || sorted == vec![1, 1]);
    }

    #[test]
    fn blamed_names_the_party_for_every_variant() {
        let e = DistributedError::Timeout {
            party: 3,
            phase: Phase::Hop,
        };
        assert_eq!(e.blamed(), 3);
        assert_eq!(DistributedError::ProofRejected { party: 2 }.blamed(), 2);
        assert_eq!(
            DistributedError::Protocol {
                party: 1,
                what: "x".into()
            }
            .blamed(),
            1
        );
        assert_eq!(DistributedError::Crashed { party: 4 }.blamed(), 4);
        assert_eq!(
            DistributedError::Reported {
                party: 2,
                phase: Phase::Encrypt,
                kind: AbortKind::Protocol,
                reporter: 1,
                via: 3,
            }
            .blamed(),
            2
        );
        assert_eq!(
            DistributedError::FalselyAccused {
                party: 3,
                phase: Phase::KeyGen,
                via: 3,
            }
            .blamed(),
            3
        );
    }

    #[test]
    fn seen_abort_latch_keeps_the_first_frame_and_rebroadcasts_once() {
        use ppgr_net::LocalMesh;
        let mut handles = LocalMesh::new::<Bytes>(2);
        let peer = FaultyMesh::passthrough(handles.pop().unwrap());
        let net = FaultyMesh::passthrough(handles.pop().unwrap());
        let ctx = Ctx::new(net, 0, 1, PhaseBudget::uniform(Duration::from_secs(1)));
        let first = AbortFrame {
            blamed: 1,
            phase: Phase::KeyGen,
            kind: AbortKind::Protocol,
            reporter: 0,
        };
        let replay = AbortFrame {
            blamed: 0,
            phase: Phase::Encrypt,
            kind: AbortKind::Timeout,
            reporter: 1,
        };
        let e1 = ctx.adopt(first, 1);
        // The replay blames us and would convert to FalselyAccused if it
        // were honored — the latch must keep deriving from `first`.
        let e2 = ctx.adopt(replay, 1);
        for e in [&e1, &e2] {
            assert!(
                matches!(e, DistributedError::Reported { party: 1, .. }),
                "latched frame must win: {e}"
            );
        }
        // Exactly one re-broadcast reached the peer (the first adoption).
        let echoed = peer
            .recv_from_timeout(0, Duration::from_millis(200))
            .unwrap();
        assert_eq!(parse_frame(&echoed), Ok(Frame::Abort(first)));
        assert!(peer
            .recv_from_timeout(0, Duration::from_millis(100))
            .is_err());
    }

    #[test]
    fn adopt_rejects_frames_with_impossible_ids() {
        use ppgr_net::LocalMesh;
        let mut handles = LocalMesh::new::<Bytes>(2);
        let _peer = FaultyMesh::<Bytes>::passthrough(handles.pop().unwrap());
        let net = FaultyMesh::passthrough(handles.pop().unwrap());
        let ctx = Ctx::new(net, 0, 1, PhaseBudget::uniform(Duration::from_secs(1)));
        // blamed == reporter cannot come from honest code (a party never
        // accuses itself): blame lands on the delivering lane.
        let bogus = AbortFrame {
            blamed: 1,
            phase: Phase::Gain,
            kind: AbortKind::Timeout,
            reporter: 1,
        };
        let e = ctx.adopt(bogus, 1);
        assert!(
            matches!(e, DistributedError::Protocol { party: 1, .. }),
            "{e}"
        );
        let out_of_range = AbortFrame {
            blamed: 9,
            phase: Phase::Gain,
            kind: AbortKind::Timeout,
            reporter: 0,
        };
        let e = ctx.adopt(out_of_range, 1);
        assert!(
            matches!(e, DistributedError::Protocol { party: 1, .. }),
            "{e}"
        );
    }

    #[test]
    fn consensus_prefers_direct_evidence_over_hearsay_regardless_of_order() {
        // A low-id survivor adopting a forged frame (hearsay blaming an
        // honest party) must lose the pick to a high-id victim's
        // first-hand evidence, even though the hearsay observation comes
        // first in party order.
        let obs = vec![
            (
                1,
                DistributedError::Reported {
                    party: 3,
                    phase: Phase::KeyGen,
                    kind: AbortKind::Protocol,
                    reporter: 2,
                    via: 2,
                },
            ),
            (3, DistributedError::ProofRejected { party: 2 }),
        ];
        assert_eq!(
            consensus_primary(&obs),
            Some(DistributedError::ProofRejected { party: 2 })
        );
    }

    #[test]
    fn consensus_prefers_direct_evidence_over_liveness() {
        // The initiator times out waiting on a wedged phase long after the
        // culprit's neighbour caught the bad bytes; the protocol violation
        // is the root cause.
        let obs = vec![
            (
                0,
                DistributedError::Timeout {
                    party: 1,
                    phase: Phase::Submit,
                },
            ),
            (
                2,
                DistributedError::Protocol {
                    party: 1,
                    what: "bad bytes".into(),
                },
            ),
        ];
        assert_eq!(consensus_primary(&obs).unwrap().blamed(), 1);
        assert!(matches!(
            consensus_primary(&obs),
            Some(DistributedError::Protocol { .. })
        ));
    }

    #[test]
    fn consensus_falsely_accused_beats_liveness_and_hearsay() {
        // A forged frame blames party 2; party 2 is alive to refute it and
        // names the frame's claimed reporter. Everyone else saw only
        // hearsay and timeouts — the refutation wins.
        let obs = vec![
            (
                1,
                DistributedError::Reported {
                    party: 2,
                    phase: Phase::Encrypt,
                    kind: AbortKind::Timeout,
                    reporter: 3,
                    via: 3,
                },
            ),
            (
                2,
                DistributedError::FalselyAccused {
                    party: 3,
                    phase: Phase::Encrypt,
                    via: 3,
                },
            ),
            (
                0,
                DistributedError::Timeout {
                    party: 1,
                    phase: Phase::Submit,
                },
            ),
        ];
        assert_eq!(consensus_primary(&obs).unwrap().blamed(), 3);
    }

    #[test]
    fn consensus_liveness_picks_earliest_phase_then_order() {
        let obs = vec![
            (
                0,
                DistributedError::Timeout {
                    party: 2,
                    phase: Phase::Submit,
                },
            ),
            (
                1,
                DistributedError::Disconnected {
                    party: 3,
                    phase: Phase::Encrypt,
                },
            ),
            (
                2,
                DistributedError::Timeout {
                    party: 3,
                    phase: Phase::Encrypt,
                },
            ),
        ];
        assert_eq!(
            consensus_primary(&obs),
            Some(DistributedError::Disconnected {
                party: 3,
                phase: Phase::Encrypt,
            })
        );
    }

    #[test]
    fn consensus_hearsay_beats_only_crash_markers() {
        let obs = vec![
            (2, DistributedError::Crashed { party: 2 }),
            (
                1,
                DistributedError::Reported {
                    party: 2,
                    phase: Phase::Hop,
                    kind: AbortKind::Disconnected,
                    reporter: 1,
                    via: 1,
                },
            ),
        ];
        assert_eq!(consensus_primary(&obs).unwrap().blamed(), 2);
        assert!(matches!(
            consensus_primary(&obs),
            Some(DistributedError::Reported { .. })
        ));
        assert_eq!(consensus_primary(&[]), None);
    }
}
