//! The homomorphic bitwise comparison circuit (paper Fig. 1, step 7).
//!
//! Party `P_j` holds her own bits `β_j` in plaintext and the other party's
//! bits only as exponential-ElGamal ciphertexts `E(β_i^t)`. She computes,
//! for every bit position `t` (1-based from the LSB, `t = l` the MSB):
//!
//! ```text
//! γ^t = β_j^t ⊕ β_i^t                      (linear: own bit is plaintext)
//! ω^t = (l − t + 1)·(1 − γ^t) + Σ_{v>t} γ^v
//! τ^t = ω^t + β_j^t
//! ```
//!
//! `τ^t = 0` at exactly one position iff `β_j < β_i` (the most significant
//! differing bit has `β_i = 1`); all `τ` values are non-negative and at
//! most `2l`. Counting zero decryptions across all her comparisons
//! gives `P_j` the number of parties ranked above her.

use ppgr_bigint::BigUint;
use ppgr_elgamal::{Ciphertext, ExpElGamal};
use ppgr_group::{Element, Scalar};

/// Computes the encrypted `τ` vector for one comparison.
///
/// * `own` — `P_j`'s value (plaintext, low `l` bits used);
/// * `other_bits` — `E(β_i)` bitwise, LSB first, exactly `l` ciphertexts.
///
/// Returns `l` ciphertexts `E(τ^1) … E(τ^l)` (LSB-position first).
///
/// The circuit is evaluated entirely through the group's batch entry
/// points: expanding `τ^t` per own-bit case gives
///
/// ```text
/// own bit 0:  τ = (−w)·E(β) + E(w) + S        (w = l − t + 1)
/// own bit 1:  τ =   w ·E(β) + E(1) + S
/// ```
///
/// so one [`ppgr_group::Group::exp_batch`] powers every ciphertext
/// component by its weight, one [`ppgr_group::Group::op_scan`] per
/// component accumulates the suffix sums `S^t` with a single shared
/// normalization, and two [`ppgr_group::Group::op_batch`] rounds fold in
/// the plaintext constants and suffixes. On the elliptic-curve family
/// this replaces the per-operation field inversion (hundreds per call)
/// with roughly half a dozen; the produced group elements — and thus the
/// published transcript bytes — are identical to the per-op evaluation.
///
/// # Panics
///
/// Panics if `other_bits.len() != l` or `own` exceeds `l` bits.
pub fn compare_encrypted(
    scheme: &ExpElGamal,
    own: &BigUint,
    other_bits: &[Ciphertext],
    l: usize,
) -> Vec<Ciphertext> {
    assert_eq!(other_bits.len(), l, "bitwise encryption length mismatch");
    assert!(own.bits() <= l, "own value exceeds l bits");
    let group = scheme.group();

    // Plaintext constants g^c used by the τ formula: c = 1 for own bit 1,
    // c = weight for own bit 0; weights span 1..=l, so tabulate them all.
    let const_scalars: Vec<Scalar> = (1..=l as u64).map(|v| group.scalar_from_u64(v)).collect();
    let gen_pows = group.exp_gen_batch(&const_scalars);

    // γ^t components: own bit 0 → (α, β); own bit 1 → (g·α⁻¹, β⁻¹) — the
    // plaintext lives in α, so only the α products need group work, shared
    // across one batch; inversion is cheap in both families.
    let mut bit1 = Vec::new();
    let mut inv_alphas = Vec::new();
    let gamma_betas: Vec<Element> = (0..l)
        .map(|idx| {
            if own.bit(idx) {
                bit1.push(idx);
                inv_alphas.push(group.inv(&other_bits[idx].alpha));
                group.inv(&other_bits[idx].beta)
            } else {
                other_bits[idx].beta.clone()
            }
        })
        .collect();
    let alpha_pairs: Vec<(&Element, &Element)> =
        inv_alphas.iter().map(|a| (a, &gen_pows[0])).collect();
    let bit1_alphas = group.op_batch(&alpha_pairs);
    let mut gamma_alphas: Vec<Element> = other_bits.iter().map(|ct| ct.alpha.clone()).collect();
    for (k, &idx) in bit1.iter().enumerate() {
        gamma_alphas[idx] = bit1_alphas[k].clone();
    }

    // Suffix sums S^t = Σ_{v>t} γ^v: one scan per component over
    // γ^l, …, γ^2 (MSB down), so suffix[idx] = scan[l − 2 − idx].
    let rev_alphas: Vec<&Element> = gamma_alphas[1..].iter().rev().collect();
    let rev_betas: Vec<&Element> = gamma_betas[1..].iter().rev().collect();
    let scan_alphas = group.op_scan(&rev_alphas);
    let scan_betas = group.op_scan(&rev_betas);

    // Every ciphertext component raised to its position weight.
    let exp_pairs: Vec<(&Element, &Scalar)> = (0..l)
        .flat_map(|idx| {
            let w = &const_scalars[l - idx - 1];
            [(&other_bits[idx].alpha, w), (&other_bits[idx].beta, w)]
        })
        .collect();
    let powered = group.exp_batch(&exp_pairs);
    let signed: Vec<(Element, Element)> = (0..l)
        .map(|idx| {
            let (pa, pb) = (&powered[2 * idx], &powered[2 * idx + 1]);
            if own.bit(idx) {
                (pa.clone(), pb.clone())
            } else {
                (group.inv(pa), group.inv(pb))
            }
        })
        .collect();

    // α picks up its plaintext constant, then both components add the
    // suffix; the final position's suffix is the empty sum.
    let alpha_consts: Vec<(&Element, &Element)> = (0..l)
        .map(|idx| {
            let c = if own.bit(idx) { 1 } else { l - idx };
            (&signed[idx].0, &gen_pows[c - 1])
        })
        .collect();
    let alpha_mid = group.op_batch(&alpha_consts);
    let identity = group.identity();
    let final_pairs: Vec<(&Element, &Element)> = (0..l)
        .flat_map(|idx| {
            let (sa, sb) = if idx + 1 < l {
                (&scan_alphas[l - 2 - idx], &scan_betas[l - 2 - idx])
            } else {
                (&identity, &identity)
            };
            [(&alpha_mid[idx], sa), (&signed[idx].1, sb)]
        })
        .collect();
    let combined = group.op_batch(&final_pairs);
    (0..l)
        .map(|idx| Ciphertext {
            alpha: combined[2 * idx].clone(),
            beta: combined[2 * idx + 1].clone(),
        })
        .collect()
}

/// Plaintext reference model of the same circuit (tests/verification):
/// returns the `τ` values as integers.
pub fn compare_plain(own: &BigUint, other: &BigUint, l: usize) -> Vec<u64> {
    let mut gammas = vec![0u64; l];
    for (idx, gamma) in gammas.iter_mut().enumerate() {
        *gamma = u64::from(own.bit(idx) != other.bit(idx));
    }
    (0..l)
        .map(|idx| {
            let weight = (l - idx) as u64;
            let suffix: u64 = gammas[idx + 1..].iter().sum();
            weight * (1 - gammas[idx]) + suffix + u64::from(own.bit(idx))
        })
        .collect()
}

/// Whether a plaintext `τ` vector signals `own < other` (contains a zero).
pub fn signals_less_than(taus: &[u64]) -> bool {
    taus.contains(&0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgr_elgamal::{encrypt_bits, KeyPair};
    use ppgr_group::GroupKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plain_circuit_matches_comparison_exhaustively() {
        let l = 5;
        for a in 0u64..32 {
            for b in 0u64..32 {
                let taus = compare_plain(&BigUint::from(a), &BigUint::from(b), l);
                assert_eq!(signals_less_than(&taus), a < b, "a={a} b={b} taus={taus:?}");
                // At most one zero (paper's claim).
                assert!(taus.iter().filter(|&&t| t == 0).count() <= 1);
                // Bounded values: τ ≤ 2l (weight + suffix + own bit).
                assert!(taus.iter().all(|&t| t <= 2 * l as u64));
            }
        }
    }

    #[test]
    fn encrypted_circuit_matches_plain_model() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(5);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group.clone());
        let l = 6;
        for (a, b) in [(0u64, 0u64), (5, 9), (9, 5), (63, 62), (31, 32), (1, 63)] {
            let own = BigUint::from(a);
            let other = BigUint::from(b);
            let other_ct = encrypt_bits(&scheme, kp.public_key(), &other, l, &mut rng);
            let taus_ct = compare_encrypted(&scheme, &own, &other_ct, l);
            let expect = compare_plain(&own, &other, l);
            for (ct, &want) in taus_ct.iter().zip(&expect) {
                let got = scheme
                    .decrypt_small(kp.secret_key(), ct, 2 * l as u64 + 4)
                    .expect("τ is small");
                assert_eq!(got, want, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn zero_detection_through_decryption() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(6);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group.clone());
        let l = 8;
        let own = BigUint::from(100u64);
        let bigger = BigUint::from(200u64);
        let smaller = BigUint::from(50u64);
        for (other, expect_zero) in [(&bigger, true), (&smaller, false), (&own, false)] {
            let cts = encrypt_bits(&scheme, kp.public_key(), other, l, &mut rng);
            let taus = compare_encrypted(&scheme, &own, &cts, l);
            let zeros = taus
                .iter()
                .filter(|ct| scheme.decrypts_to_zero(kp.secret_key(), ct))
                .count();
            assert_eq!(zeros == 1, expect_zero, "other={other:?}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_bit_count_panics() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(7);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group);
        let cts = encrypt_bits(&scheme, kp.public_key(), &BigUint::from(1u64), 4, &mut rng);
        let _ = compare_encrypted(&scheme, &BigUint::from(1u64), &cts, 5);
    }
}
