//! The homomorphic bitwise comparison circuit (paper Fig. 1, step 7).
//!
//! Party `P_j` holds her own bits `β_j` in plaintext and the other party's
//! bits only as exponential-ElGamal ciphertexts `E(β_i^t)`. She computes,
//! for every bit position `t` (1-based from the LSB, `t = l` the MSB):
//!
//! ```text
//! γ^t = β_j^t ⊕ β_i^t                      (linear: own bit is plaintext)
//! ω^t = (l − t + 1)·(1 − γ^t) + Σ_{v>t} γ^v
//! τ^t = ω^t + β_j^t
//! ```
//!
//! `τ^t = 0` at exactly one position iff `β_j < β_i` (the most significant
//! differing bit has `β_i = 1`); all `τ` values are non-negative and at
//! most `2l`. Counting zero decryptions across all her comparisons
//! gives `P_j` the number of parties ranked above her.

use ppgr_bigint::BigUint;
use ppgr_elgamal::{Ciphertext, ExpElGamal};

/// Computes the encrypted `τ` vector for one comparison.
///
/// * `own` — `P_j`'s value (plaintext, low `l` bits used);
/// * `other_bits` — `E(β_i)` bitwise, LSB first, exactly `l` ciphertexts.
///
/// Returns `l` ciphertexts `E(τ^1) … E(τ^l)` (LSB-position first).
///
/// # Panics
///
/// Panics if `other_bits.len() != l` or `own` exceeds `l` bits.
pub fn compare_encrypted(
    scheme: &ExpElGamal,
    own: &BigUint,
    other_bits: &[Ciphertext],
    l: usize,
) -> Vec<Ciphertext> {
    assert_eq!(other_bits.len(), l, "bitwise encryption length mismatch");
    assert!(own.bits() <= l, "own value exceeds l bits");
    let group = scheme.group().clone();
    let one = group.scalar_from_u64(1);

    // γ^t, each a ciphertext: own bit 0 → E(β_i^t); own bit 1 → E(1 − β_i^t).
    let gammas: Vec<Ciphertext> = (0..l)
        .map(|idx| {
            if own.bit(idx) {
                scheme.add_plaintext(&scheme.neg(&other_bits[idx]), &one)
            } else {
                other_bits[idx].clone()
            }
        })
        .collect();

    // Suffix sums S^t = Σ_{v>t} γ^v, computed MSB-down.
    let zero_ct = Ciphertext {
        alpha: group.identity(),
        beta: group.identity(),
    };
    let mut suffix = vec![zero_ct; l];
    for idx in (0..l.saturating_sub(1)).rev() {
        suffix[idx] = scheme.add(&suffix[idx + 1], &gammas[idx + 1]);
    }

    // τ^t = (l − t + 1)(1 − γ^t) + S^t + β_j^t, with t = idx + 1.
    (0..l)
        .map(|idx| {
            // weight = l − t + 1. The term (l−t+1) − (l−t+1)·γ^t scales by
            // the small weight first and negates the ciphertext afterwards,
            // keeping the exponent at ⌈log₂ l⌉ bits instead of a full-width
            // scalar `q − weight`, which the group backends exponentiate
            // orders of magnitude faster; the two orderings yield identical
            // group elements.
            let weight = (l - idx) as u64;
            let neg_scaled =
                scheme.neg(&scheme.scalar_mul(&gammas[idx], &group.scalar_from_u64(weight)));
            let mut tau = scheme.add_plaintext(&neg_scaled, &group.scalar_from_u64(weight));
            tau = scheme.add(&tau, &suffix[idx]);
            if own.bit(idx) {
                tau = scheme.add_plaintext(&tau, &one);
            }
            tau
        })
        .collect()
}

/// Plaintext reference model of the same circuit (tests/verification):
/// returns the `τ` values as integers.
pub fn compare_plain(own: &BigUint, other: &BigUint, l: usize) -> Vec<u64> {
    let mut gammas = vec![0u64; l];
    for (idx, gamma) in gammas.iter_mut().enumerate() {
        *gamma = u64::from(own.bit(idx) != other.bit(idx));
    }
    (0..l)
        .map(|idx| {
            let weight = (l - idx) as u64;
            let suffix: u64 = gammas[idx + 1..].iter().sum();
            weight * (1 - gammas[idx]) + suffix + u64::from(own.bit(idx))
        })
        .collect()
}

/// Whether a plaintext `τ` vector signals `own < other` (contains a zero).
pub fn signals_less_than(taus: &[u64]) -> bool {
    taus.contains(&0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgr_elgamal::{encrypt_bits, KeyPair};
    use ppgr_group::GroupKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plain_circuit_matches_comparison_exhaustively() {
        let l = 5;
        for a in 0u64..32 {
            for b in 0u64..32 {
                let taus = compare_plain(&BigUint::from(a), &BigUint::from(b), l);
                assert_eq!(signals_less_than(&taus), a < b, "a={a} b={b} taus={taus:?}");
                // At most one zero (paper's claim).
                assert!(taus.iter().filter(|&&t| t == 0).count() <= 1);
                // Bounded values: τ ≤ 2l (weight + suffix + own bit).
                assert!(taus.iter().all(|&t| t <= 2 * l as u64));
            }
        }
    }

    #[test]
    fn encrypted_circuit_matches_plain_model() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(5);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group.clone());
        let l = 6;
        for (a, b) in [(0u64, 0u64), (5, 9), (9, 5), (63, 62), (31, 32), (1, 63)] {
            let own = BigUint::from(a);
            let other = BigUint::from(b);
            let other_ct = encrypt_bits(&scheme, kp.public_key(), &other, l, &mut rng);
            let taus_ct = compare_encrypted(&scheme, &own, &other_ct, l);
            let expect = compare_plain(&own, &other, l);
            for (ct, &want) in taus_ct.iter().zip(&expect) {
                let got = scheme
                    .decrypt_small(kp.secret_key(), ct, 2 * l as u64 + 4)
                    .expect("τ is small");
                assert_eq!(got, want, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn zero_detection_through_decryption() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(6);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group.clone());
        let l = 8;
        let own = BigUint::from(100u64);
        let bigger = BigUint::from(200u64);
        let smaller = BigUint::from(50u64);
        for (other, expect_zero) in [(&bigger, true), (&smaller, false), (&own, false)] {
            let cts = encrypt_bits(&scheme, kp.public_key(), other, l, &mut rng);
            let taus = compare_encrypted(&scheme, &own, &cts, l);
            let zeros = taus
                .iter()
                .filter(|ct| scheme.decrypts_to_zero(kp.secret_key(), ct))
                .count();
            assert_eq!(zeros == 1, expect_zero, "other={other:?}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_bit_count_panics() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(7);
        let kp = KeyPair::generate(&group, &mut rng);
        let scheme = ExpElGamal::new(group);
        let cts = encrypt_bits(&scheme, kp.public_key(), &BigUint::from(1u64), 4, &mut rng);
        let _ = compare_encrypted(&scheme, &BigUint::from(1u64), &cts, 5);
    }
}
