//! Phase 2 — the identity-unlinkable multiparty sorting protocol
//! (paper Fig. 1, steps 5–9; the paper's stand-alone contribution).
//!
//! `n` parties each hold an `l`-bit value; at the end each party knows the
//! rank of her own value (rank 1 = largest) and — crucially — nobody can
//! link another party's value or rank to that party's identity, assuming
//! at least two honest parties.
//!
//! Protocol outline:
//!
//! 1. every party generates an ElGamal key share and proves knowledge of
//!    it to everyone (multi-verifier Schnorr);
//! 2. every party publishes her value encrypted bit-by-bit under the
//!    *joint* key;
//! 3. every party homomorphically compares her plaintext value against
//!    every other party's encrypted bits ([`circuit`](crate::circuit)),
//!    producing an encrypted `τ` set, and sends it to `P₁`;
//! 4. the sets travel a chain through all parties; each hop partially
//!    decrypts with its key share, multiplies every plaintext by a fresh
//!    random scalar (zero is a fixed point), and shuffles each set;
//! 5. `P_n` returns each set to its owner, who strips her own key layer
//!    and counts zeros: `rank = zeros + 1`.

use crate::circuit::compare_encrypted;
use crate::offline::{HopSet, KeyMaterial, OfflineStock};
use crate::timing::PartyTimer;
use ppgr_bigint::BigUint;
use ppgr_elgamal::{encrypt_bits_with_precomputed, Ciphertext, ExpElGamal, JointKey, KeyPair};
use ppgr_group::{Element, Group, GroupKind};
use ppgr_net::TrafficLog;
use ppgr_zkp::{
    verify_multi_batch, verify_multi_batch_all, verify_sessions_multi_batch, MultiVerifierProof,
    MultiVerifierTranscript,
};
use rand::seq::SliceRandom;
use rand::Rng;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
// tidy:allow(determinism) — wall-clock used for timing accounting only, never protocol state
use std::time::{Duration, Instant};

/// Errors from the sorting protocol.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum SortError {
    /// The chain needs at least two parties.
    TooFewParties(usize),
    /// A value exceeds the declared bit length.
    ValueTooWide {
        /// Offending party (1-based).
        party: usize,
    },
    /// A party's proof of key knowledge failed verification (would abort
    /// the protocol in deployment; only reachable here via the game
    /// harness's dishonest provers).
    ProofRejected {
        /// The accused prover (1-based).
        party: usize,
    },
    /// A pool offered an offline stock minted for a different group
    /// instantiation. Silently regenerating would hide a mis-keyed pool
    /// lane, so the mismatch is surfaced instead.
    StockGroupMismatch {
        /// The session's group.
        expected: GroupKind,
        /// The stock fingerprint's group.
        got: GroupKind,
    },
    /// A sort-machine invariant was violated (state out of sync).
    /// Reaching this indicates a bug in the driver, not bad input.
    Internal(&'static str),
}

impl fmt::Display for SortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortError::TooFewParties(n) => write!(f, "sorting needs at least 2 parties, got {n}"),
            SortError::ValueTooWide { party } => {
                write!(f, "party {party}'s value exceeds the declared bit length")
            }
            SortError::ProofRejected { party } => {
                write!(f, "party {party} failed the proof of key knowledge")
            }
            SortError::StockGroupMismatch { expected, got } => {
                write!(
                    f,
                    "offline stock was minted for group {got:?}, session uses {expected:?}"
                )
            }
            SortError::Internal(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl Error for SortError {}

/// Result of a sorting run.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct SortOutcome {
    /// `ranks[j]` is party `j+1`'s rank; rank 1 = largest value; ties get
    /// the same rank (paper: equal `β` values are all eligible).
    pub ranks: Vec<usize>,
}

/// Protocol knobs used by the security-game harness; honest executions use
/// [`SortOptions::default`] (everything on).
#[derive(Clone, Copy, Debug)]
pub struct SortOptions {
    /// Shuffle each set at every hop (the identity-unlinkability
    /// mechanism). Disabling models a protocol *without* Brickell–
    /// Shmatikov mixing.
    pub shuffle: bool,
    /// Multiply plaintexts by a fresh random at every hop (the gain-hiding
    /// mechanism for non-zero `τ`).
    pub randomize: bool,
    /// Worker threads for each party's local crypto (`0` = one per
    /// available core, `1` = serial). Randomness is pre-drawn serially, so
    /// every thread count produces bit-identical transcripts and ranks.
    /// Only *local* work parallelizes: the hop-to-hop chain itself stays
    /// sequential because each hop must shuffle and re-randomize the
    /// previous hop's output before anyone else may see it — pipelining
    /// hops would let a party observe pre-shuffle sets and break
    /// unlinkability.
    pub threads: usize,
    /// Detach the keygen proof verification from the step stream: instead
    /// of checking the proofs of key knowledge inside the keygen step, the
    /// machine stashes them as a [`KeygenVerifyJob`] for the driver to
    /// collect (see [`SortMachine::take_pending_verify`]) and batch across
    /// concurrent sessions through one aggregate multi-exponentiation.
    /// Verification is RNG-free and sends no bytes, so deferring it leaves
    /// transcripts and ranks bit-identical to the inline check; a driver
    /// that takes a job **must** run it (or fail the session) before
    /// trusting the outcome.
    pub defer_verify: bool,
}

impl Default for SortOptions {
    fn default() -> Self {
        SortOptions {
            shuffle: true,
            randomize: true,
            threads: 0,
            defer_verify: false,
        }
    }
}

/// One session's keygen proof check, detached from its step stream by
/// [`SortOptions::defer_verify`].
///
/// Carries the published key shares (the statements) and the parties'
/// proofs of key knowledge in protocol order. Checking each proof once is
/// equivalent to the online round's `n` per-verifier batches — every
/// verifier checks the same `n − 1` foreign transcripts against the same
/// public keys — so a driver may fold many sessions' jobs into one
/// aggregate equation ([`verify_deferred_jobs`]) without changing any
/// session's verdict or blame.
#[derive(Debug)]
pub struct KeygenVerifyJob {
    group: Group,
    statements: Vec<Element>,
    proofs: Vec<MultiVerifierTranscript>,
}

impl KeygenVerifyJob {
    /// The group instantiation the proofs live in. Jobs may only be batched
    /// with jobs of the same kind; [`verify_deferred_jobs`] partitions by
    /// this internally.
    pub fn group_kind(&self) -> GroupKind {
        self.group.kind()
    }

    /// Number of proofs (= parties) in the job.
    pub fn proofs(&self) -> usize {
        self.proofs.len()
    }

    fn items(&self) -> Vec<(&Element, &MultiVerifierTranscript)> {
        self.statements.iter().zip(self.proofs.iter()).collect()
    }

    /// Verifies this job alone, without cross-session batching.
    ///
    /// The fallback for drivers whose batch window is degenerate (size one)
    /// or that must settle a job immediately (e.g. at shutdown).
    ///
    /// # Errors
    ///
    /// [`SortError::ProofRejected`] naming the first dishonest party in
    /// protocol order — the same blame the inline keygen check assigns.
    pub fn verify_inline(&self) -> Result<(), SortError> {
        verify_multi_batch_all(&self.group, &self.items()).map_err(|rejected| {
            SortError::ProofRejected {
                // `verify_multi_batch_all` only errs with a non-empty,
                // ascending rejection list; the fallback party 1 is
                // unreachable but keeps the mapping total.
                party: rejected.first().map_or(1, |&p| p + 1),
            }
        })
    }
}

/// Settles a batch of deferred keygen proof checks in one aggregate
/// multi-exponentiation per group instantiation, returning one verdict per
/// job in input order.
///
/// This is the cross-session amortization lever: `k` sessions of `n`
/// parties collapse into a single `k·n`-term aggregate equation instead of
/// `k·n` per-verifier batches. On aggregate failure the authoritative
/// per-proof rescan attributes every rejection to its session and party
/// ([`ppgr_zkp::verify_sessions_multi_batch`]), so each failed session's
/// error names exactly the party its solo run would have blamed; sessions
/// whose proofs all hold still verify `Ok` in the same call.
pub fn verify_deferred_jobs(jobs: &[KeygenVerifyJob]) -> Vec<Result<(), SortError>> {
    let mut verdicts: Vec<Result<(), SortError>> = (0..jobs.len()).map(|_| Ok(())).collect();
    // Partition by group kind, preserving submission order within each
    // partition (the combiner derivation is order-sensitive, but every
    // ordering is sound — this one just keeps reruns deterministic).
    let mut kinds: Vec<GroupKind> = Vec::new();
    for job in jobs {
        if !kinds.contains(&job.group.kind()) {
            kinds.push(job.group.kind());
        }
    }
    for kind in kinds {
        let indices: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.group.kind() == kind)
            .map(|(i, _)| i)
            .collect();
        let group = &jobs[indices[0]].group;
        let per_job: Vec<Vec<(&Element, &MultiVerifierTranscript)>> =
            indices.iter().map(|&i| jobs[i].items()).collect();
        let sessions: Vec<&[(&Element, &MultiVerifierTranscript)]> =
            per_job.iter().map(Vec::as_slice).collect();
        if let Err(rejections) = verify_sessions_multi_batch(group, &sessions) {
            for r in rejections {
                if let Some(&first) = r.proofs.first() {
                    verdicts[indices[r.session]] =
                        Err(SortError::ProofRejected { party: first + 1 });
                }
            }
        }
    }
    verdicts
}

/// Resolves [`SortOptions::threads`] to a concrete worker count.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Runs `f` over `items` on up to `workers` scoped threads, preserving
/// item order in the output. Returns the results plus the total CPU time
/// summed across workers (for [`PartyTimer::record`]). `f` must not touch
/// the protocol RNG — callers pre-draw any randomness serially.
fn parallel_map<T: Sync, U: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(&T) -> U + Sync,
) -> (Vec<U>, Duration) {
    let workers = workers.clamp(1, items.len().max(1));
    if workers == 1 {
        // tidy:allow(determinism) — wall-clock used for timing accounting only, never protocol state
        let start = Instant::now();
        let out: Vec<U> = items.iter().map(&f).collect();
        return (out, start.elapsed());
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, U)> = Vec::with_capacity(items.len());
    let mut cpu = Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    // tidy:allow(determinism) — wall-clock used for timing accounting only, never protocol state
                    let start = Instant::now();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    (out, start.elapsed())
                })
            })
            .collect();
        for handle in handles {
            // A worker that panicked (e.g. an assert in `f`) must not be
            // swallowed into a bogus result; re-raise its payload on the
            // caller's thread instead.
            let (part, spent) = match handle.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            indexed.extend(part);
            cpu += spent;
        }
    });
    indexed.sort_by_key(|&(i, _)| i);
    (indexed.into_iter().map(|(_, u)| u).collect(), cpu)
}

/// Everything a run exposes beyond the ranks — consumed by the
/// security-game harness (an adversary's view is a subset of this).
#[derive(Clone, Debug)]
pub struct SortTrace {
    /// Per-party key pairs (index `j-1` → party `j`).
    pub keys: Vec<KeyPair>,
    /// The final set returned to each owner (after the full chain),
    /// *before* the owner's own final decryption.
    pub returned_sets: Vec<Vec<Ciphertext>>,
    /// The comparison opponent order used when each owner built her set
    /// (identity ↔ position mapping before any shuffling).
    pub opponent_order: Vec<Vec<usize>>,
}

/// Runs the protocol with default options and no trace capture.
///
/// `values[j]` is party `j+1`'s private `l`-bit value.
///
/// # Errors
///
/// See [`SortError`].
pub fn unlinkable_sort<R: Rng + ?Sized>(
    group: &Group,
    values: &[BigUint],
    l: usize,
    rng: &mut R,
    log: &TrafficLog,
    timer: &mut PartyTimer,
    round_base: u32,
) -> Result<SortOutcome, SortError> {
    run_sort(
        group,
        values,
        l,
        SortOptions::default(),
        rng,
        log,
        timer,
        round_base,
    )
    .map(|(outcome, _trace)| outcome)
}

/// Full-control entry point: options + trace (used by games and tests).
///
/// Drives a [`SortMachine`] to completion; a machine stepped the same way
/// with the same RNG produces bit-identical transcripts and ranks.
///
/// # Errors
///
/// See [`SortError`].
#[allow(clippy::too_many_arguments)]
pub fn run_sort<R: Rng + ?Sized>(
    group: &Group,
    values: &[BigUint],
    l: usize,
    options: SortOptions,
    rng: &mut R,
    log: &TrafficLog,
    timer: &mut PartyTimer,
    round_base: u32,
) -> Result<(SortOutcome, SortTrace), SortError> {
    let mut machine = SortMachine::new(group, values, l, options, round_base)?;
    while machine.step(rng, log, timer)? == SortStatus::Pending {}
    machine
        .into_result()
        .ok_or(SortError::Internal("machine driven to Done but no result"))
}

/// What a [`SortMachine::step`] call left behind.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum SortStatus {
    /// More protocol steps remain; call [`SortMachine::step`] again.
    Pending,
    /// The protocol finished; collect the result with
    /// [`SortMachine::into_result`].
    Done,
}

/// Where a [`SortMachine`] currently stands in the protocol.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
enum SortState {
    /// Offline phase: acquire (or draw cold) the precomputed stock — key
    /// material with proofs, encryption and comparison mask pairs, hop
    /// randomizers.
    Offline,
    /// Step 5: key generation + proofs of knowledge (all parties).
    KeyGen,
    /// Step 6: bitwise encryption under the joint key (all parties).
    Encrypt,
    /// Step 7: party `idx + 1` builds her τ-sets.
    Compare { idx: usize },
    /// Step 8: party `idx + 1` runs her shuffle-decrypt chain hop.
    Hop { idx: usize },
    /// Step 9: owners strip their layers, count zeros, assemble the result.
    Finish,
    /// Result available.
    Done,
}

/// A resumable execution of the sorting protocol.
///
/// [`run_sort`] drives one machine to completion in a loop; the throughput
/// runtime (`ppgr-runtime`) instead interleaves `step` calls from *many*
/// machines on a persistent worker pool, so that while one session's
/// strictly sequential shuffle-decrypt chain occupies a worker, other
/// sessions' hops fill the remaining workers.
///
/// Granularity: one `step` call performs one protocol unit — all of key
/// generation, all of bit encryption, or a single party's comparison batch
/// / chain hop (the chain hops are ~89 % of the cost, so per-hop yields are
/// what make cross-session pipelining effective). Every random draw happens
/// inside `step` in the exact order the serial protocol would draw it, so a
/// session's transcript and ranks are bit-identical no matter how its steps
/// are interleaved with other sessions'.
#[derive(Debug)]
pub struct SortMachine {
    // Fixed configuration.
    group: Group,
    scheme: ExpElGamal,
    values: Vec<BigUint>,
    l: usize,
    options: SortOptions,
    n: usize,
    workers: usize,
    ct_len: usize,
    elem_len: usize,
    scalar_len: usize,
    // Protocol state.
    state: SortState,
    round: u32,
    keys: Vec<KeyPair>,
    key_table: Option<ppgr_group::FixedBaseTable>,
    encrypted_bits: Vec<Vec<Ciphertext>>,
    sets: Vec<Vec<Ciphertext>>,
    opponent_order: Vec<Vec<usize>>,
    /// Reusable hop output buffer (serial path): each hop writes the next
    /// version of a set here, then swaps it with the live set, so the
    /// chain's dominant loop reuses two buffers per set instead of
    /// allocating and cloning fresh vectors every hop.
    hop_scratch: Vec<Ciphertext>,
    /// Precomputed randomness, attached warm by a pool or drawn cold at the
    /// offline step; consumed front-to-back in protocol order.
    stock: Option<OfflineStock>,
    /// The keygen proof check stashed by a `defer_verify` run, awaiting
    /// collection via [`SortMachine::take_pending_verify`].
    pending_verify: Option<KeygenVerifyJob>,
    result: Option<(SortOutcome, SortTrace)>,
}

impl SortMachine {
    /// Validates the inputs and prepares a machine at step 5.
    ///
    /// # Errors
    ///
    /// See [`SortError`] (`TooFewParties`, `ValueTooWide`).
    pub fn new(
        group: &Group,
        values: &[BigUint],
        l: usize,
        options: SortOptions,
        round_base: u32,
    ) -> Result<Self, SortError> {
        let n = values.len();
        if n < 2 {
            return Err(SortError::TooFewParties(n));
        }
        for (idx, v) in values.iter().enumerate() {
            if v.bits() > l {
                return Err(SortError::ValueTooWide { party: idx + 1 });
            }
        }
        Ok(SortMachine {
            scheme: ExpElGamal::new(group.clone()),
            ct_len: Ciphertext::encoded_len(group),
            elem_len: group.element_len(),
            scalar_len: group.order().bits().div_ceil(8),
            group: group.clone(),
            values: values.to_vec(),
            l,
            options,
            n,
            workers: resolve_threads(options.threads),
            state: SortState::Offline,
            round: round_base,
            keys: Vec::new(),
            key_table: None,
            encrypted_bits: Vec::new(),
            sets: Vec::new(),
            opponent_order: Vec::new(),
            hop_scratch: Vec::new(),
            stock: None,
            pending_verify: None,
            result: None,
        })
    }

    /// Attaches a pool-generated [`OfflineStock`] before the machine's
    /// offline step runs, so the step finds its randomness ready instead of
    /// drawing it cold.
    ///
    /// # Errors
    ///
    /// [`SortError::StockGroupMismatch`] if the stock's fingerprint names a
    /// different group instantiation than this session — a mis-keyed pool
    /// lane that silently regenerating cold would hide.
    /// [`SortError::Internal`] if the offline step has already run, a stock
    /// is already attached, or the stock's shape does not match this
    /// session (`n` parties, `l` bits).
    pub fn attach_offline_stock(&mut self, stock: OfflineStock) -> Result<(), SortError> {
        if let Some(fp) = stock.fingerprint() {
            if fp.group != self.group.kind() {
                return Err(SortError::StockGroupMismatch {
                    expected: self.group.kind(),
                    got: fp.group,
                });
            }
        }
        if self.state != SortState::Offline || self.stock.is_some() {
            return Err(SortError::Internal(
                "offline stock attached after the offline step",
            ));
        }
        if !stock.matches_shape(&self.group, self.n, self.l) {
            return Err(SortError::Internal("offline stock shape mismatch"));
        }
        self.stock = Some(stock);
        Ok(())
    }

    /// Takes the keygen proof check a [`SortOptions::defer_verify`] run
    /// stashed, if any.
    ///
    /// Returns `Some` exactly once, after the keygen step of a deferred run
    /// whose stock was not already verified at minting time. The caller
    /// owns the session's soundness from that point: it must settle the job
    /// — [`KeygenVerifyJob::verify_inline`] or a [`verify_deferred_jobs`]
    /// batch — and discard the session's outcome if the verdict is `Err`.
    pub fn take_pending_verify(&mut self) -> Option<KeygenVerifyJob> {
        self.pending_verify.take()
    }

    /// Donates a recycled hop output buffer so the chain's dominant loop
    /// starts with warm capacity instead of growing a fresh allocation.
    ///
    /// The buffer is cleared and fully overwritten before any use, so its
    /// prior contents never influence the protocol — transcripts stay
    /// bit-identical whether the scratch arrived empty, donated, or
    /// pre-sized. Call before stepping; a later call simply replaces the
    /// current buffer.
    pub fn adopt_scratch(&mut self, mut scratch: Vec<Ciphertext>) {
        scratch.clear();
        self.hop_scratch = scratch;
    }

    /// Takes the hop output buffer back (e.g. after [`SortStatus::Done`])
    /// so a pool can hand its capacity to the next session.
    pub fn take_scratch(&mut self) -> Vec<Ciphertext> {
        std::mem::take(&mut self.hop_scratch)
    }

    /// Whether the protocol has completed.
    pub fn is_done(&self) -> bool {
        self.state == SortState::Done
    }

    /// The outcome and trace, once [`SortMachine::step`] has returned
    /// [`SortStatus::Done`]. Consumes the machine; returns `None` if the
    /// protocol has not finished.
    pub fn into_result(self) -> Option<(SortOutcome, SortTrace)> {
        self.result
    }

    /// Executes the next protocol unit.
    ///
    /// All randomness is drawn from `rng` inside this call, in serial
    /// protocol order; wire traffic is logged to `log` and per-party
    /// computation charged to `timer`.
    ///
    /// # Errors
    ///
    /// [`SortError::ProofRejected`] if a proof of key knowledge fails
    /// (reachable only via dishonest provers in the game harness).
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        log: &TrafficLog,
        timer: &mut PartyTimer,
    ) -> Result<SortStatus, SortError> {
        match self.state {
            SortState::Offline => {
                // Cold fallback: no pool attached a stock, so draw and mint
                // the whole keygen tier from the protocol stream here, on
                // the session clock. Warm machines skip this entirely.
                // Offline work is charged to nobody's per-party ledger —
                // that is the point of the split.
                if self.stock.is_none() {
                    // A defer-verify run must not pay for minting-time proof
                    // verification here either — the check belongs to the
                    // cross-session batch. The deferred draw skips only the
                    // verdict; the stock bytes are identical.
                    self.stock = Some(if self.options.defer_verify {
                        OfflineStock::draw_from_deferred(&self.group, self.n, self.l, rng)
                    } else {
                        OfflineStock::draw_from(&self.group, self.n, self.l, rng)
                    });
                }
                self.state = SortState::KeyGen;
                Ok(SortStatus::Pending)
            }
            SortState::KeyGen => {
                self.step_keygen(log, timer)?;
                self.state = SortState::Encrypt;
                Ok(SortStatus::Pending)
            }
            SortState::Encrypt => {
                self.step_encrypt(log, timer)?;
                self.state = SortState::Compare { idx: 0 };
                Ok(SortStatus::Pending)
            }
            SortState::Compare { idx } => {
                self.step_compare(idx, log, timer)?;
                self.state = if idx + 1 < self.n {
                    SortState::Compare { idx: idx + 1 }
                } else {
                    self.round += 1;
                    SortState::Hop { idx: 0 }
                };
                Ok(SortStatus::Pending)
            }
            SortState::Hop { idx } => {
                self.step_hop(idx, rng, log, timer)?;
                self.state = if idx + 1 < self.n {
                    SortState::Hop { idx: idx + 1 }
                } else {
                    SortState::Finish
                };
                Ok(SortStatus::Pending)
            }
            SortState::Finish => {
                self.step_finish(log, timer);
                self.state = SortState::Done;
                Ok(SortStatus::Done)
            }
            SortState::Done => Ok(SortStatus::Done),
        }
    }

    /// Step 5: key generation + proofs of knowledge, fed entirely from the
    /// offline stock.
    ///
    /// Keys are party randomness, not inputs, so the stock carries them:
    /// a keygen-tier stock hands over minted key pairs, assembled proofs
    /// and the prepared joint-key table, leaving online only the share
    /// exchange and proof verification; a masks-tier stock hands over the
    /// raw seeds and the minting runs here, on the clock. Both paths
    /// produce byte-identical transcripts.
    ///
    /// Verification is batched per verifier: each party collapses her n−1
    /// foreign checks into one aggregate multi-exponentiation
    /// ([`ppgr_zkp::verify_multi_batch`]); on rejection a per-prover rescan
    /// in protocol order reproduces exactly the attribution the old
    /// verify-as-you-go loop gave.
    fn step_keygen(&mut self, log: &TrafficLog, timer: &mut PartyTimer) -> Result<(), SortError> {
        let n = self.n;
        let material = self
            .stock
            .as_mut()
            .and_then(OfflineStock::take_keys)
            .ok_or(SortError::Internal("offline key stock exhausted"))?;
        let (keys, proofs, pre_verified) = match material {
            KeyMaterial::Minted {
                pairs,
                proofs,
                joint: _,
                table,
                verified,
            } => {
                // Fully warm: the shares, proofs and the joint-key comb
                // table were minted offline; nothing here exponentiates.
                // A stock whose proofs were already batch-verified at
                // minting time carries the verdict, so the online round
                // below is skipped too.
                self.key_table = Some(table);
                (pairs, proofs, verified)
            }
            KeyMaterial::Seeds {
                secrets,
                nonces,
                challenges,
            } => {
                // Masks tier / cold-adjacent: mint from the stocked seeds
                // on the clock, charged to each party.
                let keys: Vec<KeyPair> = secrets
                    .iter()
                    .enumerate()
                    .map(|(idx, s)| {
                        timer.time(idx + 1, || {
                            KeyPair::from_secret(&self.group, s.expose().clone())
                        })
                    })
                    .collect();
                let proofs: Vec<MultiVerifierTranscript> = keys
                    .iter()
                    .zip(nonces)
                    .zip(challenges)
                    .enumerate()
                    .map(|(idx, ((kp, nonce), chals))| {
                        timer.time(idx + 1, || {
                            MultiVerifierProof::assemble(&self.group, kp.secret_key(), nonce, chals)
                        })
                    })
                    .collect();
                (keys, proofs, false)
            }
        };
        for party in 1..=n {
            // Publish y_j.
            for other in 1..=n {
                if other != party {
                    log.record(self.round, party, other, self.elem_len, "sort/keys");
                }
            }
        }
        self.round += 1;
        for party in 1..=n {
            // Commitment broadcast, n−1 challenge shares, response broadcast.
            for other in 1..=n {
                if other != party {
                    log.record(self.round, party, other, self.elem_len, "sort/zkp");
                    log.record(self.round + 1, other, party, self.scalar_len, "sort/zkp");
                    log.record(self.round + 2, party, other, self.scalar_len, "sort/zkp");
                }
            }
        }
        // Skipped when the stock already ran every verifier's batch check
        // at minting time (the proofs are offline material, so verifying
        // them is offline work — see `KeyMaterial::Minted::verified`).
        if !pre_verified && self.options.defer_verify {
            // Deferred: hand the statements and proofs to the driver as a
            // job for a cross-session batch instead of checking them here.
            // Nothing is charged to any party's ledger — like the offline
            // split, moving the check off the session clock is the point —
            // and no bytes move, so the transcript is unchanged. Checking
            // each proof once (what the job does) is equivalent to the
            // per-verifier loop below: every verifier checks the same
            // foreign transcripts against the same keys.
            self.pending_verify = Some(KeygenVerifyJob {
                group: self.group.clone(),
                statements: keys.iter().map(|k| k.public_key().clone()).collect(),
                proofs,
            });
        } else {
            for vidx in 0..n {
                if pre_verified {
                    break;
                }
                let foreign: Vec<(&Element, &MultiVerifierTranscript)> = (0..n)
                    .filter(|&p| p != vidx)
                    .map(|p| (keys[p].public_key(), &proofs[p]))
                    .collect();
                let ok = timer.time(vidx + 1, || {
                    verify_multi_batch(&self.group, &foreign).is_ok()
                });
                if !ok {
                    // Rescan over *all* provers in protocol order so the
                    // error names the first dishonest one, exactly as the
                    // old verify-as-you-go loop did (a verifier's own batch
                    // skips her own proof, so the batch index alone is not
                    // enough).
                    let party = (0..n)
                        .find(|&p| !proofs[p].verify(&self.group, keys[p].public_key()))
                        .map_or(vidx + 1, |p| p + 1);
                    return Err(SortError::ProofRejected { party });
                }
            }
        }
        self.round += 3;
        self.keys = keys;
        Ok(())
    }

    /// Step 6: bitwise encryption under the joint key, published to all.
    ///
    /// A keygen-tier stock delivered the joint key's prepared comb table
    /// (and every mask's `y^r` half) at the keygen step, so nothing here
    /// exponentiates beyond one group operation per set bit; otherwise the
    /// table is derived now and the `y^r` batch runs online through it.
    fn step_encrypt(&mut self, log: &TrafficLog, timer: &mut PartyTimer) -> Result<(), SortError> {
        let n = self.n;
        let key_table = match self.key_table.take() {
            Some(table) => table,
            None => {
                let shares: Vec<_> = self.keys.iter().map(|k| k.public_key().clone()).collect();
                let joint = JointKey::combine(&self.group, &shares);
                // The fixed-base table for the joint key `y` is public
                // precomputation: every party derives it from the published
                // key shares, so its (small, amortized) cost is not charged
                // to any single party's ledger.
                self.scheme.prepare_key(joint.public_key())
            }
        };
        let mut stock = self
            .stock
            .take()
            .ok_or(SortError::Internal("no offline stock at encrypt"))?;
        self.encrypted_bits = self
            .values
            .iter()
            .enumerate()
            .map(|(idx, v)| {
                let party = idx + 1;
                let row = stock
                    .take_enc_row()
                    .ok_or(SortError::Internal("offline encryption stock exhausted"))?;
                let cts = timer.time(party, || {
                    encrypt_bits_with_precomputed(&self.scheme, &key_table, v, self.l, row)
                });
                for other in 1..=n {
                    if other != party {
                        log.record(self.round, party, other, self.l * self.ct_len, "sort/bits");
                    }
                }
                Ok(cts)
            })
            .collect::<Result<_, SortError>>()?;
        self.stock = Some(stock);
        self.round += 1;
        self.key_table = Some(key_table);
        Ok(())
    }

    /// Step 7 for one party: she compares her plaintext value against every
    /// other party's encrypted bits; her set is the concatenation in
    /// `opponent_order`. The n−1 comparisons are independent and consume no
    /// randomness, so they may fan out across worker threads.
    ///
    /// Before the set leaves her hands she re-randomizes every ciphertext
    /// with a stocked `(g^s, y^s)` pair. The raw τ set is a *deterministic*
    /// homomorphic combination of the published bit encryptions, keyed only
    /// by her `l`-bit plaintext — anyone who sees it before its first chain
    /// randomization (P₁ on collection, the next hop for P₁'s own set)
    /// could confirm a guess of her value by recomputing the combination.
    /// Re-randomization makes the set's bytes independent of everything
    /// published, closing that hole; the plaintexts (and so the ranks and
    /// zero counts) are untouched.
    fn step_compare(
        &mut self,
        idx: usize,
        log: &TrafficLog,
        timer: &mut PartyTimer,
    ) -> Result<(), SortError> {
        let party = idx + 1;
        let opponents: Vec<usize> = (0..self.n).filter(|&i| i != idx).collect();
        let value = &self.values[idx];
        // tidy:allow(determinism) — wall-clock used for timing accounting only, never protocol state
        let start = Instant::now();
        let (chunks, cpu) = parallel_map(&opponents, self.workers, |&opp| {
            compare_encrypted(&self.scheme, value, &self.encrypted_bits[opp], self.l)
        });
        timer.record(party, start.elapsed(), cpu);
        let raw: Vec<Ciphertext> = chunks.into_iter().flatten().collect();
        let row = self
            .stock
            .as_mut()
            .and_then(OfflineStock::take_compare_row)
            .ok_or(SortError::Internal("offline compare stock exhausted"))?;
        if row.len() != raw.len() {
            return Err(SortError::Internal("offline compare stock shape mismatch"));
        }
        let key_table = self
            .key_table
            .as_ref()
            .ok_or(SortError::Internal("no key table at compare"))?;
        let set = timer.time(party, || {
            self.scheme
                .rerandomize_batch_with_precomputed(key_table, &raw, row)
        });
        if party != 1 {
            log.record(
                self.round,
                party,
                1,
                set.len() * self.ct_len,
                "sort/collect",
            );
        }
        self.sets.push(set);
        self.opponent_order.push(opponents);
        Ok(())
    }

    /// Step 8 for one party: her hop of the shuffle-decrypt chain
    /// P₁ → P₂ → … → P_n. Within the hop the n−1 foreign sets are
    /// independent; the plaintext randomizers come from the offline stock
    /// and the shuffle permutations are pre-drawn in the serial order, so
    /// the transcript is identical for any thread count, then the
    /// exponentiations run batched — the fused decrypt-and-randomize hop
    /// costs ~1.7 exponentiations per ciphertext instead of 3, and the
    /// shuffle is fused into result placement so no permutation pass (or
    /// its per-ciphertext clones) remains.
    fn step_hop<R: Rng + ?Sized>(
        &mut self,
        idx: usize,
        rng: &mut R,
        log: &TrafficLog,
        timer: &mut PartyTimer,
    ) -> Result<(), SortError> {
        let party = idx + 1;
        // tidy:allow(determinism) — wall-clock used for timing accounting only, never protocol state
        let start = Instant::now();
        // tidy:allow(determinism) — wall-clock used for timing accounting only, never protocol state
        let draw_start = Instant::now();
        let mut stock = self
            .stock
            .take()
            .ok_or(SortError::Internal("no offline stock at hop"))?;
        // (owner, randomizers, shuffle permutation) per foreign set. The
        // stock always holds a randomizer set per (hop, foreign set) —
        // its shape is options-independent — so a non-randomizing run
        // simply leaves them unconsumed.
        let jobs: Vec<(usize, HopSet, Option<Vec<usize>>)> = self
            .sets
            .iter()
            .enumerate()
            .filter(|&(owner, _)| owner != idx) // never her own set
            .map(|(owner, set)| {
                let rs: HopSet = if self.options.randomize {
                    let rs = stock
                        .take_hop_set()
                        .ok_or(SortError::Internal("offline hop stock exhausted"))?;
                    if rs.len() != set.len() {
                        return Err(SortError::Internal("offline hop stock shape mismatch"));
                    }
                    rs
                } else {
                    HopSet::Raw(Vec::new())
                };
                // A permutation shuffled with the same draws the in-place
                // `shuffle` would consume (Fisher–Yates swaps depend only
                // on the length), fused into result placement below.
                let perm = self.options.shuffle.then(|| {
                    let mut p: Vec<usize> = (0..set.len()).collect();
                    p.shuffle(rng);
                    p
                });
                Ok((owner, rs, perm))
            })
            .collect::<Result<_, SortError>>()?;
        self.stock = Some(stock);
        let draw_cpu = draw_start.elapsed();
        let Self {
            sets,
            hop_scratch,
            scheme,
            keys,
            options,
            workers,
            ..
        } = self;
        let secret = keys[idx].secret_key();
        let randomize = options.randomize;
        if *workers == 1 {
            // Serial fast path: reuse one scratch buffer for every hop of
            // the whole chain — the output is written straight into its
            // shuffled order and swapped with the live set.
            for (owner, hop_set, perm) in &jobs {
                let set = &sets[*owner];
                match (randomize, hop_set) {
                    // Keygen-tier stock: `−x·r` and the recodings came
                    // precomputed; the stored secret products already bind
                    // to this party's share (the keygen step installed the
                    // same stock's key pairs).
                    (true, HopSet::Prepared(prep)) => scheme
                        .partial_decrypt_randomize_prepared_gather_into(
                            set,
                            prep,
                            perm.as_deref(),
                            hop_scratch,
                        ),
                    (true, HopSet::Raw(rs)) => scheme.partial_decrypt_randomize_gather_into(
                        set,
                        secret,
                        rs,
                        perm.as_deref(),
                        hop_scratch,
                    ),
                    (false, _) => scheme.partial_decrypt_gather_into(
                        set,
                        secret,
                        perm.as_deref(),
                        hop_scratch,
                    ),
                }
                std::mem::swap(&mut sets[*owner], hop_scratch);
            }
            // Single-threaded: wall time is the CPU time (draws included).
            let elapsed = start.elapsed();
            timer.record(party, elapsed, elapsed);
        } else {
            let (processed, cpu) = parallel_map(&jobs, *workers, |(owner, hop_set, perm)| {
                let set = &sets[*owner];
                let mut out = Vec::with_capacity(set.len());
                match (randomize, hop_set) {
                    (true, HopSet::Prepared(prep)) => scheme
                        .partial_decrypt_randomize_prepared_gather_into(
                            set,
                            prep,
                            perm.as_deref(),
                            &mut out,
                        ),
                    (true, HopSet::Raw(rs)) => scheme.partial_decrypt_randomize_gather_into(
                        set,
                        secret,
                        rs,
                        perm.as_deref(),
                        &mut out,
                    ),
                    (false, _) => {
                        scheme.partial_decrypt_gather_into(set, secret, perm.as_deref(), &mut out)
                    }
                }
                out
            });
            for ((owner, _, _), hopped) in jobs.iter().zip(processed) {
                sets[*owner] = hopped;
            }
            timer.record(party, start.elapsed(), draw_cpu + cpu);
        }
        // Hand the whole vector V to the next party in the chain.
        if party < self.n {
            let v_bytes: usize = self.sets.iter().map(|s| s.len() * self.ct_len).sum();
            log.record(self.round, party, party + 1, v_bytes, "sort/chain");
            self.round += 1;
        }
        Ok(())
    }

    /// Return traffic + step 9: each owner strips her own layer and counts
    /// zeros, then the result and trace are assembled (moving, not cloning,
    /// the protocol state).
    fn step_finish(&mut self, log: &TrafficLog, timer: &mut PartyTimer) {
        let n = self.n;
        // P_n returns each set to its owner.
        for (owner, set) in self.sets.iter().enumerate() {
            let party = owner + 1;
            if party != n {
                log.record(self.round, n, party, set.len() * self.ct_len, "sort/return");
            }
        }
        self.round += 1;

        let mut ranks = Vec::with_capacity(n);
        for idx in 0..n {
            let party = idx + 1;
            // tidy:allow(determinism) — wall-clock used for timing accounting only, never protocol state
            let start = Instant::now();
            let secret = self.keys[idx].secret_key();
            // One gathered partial decryption strips the owner's layer from
            // the whole set — the key share's digit recoding is done once
            // and the masks share a single inversion — then the zero test
            // is an identity check on each exposed `α·β^{−x}`. This is
            // RNG-free and wire-free, so the transcript is unchanged.
            self.scheme.partial_decrypt_gather_into(
                &self.sets[idx],
                secret,
                None,
                &mut self.hop_scratch,
            );
            let zeros = self
                .hop_scratch
                .iter()
                .filter(|ct| self.group.is_identity(&ct.alpha))
                .count();
            let elapsed = start.elapsed();
            timer.record(party, elapsed, elapsed);
            ranks.push(zeros + 1);
        }
        let trace = SortTrace {
            keys: std::mem::take(&mut self.keys),
            returned_sets: std::mem::take(&mut self.sets),
            opponent_order: std::mem::take(&mut self.opponent_order),
        };
        self.result = Some((SortOutcome { ranks }, trace));
    }
}

/// Reference ranking (plaintext): rank 1 for the largest, ties equal.
pub fn plain_ranks(values: &[BigUint]) -> Vec<usize> {
    values
        .iter()
        .map(|v| values.iter().filter(|w| *w > v).count() + 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgr_group::GroupKind;
    use ppgr_net::TrafficSummary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sort_values(vals: &[u64], l: usize, seed: u64) -> SortOutcome {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<BigUint> = vals.iter().map(|&v| BigUint::from(v)).collect();
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(vals.len() + 1);
        unlinkable_sort(&group, &values, l, &mut rng, &log, &mut timer, 0).unwrap()
    }

    #[test]
    fn ranks_match_plaintext_reference() {
        let vals = [13u64, 200, 78, 200, 0];
        let out = sort_values(&vals, 8, 1);
        let values: Vec<BigUint> = vals.iter().map(|&v| BigUint::from(v)).collect();
        assert_eq!(out.ranks, plain_ranks(&values));
        assert_eq!(out.ranks, vec![4, 1, 3, 1, 5]);
    }

    #[test]
    fn two_party_minimum() {
        let out = sort_values(&[5, 9], 4, 2);
        assert_eq!(out.ranks, vec![2, 1]);
    }

    #[test]
    fn all_equal_values_all_rank_one() {
        let out = sort_values(&[7, 7, 7], 4, 3);
        assert_eq!(out.ranks, vec![1, 1, 1]);
    }

    #[test]
    fn errors() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(4);
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(2);
        assert_eq!(
            unlinkable_sort(
                &group,
                &[BigUint::from(1u64)],
                4,
                &mut rng,
                &log,
                &mut timer,
                0
            ),
            Err(SortError::TooFewParties(1))
        );
        let mut timer = PartyTimer::new(3);
        assert_eq!(
            unlinkable_sort(
                &group,
                &[BigUint::from(16u64), BigUint::from(1u64)],
                4,
                &mut rng,
                &log,
                &mut timer,
                0
            ),
            Err(SortError::ValueTooWide { party: 1 })
        );
    }

    #[test]
    fn traffic_shape_matches_protocol() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 4;
        let values: Vec<BigUint> = (0..n as u64).map(BigUint::from).collect();
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(n + 1);
        let _ = unlinkable_sort(&group, &values, 6, &mut rng, &log, &mut timer, 0).unwrap();
        let s = log.summary();
        // Chain traffic dominates: n−1 hops of the full vector V.
        let chain = s.bytes_by_phase["sort/chain"];
        let bits = s.bytes_by_phase["sort/bits"];
        assert!(chain > bits, "chain {chain} should dominate bits {bits}");
        // Every party spent compute time.
        for p in 1..=n {
            assert!(timer.spent(p) > std::time::Duration::ZERO);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = sort_values(&[3, 1, 4, 1, 5], 4, 42);
        let b = sort_values(&[3, 1, 4, 1, 5], 4, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_the_transcript() {
        // All randomness is pre-drawn serially, so serial and fanned-out
        // executions must agree ciphertext-for-ciphertext, not just on
        // the ranks.
        let group = GroupKind::Ecc160.group();
        let values: Vec<BigUint> = [13u64, 200, 78, 200, 0]
            .iter()
            .map(|&v| BigUint::from(v))
            .collect();
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(21);
            let log = TrafficLog::new();
            let mut timer = PartyTimer::new(values.len() + 1);
            run_sort(
                &group,
                &values,
                8,
                SortOptions {
                    threads,
                    ..SortOptions::default()
                },
                &mut rng,
                &log,
                &mut timer,
                0,
            )
            .unwrap()
        };
        let (serial_out, serial_trace) = run(1);
        let (parallel_out, parallel_trace) = run(4);
        assert_eq!(serial_out, parallel_out);
        assert_eq!(serial_out.ranks, vec![4, 1, 3, 1, 5]);
        assert_eq!(serial_trace.returned_sets, parallel_trace.returned_sets);
        assert_eq!(serial_trace.opponent_order, parallel_trace.opponent_order);
    }

    #[test]
    fn options_off_still_rank_correctly() {
        // Shuffle/randomize protect privacy, not correctness.
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(6);
        let values: Vec<BigUint> = [9u64, 2, 5].iter().map(|&v| BigUint::from(v)).collect();
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(4);
        let (out, _) = run_sort(
            &group,
            &values,
            4,
            SortOptions {
                shuffle: false,
                randomize: false,
                ..SortOptions::default()
            },
            &mut rng,
            &log,
            &mut timer,
            0,
        )
        .unwrap();
        assert_eq!(out.ranks, vec![1, 3, 2]);
    }

    /// Drives one machine to completion, harvesting any deferred verify
    /// job along the way.
    fn drive(
        options: SortOptions,
        seed: u64,
    ) -> (
        Result<(SortOutcome, SortTrace), SortError>,
        TrafficSummary,
        Option<KeygenVerifyJob>,
    ) {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<BigUint> = [13u64, 200, 78, 200]
            .iter()
            .map(|&v| BigUint::from(v))
            .collect();
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(values.len() + 1);
        let mut machine = SortMachine::new(&group, &values, 8, options, 0).unwrap();
        let mut job = None;
        let outcome = loop {
            match machine.step(&mut rng, &log, &mut timer) {
                Ok(SortStatus::Pending) => {
                    if let Some(j) = machine.take_pending_verify() {
                        job = Some(j);
                    }
                }
                Ok(SortStatus::Done) => {
                    break machine
                        .into_result()
                        .ok_or(SortError::Internal("done without result"))
                }
                Err(e) => break Err(e),
            }
        };
        (outcome, log.summary(), job)
    }

    #[test]
    fn deferred_verification_is_bit_identical_and_yields_a_passing_job() {
        let inline = drive(
            SortOptions {
                threads: 1,
                ..SortOptions::default()
            },
            31,
        );
        let deferred = drive(
            SortOptions {
                threads: 1,
                defer_verify: true,
                ..SortOptions::default()
            },
            31,
        );
        assert!(inline.2.is_none(), "inline run must not stash a job");
        let job = deferred.2.expect("deferred cold run must stash a job");
        assert_eq!(job.group_kind(), GroupKind::Ecc160);
        assert_eq!(job.proofs(), 4);
        assert_eq!(job.verify_inline(), Ok(()));
        // Deferring reorders work, never bytes: same ranks, same traffic.
        let (inline_out, _) = inline.0.unwrap();
        let (deferred_out, _) = deferred.0.unwrap();
        assert_eq!(inline_out, deferred_out);
        assert_eq!(inline.1, deferred.1);
    }

    #[test]
    fn deferred_job_blames_the_party_the_inline_check_blames() {
        let group = GroupKind::Ecc160.group();
        let values: Vec<BigUint> = [9u64, 2, 5].iter().map(|&v| BigUint::from(v)).collect();
        let run = |defer: bool| {
            let mut rng = StdRng::seed_from_u64(8);
            let mut stock_rng = StdRng::seed_from_u64(77);
            let log = TrafficLog::new();
            let mut timer = PartyTimer::new(values.len() + 1);
            let options = SortOptions {
                threads: 1,
                defer_verify: defer,
                ..SortOptions::default()
            };
            let mut machine = SortMachine::new(&group, &values, 4, options, 0).unwrap();
            let mut stock = OfflineStock::draw_from(&group, 3, 4, &mut stock_rng);
            stock.corrupt_key_proof(&group, 1);
            machine.attach_offline_stock(stock).unwrap();
            let mut job = None;
            let verdict = loop {
                match machine.step(&mut rng, &log, &mut timer) {
                    Ok(SortStatus::Pending) => {
                        if let Some(j) = machine.take_pending_verify() {
                            job = Some(j);
                        }
                    }
                    Ok(SortStatus::Done) => break Ok(()),
                    Err(e) => break Err(e),
                }
            };
            (verdict, job)
        };
        let (inline_verdict, inline_job) = run(false);
        assert!(inline_job.is_none());
        assert_eq!(
            inline_verdict,
            Err(SortError::ProofRejected { party: 2 }),
            "inline check must blame the corrupted party"
        );
        // The deferred run sails past keygen (no bytes differ) but its job
        // carries the rejection, attributed to the same party.
        let (deferred_verdict, deferred_job) = run(true);
        assert_eq!(deferred_verdict, Ok(()));
        let job = deferred_job.expect("deferred run must stash a job");
        assert_eq!(
            job.verify_inline(),
            Err(SortError::ProofRejected { party: 2 })
        );
    }

    #[test]
    fn batched_jobs_settle_with_per_session_verdicts() {
        let group = GroupKind::Ecc160.group();
        let values: Vec<BigUint> = [9u64, 2, 5].iter().map(|&v| BigUint::from(v)).collect();
        let job_for = |seed: u64, corrupt: Option<usize>| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut stock_rng = StdRng::seed_from_u64(seed ^ 0xa5);
            let log = TrafficLog::new();
            let mut timer = PartyTimer::new(values.len() + 1);
            let options = SortOptions {
                threads: 1,
                defer_verify: true,
                ..SortOptions::default()
            };
            let mut machine = SortMachine::new(&group, &values, 4, options, 0).unwrap();
            // The deferred draw leaves the stock's `verified` verdict unset
            // (a `draw_from` stock is batch-checked at minting time and
            // would make the session skip verification entirely, parking no
            // job). Bytes are identical either way.
            let mut stock = OfflineStock::draw_from_deferred(&group, 3, 4, &mut stock_rng);
            if let Some(party) = corrupt {
                stock.corrupt_key_proof(&group, party);
            }
            machine.attach_offline_stock(stock).unwrap();
            loop {
                let status = machine.step(&mut rng, &log, &mut timer).unwrap();
                if let Some(job) = machine.take_pending_verify() {
                    return job;
                }
                assert_ne!(
                    status,
                    SortStatus::Done,
                    "deferred session finished without parking a verify job"
                );
            }
        };
        let jobs = vec![
            job_for(1, None),
            job_for(2, Some(2)),
            job_for(3, None),
            job_for(4, Some(0)),
        ];
        let verdicts = verify_deferred_jobs(&jobs);
        assert_eq!(
            verdicts,
            vec![
                Ok(()),
                Err(SortError::ProofRejected { party: 3 }),
                Ok(()),
                Err(SortError::ProofRejected { party: 1 }),
            ],
            "one aggregate settle must attribute each rejection to its session and party"
        );
    }
}
