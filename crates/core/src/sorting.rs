//! Phase 2 — the identity-unlinkable multiparty sorting protocol
//! (paper Fig. 1, steps 5–9; the paper's stand-alone contribution).
//!
//! `n` parties each hold an `l`-bit value; at the end each party knows the
//! rank of her own value (rank 1 = largest) and — crucially — nobody can
//! link another party's value or rank to that party's identity, assuming
//! at least two honest parties.
//!
//! Protocol outline:
//!
//! 1. every party generates an ElGamal key share and proves knowledge of
//!    it to everyone (multi-verifier Schnorr);
//! 2. every party publishes her value encrypted bit-by-bit under the
//!    *joint* key;
//! 3. every party homomorphically compares her plaintext value against
//!    every other party's encrypted bits ([`circuit`](crate::circuit)),
//!    producing an encrypted `τ` set, and sends it to `P₁`;
//! 4. the sets travel a chain through all parties; each hop partially
//!    decrypts with its key share, multiplies every plaintext by a fresh
//!    random scalar (zero is a fixed point), and shuffles each set;
//! 5. `P_n` returns each set to its owner, who strips her own key layer
//!    and counts zeros: `rank = zeros + 1`.

use crate::circuit::compare_encrypted;
use crate::timing::PartyTimer;
use ppgr_bigint::BigUint;
use ppgr_elgamal::{encrypt_bits_prepared, Ciphertext, ExpElGamal, JointKey, KeyPair};
use ppgr_group::{Group, Scalar};
use ppgr_net::TrafficLog;
use ppgr_zkp::MultiVerifierProof;
use rand::seq::SliceRandom;
use rand::Rng;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Errors from the sorting protocol.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum SortError {
    /// The chain needs at least two parties.
    TooFewParties(usize),
    /// A value exceeds the declared bit length.
    ValueTooWide {
        /// Offending party (1-based).
        party: usize,
    },
    /// A party's proof of key knowledge failed verification (would abort
    /// the protocol in deployment; only reachable here via the game
    /// harness's dishonest provers).
    ProofRejected {
        /// The accused prover (1-based).
        party: usize,
    },
}

impl fmt::Display for SortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortError::TooFewParties(n) => write!(f, "sorting needs at least 2 parties, got {n}"),
            SortError::ValueTooWide { party } => {
                write!(f, "party {party}'s value exceeds the declared bit length")
            }
            SortError::ProofRejected { party } => {
                write!(f, "party {party} failed the proof of key knowledge")
            }
        }
    }
}

impl Error for SortError {}

/// Result of a sorting run.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct SortOutcome {
    /// `ranks[j]` is party `j+1`'s rank; rank 1 = largest value; ties get
    /// the same rank (paper: equal `β` values are all eligible).
    pub ranks: Vec<usize>,
}

/// Protocol knobs used by the security-game harness; honest executions use
/// [`SortOptions::default`] (everything on).
#[derive(Clone, Copy, Debug)]
pub struct SortOptions {
    /// Shuffle each set at every hop (the identity-unlinkability
    /// mechanism). Disabling models a protocol *without* Brickell–
    /// Shmatikov mixing.
    pub shuffle: bool,
    /// Multiply plaintexts by a fresh random at every hop (the gain-hiding
    /// mechanism for non-zero `τ`).
    pub randomize: bool,
    /// Worker threads for each party's local crypto (`0` = one per
    /// available core, `1` = serial). Randomness is pre-drawn serially, so
    /// every thread count produces bit-identical transcripts and ranks.
    /// Only *local* work parallelizes: the hop-to-hop chain itself stays
    /// sequential because each hop must shuffle and re-randomize the
    /// previous hop's output before anyone else may see it — pipelining
    /// hops would let a party observe pre-shuffle sets and break
    /// unlinkability.
    pub threads: usize,
}

impl Default for SortOptions {
    fn default() -> Self {
        SortOptions {
            shuffle: true,
            randomize: true,
            threads: 0,
        }
    }
}

/// Resolves [`SortOptions::threads`] to a concrete worker count.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Runs `f` over `items` on up to `workers` scoped threads, preserving
/// item order in the output. Returns the results plus the total CPU time
/// summed across workers (for [`PartyTimer::record`]). `f` must not touch
/// the protocol RNG — callers pre-draw any randomness serially.
fn parallel_map<T: Sync, U: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(&T) -> U + Sync,
) -> (Vec<U>, Duration) {
    let workers = workers.clamp(1, items.len().max(1));
    if workers == 1 {
        let start = Instant::now();
        let out: Vec<U> = items.iter().map(&f).collect();
        return (out, start.elapsed());
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, U)> = Vec::with_capacity(items.len());
    let mut cpu = Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let start = Instant::now();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    (out, start.elapsed())
                })
            })
            .collect();
        for handle in handles {
            let (part, spent) = handle.join().expect("sort worker panicked");
            indexed.extend(part);
            cpu += spent;
        }
    });
    indexed.sort_by_key(|&(i, _)| i);
    (indexed.into_iter().map(|(_, u)| u).collect(), cpu)
}

/// Everything a run exposes beyond the ranks — consumed by the
/// security-game harness (an adversary's view is a subset of this).
#[derive(Clone, Debug)]
pub struct SortTrace {
    /// Per-party key pairs (index `j-1` → party `j`).
    pub keys: Vec<KeyPair>,
    /// The final set returned to each owner (after the full chain),
    /// *before* the owner's own final decryption.
    pub returned_sets: Vec<Vec<Ciphertext>>,
    /// The comparison opponent order used when each owner built her set
    /// (identity ↔ position mapping before any shuffling).
    pub opponent_order: Vec<Vec<usize>>,
}

/// Runs the protocol with default options and no trace capture.
///
/// `values[j]` is party `j+1`'s private `l`-bit value.
///
/// # Errors
///
/// See [`SortError`].
pub fn unlinkable_sort<R: Rng + ?Sized>(
    group: &Group,
    values: &[BigUint],
    l: usize,
    rng: &mut R,
    log: &TrafficLog,
    timer: &mut PartyTimer,
    round_base: u32,
) -> Result<SortOutcome, SortError> {
    run_sort(
        group,
        values,
        l,
        SortOptions::default(),
        rng,
        log,
        timer,
        round_base,
    )
    .map(|(outcome, _trace)| outcome)
}

/// Full-control entry point: options + trace (used by games and tests).
///
/// # Errors
///
/// See [`SortError`].
#[allow(clippy::too_many_arguments)]
pub fn run_sort<R: Rng + ?Sized>(
    group: &Group,
    values: &[BigUint],
    l: usize,
    options: SortOptions,
    rng: &mut R,
    log: &TrafficLog,
    timer: &mut PartyTimer,
    round_base: u32,
) -> Result<(SortOutcome, SortTrace), SortError> {
    let n = values.len();
    if n < 2 {
        return Err(SortError::TooFewParties(n));
    }
    for (idx, v) in values.iter().enumerate() {
        if v.bits() > l {
            return Err(SortError::ValueTooWide { party: idx + 1 });
        }
    }
    let scheme = ExpElGamal::new(group.clone());
    let ct_len = Ciphertext::encoded_len(group);
    let elem_len = group.element_len();
    let scalar_len = group.order().bits().div_ceil(8);
    let mut round = round_base;

    // Step 5: key generation + proofs of knowledge.
    let keys: Vec<KeyPair> = (1..=n)
        .map(|party| timer.time(party, || KeyPair::generate(group, rng)))
        .collect();
    for party in 1..=n {
        // Publish y_j.
        for other in 1..=n {
            if other != party {
                log.record(round, party, other, elem_len, "sort/keys");
            }
        }
    }
    round += 1;
    for (idx, kp) in keys.iter().enumerate() {
        let party = idx + 1;
        let transcript = timer.time(party, || {
            MultiVerifierProof::run(group, kp.secret_key(), n - 1, rng)
        });
        // Commitment broadcast, n−1 challenge shares, response broadcast.
        for other in 1..=n {
            if other != party {
                log.record(round, party, other, elem_len, "sort/zkp");
                log.record(round + 1, other, party, scalar_len, "sort/zkp");
                log.record(round + 2, party, other, scalar_len, "sort/zkp");
            }
        }
        for (vidx, _) in keys.iter().enumerate() {
            if vidx == idx {
                continue;
            }
            let ok = timer.time(vidx + 1, || transcript.verify(group, kp.public_key()));
            if !ok {
                return Err(SortError::ProofRejected { party });
            }
        }
    }
    round += 3;

    let shares: Vec<_> = keys.iter().map(|k| k.public_key().clone()).collect();
    let joint = JointKey::combine(group, &shares);
    let workers = resolve_threads(options.threads);

    // The fixed-base table for the joint key `y` is public precomputation:
    // every party derives it from the published key shares, so its (small,
    // amortized) cost is not charged to any single party's ledger.
    let key_table = scheme.prepare_key(joint.public_key());

    // Step 6: bitwise encryption under the joint key, published to all.
    // The prepared-table batch path draws the per-bit randomness in the
    // same order as per-bit `encrypt_bits`, so transcripts are unchanged.
    let encrypted_bits: Vec<Vec<Ciphertext>> = values
        .iter()
        .enumerate()
        .map(|(idx, v)| {
            let party = idx + 1;
            let cts = timer.time(party, || {
                encrypt_bits_prepared(&scheme, &key_table, v, l, rng)
            });
            for other in 1..=n {
                if other != party {
                    log.record(round, party, other, l * ct_len, "sort/bits");
                }
            }
            cts
        })
        .collect();
    round += 1;

    // Step 7: comparisons. Party j compares her plaintext value against
    // every other party's encrypted bits; her set is the concatenation in
    // `opponent_order`. The n−1 comparisons are independent and consume no
    // randomness, so they fan out across worker threads.
    let mut sets: Vec<Vec<Ciphertext>> = Vec::with_capacity(n);
    let mut opponent_order: Vec<Vec<usize>> = Vec::with_capacity(n);
    for (idx, value) in values.iter().enumerate() {
        let party = idx + 1;
        let opponents: Vec<usize> = (0..n).filter(|&i| i != idx).collect();
        let start = Instant::now();
        let (chunks, cpu) = parallel_map(&opponents, workers, |&opp| {
            compare_encrypted(&scheme, value, &encrypted_bits[opp], l)
        });
        timer.record(party, start.elapsed(), cpu);
        let set: Vec<Ciphertext> = chunks.into_iter().flatten().collect();
        if party != 1 {
            log.record(round, party, 1, set.len() * ct_len, "sort/collect");
        }
        sets.push(set);
        opponent_order.push(opponents);
    }
    round += 1;

    // Step 8: the shuffle-decrypt chain P₁ → P₂ → … → P_n. Within a hop
    // the n−1 foreign sets are independent; the randomness (plaintext
    // randomizers, then the shuffle permutation, per set) is pre-drawn in
    // the serial order so the transcript is identical for any thread
    // count, then the exponentiations run batched — the fused
    // decrypt-and-randomize hop costs ~1.7 exponentiations per ciphertext
    // instead of 3.
    for (idx, key) in keys.iter().enumerate() {
        let party = idx + 1;
        let start = Instant::now();
        let draw_start = Instant::now();
        // (owner, randomizers, shuffle permutation) per foreign set.
        let jobs: Vec<(usize, Vec<Scalar>, Option<Vec<usize>>)> = sets
            .iter()
            .enumerate()
            .filter(|&(owner, _)| owner != idx) // never her own set
            .map(|(owner, set)| {
                let rs: Vec<Scalar> = if options.randomize {
                    set.iter()
                        .map(|_| group.random_nonzero_scalar(rng))
                        .collect()
                } else {
                    Vec::new()
                };
                // A permutation shuffled with the same draws the in-place
                // `shuffle` would consume (Fisher–Yates swaps depend only
                // on the length), applied to the processed set below.
                let perm = options.shuffle.then(|| {
                    let mut p: Vec<usize> = (0..set.len()).collect();
                    p.shuffle(rng);
                    p
                });
                (owner, rs, perm)
            })
            .collect();
        let draw_cpu = draw_start.elapsed();
        let secret = key.secret_key();
        let (processed, cpu) = parallel_map(&jobs, workers, |(owner, rs, perm)| {
            let set = &sets[*owner];
            let hopped = if options.randomize {
                scheme.partial_decrypt_randomize_batch(set, secret, rs)
            } else {
                set.iter()
                    .map(|ct| scheme.partial_decrypt(ct, secret))
                    .collect::<Vec<_>>()
            };
            match perm {
                Some(p) => p.iter().map(|&i| hopped[i].clone()).collect(),
                None => hopped,
            }
        });
        for ((owner, _, _), hopped) in jobs.iter().zip(processed) {
            sets[*owner] = hopped;
        }
        timer.record(party, start.elapsed(), draw_cpu + cpu);
        // Hand the whole vector V to the next party in the chain.
        if party < n {
            let v_bytes: usize = sets.iter().map(|s| s.len() * ct_len).sum();
            log.record(round, party, party + 1, v_bytes, "sort/chain");
            round += 1;
        }
    }
    // P_n returns each set to its owner.
    for (owner, set) in sets.iter().enumerate() {
        let party = owner + 1;
        if party != n {
            log.record(round, n, party, set.len() * ct_len, "sort/return");
        }
    }
    round += 1;

    // Step 9: each owner strips her own layer and counts zeros.
    let trace = SortTrace {
        keys: keys.clone(),
        returned_sets: sets.clone(),
        opponent_order,
    };
    let mut ranks = Vec::with_capacity(n);
    for idx in 0..n {
        let party = idx + 1;
        let start = Instant::now();
        let secret = keys[idx].secret_key();
        let (flags, cpu) = parallel_map(&sets[idx], workers, |ct| {
            scheme.decrypts_to_zero(secret, ct)
        });
        timer.record(party, start.elapsed(), cpu);
        let zeros = flags.into_iter().filter(|&zero| zero).count();
        ranks.push(zeros + 1);
    }
    let _ = round;
    Ok((SortOutcome { ranks }, trace))
}

/// Reference ranking (plaintext): rank 1 for the largest, ties equal.
pub fn plain_ranks(values: &[BigUint]) -> Vec<usize> {
    values
        .iter()
        .map(|v| values.iter().filter(|w| *w > v).count() + 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgr_group::GroupKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sort_values(vals: &[u64], l: usize, seed: u64) -> SortOutcome {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<BigUint> = vals.iter().map(|&v| BigUint::from(v)).collect();
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(vals.len() + 1);
        unlinkable_sort(&group, &values, l, &mut rng, &log, &mut timer, 0).unwrap()
    }

    #[test]
    fn ranks_match_plaintext_reference() {
        let vals = [13u64, 200, 78, 200, 0];
        let out = sort_values(&vals, 8, 1);
        let values: Vec<BigUint> = vals.iter().map(|&v| BigUint::from(v)).collect();
        assert_eq!(out.ranks, plain_ranks(&values));
        assert_eq!(out.ranks, vec![4, 1, 3, 1, 5]);
    }

    #[test]
    fn two_party_minimum() {
        let out = sort_values(&[5, 9], 4, 2);
        assert_eq!(out.ranks, vec![2, 1]);
    }

    #[test]
    fn all_equal_values_all_rank_one() {
        let out = sort_values(&[7, 7, 7], 4, 3);
        assert_eq!(out.ranks, vec![1, 1, 1]);
    }

    #[test]
    fn errors() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(4);
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(2);
        assert_eq!(
            unlinkable_sort(
                &group,
                &[BigUint::from(1u64)],
                4,
                &mut rng,
                &log,
                &mut timer,
                0
            ),
            Err(SortError::TooFewParties(1))
        );
        let mut timer = PartyTimer::new(3);
        assert_eq!(
            unlinkable_sort(
                &group,
                &[BigUint::from(16u64), BigUint::from(1u64)],
                4,
                &mut rng,
                &log,
                &mut timer,
                0
            ),
            Err(SortError::ValueTooWide { party: 1 })
        );
    }

    #[test]
    fn traffic_shape_matches_protocol() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 4;
        let values: Vec<BigUint> = (0..n as u64).map(BigUint::from).collect();
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(n + 1);
        let _ = unlinkable_sort(&group, &values, 6, &mut rng, &log, &mut timer, 0).unwrap();
        let s = log.summary();
        // Chain traffic dominates: n−1 hops of the full vector V.
        let chain = s.bytes_by_phase["sort/chain"];
        let bits = s.bytes_by_phase["sort/bits"];
        assert!(chain > bits, "chain {chain} should dominate bits {bits}");
        // Every party spent compute time.
        for p in 1..=n {
            assert!(timer.spent(p) > std::time::Duration::ZERO);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = sort_values(&[3, 1, 4, 1, 5], 4, 42);
        let b = sort_values(&[3, 1, 4, 1, 5], 4, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_the_transcript() {
        // All randomness is pre-drawn serially, so serial and fanned-out
        // executions must agree ciphertext-for-ciphertext, not just on
        // the ranks.
        let group = GroupKind::Ecc160.group();
        let values: Vec<BigUint> = [13u64, 200, 78, 200, 0]
            .iter()
            .map(|&v| BigUint::from(v))
            .collect();
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(21);
            let log = TrafficLog::new();
            let mut timer = PartyTimer::new(values.len() + 1);
            run_sort(
                &group,
                &values,
                8,
                SortOptions {
                    threads,
                    ..SortOptions::default()
                },
                &mut rng,
                &log,
                &mut timer,
                0,
            )
            .unwrap()
        };
        let (serial_out, serial_trace) = run(1);
        let (parallel_out, parallel_trace) = run(4);
        assert_eq!(serial_out, parallel_out);
        assert_eq!(serial_out.ranks, vec![4, 1, 3, 1, 5]);
        assert_eq!(serial_trace.returned_sets, parallel_trace.returned_sets);
        assert_eq!(serial_trace.opponent_order, parallel_trace.opponent_order);
    }

    #[test]
    fn options_off_still_rank_correctly() {
        // Shuffle/randomize protect privacy, not correctness.
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(6);
        let values: Vec<BigUint> = [9u64, 2, 5].iter().map(|&v| BigUint::from(v)).collect();
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(4);
        let (out, _) = run_sort(
            &group,
            &values,
            4,
            SortOptions {
                shuffle: false,
                randomize: false,
                ..SortOptions::default()
            },
            &mut rng,
            &log,
            &mut timer,
            0,
        )
        .unwrap();
        assert_eq!(out.ranks, vec![1, 3, 2]);
    }
}
