//! Security-game falsification harnesses (Definitions 3–7 of the paper).
//!
//! A reproduction cannot "run" a reduction proof, but it *can* implement
//! the games and concrete attacks, then check that each attack succeeds
//! exactly when the corresponding protocol mechanism is disabled:
//!
//! * [`unlinkability_attack`] — the identity-linking attack of
//!   Definition 7: a colluding set owner locates the zero in her returned
//!   `τ` set and maps its position back to an opponent identity. It wins
//!   with probability ≈ 1 when honest parties *skip the shuffle*, and
//!   drops to coin-flipping when the shuffle is on — demonstrating the
//!   shuffle is the load-bearing unlinkability mechanism.
//! * [`value_recovery_rate`] — gain leakage through un-randomized `τ`
//!   values (Lemma 3's mechanism): with plaintext randomization disabled,
//!   every `τ` is small enough to brute-force from `g^τ`; with it on,
//!   non-zero plaintexts are uniform in the exponent and unrecoverable.
//! * [`indcpa_statistic_advantage`] — an IND-CPA-style bit-guessing game
//!   against the bitwise encryption (Lemma 2): a keyless statistic gets
//!   ≈ 0 advantage while the keyed distinguisher (positive control) gets
//!   advantage 1.
//! * [`interval_invariance_holds`] — Definition 5's observable: colluder
//!   views (their ranks and zero counts) are identical for any two honest
//!   values in the same interval of the adversary's values.

use crate::sorting::{run_sort, SortOptions};
use crate::timing::PartyTimer;
use ppgr_bigint::BigUint;
use ppgr_elgamal::{ExpElGamal, JointKey, KeyPair};
use ppgr_group::Group;
use ppgr_hash::HashDrbg;
use ppgr_net::TrafficLog;
use rand::{Rng, SeedableRng};

/// Outcome of a repeated attack game.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct GameReport {
    /// Number of independent trials.
    pub trials: u32,
    /// Trials in which the adversary guessed the hidden bit correctly.
    pub successes: u32,
}

impl GameReport {
    /// Empirical success probability.
    pub fn accuracy(&self) -> f64 {
        self.successes as f64 / self.trials as f64
    }
}

/// The identity-linking attack (Definition 7).
///
/// Three parties: `P₁`, `P₂` honest, `P₃` the colluder (the maximum
/// `n − 2` for `n = 3`). A hidden bit assigns `(v_hi, v_lo)` to
/// `(P₁, P₂)` or `(P₂, P₁)`; `P₃`'s value lies strictly between. `P₃`
/// decrypts her returned set and guesses from the *position* of the zero:
/// block 0 ↔ opponent `P₁`, block 1 ↔ opponent `P₂`.
pub fn unlinkability_attack(
    group: &Group,
    l: usize,
    trials: u32,
    shuffle: bool,
    seed: u64,
) -> GameReport {
    let mut rng = HashDrbg::seed_from_u64(seed);
    let scheme = ExpElGamal::new(group.clone());
    let (v_hi, v_lo, v_adv) = (40u64, 10u64, 25u64);
    let mut successes = 0;
    for _ in 0..trials {
        let b = rng.gen_bool(0.5);
        let (p1, p2) = if b { (v_lo, v_hi) } else { (v_hi, v_lo) };
        let values: Vec<BigUint> = [p1, p2, v_adv].iter().map(|&v| BigUint::from(v)).collect();
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(4);
        let options = SortOptions {
            shuffle,
            randomize: true,
            ..SortOptions::default()
        };
        let (_out, trace) = run_sort(group, &values, l, options, &mut rng, &log, &mut timer, 0)
            // tidy:allow(panic) — game harness drives fixed valid setups, not attacker input
            .expect("valid game setup");

        // The colluder is party 3 (index 2); she owns her secret key.
        let own_key = trace.keys[2].secret_key();
        let set = &trace.returned_sets[2];
        let zero_pos = set
            .iter()
            .position(|ct| scheme.decrypts_to_zero(own_key, ct))
            // tidy:allow(panic) — game fixture guarantees exactly one larger opponent value
            .expect("exactly one opponent beats the colluder");
        // Opponent order for P₃ was [P₁, P₂]: block = zero_pos / l.
        let guess_b = zero_pos / l != 0; // zero in P₂'s block → P₂ holds v_hi → b = true
        if guess_b == b {
            successes += 1;
        }
    }
    GameReport { trials, successes }
}

/// Fraction of non-zero returned-set plaintexts the colluder can recover
/// by brute-forcing the exponent up to `2l + 4` (the `τ` value bound).
///
/// With `randomize = false` this is 1.0 — the protocol would leak every
/// `τ` profile; with randomization it collapses to ≈ 0.
pub fn value_recovery_rate(group: &Group, l: usize, randomize: bool, seed: u64) -> f64 {
    let mut rng = HashDrbg::seed_from_u64(seed);
    let scheme = ExpElGamal::new(group.clone());
    let values: Vec<BigUint> = [40u64, 10, 25].iter().map(|&v| BigUint::from(v)).collect();
    let log = TrafficLog::new();
    let mut timer = PartyTimer::new(4);
    let options = SortOptions {
        shuffle: true,
        randomize,
        ..SortOptions::default()
    };
    let (_out, trace) = run_sort(group, &values, l, options, &mut rng, &log, &mut timer, 0)
        // tidy:allow(panic) — game harness drives fixed valid setups, not attacker input
        .expect("valid game setup");

    let own_key = trace.keys[2].secret_key();
    let set = &trace.returned_sets[2];
    let mut nonzero = 0u32;
    let mut recovered = 0u32;
    for ct in set {
        if scheme.decrypts_to_zero(own_key, ct) {
            continue;
        }
        nonzero += 1;
        if scheme
            .decrypt_small(own_key, ct, 2 * l as u64 + 4)
            .is_some()
        {
            recovered += 1;
        }
    }
    recovered as f64 / nonzero.max(1) as f64
}

/// IND-CPA-style bit-guessing advantage of a fixed ciphertext statistic.
///
/// Encrypts a random bit `T` times under a 3-party joint key. The keyless
/// distinguisher guesses from a fixed byte statistic of the encoding; the
/// keyed distinguisher (`with_key = true`, positive control) decrypts.
/// Returns `|accuracy − ½| · 2` (the distinguishing advantage).
pub fn indcpa_statistic_advantage(group: &Group, trials: u32, with_key: bool, seed: u64) -> f64 {
    let mut rng = HashDrbg::seed_from_u64(seed);
    let scheme = ExpElGamal::new(group.clone());
    let keys: Vec<KeyPair> = (0..3).map(|_| KeyPair::generate(group, &mut rng)).collect();
    let shares: Vec<_> = keys.iter().map(|k| k.public_key().clone()).collect();
    let joint = JointKey::combine(group, &shares);
    // Full secret only exists for the positive control.
    let full_secret = keys.iter().fold(group.scalar_from_u64(0), |acc, k| {
        group.scalar_add(&acc, k.secret_key())
    });

    let mut correct = 0u32;
    for _ in 0..trials {
        let b = rng.gen_bool(0.5);
        let m = group.scalar_from_u64(u64::from(b));
        let ct = scheme.encrypt(joint.public_key(), &m, &mut rng);
        let guess = if with_key {
            !scheme.decrypts_to_zero(&full_secret, &ct)
        } else {
            // Keyless statistic: parity of the first data byte of α.
            let enc = group.encode(&ct.alpha);
            enc.iter().map(|&x| x as u32).sum::<u32>() % 2 == 1
        };
        if guess == b {
            correct += 1;
        }
    }
    (correct as f64 / trials as f64 - 0.5).abs() * 2.0
}

/// Definition 5's interval condition, observed from the colluder side:
/// swapping the honest party's value within the same interval of the
/// adversary's values must leave every colluder-visible zero count and
/// rank unchanged.
pub fn interval_invariance_holds(group: &Group, l: usize, seed: u64) -> bool {
    let scheme = ExpElGamal::new(group.clone());
    let adversary_values = [10u64, 30u64];
    // Two honest candidates inside (10, 30).
    let observations: Vec<(usize, usize)> = [17u64, 23]
        .iter()
        .map(|&honest| {
            let mut rng = HashDrbg::seed_from_u64(seed);
            let values: Vec<BigUint> = [honest, adversary_values[0], adversary_values[1]]
                .iter()
                .map(|&v| BigUint::from(v))
                .collect();
            let log = TrafficLog::new();
            let mut timer = PartyTimer::new(4);
            let (out, trace) = run_sort(
                group,
                &values,
                l,
                SortOptions::default(),
                &mut rng,
                &log,
                &mut timer,
                0,
            )
            // tidy:allow(panic) — game harness drives fixed valid setups, not attacker input
            .expect("valid game setup");
            // Colluders are parties 2 and 3: observe their ranks and the
            // zero counts of their returned sets.
            let zeros: usize = (1..3)
                .map(|idx| {
                    trace.returned_sets[idx]
                        .iter()
                        .filter(|ct| scheme.decrypts_to_zero(trace.keys[idx].secret_key(), ct))
                        .count()
                })
                .sum();
            (out.ranks[1] * 10 + out.ranks[2], zeros)
        })
        .collect();
    observations[0] == observations[1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgr_group::GroupKind;

    const L: usize = 6;

    #[test]
    fn linking_attack_wins_without_shuffle() {
        let group = GroupKind::Ecc160.group();
        let report = unlinkability_attack(&group, L, 12, false, 1);
        assert_eq!(report.accuracy(), 1.0, "no shuffle → perfect linking");
    }

    #[test]
    fn linking_attack_is_chance_with_shuffle() {
        let group = GroupKind::Ecc160.group();
        let report = unlinkability_attack(&group, L, 30, true, 2);
        let acc = report.accuracy();
        assert!(
            (0.2..=0.8).contains(&acc),
            "shuffle should force ≈½, got {acc}"
        );
    }

    #[test]
    fn tau_values_leak_without_randomization() {
        let group = GroupKind::Ecc160.group();
        assert_eq!(value_recovery_rate(&group, L, false, 3), 1.0);
    }

    #[test]
    fn tau_values_hidden_with_randomization() {
        let group = GroupKind::Ecc160.group();
        let rate = value_recovery_rate(&group, L, true, 4);
        assert!(
            rate < 0.10,
            "randomized τ should be unrecoverable, rate {rate}"
        );
    }

    #[test]
    fn keyless_statistic_has_negligible_advantage() {
        let group = GroupKind::Ecc160.group();
        let adv = indcpa_statistic_advantage(&group, 200, false, 5);
        assert!(adv < 0.25, "keyless advantage should be small, got {adv}");
    }

    #[test]
    fn keyed_distinguisher_wins_positive_control() {
        let group = GroupKind::Ecc160.group();
        let adv = indcpa_statistic_advantage(&group, 50, true, 6);
        assert_eq!(adv, 1.0);
    }

    #[test]
    fn interval_invariance() {
        let group = GroupKind::Ecc160.group();
        assert!(interval_invariance_holds(&group, L, 7));
    }
}
