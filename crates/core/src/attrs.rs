//! The attribute/gain model of Sec. III-A (Definition 1).

use std::error::Error;
use std::fmt;

/// How the initiator scores an attribute (paper Sec. III-A).
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum AttributeKind {
    /// "Equal to": the closer to the criterion value the better
    /// (quadratic penalty) — e.g. age, blood pressure.
    EqualTo,
    /// "Greater than": the larger beyond the criterion the better
    /// (linear reward) — e.g. number of friends, annual income.
    GreaterThan,
}

/// One named attribute of the questionnaire.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct AttributeSpec {
    /// Human-readable name (published by the initiator).
    pub name: String,
    /// Scoring kind.
    pub kind: AttributeKind,
}

/// Errors constructing questionnaires or vectors.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum VectorError {
    /// The questionnaire has no attributes.
    Empty,
    /// Two attributes share a name.
    DuplicateName(String),
    /// A vector's length does not match the questionnaire dimension.
    DimensionMismatch {
        /// Expected dimension `m`.
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// A value does not fit the declared bit width.
    ValueTooWide {
        /// The offending value.
        value: u64,
        /// Allowed bits.
        bits: u32,
    },
}

impl fmt::Display for VectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VectorError::Empty => write!(f, "questionnaire needs at least one attribute"),
            VectorError::DuplicateName(n) => write!(f, "duplicate attribute name {n:?}"),
            VectorError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} attribute values, got {got}")
            }
            VectorError::ValueTooWide { value, bits } => {
                write!(f, "value {value} does not fit in {bits} bits")
            }
        }
    }
}

impl Error for VectorError {}

/// The published questionnaire: an ordered attribute-name vector with the
/// "equal to" attributes first (the paper's convention: dimensions
/// `1..=t` are equal-to, the rest greater-than).
///
/// The builder accepts attributes in any order and canonicalizes.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Questionnaire {
    attrs: Vec<AttributeSpec>,
    equal_to: usize,
}

/// Builder for [`Questionnaire`].
#[derive(Clone, Debug, Default)]
pub struct QuestionnaireBuilder {
    attrs: Vec<AttributeSpec>,
}

impl Questionnaire {
    /// Starts building a questionnaire.
    pub fn builder() -> QuestionnaireBuilder {
        QuestionnaireBuilder::default()
    }

    /// A synthetic questionnaire with `equal_to` + `greater_than`
    /// attributes (used by benchmarks and population generators).
    pub fn synthetic(equal_to: usize, greater_than: usize) -> Self {
        let mut b = Self::builder();
        for i in 0..equal_to {
            b = b.attribute(format!("eq_{i}"), AttributeKind::EqualTo);
        }
        for i in 0..greater_than {
            b = b.attribute(format!("gt_{i}"), AttributeKind::GreaterThan);
        }
        b.build()
            // tidy:allow(panic) — builder fed only statically well-formed attributes
            .expect("synthetic questionnaire is valid")
    }

    /// Total dimension `m`.
    pub fn dimension(&self) -> usize {
        self.attrs.len()
    }

    /// Number `t` of equal-to attributes (they occupy indices `0..t`).
    pub fn equal_to_count(&self) -> usize {
        self.equal_to
    }

    /// The canonicalized attribute list (equal-to first).
    pub fn attributes(&self) -> &[AttributeSpec] {
        &self.attrs
    }
}

impl QuestionnaireBuilder {
    /// Adds an attribute.
    pub fn attribute(mut self, name: impl Into<String>, kind: AttributeKind) -> Self {
        self.attrs.push(AttributeSpec {
            name: name.into(),
            kind,
        });
        self
    }

    /// Finalizes, reordering so equal-to attributes come first.
    ///
    /// # Errors
    ///
    /// [`VectorError::Empty`] or [`VectorError::DuplicateName`].
    pub fn build(self) -> Result<Questionnaire, VectorError> {
        if self.attrs.is_empty() {
            return Err(VectorError::Empty);
        }
        let mut names = std::collections::HashSet::new();
        for a in &self.attrs {
            if !names.insert(a.name.clone()) {
                return Err(VectorError::DuplicateName(a.name.clone()));
            }
        }
        let (eq, gt): (Vec<_>, Vec<_>) = self
            .attrs
            .into_iter()
            .partition(|a| a.kind == AttributeKind::EqualTo);
        let equal_to = eq.len();
        let mut attrs = eq;
        attrs.extend(gt);
        Ok(Questionnaire { attrs, equal_to })
    }
}

fn check_width(values: &[u64], bits: u32) -> Result<(), VectorError> {
    for &v in values {
        if bits < 64 && v >= 1u64 << bits {
            return Err(VectorError::ValueTooWide { value: v, bits });
        }
    }
    Ok(())
}

/// A participant's answers (the information vector `v_j`), ordered like the
/// questionnaire; each value is a `d₁`-bit unsigned integer.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct InfoVector {
    values: Vec<u64>,
}

impl InfoVector {
    /// Validates length against the questionnaire and width against `d₁`.
    ///
    /// # Errors
    ///
    /// [`VectorError::DimensionMismatch`] or [`VectorError::ValueTooWide`].
    pub fn new(q: &Questionnaire, values: Vec<u64>, attr_bits: u32) -> Result<Self, VectorError> {
        if values.len() != q.dimension() {
            return Err(VectorError::DimensionMismatch {
                expected: q.dimension(),
                got: values.len(),
            });
        }
        check_width(&values, attr_bits)?;
        Ok(InfoVector { values })
    }

    /// The raw values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

/// The initiator's criterion vector `v₀` (same shape as an info vector).
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct CriterionVector {
    values: Vec<u64>,
}

impl CriterionVector {
    /// Validates like [`InfoVector::new`].
    ///
    /// # Errors
    ///
    /// [`VectorError::DimensionMismatch`] or [`VectorError::ValueTooWide`].
    pub fn new(q: &Questionnaire, values: Vec<u64>, attr_bits: u32) -> Result<Self, VectorError> {
        if values.len() != q.dimension() {
            return Err(VectorError::DimensionMismatch {
                expected: q.dimension(),
                got: values.len(),
            });
        }
        check_width(&values, attr_bits)?;
        Ok(CriterionVector { values })
    }

    /// The raw values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

/// The initiator's weight vector `w` (`d₂`-bit entries).
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct WeightVector {
    values: Vec<u64>,
}

impl WeightVector {
    /// Validates like [`InfoVector::new`] but against `d₂`.
    ///
    /// # Errors
    ///
    /// [`VectorError::DimensionMismatch`] or [`VectorError::ValueTooWide`].
    pub fn new(q: &Questionnaire, values: Vec<u64>, weight_bits: u32) -> Result<Self, VectorError> {
        if values.len() != q.dimension() {
            return Err(VectorError::DimensionMismatch {
                expected: q.dimension(),
                got: values.len(),
            });
        }
        check_width(&values, weight_bits)?;
        Ok(WeightVector { values })
    }

    /// The raw values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

/// The initiator's private inputs: criterion + weights.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct InitiatorProfile {
    /// Criterion vector `v₀`.
    pub criterion: CriterionVector,
    /// Weight vector `w`.
    pub weights: WeightVector,
}

/// The gain of Definition 1:
/// `g = Σ_{k>t} w_k (v_k − v⁰_k) − Σ_{k≤t} w_k (v_k − v⁰_k)²`.
pub fn gain(q: &Questionnaire, profile: &InitiatorProfile, info: &InfoVector) -> i128 {
    let t = q.equal_to_count();
    let w = profile.weights.values();
    let v0 = profile.criterion.values();
    let v = info.values();
    let mut g = 0i128;
    for k in 0..q.dimension() {
        let diff = v[k] as i128 - v0[k] as i128;
        if k < t {
            g -= w[k] as i128 * diff * diff;
        } else {
            g += w[k] as i128 * diff;
        }
    }
    g
}

/// The partial gain of Sec. III-A:
/// `p = Σ_{k>t} w_k v_k − Σ_{k≤t} (w_k v_k² − 2 w_k v_k v⁰_k)`.
///
/// Differs from [`gain`] by a participant-independent constant, so it
/// ranks identically while hiding part of the criterion.
pub fn partial_gain(q: &Questionnaire, profile: &InitiatorProfile, info: &InfoVector) -> i128 {
    let t = q.equal_to_count();
    let w = profile.weights.values();
    let v0 = profile.criterion.values();
    let v = info.values();
    let mut p = 0i128;
    for k in 0..q.dimension() {
        let (wk, vk) = (w[k] as i128, v[k] as i128);
        if k < t {
            p -= wk * vk * vk - 2 * wk * vk * v0[k] as i128;
        } else {
            p += wk * vk;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q2() -> Questionnaire {
        Questionnaire::builder()
            .attribute("friends", AttributeKind::GreaterThan)
            .attribute("age", AttributeKind::EqualTo)
            .build()
            .unwrap()
    }

    fn profile(q: &Questionnaire, v0: Vec<u64>, w: Vec<u64>) -> InitiatorProfile {
        InitiatorProfile {
            criterion: CriterionVector::new(q, v0, 15).unwrap(),
            weights: WeightVector::new(q, w, 8).unwrap(),
        }
    }

    #[test]
    fn builder_canonicalizes_equal_to_first() {
        let q = q2();
        assert_eq!(q.dimension(), 2);
        assert_eq!(q.equal_to_count(), 1);
        assert_eq!(q.attributes()[0].name, "age");
        assert_eq!(q.attributes()[1].name, "friends");
    }

    #[test]
    fn builder_rejects_empty_and_duplicates() {
        assert_eq!(Questionnaire::builder().build(), Err(VectorError::Empty));
        let err = Questionnaire::builder()
            .attribute("x", AttributeKind::EqualTo)
            .attribute("x", AttributeKind::GreaterThan)
            .build();
        assert_eq!(err, Err(VectorError::DuplicateName("x".into())));
    }

    #[test]
    fn synthetic_shape() {
        let q = Questionnaire::synthetic(3, 7);
        assert_eq!(q.dimension(), 10);
        assert_eq!(q.equal_to_count(), 3);
    }

    #[test]
    fn vector_validation() {
        let q = q2();
        assert!(InfoVector::new(&q, vec![1], 15).is_err());
        assert_eq!(
            InfoVector::new(&q, vec![1, 1 << 15], 15),
            Err(VectorError::ValueTooWide {
                value: 1 << 15,
                bits: 15
            })
        );
        assert!(InfoVector::new(&q, vec![30, 500], 15).is_ok());
        assert!(WeightVector::new(&q, vec![255, 255], 8).is_ok());
        assert!(WeightVector::new(&q, vec![256, 0], 8).is_err());
    }

    #[test]
    fn gain_hand_computed() {
        // Canonical order: [age (eq), friends (gt)].
        let q = q2();
        let p = profile(&q, vec![30, 100], vec![2, 3]);
        let info = InfoVector::new(&q, vec![25, 180], 15).unwrap();
        // g = 3·(180−100) − 2·(25−30)² = 240 − 50 = 190
        assert_eq!(gain(&q, &p, &info), 190);
    }

    #[test]
    fn partial_gain_preserves_order_and_differs_by_constant() {
        let q = Questionnaire::synthetic(2, 3);
        let p = profile(&q, vec![10, 20, 0, 0, 0], vec![3, 1, 2, 5, 4]);
        let infos: Vec<InfoVector> = [
            vec![10u64, 20, 9, 9, 9],
            vec![11, 19, 2, 2, 2],
            vec![0, 0, 31, 31, 31],
            vec![10, 25, 0, 0, 0],
        ]
        .into_iter()
        .map(|v| InfoVector::new(&q, v, 15).unwrap())
        .collect();
        let constant = partial_gain(&q, &p, &infos[0]) - gain(&q, &p, &infos[0]);
        for info in &infos {
            assert_eq!(partial_gain(&q, &p, info) - gain(&q, &p, info), constant);
        }
    }

    #[test]
    fn perfect_match_maximizes_equal_to_terms() {
        let q = Questionnaire::synthetic(1, 0);
        let p = profile(&q, vec![100], vec![5]);
        let exact = InfoVector::new(&q, vec![100], 15).unwrap();
        let off = InfoVector::new(&q, vec![101], 15).unwrap();
        assert!(gain(&q, &p, &exact) > gain(&q, &p, &off));
        assert_eq!(gain(&q, &p, &exact), 0);
    }
}
