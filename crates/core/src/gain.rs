//! Phase 1 — secure gain computation (paper Fig. 1, steps 1–4).
//!
//! Each participant runs the secure dot product with the initiator:
//! the participant supplies `w′_j = [vg_j, ve_j∗ve_j, ve_j]` (her data),
//! the initiator supplies `v′_j = [ρ·wg, −ρ·we, 2ρ(w∗ve₀)]` and the mask
//! `α = ρ_j`, and the participant ends up with the masked partial gain
//! `β_j = ρ·p_j + ρ_j`, converted to an unsigned `l`-bit integer.
//!
//! `ρ` (an `h`-bit secret of the initiator) is shared across participants;
//! `ρ_j ∈ [0, ρ)` varies per participant. Because `ρ_j < ρ`, the masking
//! preserves the *strict* order of distinct partial gains. *Equal* partial
//! gains end up with distinct `β` values almost surely, i.e. the masking
//! breaks gain ties into an arbitrary strict order — exactly what the
//! paper allows ("If `p_i = p_j`, it does not matter if `P_i` ranks higher
//! or lower than `P_j`", Sec. V).

use crate::attrs::{partial_gain, InfoVector, InitiatorProfile};
use crate::params::FrameworkParams;
use crate::timing::PartyTimer;
use ppgr_bigint::{BigUint, Fp};
use ppgr_dotprod::{default_field, DotProduct};
use ppgr_net::TrafficLog;
use rand::Rng;

/// Bytes of one serialized field element on the wire (256-bit field).
const FIELD_BYTES: usize = 32;

/// Output of the gain phase, held by the orchestrator: each participant's
/// private masked gain (in real deployments each `β_j` exists only at
/// `P_j`; the orchestrator model keeps them together for the next phase).
#[derive(Clone, Debug)]
pub struct GainPhaseOutput {
    /// `β_j` as unsigned `l`-bit integers, index `j-1` for participant `j`.
    pub betas: Vec<BigUint>,
    /// The masked signed values `ρ·p_j + ρ_j` (diagnostics/tests only).
    pub masked_signed: Vec<i128>,
}

/// Runs phase 1 for all participants.
///
/// Traffic is recorded into `log` (phase label `"gain"`), computation time
/// into `timer` (party 0 = initiator).
///
/// # Panics
///
/// Panics if `infos.len()` differs from `params.participants()` — the
/// orchestrator constructs both, so a mismatch is a bug, not input error.
pub fn run_gain_phase<R: Rng + ?Sized>(
    params: &FrameworkParams,
    profile: &InitiatorProfile,
    infos: &[InfoVector],
    rng: &mut R,
    log: &TrafficLog,
    timer: &mut PartyTimer,
    round_base: u32,
) -> GainPhaseOutput {
    assert_eq!(
        infos.len(),
        params.participants(),
        "population size mismatch"
    );
    let field = default_field();
    let proto = DotProduct::new(field.clone());
    let q = params.questionnaire();
    let t = q.equal_to_count();
    let m = q.dimension();
    let l = params.beta_bits();

    // Initiator secret ρ: exactly h bits (top bit set ⇒ ρ ≥ 2^{h−1} > 0).
    // `FrameworkParams::build` already rejects h = 0 and h ≥ 64; the
    // checked shift keeps an uncomposed call (e.g. a hand-rolled params
    // struct in a fuzz harness) from silently wrapping.
    let h = params.mask_bits();
    assert!(
        (1..64).contains(&h),
        "mask width h={h} outside supported 1..64"
    );
    let rho: u64 = timer.time(0, || {
        let top = 1u64 << (h - 1);
        top | rng.gen_range(0..top)
    });

    // Initiator's reusable vector pieces.
    let w = profile.weights.values();
    let v0 = profile.criterion.values();
    let initiator_v: Vec<Fp> = timer.time(0, || {
        let mul = |a: i128, b: i128| {
            a.checked_mul(b)
                // tidy:allow(panic) — params' bit-length calculus bounds every term far below i128::MAX
                .expect("initiator vector term exceeds exact i128 gain arithmetic")
        };
        let mut v = Vec::with_capacity(m + t);
        // ρ·wg  (greater-than weights)
        for &wk in &w[t..m] {
            v.push(field.from_i128(mul(rho as i128, wk as i128)));
        }
        // −ρ·we (equal-to weights)
        for &wk in &w[..t] {
            v.push(field.from_i128(mul(-(rho as i128), wk as i128)));
        }
        // 2ρ·(we ∗ ve₀)
        for k in 0..t {
            v.push(field.from_i128(mul(mul(2 * rho as i128, w[k] as i128), v0[k] as i128)));
        }
        v
    });

    let mut betas = Vec::with_capacity(infos.len());
    let mut masked_signed = Vec::with_capacity(infos.len());
    for (idx, info) in infos.iter().enumerate() {
        let party = idx + 1;
        // Participant's vector w′ = [vg_j, ve_j∗ve_j, ve_j].
        let vj = info.values();
        let (state, msg1) = timer.time(party, || {
            let mut wv = Vec::with_capacity(m + t);
            for &vk in &vj[t..m] {
                wv.push(field.from_i128(vk as i128));
            }
            for &vk in &vj[..t] {
                wv.push(field.from_i128(vk as i128 * vk as i128));
            }
            for &vk in &vj[..t] {
                wv.push(field.from_i128(vk as i128));
            }
            proto.sender_round1(&wv, rng)
        });
        log.record(
            round_base,
            party,
            0,
            msg1.element_count() * FIELD_BYTES,
            "gain",
        );

        let rho_j = rng.gen_range(0..rho);
        let msg2 = timer.time(0, || {
            let alpha = field.from_i128(rho_j as i128);
            proto.receiver_round2(&initiator_v, &alpha, &msg1, rng)
        });
        log.record(round_base + 1, 0, party, 2 * FIELD_BYTES, "gain");

        let beta = timer.time(party, || {
            let beta = state.finish(&msg2);
            let signed = beta
                .to_i128_centered()
                // tidy:allow(panic) — params' bit-length calculus keeps masked gains inside i128
                .expect("masked gain fits the bit-length calculus");
            // Sanity versus the local plaintext model.
            debug_assert_eq!(
                signed,
                // tidy:allow(secret-hygiene) — debug-only self-check against the plaintext model; compiled out of release builds
                rho as i128 * partial_gain(q, profile, info) + rho_j as i128
            );
            signed
        });
        masked_signed.push(beta);
        betas.push(to_unsigned(beta, l));
    }
    GainPhaseOutput {
        betas,
        masked_signed,
    }
}

/// Converts a signed masked gain to the unsigned `l`-bit representation by
/// adding `2^{l−1}` (paper Sec. III-A) — order-preserving.
///
/// # Panics
///
/// Panics if `l` is outside `1..=120` (the exact-`i128` regime enforced by
/// [`FrameworkParams`](crate::params::FrameworkParams)) or the value falls
/// outside `[−2^{l−1}, 2^{l−1})`, which would mean the bit-length calculus
/// was violated.
pub fn to_unsigned(value: i128, l: usize) -> BigUint {
    assert!(
        (1..=120).contains(&l),
        "bit length l={l} outside supported 1..=120"
    );
    let offset = 1i128 << (l - 1);
    let shifted = value
        .checked_add(offset)
        // tidy:allow(panic) — documented panicking contract: unreachable while the params calculus holds
        .unwrap_or_else(|| panic!("masked gain {value} exceeds {l}-bit budget"));
    assert!(
        (0..(1i128 << l)).contains(&shifted),
        "masked gain {value} exceeds {l}-bit budget"
    );
    BigUint::from(shifted as u128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Questionnaire;
    use crate::params::FrameworkParams;
    use crate::timing::PartyTimer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (FrameworkParams, InitiatorProfile, Vec<InfoVector>, StdRng) {
        let q = Questionnaire::synthetic(2, 3);
        let params = FrameworkParams::builder(q)
            .participants(n)
            .top_k(1)
            .attr_bits(8)
            .weight_bits(4)
            .mask_bits(8)
            .seed(seed)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let (profile, infos) = params.random_population(&mut rng);
        (params, profile, infos, rng)
    }

    #[test]
    fn masked_gains_preserve_partial_gain_order() {
        let (params, profile, infos, mut rng) = setup(8, 1);
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(9);
        let out = run_gain_phase(&params, &profile, &infos, &mut rng, &log, &mut timer, 0);

        let q = params.questionnaire();
        let gains: Vec<i128> = infos.iter().map(|i| partial_gain(q, &profile, i)).collect();
        for a in 0..infos.len() {
            for b in 0..infos.len() {
                if gains[a] > gains[b] {
                    assert!(
                        out.betas[a] > out.betas[b],
                        "order broken between {a} ({}) and {b} ({})",
                        gains[a],
                        gains[b]
                    );
                }
            }
        }
    }

    #[test]
    fn betas_fit_bit_length() {
        let (params, profile, infos, mut rng) = setup(5, 2);
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(6);
        let out = run_gain_phase(&params, &profile, &infos, &mut rng, &log, &mut timer, 0);
        let l = params.beta_bits();
        for b in &out.betas {
            assert!(b.bits() <= l);
        }
    }

    #[test]
    fn traffic_is_logged_per_participant() {
        let (params, profile, infos, mut rng) = setup(4, 3);
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(5);
        let _ = run_gain_phase(&params, &profile, &infos, &mut rng, &log, &mut timer, 0);
        let s = log.summary();
        assert_eq!(s.messages, 8, "one exchange per participant");
        assert!(s.bytes_by_phase["gain"] > 0);
        // Initiator replies are small (2 elements); participant messages dominate.
        assert!(s.bytes_sent_by_party[&1] > s.bytes_sent_by_party[&0] / 4);
    }

    #[test]
    fn to_unsigned_is_monotone() {
        assert!(to_unsigned(-5, 8) < to_unsigned(-4, 8));
        assert!(to_unsigned(-1, 8) < to_unsigned(0, 8));
        assert!(to_unsigned(0, 8) < to_unsigned(127, 8));
        assert_eq!(to_unsigned(0, 8), BigUint::from(128u64));
    }

    #[test]
    #[should_panic(expected = "bit budget")]
    fn to_unsigned_overflow_panics() {
        let _ = to_unsigned(1 << 20, 8);
    }

    #[test]
    #[should_panic(expected = "outside supported 1..=120")]
    fn to_unsigned_rejects_zero_width() {
        let _ = to_unsigned(0, 0);
    }

    #[test]
    #[should_panic(expected = "outside supported 1..=120")]
    fn to_unsigned_rejects_oversized_width() {
        // l = 127 would make `1i128 << l` overflow; the guard fires first.
        let _ = to_unsigned(0, 127);
    }

    #[test]
    #[should_panic(expected = "bit budget")]
    fn to_unsigned_underflow_panics() {
        // More negative than −2^{l−1}: below the representable window.
        let _ = to_unsigned(-(1 << 20), 8);
    }

    #[test]
    fn to_unsigned_accepts_window_extremes() {
        assert_eq!(to_unsigned(-(1 << 7), 8), BigUint::zero());
        assert_eq!(to_unsigned((1 << 7) - 1, 8), BigUint::from(255u64));
        // The widest supported budget round-trips without i128 overflow.
        let top = (1i128 << 119) - 1;
        assert_eq!(to_unsigned(top, 120).bits(), 120);
    }
}
