//! Operation-count analysis of the framework (paper Sec. VI-B).
//!
//! These formulas serve two purposes:
//!
//! 1. they regenerate the in-text complexity comparison (`O(l²n + ln²λ)`
//!    group multiplications and `O(n)` rounds for the framework versus
//!    `O(l·t·n²(log n)³)` and `O((279l+5)n(log n)²)` for the SS baseline —
//!    the `analysis` experiment of the reproduce harness);
//! 2. they drive the *calibrated model* timings for figure scales that
//!    are impractical to run end-to-end on one core: the harness measures
//!    the per-exponentiation cost of each group and multiplies by
//!    [`participant_ops`].

/// Exponentiation counts one participant performs, by phase.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct ParticipantOps {
    /// Key generation + proving + verifying (step 5).
    pub setup_exps: u64,
    /// Bitwise encryption (step 6).
    pub encrypt_exps: u64,
    /// Comparison circuit scalar multiplications (step 7).
    pub compare_exps: u64,
    /// Shuffle-decrypt chain (step 8) — the dominant term.
    pub chain_exps: u64,
    /// Final decryption of the returned set (step 9).
    pub final_exps: u64,
}

impl ParticipantOps {
    /// Total exponentiations.
    pub fn total(&self) -> u64 {
        self.setup_exps + self.encrypt_exps + self.compare_exps + self.chain_exps + self.final_exps
    }
}

/// Exponentiations a participant performs for group size `n` and bit
/// length `l`.
///
/// Derivation (each ElGamal ciphertext op = component-wise):
/// * setup: 1 keygen + 1 proof commitment + 1 response check-side is
///   verifier work: verifying `n−1` proofs costs 2 exps each;
/// * encryption: `l` bits × 2 exps;
/// * comparison: per opponent, `l` scalar-multiplications of ciphertexts
///   (2 exps each) — the additions are multiplications, not exps;
/// * chain: `(n−1)` sets × `(n−1)·l` ciphertexts × 3 exps (one partial
///   decryption + two plaintext-randomization exps);
/// * final: `(n−1)·l` single-component exponentiations.
pub fn participant_ops(n: usize, l: usize) -> ParticipantOps {
    let (n, l) = (n as u64, l as u64);
    ParticipantOps {
        setup_exps: 2 + 2 * (n - 1),
        encrypt_exps: 2 * l,
        compare_exps: 2 * l * (n - 1),
        chain_exps: 3 * l * (n - 1) * (n - 1),
        final_exps: l * (n - 1),
    }
}

/// Communication rounds of the framework: `n + O(1)` (paper: `O(n)`).
pub fn framework_rounds(n: usize) -> u64 {
    n as u64 + 5
}

/// Bytes one participant sends during the comparison phase
/// (`O(l·S_c·n²)`, Sec. VI-B), with `ciphertext_bytes = 2·element_len`.
pub fn participant_comm_bytes(n: usize, l: usize, ciphertext_bytes: usize) -> u64 {
    let (n, l, sc) = (n as u64, l as u64, ciphertext_bytes as u64);
    // l ciphertexts broadcast (n−1 receivers) + the set to P₁ + one full
    // vector hop of the chain (n sets × (n−1)·l each).
    l * sc * (n - 1) + (n - 1) * l * sc + n * (n - 1) * l * sc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_dominates_at_scale() {
        let ops = participant_ops(25, 52);
        assert!(ops.chain_exps > ops.compare_exps * 10);
        assert!(ops.chain_exps > ops.encrypt_exps * 100);
        assert_eq!(
            ops.total(),
            ops.setup_exps + ops.encrypt_exps + ops.compare_exps + ops.chain_exps + ops.final_exps
        );
    }

    #[test]
    fn quadratic_growth_in_n() {
        // Fig. 2(a): our framework grows ~quadratically in n.
        let a = participant_ops(10, 52).total();
        let b = participant_ops(20, 52).total();
        let ratio = b as f64 / a as f64;
        assert!((3.0..5.0).contains(&ratio), "expected ≈4×, got {ratio}");
    }

    #[test]
    fn linear_growth_in_l() {
        // Fig. 2(c)/(d): linear in l (which d₁ and h feed).
        let a = participant_ops(25, 30).total();
        let b = participant_ops(25, 60).total();
        let ratio = b as f64 / a as f64;
        assert!((1.8..2.2).contains(&ratio), "expected ≈2×, got {ratio}");
    }

    #[test]
    fn rounds_linear() {
        assert_eq!(framework_rounds(25), 30);
        assert_eq!(framework_rounds(70), 75);
    }

    #[test]
    fn comm_quadratic() {
        let a = participant_comm_bytes(10, 52, 42);
        let b = participant_comm_bytes(20, 52, 42);
        assert!((3.0..5.0).contains(&(b as f64 / a as f64)));
    }
}
