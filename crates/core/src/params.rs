//! Framework parameters and the bit-length calculus of Sec. V.

use crate::attrs::{CriterionVector, InfoVector, InitiatorProfile, Questionnaire, WeightVector};
use ppgr_group::GroupKind;
use rand::Rng;
use std::error::Error;
use std::fmt;

/// Errors from parameter validation.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum ParamError {
    /// `n` must be at least 2 (the sorting protocol needs a chain).
    TooFewParticipants(usize),
    /// `k` must satisfy `1 ≤ k ≤ n`.
    BadTopK {
        /// requested k
        k: usize,
        /// participants
        n: usize,
    },
    /// Bit widths must be positive.
    ZeroWidth(&'static str),
    /// The mask width `h` must stay below 64: the initiator's secret `ρ`
    /// is sampled as an exactly-`h`-bit `u64`
    /// (see [`crate::gain::run_gain_phase`]).
    MaskTooWide {
        /// requested h
        h: u32,
    },
    /// The masked-gain bit length `l` exceeds what exact `i128` gain
    /// arithmetic supports.
    BitLengthTooLarge {
        /// computed `l`
        l: usize,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::TooFewParticipants(n) => {
                write!(f, "need at least 2 participants, got {n}")
            }
            ParamError::BadTopK { k, n } => {
                write!(f, "top-k must satisfy 1 <= k <= n, got k={k}, n={n}")
            }
            ParamError::ZeroWidth(which) => write!(f, "{which} bit width must be positive"),
            ParamError::MaskTooWide { h } => {
                write!(
                    f,
                    "mask width h={h} too wide: the secret rho is an h-bit u64, so h < 64"
                )
            }
            ParamError::BitLengthTooLarge { l } => {
                write!(f, "masked gain needs {l} bits; maximum supported is 120")
            }
        }
    }
}

impl Error for ParamError {}

/// All public parameters of a framework instance.
#[derive(Clone, Debug)]
pub struct FrameworkParams {
    questionnaire: Questionnaire,
    n: usize,
    k: usize,
    attr_bits: u32,
    weight_bits: u32,
    mask_bits: u32,
    group: GroupKind,
    seed: u64,
}

/// Builder for [`FrameworkParams`].
#[derive(Clone, Debug)]
pub struct FrameworkParamsBuilder {
    questionnaire: Questionnaire,
    n: usize,
    k: usize,
    attr_bits: u32,
    weight_bits: u32,
    mask_bits: u32,
    group: GroupKind,
    seed: u64,
}

impl FrameworkParams {
    /// Starts a builder with the paper's default parameters
    /// (`n=25, k=3, d₁=15, d₂=8, h=15`, ECC-160).
    pub fn builder(questionnaire: Questionnaire) -> FrameworkParamsBuilder {
        FrameworkParamsBuilder {
            questionnaire,
            n: 25,
            k: 3,
            attr_bits: 15,
            weight_bits: 8,
            mask_bits: 15,
            group: GroupKind::Ecc160,
            seed: 0,
        }
    }

    /// The questionnaire.
    pub fn questionnaire(&self) -> &Questionnaire {
        &self.questionnaire
    }

    /// Number of participants `n`.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Published `k` of the top-k selection.
    pub fn top_k(&self) -> usize {
        self.k
    }

    /// Attribute value width `d₁`.
    pub fn attr_bits(&self) -> u32 {
        self.attr_bits
    }

    /// Weight width `d₂`.
    pub fn weight_bits(&self) -> u32 {
        self.weight_bits
    }

    /// Mask width `h` (bits of the initiator's secret `ρ`).
    pub fn mask_bits(&self) -> u32 {
        self.mask_bits
    }

    /// The group instantiation.
    pub fn group(&self) -> GroupKind {
        self.group
    }

    /// Deterministic master seed for reproducible runs.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The same parameters with a different master seed — how a precompute
    /// pool derives per-session parameters from a registered template
    /// without rebuilding (and revalidating) them each time.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The masked-gain bit length `l` (see [`bit_length`] for the formula
    /// and for how it relates to the paper's Sec. V expression).
    pub fn beta_bits(&self) -> usize {
        bit_length(
            self.questionnaire.dimension(),
            self.attr_bits,
            self.weight_bits,
            self.mask_bits,
        )
    }

    /// Generates a uniformly random population: an initiator profile and
    /// `n` info vectors with in-range values.
    pub fn random_population<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> (InitiatorProfile, Vec<InfoVector>) {
        let m = self.questionnaire.dimension();
        let attr_bound = 1u64 << self.attr_bits;
        let weight_bound = 1u64 << self.weight_bits;
        let criterion = CriterionVector::new(
            &self.questionnaire,
            (0..m).map(|_| rng.gen_range(0..attr_bound)).collect(),
            self.attr_bits,
        )
        // tidy:allow(panic) — values sampled from the declared bit range by construction
        .expect("generated in range");
        let weights = WeightVector::new(
            &self.questionnaire,
            (0..m).map(|_| rng.gen_range(0..weight_bound)).collect(),
            self.weight_bits,
        )
        // tidy:allow(panic) — values sampled from the declared bit range by construction
        .expect("generated in range");
        let infos = (0..self.n)
            .map(|_| {
                InfoVector::new(
                    &self.questionnaire,
                    (0..m).map(|_| rng.gen_range(0..attr_bound)).collect(),
                    self.attr_bits,
                )
                // tidy:allow(panic) — values sampled from the declared bit range by construction
                .expect("generated in range")
            })
            .collect();
        (InitiatorProfile { criterion, weights }, infos)
    }
}

/// The masked-gain bit length:
/// `l = h + ⌈log₂ m⌉ + d₁ + d₂ + max(d₁, d₂) + 2`.
///
/// The paper states `l = h + ⌈log m⌉ + d₁ + 2d₂ + 2` (Sec. III-A/V), but
/// the dominant partial-gain term `w·v²` has `2d₁ + d₂` bits, so the
/// printed formula under-budgets whenever `d₁ > d₂` (it implicitly
/// assumes `d₂ ≥ d₁`). We use the symmetric bound, which equals the
/// paper's expression in its implied regime and is safe outside it — an
/// overflowing masked gain would abort the run
/// (see [`crate::gain::to_unsigned`]).
pub fn bit_length(m: usize, attr_bits: u32, weight_bits: u32, mask_bits: u32) -> usize {
    let log_m = usize::BITS - m.next_power_of_two().leading_zeros() - 1; // ⌈log₂ m⌉
    mask_bits as usize
        + log_m as usize
        + attr_bits as usize
        + weight_bits as usize
        + attr_bits.max(weight_bits) as usize
        + 2
}

impl FrameworkParamsBuilder {
    /// Sets the number of participants.
    pub fn participants(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Sets `k` for the top-k selection.
    pub fn top_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the attribute width `d₁`.
    pub fn attr_bits(mut self, bits: u32) -> Self {
        self.attr_bits = bits;
        self
    }

    /// Sets the weight width `d₂`.
    pub fn weight_bits(mut self, bits: u32) -> Self {
        self.weight_bits = bits;
        self
    }

    /// Sets the mask width `h`.
    pub fn mask_bits(mut self, bits: u32) -> Self {
        self.mask_bits = bits;
        self
    }

    /// Selects the group instantiation.
    pub fn group(mut self, group: GroupKind) -> Self {
        self.group = group;
        self
    }

    /// Sets the master seed (runs are deterministic per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// See [`ParamError`].
    pub fn build(self) -> Result<FrameworkParams, ParamError> {
        if self.n < 2 {
            return Err(ParamError::TooFewParticipants(self.n));
        }
        if self.k == 0 || self.k > self.n {
            return Err(ParamError::BadTopK {
                k: self.k,
                n: self.n,
            });
        }
        if self.attr_bits == 0 {
            return Err(ParamError::ZeroWidth("attribute"));
        }
        if self.weight_bits == 0 {
            return Err(ParamError::ZeroWidth("weight"));
        }
        if self.mask_bits == 0 {
            return Err(ParamError::ZeroWidth("mask"));
        }
        if self.mask_bits >= 64 {
            return Err(ParamError::MaskTooWide { h: self.mask_bits });
        }
        let l = bit_length(
            self.questionnaire.dimension(),
            self.attr_bits,
            self.weight_bits,
            self.mask_bits,
        );
        if l > 120 {
            return Err(ParamError::BitLengthTooLarge { l });
        }
        Ok(FrameworkParams {
            questionnaire: self.questionnaire,
            n: self.n,
            k: self.k,
            attr_bits: self.attr_bits,
            weight_bits: self.weight_bits,
            mask_bits: self.mask_bits,
            group: self.group,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn q() -> Questionnaire {
        Questionnaire::synthetic(2, 8)
    }

    #[test]
    fn paper_default_bit_length() {
        // m=10, d1=15, d2=8, h=15 → l = 15 + 4 + 15 + 8 + 15 + 2 = 59.
        assert_eq!(bit_length(10, 15, 8, 15), 59);
        // In the paper's implied regime (d2 ≥ d1) the formula matches the
        // printed one: d1 + 2·d2.
        assert_eq!(bit_length(10, 8, 15, 15), 15 + 4 + 8 + 2 * 15 + 2);
        let p = FrameworkParams::builder(q()).build().unwrap();
        assert_eq!(p.beta_bits(), 59);
    }

    #[test]
    fn bit_length_log_term() {
        // log2(1) contributes 0 bits; the other terms are 1 + 1 + 2 + 2.
        assert_eq!(bit_length(1, 1, 1, 1), 1 + 1 + 2 + 2);
        assert_eq!(bit_length(2, 1, 1, 1), 1 + 1 + 1 + 2 + 2);
        assert_eq!(bit_length(16, 1, 1, 1), 1 + 4 + 1 + 2 + 2);
        assert_eq!(bit_length(17, 1, 1, 1), 1 + 5 + 1 + 2 + 2);
    }

    #[test]
    fn bit_length_covers_worst_case_gain() {
        // Adversarial extremes: v = 2^d1 − 1, v0 = 2^d1 − 1, w = 2^d2 − 1;
        // the masked gain must fit the budget for every m.
        for (m, d1, d2, h) in [(2usize, 8u32, 4u32, 8u32), (10, 15, 8, 15), (4, 4, 12, 6)] {
            let l = bit_length(m, d1, d2, h);
            let vmax = (1i128 << d1) - 1;
            let wmax = (1i128 << d2) - 1;
            // |p| is maximized by all-equal-to attributes at extreme values.
            let p_max = m as i128 * wmax * vmax * vmax.max(2 * vmax);
            let rho_max = (1i128 << h) - 1;
            let beta_max = rho_max * p_max + rho_max;
            assert!(
                beta_max < 1i128 << (l - 1),
                "budget too small: m={m} d1={d1} d2={d2} h={h} l={l}"
            );
        }
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            FrameworkParams::builder(q()).participants(1).build(),
            Err(ParamError::TooFewParticipants(1))
        ));
        assert!(matches!(
            FrameworkParams::builder(q())
                .participants(5)
                .top_k(6)
                .build(),
            Err(ParamError::BadTopK { .. })
        ));
        assert!(matches!(
            FrameworkParams::builder(q()).attr_bits(0).build(),
            Err(ParamError::ZeroWidth("attribute"))
        ));
        assert!(matches!(
            FrameworkParams::builder(q())
                .attr_bits(60)
                .weight_bits(30)
                .build(),
            Err(ParamError::BitLengthTooLarge { .. })
        ));
        // h = 64 would overflow the u64 sampling of ρ before the bit-length
        // check could catch it; the dedicated variant rejects it first.
        assert!(matches!(
            FrameworkParams::builder(q()).mask_bits(64).build(),
            Err(ParamError::MaskTooWide { h: 64 })
        ));
        assert!(FrameworkParams::builder(q())
            .mask_bits(63)
            .attr_bits(1)
            .weight_bits(1)
            .build()
            .is_ok());
    }

    #[test]
    fn random_population_in_range() {
        let p = FrameworkParams::builder(q())
            .participants(6)
            .attr_bits(5)
            .weight_bits(3)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let (profile, infos) = p.random_population(&mut rng);
        assert_eq!(infos.len(), 6);
        assert!(profile.weights.values().iter().all(|&w| w < 8));
        assert!(infos.iter().all(|i| i.values().iter().all(|&v| v < 32)));
    }

    #[test]
    fn builder_is_fluent_and_deterministic() {
        let p = FrameworkParams::builder(q())
            .participants(10)
            .top_k(4)
            .group(GroupKind::Dl1024)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(p.participants(), 10);
        assert_eq!(p.top_k(), 4);
        assert_eq!(p.group(), GroupKind::Dl1024);
        assert_eq!(p.seed(), 99);
    }
}
