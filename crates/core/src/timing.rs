//! Per-party computation timing for the orchestrated executions.
//!
//! The paper's Fig. 2/3(a) report *each participant's computation
//! overhead*. The orchestrator runs all parties in one thread, so it
//! brackets every piece of party-local work with [`PartyTimer::time`] and
//! accumulates wall-clock per party.

use std::time::{Duration, Instant};

/// Accumulated computation time per party (index 0 = initiator).
#[derive(Clone, Debug)]
pub struct PartyTimer {
    spent: Vec<Duration>,
}

impl PartyTimer {
    /// A timer for `parties` parties (including the initiator slot 0).
    pub fn new(parties: usize) -> Self {
        PartyTimer { spent: vec![Duration::ZERO; parties] }
    }

    /// Times `f` and charges the elapsed time to `party`.
    pub fn time<T>(&mut self, party: usize, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.spent[party] += start.elapsed();
        out
    }

    /// Total time charged to `party`.
    pub fn spent(&self, party: usize) -> Duration {
        self.spent[party]
    }

    /// Mean time over participant slots `1..` (what Fig. 2 plots).
    pub fn mean_participant(&self) -> Duration {
        let n = self.spent.len().saturating_sub(1);
        if n == 0 {
            return Duration::ZERO;
        }
        self.spent[1..].iter().sum::<Duration>() / n as u32
    }

    /// Maximum over participant slots (the straggler).
    pub fn max_participant(&self) -> Duration {
        self.spent[1..].iter().copied().max().unwrap_or(Duration::ZERO)
    }

    /// All durations (initiator first).
    pub fn all(&self) -> &[Duration] {
        &self.spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_to_the_right_party() {
        let mut t = PartyTimer::new(3);
        let v = t.time(1, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(t.spent(1) >= Duration::from_millis(5));
        assert_eq!(t.spent(2), Duration::ZERO);
    }

    #[test]
    fn aggregates() {
        let mut t = PartyTimer::new(3);
        t.time(1, || std::thread::sleep(Duration::from_millis(2)));
        t.time(2, || std::thread::sleep(Duration::from_millis(6)));
        assert!(t.max_participant() >= t.mean_participant());
        assert!(t.mean_participant() > Duration::ZERO);
    }

    #[test]
    fn empty_participant_set() {
        let t = PartyTimer::new(1);
        assert_eq!(t.mean_participant(), Duration::ZERO);
        assert_eq!(t.max_participant(), Duration::ZERO);
    }
}
