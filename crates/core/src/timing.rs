//! Per-party computation timing for the orchestrated executions.
//!
//! The paper's Fig. 2/3(a) report *each participant's computation
//! overhead*. The orchestrator runs all parties in one thread, so it
//! brackets every piece of party-local work with [`PartyTimer::time`] and
//! accumulates wall-clock per party. Sections that fan a party's work out
//! across worker threads report via [`PartyTimer::record`], which keeps
//! wall-clock (what the party waits) and CPU time (what the cores burn)
//! as separate ledgers — on a single-core host the two coincide.

use std::time::{Duration, Instant};

/// Accumulated computation time per party (index 0 = initiator).
#[derive(Clone, Debug)]
pub struct PartyTimer {
    wall: Vec<Duration>,
    cpu: Vec<Duration>,
}

impl PartyTimer {
    /// A timer for `parties` parties (including the initiator slot 0).
    pub fn new(parties: usize) -> Self {
        PartyTimer {
            wall: vec![Duration::ZERO; parties],
            cpu: vec![Duration::ZERO; parties],
        }
    }

    /// Times `f` and charges the elapsed time to `party` (serial section:
    /// wall and CPU are the same).
    pub fn time<T>(&mut self, party: usize, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        self.wall[party] += elapsed;
        self.cpu[party] += elapsed;
        out
    }

    /// Charges a parallel section to `party`: `wall` is the elapsed time
    /// the party observed, `cpu` the total compute summed over workers.
    pub fn record(&mut self, party: usize, wall: Duration, cpu: Duration) {
        self.wall[party] += wall;
        self.cpu[party] += cpu;
    }

    /// Total wall-clock charged to `party`.
    pub fn spent(&self, party: usize) -> Duration {
        self.wall[party]
    }

    /// Total CPU time charged to `party` (≥ wall-clock when the party's
    /// work ran on several cores).
    pub fn cpu_spent(&self, party: usize) -> Duration {
        self.cpu[party]
    }

    /// Mean wall-clock over participant slots `1..` (what Fig. 2 plots).
    pub fn mean_participant(&self) -> Duration {
        let n = self.wall.len().saturating_sub(1);
        if n == 0 {
            return Duration::ZERO;
        }
        self.wall[1..].iter().sum::<Duration>() / n as u32
    }

    /// Maximum over participant slots (the straggler).
    pub fn max_participant(&self) -> Duration {
        self.wall[1..]
            .iter()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// All wall-clock durations (initiator first).
    pub fn all(&self) -> &[Duration] {
        &self.wall
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_to_the_right_party() {
        let mut t = PartyTimer::new(3);
        let v = t.time(1, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(t.spent(1) >= Duration::from_millis(5));
        assert_eq!(t.spent(2), Duration::ZERO);
    }

    #[test]
    fn aggregates() {
        let mut t = PartyTimer::new(3);
        t.time(1, || std::thread::sleep(Duration::from_millis(2)));
        t.time(2, || std::thread::sleep(Duration::from_millis(6)));
        assert!(t.max_participant() >= t.mean_participant());
        assert!(t.mean_participant() > Duration::ZERO);
    }

    #[test]
    fn empty_participant_set() {
        let t = PartyTimer::new(1);
        assert_eq!(t.mean_participant(), Duration::ZERO);
        assert_eq!(t.max_participant(), Duration::ZERO);
    }

    #[test]
    fn serial_sections_charge_wall_and_cpu_equally() {
        let mut t = PartyTimer::new(2);
        t.time(1, || std::thread::sleep(Duration::from_millis(2)));
        assert_eq!(t.spent(1), t.cpu_spent(1));
        assert!(t.spent(1) >= Duration::from_millis(2));
    }

    #[test]
    fn parallel_sections_split_wall_and_cpu() {
        // A 4-worker fan-out: the party waits 3 ms but burns 10 ms of CPU.
        let mut t = PartyTimer::new(2);
        t.record(1, Duration::from_millis(3), Duration::from_millis(10));
        assert_eq!(t.spent(1), Duration::from_millis(3));
        assert_eq!(t.cpu_spent(1), Duration::from_millis(10));
        // Wall-clock feeds the participant aggregates.
        assert_eq!(t.mean_participant(), Duration::from_millis(3));
        assert_eq!(t.max_participant(), Duration::from_millis(3));
    }
}
