//! Phase 3 — ranking submission and over-claim detection
//! (paper Fig. 1, last step, and the active-attack discussion in Sec. V).
//!
//! Participants whose rank is at most `k` submit their information vector
//! and claimed rank to the initiator. The initiator recomputes each
//! submitter's gain from the submitted vector and checks consistency:
//! claimed ranks must be distinct-or-tied exactly as the recomputed gains
//! order them. A low-ranking participant who over-claims therefore either
//! collides with an honest claimant's rank or inverts the gain order —
//! both are flagged.

use crate::attrs::{gain, InfoVector, InitiatorProfile, Questionnaire};
use crate::timing::PartyTimer;
use ppgr_net::TrafficLog;

/// One participant's submission to the initiator.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Submission {
    /// Submitting party (1-based).
    pub party: usize,
    /// The rank the participant claims to hold.
    pub claimed_rank: usize,
    /// Her information vector.
    pub info: InfoVector,
}

/// A submission the initiator accepted, with the recomputed gain.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct AcceptedSubmission {
    /// The submission.
    pub submission: Submission,
    /// Gain recomputed by the initiator from the submitted vector.
    pub gain: i128,
}

/// Why the initiator flagged a submission.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum SubmissionFlag {
    /// Two submissions claim the same rank but have different gains.
    RankCollision {
        /// The contested rank.
        rank: usize,
        /// The colliding parties.
        parties: Vec<usize>,
    },
    /// Claimed ranks invert the recomputed gain order.
    OrderInversion {
        /// Party whose claim is inconsistent.
        party: usize,
    },
    /// Claimed rank exceeds the published `k`.
    RankOutOfRange {
        /// The submitting party.
        party: usize,
    },
}

/// The initiator's verdict on the submission set.
#[derive(Clone, Debug, Default, Eq, PartialEq)]
pub struct VerificationReport {
    /// Submissions that passed all checks.
    pub accepted: Vec<AcceptedSubmission>,
    /// Detected inconsistencies.
    pub flags: Vec<SubmissionFlag>,
}

impl VerificationReport {
    /// `true` when no inconsistencies were found.
    pub fn is_clean(&self) -> bool {
        self.flags.is_empty()
    }
}

/// Honest phase-3 behaviour: parties with `rank ≤ k` submit.
pub fn honest_submissions(infos: &[InfoVector], ranks: &[usize], k: usize) -> Vec<Submission> {
    infos
        .iter()
        .zip(ranks)
        .enumerate()
        .filter(|(_, (_, &rank))| rank <= k)
        .map(|(idx, (info, &rank))| Submission {
            party: idx + 1,
            claimed_rank: rank,
            info: info.clone(),
        })
        .collect()
}

/// The initiator's verification: recompute gains, check rank/gain
/// consistency (ties in gain may share a rank; distinct gains must not).
pub fn verify_submissions(
    q: &Questionnaire,
    profile: &InitiatorProfile,
    submissions: &[Submission],
    k: usize,
    log: &TrafficLog,
    timer: &mut PartyTimer,
    round: u32,
) -> VerificationReport {
    // Account the submission traffic: each submitter sends her vector.
    for s in submissions {
        log.record(round, s.party, 0, s.info.values().len() * 8 + 8, "submit");
    }
    timer.time(0, || {
        let mut report = VerificationReport::default();
        let mut scored: Vec<(&Submission, i128)> = submissions
            .iter()
            .map(|s| (s, gain(q, profile, &s.info)))
            .collect();

        for (s, _) in &scored {
            if s.claimed_rank > k || s.claimed_rank == 0 {
                report
                    .flags
                    .push(SubmissionFlag::RankOutOfRange { party: s.party });
            }
        }

        // Same claimed rank must mean same gain.
        scored.sort_by_key(|(s, _)| s.claimed_rank);
        for window in scored.windows(2) {
            let (a, ga) = (&window[0].0, window[0].1);
            let (b, gb) = (&window[1].0, window[1].1);
            if a.claimed_rank == b.claimed_rank && ga != gb {
                report.flags.push(SubmissionFlag::RankCollision {
                    rank: a.claimed_rank,
                    parties: vec![a.party, b.party],
                });
            }
            // Lower claimed rank must mean gain at least as large.
            if a.claimed_rank < b.claimed_rank && ga < gb {
                report
                    .flags
                    .push(SubmissionFlag::OrderInversion { party: a.party });
            }
        }

        for (s, g) in scored {
            let flagged = report.flags.iter().any(|f| match f {
                SubmissionFlag::RankCollision { parties, .. } => parties.contains(&s.party),
                SubmissionFlag::OrderInversion { party } => *party == s.party,
                SubmissionFlag::RankOutOfRange { party } => *party == s.party,
            });
            if !flagged {
                report.accepted.push(AcceptedSubmission {
                    submission: s.clone(),
                    gain: g,
                });
            }
        }
        report.accepted.sort_by_key(|a| a.submission.claimed_rank);
        report
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AttributeKind, CriterionVector, Questionnaire, WeightVector};

    fn setup() -> (Questionnaire, InitiatorProfile, Vec<InfoVector>) {
        let q = Questionnaire::builder()
            .attribute("score", AttributeKind::GreaterThan)
            .build()
            .unwrap();
        let profile = InitiatorProfile {
            criterion: CriterionVector::new(&q, vec![0], 15).unwrap(),
            weights: WeightVector::new(&q, vec![1], 8).unwrap(),
        };
        // Gains are just the raw scores here.
        let infos: Vec<InfoVector> = [40u64, 10, 30, 20]
            .iter()
            .map(|&v| InfoVector::new(&q, vec![v], 15).unwrap())
            .collect();
        (q, profile, infos)
    }

    #[test]
    fn honest_flow_is_clean() {
        let (q, profile, infos) = setup();
        let ranks = vec![1usize, 4, 2, 3];
        let subs = honest_submissions(&infos, &ranks, 2);
        assert_eq!(subs.len(), 2);
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(5);
        let report = verify_submissions(&q, &profile, &subs, 2, &log, &mut timer, 0);
        assert!(report.is_clean());
        assert_eq!(report.accepted.len(), 2);
        assert_eq!(report.accepted[0].submission.party, 1);
        assert_eq!(report.accepted[0].gain, 40);
    }

    #[test]
    fn tied_gains_may_share_a_rank() {
        let (q, profile, _) = setup();
        let tied: Vec<InfoVector> = [25u64, 25]
            .iter()
            .map(|&v| InfoVector::new(&q, vec![v], 15).unwrap())
            .collect();
        let subs = honest_submissions(&tied, &[1, 1], 1);
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(3);
        let report = verify_submissions(&q, &profile, &subs, 1, &log, &mut timer, 0);
        assert!(report.is_clean());
        assert_eq!(report.accepted.len(), 2);
    }

    #[test]
    fn overclaim_collision_detected() {
        let (q, profile, infos) = setup();
        // True ranks: party1→1, party3→2. Party 2 (lowest gain) claims rank 2.
        let mut subs = honest_submissions(&infos, &[1, 4, 2, 3], 2);
        subs.push(Submission {
            party: 2,
            claimed_rank: 2,
            info: infos[1].clone(),
        });
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(5);
        let report = verify_submissions(&q, &profile, &subs, 2, &log, &mut timer, 0);
        assert!(!report.is_clean());
        assert!(report
            .flags
            .iter()
            .any(|f| matches!(f, SubmissionFlag::RankCollision { rank: 2, .. })));
        // The honest rank-1 submission survives.
        assert!(report.accepted.iter().any(|a| a.submission.party == 1));
    }

    #[test]
    fn order_inversion_detected() {
        let (q, profile, infos) = setup();
        // Party 2 (gain 10) claims rank 1; party 1 (gain 40) claims rank 2.
        let subs = vec![
            Submission {
                party: 2,
                claimed_rank: 1,
                info: infos[1].clone(),
            },
            Submission {
                party: 1,
                claimed_rank: 2,
                info: infos[0].clone(),
            },
        ];
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(5);
        let report = verify_submissions(&q, &profile, &subs, 2, &log, &mut timer, 0);
        assert!(report
            .flags
            .iter()
            .any(|f| matches!(f, SubmissionFlag::OrderInversion { party: 2 })));
    }

    #[test]
    fn rank_out_of_range_detected() {
        let (q, profile, infos) = setup();
        let subs = vec![Submission {
            party: 4,
            claimed_rank: 9,
            info: infos[3].clone(),
        }];
        let log = TrafficLog::new();
        let mut timer = PartyTimer::new(5);
        let report = verify_submissions(&q, &profile, &subs, 2, &log, &mut timer, 0);
        assert!(report
            .flags
            .iter()
            .any(|f| matches!(f, SubmissionFlag::RankOutOfRange { party: 4 })));
        assert!(report.accepted.is_empty());
    }

    #[test]
    fn ties_at_the_boundary_all_submit() {
        // Paper: everyone tied with the k-th β is eligible.
        let (_q, _profile, _) = setup();
        let ranks = vec![1usize, 2, 2, 4];
        let infos: Vec<InfoVector> = {
            let q = Questionnaire::builder()
                .attribute("score", AttributeKind::GreaterThan)
                .build()
                .unwrap();
            [9u64, 5, 5, 1]
                .iter()
                .map(|&v| InfoVector::new(&q, vec![v], 15).unwrap())
                .collect()
        };
        let subs = honest_submissions(&infos, &ranks, 2);
        assert_eq!(subs.len(), 3, "both rank-2 ties submit");
    }
}
