//! The end-to-end framework orchestrator.

use crate::attrs::{InfoVector, InitiatorProfile, VectorError};
use crate::gain::{run_gain_phase, GainPhaseOutput};
use crate::params::FrameworkParams;
use crate::sorting::{unlinkable_sort, SortError};
use crate::submit::{honest_submissions, verify_submissions, AcceptedSubmission};
use crate::timing::PartyTimer;
use ppgr_hash::HashDrbg;
use ppgr_net::{TrafficLog, TrafficSummary};
use rand::SeedableRng;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Errors from a framework run.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum RunError {
    /// No population was supplied (call `with_random_population` or
    /// `with_population`).
    MissingPopulation,
    /// A supplied vector was malformed.
    Vector(VectorError),
    /// The sorting phase failed.
    Sort(SortError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::MissingPopulation => write!(f, "no population supplied"),
            RunError::Vector(e) => write!(f, "invalid population vector: {e}"),
            RunError::Sort(e) => write!(f, "sorting phase failed: {e}"),
        }
    }
}

impl Error for RunError {}

impl From<VectorError> for RunError {
    fn from(e: VectorError) -> Self {
        RunError::Vector(e)
    }
}

impl From<SortError> for RunError {
    fn from(e: SortError) -> Self {
        RunError::Sort(e)
    }
}

/// Per-phase mean participant computation time (what Fig. 2 plots) plus
/// the initiator's total.
#[derive(Clone, Debug)]
pub struct PhaseTimings {
    /// Phase 1 mean participant time.
    pub gain: Duration,
    /// Phase 2 mean participant time.
    pub sort: Duration,
    /// Phase 3 initiator verification time.
    pub submit: Duration,
    /// Total initiator time across phases.
    pub initiator: Duration,
    /// Per-party totals (index 0 = initiator).
    pub per_party: Vec<Duration>,
}

impl PhaseTimings {
    /// Mean participant computation across all phases.
    pub fn mean_participant_total(&self) -> Duration {
        self.gain + self.sort
    }
}

/// Result of a framework run.
#[derive(Clone, Debug)]
pub struct Outcome {
    ranks: Vec<usize>,
    top_k: Vec<AcceptedSubmission>,
    traffic: TrafficSummary,
    timings: PhaseTimings,
    gain_output: GainPhaseOutput,
}

impl Outcome {
    /// Each participant's rank (index `j-1` for party `j`; rank 1 =
    /// highest gain; ties share a rank).
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// The verified top-k submissions the initiator accepted.
    pub fn top_k(&self) -> &[AcceptedSubmission] {
        &self.top_k
    }

    /// Traffic accounting for the whole run.
    pub fn traffic(&self) -> &TrafficSummary {
        &self.traffic
    }

    /// Computation-time accounting.
    pub fn timings(&self) -> &PhaseTimings {
        &self.timings
    }

    /// The masked gains (diagnostics; a real deployment never aggregates
    /// these — they are each participant's private state).
    pub fn masked_gains(&self) -> &GainPhaseOutput {
        &self.gain_output
    }
}

/// The orchestrator: configure, then [`run`](GroupRanking::run).
///
/// Runs every party's computation in-process, charging wall-clock per
/// party and logging every wire message, which is exactly what the
/// paper's evaluation measures.
#[derive(Clone, Debug)]
pub struct GroupRanking {
    params: FrameworkParams,
    population: Option<(InitiatorProfile, Vec<InfoVector>)>,
    log: TrafficLog,
}

impl GroupRanking {
    /// Creates an orchestrator for the given parameters.
    pub fn new(params: FrameworkParams) -> Self {
        GroupRanking {
            params,
            population: None,
            log: TrafficLog::new(),
        }
    }

    /// Generates a seeded random population (deterministic per
    /// `params.seed()`).
    pub fn with_random_population(mut self) -> Self {
        let mut rng = HashDrbg::seed_from_u64(self.params.seed());
        self.population = Some(self.params.random_population(&mut rng));
        self
    }

    /// Supplies an explicit population.
    ///
    /// # Errors
    ///
    /// [`VectorError::DimensionMismatch`] if the number of info vectors
    /// does not match `params.participants()`.
    pub fn with_population(
        mut self,
        profile: InitiatorProfile,
        infos: Vec<InfoVector>,
    ) -> Result<Self, VectorError> {
        if infos.len() != self.params.participants() {
            return Err(VectorError::DimensionMismatch {
                expected: self.params.participants(),
                got: infos.len(),
            });
        }
        self.population = Some((profile, infos));
        Ok(self)
    }

    /// Shares this run's traffic log (e.g. to feed the network simulator
    /// afterwards).
    pub fn traffic_log(&self) -> TrafficLog {
        self.log.clone()
    }

    /// The parameters.
    pub fn params(&self) -> &FrameworkParams {
        &self.params
    }

    /// Executes all three phases.
    ///
    /// # Errors
    ///
    /// See [`RunError`].
    pub fn run(self) -> Result<Outcome, RunError> {
        let (profile, infos) = self.population.ok_or(RunError::MissingPopulation)?;
        let params = &self.params;
        let n = params.participants();
        let l = params.beta_bits();
        let group = params.group().group();
        let mut rng = HashDrbg::seed_from_u64(params.seed()).fork(b"protocol");
        let log = self.log;

        // Phase 1: secure gain computation.
        let mut gain_timer = PartyTimer::new(n + 1);
        let gain_out = run_gain_phase(params, &profile, &infos, &mut rng, &log, &mut gain_timer, 0);

        // Phase 2: unlinkable comparison / sorting.
        let mut sort_timer = PartyTimer::new(n + 1);
        let sort_out = unlinkable_sort(
            &group,
            &gain_out.betas,
            l,
            &mut rng,
            &log,
            &mut sort_timer,
            2,
        )?;

        // Phase 3: submission + verification.
        let mut submit_timer = PartyTimer::new(n + 1);
        let submissions = honest_submissions(&infos, &sort_out.ranks, params.top_k());
        let report = verify_submissions(
            params.questionnaire(),
            &profile,
            &submissions,
            params.top_k(),
            &log,
            &mut submit_timer,
            100,
        );
        debug_assert!(report.is_clean(), "honest run must verify cleanly");

        let per_party: Vec<Duration> = (0..=n)
            .map(|p| gain_timer.spent(p) + sort_timer.spent(p) + submit_timer.spent(p))
            .collect();
        let timings = PhaseTimings {
            gain: gain_timer.mean_participant(),
            sort: sort_timer.mean_participant(),
            submit: submit_timer.spent(0),
            initiator: per_party[0],
            per_party,
        };
        Ok(Outcome {
            ranks: sort_out.ranks,
            top_k: report.accepted,
            traffic: log.summary(),
            timings,
            gain_output: gain_out,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{gain, Questionnaire};
    use ppgr_group::GroupKind;

    fn small_params(n: usize, k: usize, seed: u64) -> FrameworkParams {
        FrameworkParams::builder(Questionnaire::synthetic(1, 2))
            .participants(n)
            .top_k(k)
            .attr_bits(6)
            .weight_bits(3)
            .mask_bits(6)
            .group(GroupKind::Ecc160)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn end_to_end_ranks_match_plaintext_gains() {
        let params = small_params(4, 2, 11);
        let runner = GroupRanking::new(params.clone()).with_random_population();
        let q = params.questionnaire().clone();
        let outcome = runner.run().unwrap();

        // Recompute plaintext gains to validate ranking.
        let mut rng = HashDrbg::seed_from_u64(params.seed());
        let (profile, infos) = params.random_population(&mut rng);
        let gains: Vec<i128> = infos.iter().map(|i| gain(&q, &profile, i)).collect();
        for a in 0..gains.len() {
            for b in 0..gains.len() {
                if gains[a] > gains[b] {
                    assert!(
                        outcome.ranks()[a] < outcome.ranks()[b],
                        "gain order violated: {:?} vs ranks {:?}",
                        gains,
                        outcome.ranks()
                    );
                }
            }
        }
        // Top-k are the k best gains.
        assert_eq!(outcome.top_k().len(), 2);
        for acc in outcome.top_k() {
            assert!(acc.submission.claimed_rank <= 2);
        }
    }

    #[test]
    fn missing_population_errors() {
        let params = small_params(3, 1, 1);
        assert_eq!(
            GroupRanking::new(params).run().unwrap_err(),
            RunError::MissingPopulation
        );
    }

    #[test]
    fn population_size_checked() {
        let params = small_params(3, 1, 1);
        let mut rng = HashDrbg::seed_from_u64(5);
        let (profile, mut infos) = params.random_population(&mut rng);
        infos.pop();
        assert!(matches!(
            GroupRanking::new(params).with_population(profile, infos),
            Err(VectorError::DimensionMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GroupRanking::new(small_params(3, 1, 77))
            .with_random_population()
            .run()
            .unwrap();
        let b = GroupRanking::new(small_params(3, 1, 77))
            .with_random_population()
            .run()
            .unwrap();
        assert_eq!(a.ranks(), b.ranks());
        assert_eq!(a.traffic(), b.traffic());
    }

    #[test]
    fn traffic_and_timing_populated() {
        let outcome = GroupRanking::new(small_params(3, 1, 9))
            .with_random_population()
            .run()
            .unwrap();
        assert!(outcome.traffic().total_bytes > 0);
        assert!(outcome.timings().sort > Duration::ZERO);
        assert!(outcome.timings().mean_participant_total() >= outcome.timings().sort);
        assert_eq!(outcome.timings().per_party.len(), 4);
    }
}
