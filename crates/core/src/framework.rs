//! The end-to-end framework orchestrator.

use crate::attrs::{InfoVector, InitiatorProfile, VectorError};
use crate::gain::{run_gain_phase, GainPhaseOutput};
use crate::offline::{OfflineStock, StockFingerprint};
use crate::params::FrameworkParams;
use crate::sorting::{KeygenVerifyJob, SortError, SortMachine, SortOptions, SortStatus};
use crate::submit::{honest_submissions, verify_submissions, AcceptedSubmission};
use crate::timing::PartyTimer;
use ppgr_elgamal::Ciphertext;
use ppgr_hash::HashDrbg;
use ppgr_net::{TrafficLog, TrafficSummary};
use rand::SeedableRng;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Errors from a framework run.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum RunError {
    /// No population was supplied (call `with_random_population` or
    /// `with_population`).
    MissingPopulation,
    /// A supplied vector was malformed.
    Vector(VectorError),
    /// The sorting phase failed.
    Sort(SortError),
    /// A session-machine invariant was violated (phase state out of sync).
    /// Reaching this indicates a bug in the driver, not bad input.
    Internal(&'static str),
    /// The session was cancelled by its driver before completing.
    Cancelled,
    /// The session exceeded its wall-clock budget and was abandoned by its
    /// driver (the session itself never observes this — a runtime enforces
    /// it between steps).
    DeadlineExceeded,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::MissingPopulation => write!(f, "no population supplied"),
            RunError::Vector(e) => write!(f, "invalid population vector: {e}"),
            RunError::Sort(e) => write!(f, "sorting phase failed: {e}"),
            RunError::Internal(what) => write!(f, "internal invariant violated: {what}"),
            RunError::Cancelled => write!(f, "session cancelled"),
            RunError::DeadlineExceeded => write!(f, "session exceeded its deadline"),
        }
    }
}

impl RunError {
    /// The party this failure blames, when the underlying error carries
    /// an attribution: a rejected proof of key knowledge or an over-wide
    /// submitted value names its 1-based prover. Driver-side failures
    /// (cancellation, deadlines, invariant bugs, malformed input vectors)
    /// have no culprit and return `None`, so a runtime surfacing blame
    /// never pins an infrastructure fault on a session participant.
    pub fn blamed(&self) -> Option<usize> {
        match self {
            RunError::Sort(SortError::ProofRejected { party })
            | RunError::Sort(SortError::ValueTooWide { party }) => Some(*party),
            _ => None,
        }
    }
}

impl Error for RunError {}

impl From<VectorError> for RunError {
    fn from(e: VectorError) -> Self {
        RunError::Vector(e)
    }
}

impl From<SortError> for RunError {
    fn from(e: SortError) -> Self {
        RunError::Sort(e)
    }
}

/// Per-phase mean participant computation time (what Fig. 2 plots) plus
/// the initiator's total.
#[derive(Clone, Debug)]
pub struct PhaseTimings {
    /// Phase 1 mean participant time.
    pub gain: Duration,
    /// Phase 2 mean participant time.
    pub sort: Duration,
    /// Phase 3 initiator verification time.
    pub submit: Duration,
    /// Total initiator time across phases.
    pub initiator: Duration,
    /// Per-party totals (index 0 = initiator).
    pub per_party: Vec<Duration>,
}

impl PhaseTimings {
    /// Mean participant computation across all phases.
    pub fn mean_participant_total(&self) -> Duration {
        self.gain + self.sort
    }
}

/// Result of a framework run.
#[derive(Clone, Debug)]
pub struct Outcome {
    ranks: Vec<usize>,
    top_k: Vec<AcceptedSubmission>,
    traffic: TrafficSummary,
    timings: PhaseTimings,
    gain_output: GainPhaseOutput,
}

impl Outcome {
    /// Each participant's rank (index `j-1` for party `j`; rank 1 =
    /// highest gain; ties share a rank).
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// The verified top-k submissions the initiator accepted.
    pub fn top_k(&self) -> &[AcceptedSubmission] {
        &self.top_k
    }

    /// Traffic accounting for the whole run.
    pub fn traffic(&self) -> &TrafficSummary {
        &self.traffic
    }

    /// Computation-time accounting.
    pub fn timings(&self) -> &PhaseTimings {
        &self.timings
    }

    /// The masked gains (diagnostics; a real deployment never aggregates
    /// these — they are each participant's private state).
    pub fn masked_gains(&self) -> &GainPhaseOutput {
        &self.gain_output
    }
}

/// The orchestrator: configure, then [`run`](GroupRanking::run).
///
/// Runs every party's computation in-process, charging wall-clock per
/// party and logging every wire message, which is exactly what the
/// paper's evaluation measures.
#[derive(Clone, Debug)]
pub struct GroupRanking {
    params: FrameworkParams,
    population: Option<(InitiatorProfile, Vec<InfoVector>)>,
    log: TrafficLog,
}

impl GroupRanking {
    /// Creates an orchestrator for the given parameters.
    pub fn new(params: FrameworkParams) -> Self {
        GroupRanking {
            params,
            population: None,
            log: TrafficLog::new(),
        }
    }

    /// Generates a seeded random population (deterministic per
    /// `params.seed()`).
    pub fn with_random_population(mut self) -> Self {
        let mut rng = HashDrbg::seed_from_u64(self.params.seed());
        self.population = Some(self.params.random_population(&mut rng));
        self
    }

    /// Supplies an explicit population.
    ///
    /// # Errors
    ///
    /// [`VectorError::DimensionMismatch`] if the number of info vectors
    /// does not match `params.participants()`.
    pub fn with_population(
        mut self,
        profile: InitiatorProfile,
        infos: Vec<InfoVector>,
    ) -> Result<Self, VectorError> {
        if infos.len() != self.params.participants() {
            return Err(VectorError::DimensionMismatch {
                expected: self.params.participants(),
                got: infos.len(),
            });
        }
        self.population = Some((profile, infos));
        Ok(self)
    }

    /// Shares this run's traffic log (e.g. to feed the network simulator
    /// afterwards).
    pub fn traffic_log(&self) -> TrafficLog {
        self.log.clone()
    }

    /// The parameters.
    pub fn params(&self) -> &FrameworkParams {
        &self.params
    }

    /// Executes all three phases.
    ///
    /// Drives a [`SessionMachine`] to completion; a machine stepped the
    /// same way elsewhere (e.g. by the throughput runtime) produces
    /// identical results.
    ///
    /// # Errors
    ///
    /// See [`RunError`].
    pub fn run(self) -> Result<Outcome, RunError> {
        let mut machine = self.into_machine()?;
        while machine.step()? == SessionStatus::Pending {}
        machine
            .into_outcome()
            .ok_or(RunError::Internal("machine driven to Done but no outcome"))
    }

    /// Converts the configured orchestrator into a resumable
    /// [`SessionMachine`] with default sort options.
    ///
    /// # Errors
    ///
    /// [`RunError::MissingPopulation`] if no population was supplied.
    pub fn into_machine(self) -> Result<SessionMachine, RunError> {
        self.into_machine_with(SortOptions::default())
    }

    /// Converts the orchestrator into a [`SessionMachine`], overriding the
    /// sorting options (the throughput runtime pins `threads: 1` so each
    /// session is single-threaded and the pool supplies the parallelism).
    ///
    /// # Errors
    ///
    /// [`RunError::MissingPopulation`] if no population was supplied.
    pub fn into_machine_with(self, sort_options: SortOptions) -> Result<SessionMachine, RunError> {
        let (profile, infos) = self.population.ok_or(RunError::MissingPopulation)?;
        let n = self.params.participants();
        let rng = HashDrbg::seed_from_u64(self.params.seed()).fork(b"protocol");
        Ok(SessionMachine {
            params: self.params,
            profile,
            infos,
            sort_options,
            rng,
            log: self.log,
            phase: SessionPhase::Offline,
            offline: None,
            gain_timer: PartyTimer::new(n + 1),
            sort_timer: PartyTimer::new(n + 1),
            submit_timer: PartyTimer::new(n + 1),
            gain_out: None,
            sort: None,
            scratch: None,
            ranks: None,
            result: None,
        })
    }
}

/// What a [`SessionMachine::step`] call left behind.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum SessionStatus {
    /// More work remains; call [`SessionMachine::step`] again.
    Pending,
    /// The session finished; collect the result with
    /// [`SessionMachine::into_outcome`].
    Done,
}

/// Which phase a [`SessionMachine`] is in.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
enum SessionPhase {
    /// Offline precompute: acquire (or generate cold) the session's
    /// randomness stock before any online phase runs.
    Offline,
    /// Phase 1: secure gain computation (one step).
    Gain,
    /// Phase 2: unlinkable sorting (one step per [`SortMachine`] unit).
    Sort,
    /// Phase 3: submission + verification, then result assembly.
    Submit,
    /// Result available.
    Done,
}

/// A resumable framework session.
///
/// One `step` call performs one unit of protocol work: the whole gain
/// phase, one [`SortMachine`] step (key generation, bit encryption, a
/// party's comparison batch, or a single chain hop), or the submission
/// phase. The session owns its seeded DRBG, so however its steps are
/// interleaved with *other* sessions' steps, its transcript and ranks are
/// bit-identical to a solo [`GroupRanking::run`] with the same seed —
/// within a session the steps are strictly sequential, which is exactly
/// the unlinkability requirement on the shuffle-decrypt chain.
#[derive(Debug)]
pub struct SessionMachine {
    params: FrameworkParams,
    profile: InitiatorProfile,
    infos: Vec<InfoVector>,
    sort_options: SortOptions,
    rng: HashDrbg,
    log: TrafficLog,
    phase: SessionPhase,
    offline: Option<OfflineStock>,
    gain_timer: PartyTimer,
    sort_timer: PartyTimer,
    submit_timer: PartyTimer,
    gain_out: Option<GainPhaseOutput>,
    sort: Option<SortMachine>,
    /// A pool-donated hop scratch buffer, held until the sort machine is
    /// built (Gain phase) and reclaimed when the sort finishes, so one
    /// allocation's capacity serves many sessions in turn.
    scratch: Option<Vec<Ciphertext>>,
    ranks: Option<Vec<usize>>,
    result: Option<Outcome>,
}

impl SessionMachine {
    /// Whether the session has completed.
    pub fn is_done(&self) -> bool {
        self.phase == SessionPhase::Done
    }

    /// The session parameters.
    pub fn params(&self) -> &FrameworkParams {
        &self.params
    }

    /// The fingerprint of the offline stock this session expects — what a
    /// precompute pool must generate ([`OfflineStock::generate`]) for
    /// [`SessionMachine::attach_offline_stock`] to accept it.
    pub fn offline_fingerprint(&self) -> StockFingerprint {
        StockFingerprint::new(
            self.params.seed(),
            self.params.participants(),
            self.params.beta_bits(),
            self.params.group(),
        )
    }

    /// Hands the session a pool-generated offline stock, so its offline
    /// step finds the randomness ready instead of generating it inline.
    ///
    /// Returns `false` — leaving the session to generate cold, which
    /// produces bit-identical transcripts — if the offline step has
    /// already run or the stock's fingerprint does not match
    /// [`SessionMachine::offline_fingerprint`] exactly.
    pub fn attach_offline_stock(&mut self, stock: OfflineStock) -> bool {
        if self.phase != SessionPhase::Offline
            || self.offline.is_some()
            || stock.fingerprint() != Some(&self.offline_fingerprint())
        {
            return false;
        }
        self.offline = Some(stock);
        true
    }

    /// Takes the keygen proof check a
    /// [`defer_verify`](SortOptions::defer_verify) session stashed, if any.
    ///
    /// Delegates to [`SortMachine::take_pending_verify`]: `Some` exactly
    /// once, after the sort's keygen step ran deferred. The caller must
    /// settle the job and discard the session's outcome if the verdict is
    /// `Err` — see [`KeygenVerifyJob`].
    pub fn take_pending_verify(&mut self) -> Option<KeygenVerifyJob> {
        self.sort
            .as_mut()
            .and_then(SortMachine::take_pending_verify)
    }

    /// Donates a recycled hop scratch buffer; its capacity is handed to the
    /// sort machine when the Gain phase builds it. Contents never influence
    /// the protocol ([`SortMachine::adopt_scratch`]).
    pub fn adopt_hop_scratch(&mut self, scratch: Vec<Ciphertext>) {
        match self.sort.as_mut() {
            Some(sort) => sort.adopt_scratch(scratch),
            None => self.scratch = Some(scratch),
        }
    }

    /// Takes the hop scratch buffer back once the session is done (or
    /// whatever was donated, if the sort never ran), so a pool can recycle
    /// its capacity into the next session.
    pub fn take_hop_scratch(&mut self) -> Vec<Ciphertext> {
        match self.sort.as_mut() {
            Some(sort) => sort.take_scratch(),
            None => self.scratch.take().unwrap_or_default(),
        }
    }

    /// The outcome, once [`SessionMachine::step`] has returned
    /// [`SessionStatus::Done`]. Consumes the machine; returns `None` if
    /// the session has not finished.
    pub fn into_outcome(self) -> Option<Outcome> {
        self.result
    }

    /// Executes the next unit of protocol work.
    ///
    /// # Errors
    ///
    /// See [`RunError`].
    pub fn step(&mut self) -> Result<SessionStatus, RunError> {
        match self.phase {
            SessionPhase::Offline => {
                // Cold fallback: generate the stock from the session's own
                // dedicated offline stream. A pool-attached stock comes
                // from the same stream, so transcripts do not depend on
                // which side did the work.
                if self.offline.is_none() {
                    // A defer-verify run skips minting-time proof
                    // verification too — the check belongs to the
                    // cross-session batch; the stock bytes are identical.
                    self.offline = Some(if self.sort_options.defer_verify {
                        OfflineStock::generate_deferred(self.offline_fingerprint())
                    } else {
                        OfflineStock::generate(self.offline_fingerprint())
                    });
                }
                self.phase = SessionPhase::Gain;
                Ok(SessionStatus::Pending)
            }
            SessionPhase::Gain => {
                // Phase 1: secure gain computation.
                let gain_out = run_gain_phase(
                    &self.params,
                    &self.profile,
                    &self.infos,
                    &mut self.rng,
                    &self.log,
                    &mut self.gain_timer,
                    0,
                );
                // Phase 2 setup: the sort machine validates inputs now.
                let group = self.params.group().group();
                let mut sort = SortMachine::new(
                    &group,
                    &gain_out.betas,
                    self.params.beta_bits(),
                    self.sort_options,
                    2,
                )?;
                let stock = self
                    .offline
                    .take()
                    .ok_or(RunError::Internal("no offline stock after Offline phase"))?;
                if sort.attach_offline_stock(stock).is_err() {
                    return Err(RunError::Internal("offline stock rejected by sort machine"));
                }
                if let Some(scratch) = self.scratch.take() {
                    sort.adopt_scratch(scratch);
                }
                self.gain_out = Some(gain_out);
                self.sort = Some(sort);
                self.phase = SessionPhase::Sort;
                Ok(SessionStatus::Pending)
            }
            SessionPhase::Sort => {
                let sort = self
                    .sort
                    .as_mut()
                    .ok_or(RunError::Internal("no sort machine in Sort phase"))?;
                let status = sort.step(&mut self.rng, &self.log, &mut self.sort_timer)?;
                if status == SortStatus::Done {
                    let mut done = self
                        .sort
                        .take()
                        .ok_or(RunError::Internal("no sort machine in Sort phase"))?;
                    // Reclaim the hop buffer before the machine is consumed
                    // so a pool can recycle its capacity into a later
                    // session ([`SessionMachine::take_hop_scratch`]).
                    self.scratch = Some(done.take_scratch());
                    let (sort_out, _trace) = done
                        .into_result()
                        .ok_or(RunError::Internal("sort machine Done without result"))?;
                    self.ranks = Some(sort_out.ranks);
                    self.phase = SessionPhase::Submit;
                }
                Ok(SessionStatus::Pending)
            }
            SessionPhase::Submit => {
                // Phase 3: submission + verification.
                let ranks = self
                    .ranks
                    .take()
                    .ok_or(RunError::Internal("no ranks after Sort phase"))?;
                let submissions = honest_submissions(&self.infos, &ranks, self.params.top_k());
                let report = verify_submissions(
                    self.params.questionnaire(),
                    &self.profile,
                    &submissions,
                    self.params.top_k(),
                    &self.log,
                    &mut self.submit_timer,
                    100,
                );
                debug_assert!(report.is_clean(), "honest run must verify cleanly");

                let gain_output = self
                    .gain_out
                    .take()
                    .ok_or(RunError::Internal("no gain output after Gain phase"))?;
                let n = self.params.participants();
                let per_party: Vec<Duration> = (0..=n)
                    .map(|p| {
                        self.gain_timer.spent(p)
                            + self.sort_timer.spent(p)
                            + self.submit_timer.spent(p)
                    })
                    .collect();
                let timings = PhaseTimings {
                    gain: self.gain_timer.mean_participant(),
                    sort: self.sort_timer.mean_participant(),
                    submit: self.submit_timer.spent(0),
                    initiator: per_party[0],
                    per_party,
                };
                self.result = Some(Outcome {
                    ranks,
                    top_k: report.accepted,
                    traffic: self.log.summary(),
                    timings,
                    gain_output,
                });
                self.phase = SessionPhase::Done;
                Ok(SessionStatus::Done)
            }
            SessionPhase::Done => Ok(SessionStatus::Done),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{gain, Questionnaire};
    use ppgr_group::GroupKind;

    fn small_params(n: usize, k: usize, seed: u64) -> FrameworkParams {
        FrameworkParams::builder(Questionnaire::synthetic(1, 2))
            .participants(n)
            .top_k(k)
            .attr_bits(6)
            .weight_bits(3)
            .mask_bits(6)
            .group(GroupKind::Ecc160)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn end_to_end_ranks_match_plaintext_gains() {
        let params = small_params(4, 2, 11);
        let runner = GroupRanking::new(params.clone()).with_random_population();
        let q = params.questionnaire().clone();
        let outcome = runner.run().unwrap();

        // Recompute plaintext gains to validate ranking.
        let mut rng = HashDrbg::seed_from_u64(params.seed());
        let (profile, infos) = params.random_population(&mut rng);
        let gains: Vec<i128> = infos.iter().map(|i| gain(&q, &profile, i)).collect();
        for a in 0..gains.len() {
            for b in 0..gains.len() {
                if gains[a] > gains[b] {
                    assert!(
                        outcome.ranks()[a] < outcome.ranks()[b],
                        "gain order violated: {:?} vs ranks {:?}",
                        gains,
                        outcome.ranks()
                    );
                }
            }
        }
        // Top-k are the k best gains.
        assert_eq!(outcome.top_k().len(), 2);
        for acc in outcome.top_k() {
            assert!(acc.submission.claimed_rank <= 2);
        }
    }

    #[test]
    fn missing_population_errors() {
        let params = small_params(3, 1, 1);
        assert_eq!(
            GroupRanking::new(params).run().unwrap_err(),
            RunError::MissingPopulation
        );
    }

    #[test]
    fn population_size_checked() {
        let params = small_params(3, 1, 1);
        let mut rng = HashDrbg::seed_from_u64(5);
        let (profile, mut infos) = params.random_population(&mut rng);
        infos.pop();
        assert!(matches!(
            GroupRanking::new(params).with_population(profile, infos),
            Err(VectorError::DimensionMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GroupRanking::new(small_params(3, 1, 77))
            .with_random_population()
            .run()
            .unwrap();
        let b = GroupRanking::new(small_params(3, 1, 77))
            .with_random_population()
            .run()
            .unwrap();
        assert_eq!(a.ranks(), b.ranks());
        assert_eq!(a.traffic(), b.traffic());
    }

    #[test]
    fn traffic_and_timing_populated() {
        let outcome = GroupRanking::new(small_params(3, 1, 9))
            .with_random_population()
            .run()
            .unwrap();
        assert!(outcome.traffic().total_bytes > 0);
        assert!(outcome.timings().sort > Duration::ZERO);
        assert!(outcome.timings().mean_participant_total() >= outcome.timings().sort);
        assert_eq!(outcome.timings().per_party.len(), 4);
    }
}
