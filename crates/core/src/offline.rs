//! Offline/online phase split — the deterministic precompute stock.
//!
//! The sorting protocol's online latency is dominated by exponentiations,
//! and almost none of them depend on anything another party *sends*: the
//! distributed key shares are party randomness (paper Sec. IV — the joint
//! ElGamal key is minted before any preference is encrypted), the proof of
//! key knowledge is honest-verifier (so its challenge shares are just more
//! pool randomness), and every encryption/rerandomization mask `(g^r, y^r)`
//! follows from the key. What is irreducibly online is the variable-base
//! work on other parties' ciphertexts: partial decryptions `β^{-x}` and the
//! per-hop plaintext randomizers applied to foreign τ sets.
//!
//! [`OfflineStock`] is one session's worth of precomputed material. Its
//! shape is a pure function of `(n, l)` — hop randomizers are generated
//! even when a run disables randomization — so a precompute pool can stock
//! sessions knowing only their parameters, not their options or inputs.
//! A stock comes in two tiers built from **one canonical scalar stream**:
//!
//! * **masks tier** ([`generate_masks_only`](OfflineStock::generate_masks_only)):
//!   key-independent work only — key-share seeds, Schnorr nonces and
//!   challenge shares, the fixed-base `g^r` half of every mask, hop
//!   scalars. Keygen, the joint-key table and the `y^r` halves stay online.
//! * **keygen tier** ([`generate`](OfflineStock::generate)): the masks tier
//!   plus minted [`KeyPair`]s, assembled key-knowledge proofs, the combined
//!   [`JointKey`] with its prepared comb table, and the `y^r` half of every
//!   mask. The online keygen round reduces to exchanging shares and
//!   batch-verifying the proofs.
//!
//! The tiers draw *identical* scalars at *identical* stream positions —
//! they differ only in how much exponentiation is done ahead of time — so
//! cold, masks-warm and keygen-warm sessions are bit-identical, transcript
//! and ranks alike.
//!
//! Determinism: a stock for a session seeded `s` is drawn from
//! `HashDrbg::seed_from_u64(s).fork(b"offline")` — a stream disjoint from
//! the session's `b"protocol"` fork — so a session that receives a
//! pool-generated stock and one that builds its own cold are bit-identical.

use ppgr_bigint::Secret;
use ppgr_elgamal::{ExpElGamal, JointKey, KeyPair, MaskPair};
use ppgr_group::{Element, FixedBaseTable, Group, GroupKind, HopScalars, Scalar};
use ppgr_hash::HashDrbg;
use ppgr_zkp::{verify_multi_batch, MultiVerifierProof, MultiVerifierTranscript, SchnorrNonce};
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;

/// The draw-order layout this module currently mints (see
/// [`StockFingerprint::layout`]).
pub const STOCK_LAYOUT: u32 = 2;

/// The session shape a DRBG-generated stock was built for.
///
/// A precompute pool keys its lanes by this; a session accepts an offered
/// stock only if the fingerprint matches its own parameters exactly.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub struct StockFingerprint {
    /// The session's master seed.
    pub seed: u64,
    /// Number of sorting parties `n`.
    pub participants: usize,
    /// The masked-gain bit length `l`.
    pub bits: usize,
    /// The group instantiation.
    pub group: GroupKind,
    /// The canonical draw-order version the stock follows. Sessions and
    /// pools built from the same crate always agree ([`STOCK_LAYOUT`]); the
    /// field exists so a persisted or cross-version stock whose scalar
    /// stream was laid out differently can never be mistaken for a match —
    /// attaching it would silently break the warm == cold bit-identity.
    pub layout: u32,
}

impl StockFingerprint {
    /// A fingerprint for the current draw-order layout.
    pub fn new(seed: u64, participants: usize, bits: usize, group: GroupKind) -> Self {
        StockFingerprint {
            seed,
            participants,
            bits,
            group,
            layout: STOCK_LAYOUT,
        }
    }
}

/// How much of a stock's exponentiation was done ahead of time.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum StockTier {
    /// Key-independent material only; keygen and `y^r` halves stay online.
    Masks,
    /// Keys, proofs, the joint-key table and every `y^r` half are minted.
    Keygen,
}

/// The keygen slice of a stock: every party's key material and proof of
/// key knowledge, either as raw seeds (masks tier) or fully minted (keygen
/// tier). Both forms carry secret exponents; `{:?}` redacts through the
/// inner [`Secret`]/[`KeyPair`] wrappers.
pub struct KeyStock(pub(crate) KeyMaterial);

/// What [`OfflineStock::take_keys`] hands the sorting machine.
pub(crate) enum KeyMaterial {
    /// Masks tier: the scalars are drawn but nothing is exponentiated.
    Seeds {
        /// Per-party secret key shares `x_j`, party order.
        secrets: Vec<Secret<Scalar>>,
        /// Per-party Schnorr commitment nonces, party order.
        nonces: Vec<SchnorrNonce>,
        /// Per-prover honest-verifier challenge shares (`n − 1` each).
        challenges: Vec<Vec<Scalar>>,
    },
    /// Keygen tier: keys and proofs are minted, the joint key is combined
    /// and its comb table prepared.
    Minted {
        /// Per-party key pairs, party order.
        pairs: Vec<KeyPair>,
        /// Per-party key-knowledge proofs, party order.
        proofs: Vec<MultiVerifierTranscript>,
        /// The combined joint key.
        joint: JointKey,
        /// Prepared fixed-base table for the joint public key.
        table: FixedBaseTable,
        /// Whether every party's batch verification of the others' proofs
        /// was run at minting time and passed. The proofs are a pure
        /// function of offline material, so checking them is offline work
        /// too; a session consuming a verified stock skips the online
        /// verification round entirely. The field is crate-private (as is
        /// the whole enum), so externally supplied material can never claim
        /// it without going through the minting path.
        verified: bool,
    },
}

impl KeyStock {
    fn parties(&self) -> usize {
        match &self.0 {
            KeyMaterial::Seeds { secrets, .. } => secrets.len(),
            KeyMaterial::Minted { pairs, .. } => pairs.len(),
        }
    }

    fn matches_shape(&self, n: usize) -> bool {
        match &self.0 {
            KeyMaterial::Seeds {
                secrets,
                nonces,
                challenges,
            } => {
                secrets.len() == n
                    && nonces.len() == n
                    && challenges.len() == n
                    && challenges.iter().all(|c| c.len() == n - 1)
            }
            KeyMaterial::Minted {
                pairs,
                proofs,
                joint,
                ..
            } => {
                pairs.len() == n
                    && proofs.len() == n
                    && proofs.iter().all(|p| p.challenges.len() == n - 1)
                    && joint.parties() == n
            }
        }
    }
}

impl fmt::Debug for KeyStock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tier = match &self.0 {
            KeyMaterial::Seeds { .. } => StockTier::Masks,
            KeyMaterial::Minted { .. } => StockTier::Keygen,
        };
        f.debug_struct("KeyStock")
            .field("parties", &self.parties())
            .field("tier", &tier)
            .finish()
    }
}

/// One hop's randomizers for a single foreign τ set.
///
/// Drawn as raw nonzero scalars; the keygen tier — which knows every hop
/// secret — upgrades each set in place with the `−x·r` partial-decryption
/// products and the signed-digit recodings the hop ladder consumes, moving
/// that scalar arithmetic off the session clock. The masks tier (and cold
/// sessions) keep the raw form and pay for the recoding online; both forms
/// drive the exponentiation to bit-identical outputs.
pub(crate) enum HopSet {
    /// Raw randomizers as drawn from the stream.
    Raw(Vec<Scalar>),
    /// Keygen-tier form with precomputed `−x·r` and recodings.
    Prepared(Vec<HopScalars>),
}

impl HopSet {
    pub(crate) fn len(&self) -> usize {
        match self {
            HopSet::Raw(rs) => rs.len(),
            HopSet::Prepared(ps) => ps.len(),
        }
    }

    /// The underlying randomizer scalars, tier-independent (tests compare
    /// stocks across tiers through this view).
    #[cfg(test)]
    fn randomizers(&self) -> Vec<Scalar> {
        match self {
            HopSet::Raw(rs) => rs.clone(),
            HopSet::Prepared(ps) => ps.iter().map(|p| p.randomizer().clone()).collect(),
        }
    }
}

/// One session's worth of precomputed randomness (see the module docs).
///
/// Consumed front-to-back by a [`SortMachine`](crate::sorting::SortMachine)
/// in exact protocol order: the key stock at keygen, then the `n` per-party
/// encryption mask rows (bits least-significant-first), then the `n`
/// per-party comparison-set rerandomization rows, then the hop randomizer
/// sets (hop by hop, foreign sets in ascending owner order).
pub struct OfflineStock {
    keys: Option<KeyStock>,
    enc: VecDeque<Vec<MaskPair>>,
    compare: VecDeque<Vec<MaskPair>>,
    hops: VecDeque<HopSet>,
    fingerprint: Option<StockFingerprint>,
}

impl fmt::Debug for OfflineStock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OfflineStock")
            .field("keys", &self.keys)
            .field("enc_rows", &self.enc.len())
            .field("compare_rows", &self.compare.len())
            .field("hop_sets", &self.hops.len())
            .field("fingerprint", &self.fingerprint)
            .finish()
    }
}

impl OfflineStock {
    /// Draws a full keygen-tier stock for an `n`-party, `l`-bit session
    /// from `rng`.
    ///
    /// This is the cold path: a machine with no pool-supplied stock draws
    /// one from its own stream at its offline step, paying the minting cost
    /// on the session clock. The scalar draw order is fixed regardless of
    /// the run's options (see the module docs).
    pub fn draw_from<R: Rng + ?Sized>(group: &Group, n: usize, l: usize, rng: &mut R) -> Self {
        // A `false` cancellation hook never fires, so generation completes.
        Self::draw_cancellable_from(group, n, l, rng, &mut || false, StockTier::Keygen, true)
            // tidy:allow(panic) — the never-cancelling hook makes None unreachable
            .expect("generation with a never-cancelling hook always completes")
    }

    /// [`OfflineStock::draw_from`] with the minting-time proof verification
    /// skipped, leaving the stock's `verified` verdict `false`.
    ///
    /// Verification reads only minted material and draws nothing from the
    /// stream, so the stock is bit-identical to [`OfflineStock::draw_from`]
    /// output — only the verdict differs. Used by deferred-verification
    /// sessions (see [`SortOptions::defer_verify`]), which stash the keygen
    /// proof check as a [`KeygenVerifyJob`] for a cross-session batch
    /// instead of paying for it at draw time.
    ///
    /// [`SortOptions::defer_verify`]: crate::sorting::SortOptions
    /// [`KeygenVerifyJob`]: crate::sorting::KeygenVerifyJob
    pub(crate) fn draw_from_deferred<R: Rng + ?Sized>(
        group: &Group,
        n: usize,
        l: usize,
        rng: &mut R,
    ) -> Self {
        // See `draw_from`: the hook never fires.
        Self::draw_cancellable_from(group, n, l, rng, &mut || false, StockTier::Keygen, false)
            // tidy:allow(panic) — the never-cancelling hook makes None unreachable
            .expect("generation with a never-cancelling hook always completes")
    }

    /// Invalidates `party`'s key-knowledge proof in a minted (keygen-tier)
    /// stock by bumping its response scalar, and clears the stock's
    /// `verified` verdict so consumers re-check it.
    ///
    /// Test-harness hook: lets attribution tests feed a session a stock
    /// whose proof `party` must be rejected — by the online verification
    /// loop or by a deferred cross-session batch — without forging wire
    /// bytes. No-op on a masks-tier stock or when keys were already taken.
    #[doc(hidden)]
    pub fn corrupt_key_proof(&mut self, group: &Group, party: usize) {
        if let Some(KeyStock(KeyMaterial::Minted {
            proofs, verified, ..
        })) = self.keys.as_mut()
        {
            if let Some(proof) = proofs.get_mut(party) {
                ppgr_zkp::tamper::bump_multi_response(group, proof);
                *verified = false;
            }
        }
    }

    /// Generates the keygen-tier stock a session with fingerprint `fp`
    /// expects: keys, proofs, joint-key table and every `(g^r, y^r)` pair
    /// fully minted.
    ///
    /// Derives the session's dedicated offline stream
    /// (`HashDrbg::seed_from_u64(seed).fork(b"offline")`) and draws from
    /// it, so the result is identical to what the session itself would
    /// build cold.
    pub fn generate(fp: StockFingerprint) -> Self {
        // See `draw_from`: the hook never fires.
        Self::generate_cancellable(fp, &mut || false)
            // tidy:allow(panic) — the never-cancelling hook makes None unreachable
            .expect("generation with a never-cancelling hook always completes")
    }

    /// [`OfflineStock::generate`] with the minting-time proof verification
    /// skipped (`verified` stays `false`), for deferred-verification
    /// sessions generating their stock cold. Stock bytes are identical to
    /// [`OfflineStock::generate`] output — see
    /// [`OfflineStock::draw_from_deferred`].
    pub(crate) fn generate_deferred(fp: StockFingerprint) -> Self {
        let group = fp.group.group();
        let mut rng = HashDrbg::seed_from_u64(fp.seed).fork(b"offline");
        let mut stock = Self::draw_cancellable_from(
            &group,
            fp.participants,
            fp.bits,
            &mut rng,
            &mut || false,
            StockTier::Keygen,
            false,
        )
        // tidy:allow(panic) — the never-cancelling hook makes None unreachable
        .expect("generation with a never-cancelling hook always completes");
        stock.fingerprint = Some(fp);
        stock
    }

    /// [`OfflineStock::generate`] stopped at the masks tier: the same
    /// scalar stream, but only the key-independent exponentiations (`g^r`
    /// halves, Schnorr commitments) are done. Keygen, the joint-key table
    /// and the `y^r` halves remain online work for the session.
    ///
    /// Exists so the bench harness can measure the two tiers against the
    /// same cold baseline; a session consuming this stock is bit-identical
    /// to one consuming the keygen tier.
    pub fn generate_masks_only(fp: StockFingerprint) -> Self {
        let group = fp.group.group();
        let mut rng = HashDrbg::seed_from_u64(fp.seed).fork(b"offline");
        let mut stock = Self::draw_cancellable_from(
            &group,
            fp.participants,
            fp.bits,
            &mut rng,
            &mut || false,
            StockTier::Masks,
            true,
        )
        // tidy:allow(panic) — the never-cancelling hook makes None unreachable
        .expect("generation with a never-cancelling hook always completes");
        stock.fingerprint = Some(fp);
        stock
    }

    /// [`OfflineStock::generate`] with a cancellation hook for background
    /// refill workers: `cancel` is polled between parties, between hop
    /// sets and between minting batches; once it returns `true`, generation
    /// stops and `None` is returned. A completed generation is
    /// bit-identical to [`OfflineStock::generate`].
    pub fn generate_cancellable(
        fp: StockFingerprint,
        cancel: &mut dyn FnMut() -> bool,
    ) -> Option<Self> {
        let group = fp.group.group();
        let mut rng = HashDrbg::seed_from_u64(fp.seed).fork(b"offline");
        let mut stock = Self::draw_cancellable_from(
            &group,
            fp.participants,
            fp.bits,
            &mut rng,
            cancel,
            StockTier::Keygen,
            true,
        )?;
        stock.fingerprint = Some(fp);
        Some(stock)
    }

    #[allow(clippy::too_many_arguments)]
    fn draw_cancellable_from<R: Rng + ?Sized>(
        group: &Group,
        n: usize,
        l: usize,
        rng: &mut R,
        cancel: &mut dyn FnMut() -> bool,
        tier: StockTier,
        verify_at_mint: bool,
    ) -> Option<Self> {
        // ---- canonical scalar stream -----------------------------------
        // Both tiers draw exactly this sequence; they differ only in how
        // much is exponentiated afterwards. Any change here is a new
        // STOCK_LAYOUT.
        let mut secrets = Vec::with_capacity(n);
        for _ in 0..n {
            if cancel() {
                return None;
            }
            secrets.push(Secret::new(group.random_nonzero_scalar(rng)));
        }
        let mut nonces = Vec::with_capacity(n);
        let mut challenges: Vec<Vec<Scalar>> = Vec::with_capacity(n);
        for _ in 0..n {
            if cancel() {
                return None;
            }
            nonces.push(SchnorrNonce::draw(group, rng));
            challenges.push((0..n - 1).map(|_| group.random_scalar(rng)).collect());
        }
        let mut enc: VecDeque<Vec<MaskPair>> = VecDeque::with_capacity(n);
        for _ in 0..n {
            if cancel() {
                return None;
            }
            enc.push_back((0..l).map(|_| MaskPair::draw(group, rng)).collect());
        }
        // One rerandomization mask per comparison-set ciphertext: each
        // party's τ set is a deterministic homomorphic combination of
        // published bit encryptions, so it must be re-randomized before it
        // is contributed to the chain.
        let set_len = (n - 1) * l;
        let mut compare: VecDeque<Vec<MaskPair>> = VecDeque::with_capacity(n);
        for _ in 0..n {
            if cancel() {
                return None;
            }
            compare.push_back((0..set_len).map(|_| MaskPair::draw(group, rng)).collect());
        }
        // n hops, each touching the n−1 foreign sets (ascending owner) of
        // (n−1)·l ciphertexts each. Hop randomizers must be nonzero — a
        // zero multiplier would erase a plaintext, forging a rank. They
        // stay plain scalars: the hop applies them to *foreign* ciphertexts
        // with variable bases, which no table can precompute.
        let mut hops = VecDeque::with_capacity(n * (n - 1));
        for _hop in 0..n {
            for _set in 0..n - 1 {
                if cancel() {
                    return None;
                }
                hops.push_back(HopSet::Raw(
                    (0..set_len)
                        .map(|_| group.random_nonzero_scalar(rng))
                        .collect(),
                ));
            }
        }
        // ---- tier-dependent minting (no further stream draws) ----------
        let keys = match tier {
            StockTier::Masks => KeyStock(KeyMaterial::Seeds {
                secrets,
                nonces,
                challenges,
            }),
            StockTier::Keygen => {
                if cancel() {
                    return None;
                }
                let pairs: Vec<KeyPair> = secrets
                    .iter()
                    .map(|s| KeyPair::from_secret(group, s.expose().clone()))
                    .collect();
                let shares: Vec<Element> = pairs.iter().map(|p| p.public_key().clone()).collect();
                let joint = JointKey::combine(group, &shares);
                let table = ExpElGamal::new(group.clone()).prepare_key(joint.public_key());
                let proofs: Vec<MultiVerifierTranscript> = pairs
                    .iter()
                    .zip(nonces)
                    .zip(challenges)
                    .map(|((pair, nonce), chals)| {
                        MultiVerifierProof::assemble(group, pair.secret_key(), nonce, chals)
                    })
                    .collect();
                for row in enc.iter_mut() {
                    if cancel() {
                        return None;
                    }
                    MaskPair::fill_key_halves(group, &table, row);
                }
                for row in compare.iter_mut() {
                    if cancel() {
                        return None;
                    }
                    MaskPair::fill_key_halves(group, &table, row);
                }
                // Every verifier's batch check over the other parties'
                // proofs (paper Sec. IV keygen round) reads only material
                // minted above, so it is offline work: run it now and
                // record the verdict. Honest minting always passes; the
                // `false` arm keeps the online verification (and its
                // per-prover blame scan) alive as a defence in depth.
                // Deferred-verification sessions skip the check here too
                // (`verify_at_mint == false`): it draws nothing from the
                // stream, so the stock stays bit-identical, and the unset
                // verdict routes the check into a cross-session batch.
                if cancel() {
                    return None;
                }
                let verified = verify_at_mint
                    && (0..n).all(|vidx| {
                        let foreign: Vec<(&Element, &MultiVerifierTranscript)> = (0..n)
                            .filter(|&p| p != vidx)
                            .map(|p| (pairs[p].public_key(), &proofs[p]))
                            .collect();
                        verify_multi_batch(group, &foreign).is_ok()
                    });
                // Hop h is run by party h with her own secret share, and
                // both the keygen tier above and the sorting machine are
                // the same stock, so the `−x_h·r` partial-decryption
                // products and the hop ladder's signed-digit recodings are
                // a pure function of offline material: fold them into the
                // sets now. Sets were drawn hop-major, `n − 1` per hop.
                for (idx, set) in hops.iter_mut().enumerate() {
                    if cancel() {
                        return None;
                    }
                    if let HopSet::Raw(rs) = set {
                        let secret = pairs[idx / (n - 1)].secret_key();
                        *set = HopSet::Prepared(group.prepare_hop_scalars(secret, rs));
                    }
                }
                KeyStock(KeyMaterial::Minted {
                    pairs,
                    proofs,
                    joint,
                    table,
                    verified,
                })
            }
        };
        Some(OfflineStock {
            keys: Some(keys),
            enc,
            compare,
            hops,
            fingerprint: None,
        })
    }

    /// The fingerprint this stock was generated for (`None` for stocks
    /// drawn ad hoc with [`OfflineStock::draw_from`]).
    pub fn fingerprint(&self) -> Option<&StockFingerprint> {
        self.fingerprint.as_ref()
    }

    /// The tier the unconsumed key stock was minted at (`None` once the
    /// keygen step has taken it).
    pub fn tier(&self) -> Option<StockTier> {
        self.keys.as_ref().map(|k| match &k.0 {
            KeyMaterial::Seeds { .. } => StockTier::Masks,
            KeyMaterial::Minted { .. } => StockTier::Keygen,
        })
    }

    /// Whether the stock holds exactly an `n`-party, `l`-bit session's
    /// worth of unconsumed material for `group`.
    pub fn matches_shape(&self, group: &Group, n: usize, l: usize) -> bool {
        if let Some(fp) = &self.fingerprint {
            if fp.group != group.kind() {
                return false;
            }
        }
        self.keys.as_ref().is_some_and(|k| k.matches_shape(n))
            && self.enc.len() == n
            && self.enc.iter().all(|row| row.len() == l)
            && self.compare.len() == n
            && self.compare.iter().all(|row| row.len() == (n - 1) * l)
            && self.hops.len() == n * (n - 1)
            && self.hops.iter().all(|set| set.len() == (n - 1) * l)
    }

    /// The whole keygen slice, or `None` if already taken.
    pub(crate) fn take_keys(&mut self) -> Option<KeyMaterial> {
        self.keys.take().map(|k| k.0)
    }

    /// The next party's encryption mask row, or `None` if exhausted.
    pub(crate) fn take_enc_row(&mut self) -> Option<Vec<MaskPair>> {
        self.enc.pop_front()
    }

    /// The next party's comparison-set rerandomization row, or `None` if
    /// exhausted.
    pub(crate) fn take_compare_row(&mut self) -> Option<Vec<MaskPair>> {
        self.compare.pop_front()
    }

    /// The next hop randomizer set, or `None` if exhausted.
    pub(crate) fn take_hop_set(&mut self) -> Option<HopSet> {
        self.hops.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn fp(seed: u64) -> StockFingerprint {
        StockFingerprint::new(seed, 3, 4, GroupKind::Ecc160)
    }

    /// Tier-independent view of a stock's hop randomizers.
    fn hop_rs(s: &OfflineStock) -> Vec<Vec<Scalar>> {
        s.hops.iter().map(HopSet::randomizers).collect()
    }

    #[test]
    fn fingerprint_constructor_pins_the_current_layout() {
        assert_eq!(fp(1).layout, STOCK_LAYOUT);
        let mut stale = fp(1);
        stale.layout = STOCK_LAYOUT - 1;
        assert_ne!(stale, fp(1));
    }

    #[test]
    fn generated_stock_has_the_declared_shape() {
        let group = GroupKind::Ecc160.group();
        let stock = OfflineStock::generate(fp(7));
        assert!(stock.matches_shape(&group, 3, 4));
        assert!(!stock.matches_shape(&group, 4, 4));
        assert!(!stock.matches_shape(&group, 3, 5));
        assert!(!stock.matches_shape(&GroupKind::Dl1024.group(), 3, 4));
        assert_eq!(stock.fingerprint(), Some(&fp(7)));
        assert_eq!(stock.tier(), Some(StockTier::Keygen));

        let masks = OfflineStock::generate_masks_only(fp(7));
        assert!(masks.matches_shape(&group, 3, 4));
        assert_eq!(masks.tier(), Some(StockTier::Masks));
    }

    #[test]
    fn generation_is_deterministic_per_fingerprint() {
        let a = OfflineStock::generate(fp(9));
        let b = OfflineStock::generate(fp(9));
        let c = OfflineStock::generate(fp(10));
        let joint = |s: &OfflineStock| match &s.keys.as_ref().unwrap().0 {
            KeyMaterial::Minted { joint, .. } => joint.public_key().clone(),
            KeyMaterial::Seeds { .. } => panic!("keygen tier expected"),
        };
        assert_eq!(joint(&a), joint(&b));
        assert_ne!(joint(&a), joint(&c));
        assert_eq!(hop_rs(&a), hop_rs(&b));
        assert_ne!(hop_rs(&a), hop_rs(&c));
    }

    #[test]
    fn tiers_share_one_scalar_stream() {
        // The masks tier and the keygen tier must draw identical scalars at
        // identical stream positions — that is what makes cold, masks-warm
        // and keygen-warm sessions bit-identical.
        let full = OfflineStock::generate(fp(13));
        let masks = OfflineStock::generate_masks_only(fp(13));
        assert_eq!(hop_rs(&full), hop_rs(&masks));
        // The keygen tier also carries the hops in prepared form; the
        // masks tier leaves them raw for the session to recode.
        assert!(full
            .hops
            .iter()
            .all(|set| matches!(set, HopSet::Prepared(_))));
        assert!(masks.hops.iter().all(|set| matches!(set, HopSet::Raw(_))));
        let g_rs = |s: &OfflineStock| -> Vec<_> {
            s.enc
                .iter()
                .chain(s.compare.iter())
                .flatten()
                .map(|p| p.g_r().clone())
                .collect()
        };
        assert_eq!(g_rs(&full), g_rs(&masks));
        // Full tier carries every key half; masks tier carries none.
        assert!(full
            .enc
            .iter()
            .chain(full.compare.iter())
            .flatten()
            .all(MaskPair::has_key_half));
        assert!(!masks
            .enc
            .iter()
            .chain(masks.compare.iter())
            .flatten()
            .any(MaskPair::has_key_half));
        // The minted keys are exactly the masks tier's seeds, exponentiated.
        let group = GroupKind::Ecc160.group();
        let (pairs, proofs, joint) = match full.keys.unwrap().0 {
            KeyMaterial::Minted {
                pairs,
                proofs,
                joint,
                ..
            } => (pairs, proofs, joint),
            KeyMaterial::Seeds { .. } => panic!("keygen tier expected"),
        };
        let (secrets, nonces, challenges) = match masks.keys.unwrap().0 {
            KeyMaterial::Seeds {
                secrets,
                nonces,
                challenges,
            } => (secrets, nonces, challenges),
            KeyMaterial::Minted { .. } => panic!("masks tier expected"),
        };
        for (pair, secret) in pairs.iter().zip(&secrets) {
            assert_eq!(pair.public_key(), &group.exp_gen(secret.expose()));
        }
        for (((proof, nonce), chals), pair) in proofs.iter().zip(nonces).zip(challenges).zip(&pairs)
        {
            assert_eq!(&proof.commitment, nonce.commitment());
            assert_eq!(proof.challenges, chals);
            assert!(proof.verify(&group, pair.public_key()));
        }
        assert_eq!(joint.parties(), 3);
    }

    #[test]
    fn cancellable_generation_matches_uncancelled() {
        let a = OfflineStock::generate(fp(11));
        let b = OfflineStock::generate_cancellable(fp(11), &mut || false).unwrap();
        assert_eq!(hop_rs(&a), hop_rs(&b));
        let joint = |s: &OfflineStock| match &s.keys.as_ref().unwrap().0 {
            KeyMaterial::Minted { joint, .. } => joint.public_key().clone(),
            KeyMaterial::Seeds { .. } => panic!("keygen tier expected"),
        };
        assert_eq!(joint(&a), joint(&b));
    }

    #[test]
    fn cancellation_stops_generation() {
        assert!(OfflineStock::generate_cancellable(fp(12), &mut || true).is_none());
        // Cancel part-way through: after a few polls the worker gives up.
        let mut polls = 0usize;
        let out = OfflineStock::generate_cancellable(fp(12), &mut || {
            polls += 1;
            polls > 4
        });
        assert!(out.is_none());
        // Cancel during the minting batches at the end.
        let mut polls = 0usize;
        let out = OfflineStock::generate_cancellable(fp(12), &mut || {
            polls += 1;
            polls > 20
        });
        assert!(out.is_none());
    }

    #[test]
    fn draws_consume_front_to_back_until_exhausted() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(1);
        let mut stock = OfflineStock::draw_from(&group, 2, 3, &mut rng);
        assert!(stock.fingerprint().is_none());
        assert!(stock.matches_shape(&group, 2, 3));
        assert!(stock.take_keys().is_some());
        assert!(stock.take_keys().is_none());
        assert_eq!(stock.tier(), None);
        for _ in 0..2 {
            assert_eq!(stock.take_enc_row().map(|r| r.len()), Some(3));
        }
        assert!(stock.take_enc_row().is_none());
        for _ in 0..2 {
            assert_eq!(stock.take_compare_row().map(|r| r.len()), Some(3));
        }
        assert!(stock.take_compare_row().is_none());
        for _ in 0..2 {
            assert_eq!(stock.take_hop_set().map(|s| s.len()), Some(3));
        }
        assert!(stock.take_hop_set().is_none());
    }
}
