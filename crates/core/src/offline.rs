//! Offline/online phase split — the deterministic precompute stock.
//!
//! The sorting protocol's online latency is dominated by exponentiations,
//! but a sizeable slice of them does not depend on anything another party
//! sends: the Schnorr commitment `g^r` of the proof of key knowledge, the
//! fixed-base half `g^r` of every bitwise encryption, and the per-hop
//! plaintext randomizers (plain nonzero scalars). All of that can be
//! computed *before* the session's inputs — or even its parties' keys —
//! exist, leaving only the key-dependent work (`y^r`, partial decryptions,
//! comparisons) online.
//!
//! [`OfflineStock`] is one session's worth of that material. Its shape is a
//! pure function of `(n, l)` — hop randomizers are generated even when a
//! run disables randomization — so a precompute pool can stock sessions
//! knowing only their parameters, not their options or inputs.
//!
//! Determinism: a stock for a session seeded `s` is drawn from
//! `HashDrbg::seed_from_u64(s).fork(b"offline")` — a stream disjoint from
//! the session's `b"protocol"` fork — so a session that receives a
//! pool-generated stock ([`generate`](OfflineStock::generate)) and one that
//! builds its own cold are bit-identical, transcript and ranks alike.

use ppgr_elgamal::EncRandomizer;
use ppgr_group::{Group, GroupKind, Scalar};
use ppgr_hash::HashDrbg;
use ppgr_zkp::SchnorrNonce;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;

/// The session shape a DRBG-generated stock was built for.
///
/// A precompute pool keys its lanes by this; a session accepts an offered
/// stock only if the fingerprint matches its own parameters exactly.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub struct StockFingerprint {
    /// The session's master seed.
    pub seed: u64,
    /// Number of sorting parties `n`.
    pub participants: usize,
    /// The masked-gain bit length `l`.
    pub bits: usize,
    /// The group instantiation.
    pub group: GroupKind,
}

/// One session's worth of precomputed randomness (see the module docs).
///
/// Consumed front-to-back by a [`SortMachine`](crate::sorting::SortMachine)
/// in exact protocol order: first the `n` Schnorr nonces (party order),
/// then the `n` per-party encryption randomizer rows (bits
/// least-significant-first), then the hop randomizer sets (hop by hop,
/// foreign sets in ascending owner order).
pub struct OfflineStock {
    nonces: VecDeque<SchnorrNonce>,
    enc: VecDeque<Vec<EncRandomizer>>,
    hops: VecDeque<Vec<Scalar>>,
    fingerprint: Option<StockFingerprint>,
}

impl fmt::Debug for OfflineStock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OfflineStock")
            .field("nonces", &self.nonces.len())
            .field("enc_rows", &self.enc.len())
            .field("hop_sets", &self.hops.len())
            .field("fingerprint", &self.fingerprint)
            .finish()
    }
}

impl OfflineStock {
    /// Draws a full stock for an `n`-party, `l`-bit session from `rng`.
    ///
    /// This is the cold path: a machine with no pool-supplied stock draws
    /// one from its own stream at its offline step. The draw order is
    /// fixed (nonces, then encryption rows, then hop sets) regardless of
    /// the run's options.
    pub fn draw_from<R: Rng + ?Sized>(group: &Group, n: usize, l: usize, rng: &mut R) -> Self {
        // A `false` cancellation hook never fires, so generation completes.
        Self::draw_cancellable_from(group, n, l, rng, &mut || false)
            // tidy:allow(panic) — the never-cancelling hook makes None unreachable
            .expect("generation with a never-cancelling hook always completes")
    }

    /// Generates the stock a session with fingerprint `fp` expects.
    ///
    /// Derives the session's dedicated offline stream
    /// (`HashDrbg::seed_from_u64(seed).fork(b"offline")`) and draws from
    /// it, so the result is identical to what the session itself would
    /// build cold.
    pub fn generate(fp: StockFingerprint) -> Self {
        // See `draw_from`: the hook never fires.
        Self::generate_cancellable(fp, &mut || false)
            // tidy:allow(panic) — the never-cancelling hook makes None unreachable
            .expect("generation with a never-cancelling hook always completes")
    }

    /// [`OfflineStock::generate`] with a cancellation hook for background
    /// refill workers: `cancel` is polled between parties and between hop
    /// sets; once it returns `true`, generation stops and `None` is
    /// returned. A completed generation is bit-identical to
    /// [`OfflineStock::generate`].
    pub fn generate_cancellable(
        fp: StockFingerprint,
        cancel: &mut dyn FnMut() -> bool,
    ) -> Option<Self> {
        let group = fp.group.group();
        let mut rng = HashDrbg::seed_from_u64(fp.seed).fork(b"offline");
        let mut stock =
            Self::draw_cancellable_from(&group, fp.participants, fp.bits, &mut rng, cancel)?;
        stock.fingerprint = Some(fp);
        Some(stock)
    }

    fn draw_cancellable_from<R: Rng + ?Sized>(
        group: &Group,
        n: usize,
        l: usize,
        rng: &mut R,
        cancel: &mut dyn FnMut() -> bool,
    ) -> Option<Self> {
        let mut nonces = VecDeque::with_capacity(n);
        for _ in 0..n {
            if cancel() {
                return None;
            }
            nonces.push_back(SchnorrNonce::draw(group, rng));
        }
        let mut enc = VecDeque::with_capacity(n);
        for _ in 0..n {
            if cancel() {
                return None;
            }
            enc.push_back((0..l).map(|_| EncRandomizer::draw(group, rng)).collect());
        }
        // n hops, each touching the n−1 foreign sets (ascending owner) of
        // (n−1)·l ciphertexts each. Hop randomizers must be nonzero — a
        // zero multiplier would erase a plaintext, forging a rank.
        let set_len = (n - 1) * l;
        let mut hops = VecDeque::with_capacity(n * (n - 1));
        for _hop in 0..n {
            for _set in 0..n - 1 {
                if cancel() {
                    return None;
                }
                hops.push_back(
                    (0..set_len)
                        .map(|_| group.random_nonzero_scalar(rng))
                        .collect(),
                );
            }
        }
        Some(OfflineStock {
            nonces,
            enc,
            hops,
            fingerprint: None,
        })
    }

    /// The fingerprint this stock was generated for (`None` for stocks
    /// drawn ad hoc with [`OfflineStock::draw_from`]).
    pub fn fingerprint(&self) -> Option<&StockFingerprint> {
        self.fingerprint.as_ref()
    }

    /// Whether the stock holds exactly an `n`-party, `l`-bit session's
    /// worth of unconsumed material for `group`.
    pub fn matches_shape(&self, group: &Group, n: usize, l: usize) -> bool {
        if let Some(fp) = &self.fingerprint {
            if fp.group != group.kind() {
                return false;
            }
        }
        self.nonces.len() == n
            && self.enc.len() == n
            && self.enc.iter().all(|row| row.len() == l)
            && self.hops.len() == n * (n - 1)
            && self.hops.iter().all(|set| set.len() == (n - 1) * l)
    }

    /// The next party's Schnorr commitment nonce, or `None` if exhausted.
    pub(crate) fn take_nonce(&mut self) -> Option<SchnorrNonce> {
        self.nonces.pop_front()
    }

    /// The next party's encryption randomizer row, or `None` if exhausted.
    pub(crate) fn take_enc_row(&mut self) -> Option<Vec<EncRandomizer>> {
        self.enc.pop_front()
    }

    /// The next hop randomizer set, or `None` if exhausted.
    pub(crate) fn take_hop_set(&mut self) -> Option<Vec<Scalar>> {
        self.hops.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn fp(seed: u64) -> StockFingerprint {
        StockFingerprint {
            seed,
            participants: 3,
            bits: 4,
            group: GroupKind::Ecc160,
        }
    }

    #[test]
    fn generated_stock_has_the_declared_shape() {
        let group = GroupKind::Ecc160.group();
        let stock = OfflineStock::generate(fp(7));
        assert!(stock.matches_shape(&group, 3, 4));
        assert!(!stock.matches_shape(&group, 4, 4));
        assert!(!stock.matches_shape(&group, 3, 5));
        assert!(!stock.matches_shape(&GroupKind::Dl1024.group(), 3, 4));
        assert_eq!(stock.fingerprint(), Some(&fp(7)));
    }

    #[test]
    fn generation_is_deterministic_per_fingerprint() {
        let a = OfflineStock::generate(fp(9));
        let b = OfflineStock::generate(fp(9));
        let c = OfflineStock::generate(fp(10));
        let commitments = |s: &OfflineStock| -> Vec<_> {
            s.nonces.iter().map(|n| n.commitment().clone()).collect()
        };
        assert_eq!(commitments(&a), commitments(&b));
        assert_ne!(commitments(&a), commitments(&c));
        assert_eq!(a.hops, b.hops);
        assert_ne!(a.hops, c.hops);
    }

    #[test]
    fn cancellable_generation_matches_uncancelled() {
        let a = OfflineStock::generate(fp(11));
        let b = OfflineStock::generate_cancellable(fp(11), &mut || false).unwrap();
        assert_eq!(a.hops, b.hops);
        assert_eq!(
            a.nonces.front().map(|n| n.commitment().clone()),
            b.nonces.front().map(|n| n.commitment().clone())
        );
    }

    #[test]
    fn cancellation_stops_generation() {
        assert!(OfflineStock::generate_cancellable(fp(12), &mut || true).is_none());
        // Cancel part-way through: after a few polls the worker gives up.
        let mut polls = 0usize;
        let out = OfflineStock::generate_cancellable(fp(12), &mut || {
            polls += 1;
            polls > 4
        });
        assert!(out.is_none());
    }

    #[test]
    fn draws_consume_front_to_back_until_exhausted() {
        let group = GroupKind::Ecc160.group();
        let mut rng = StdRng::seed_from_u64(1);
        let mut stock = OfflineStock::draw_from(&group, 2, 3, &mut rng);
        assert!(stock.fingerprint().is_none());
        assert!(stock.matches_shape(&group, 2, 3));
        for _ in 0..2 {
            assert!(stock.take_nonce().is_some());
        }
        assert!(stock.take_nonce().is_none());
        for _ in 0..2 {
            assert_eq!(stock.take_enc_row().map(|r| r.len()), Some(3));
        }
        assert!(stock.take_enc_row().is_none());
        for _ in 0..2 {
            assert_eq!(stock.take_hop_set().map(|s| s.len()), Some(3));
        }
        assert!(stock.take_hop_set().is_none());
    }
}
